//! 2D-mesh network-on-chip model (paper Table 2: 1-cycle links, 4-cycle
//! routers, XY dimension-order routing).
//!
//! The simulator composes memory-system latencies out of mesh traversal
//! times, and counts traffic — in particular the **RMW address broadcasts**
//! of the type-2/type-3 deadlock-avoidance scheme (§3.2), whose network
//! overhead the paper reports as negligible (<0.5 %).
//!
//! Two layers are provided:
//!
//! * [`Mesh`] — pure geometry/latency: hop counts and traversal latency
//!   between nodes, plus broadcast latency;
//! * [`Network`] — an event-queue wrapper delivering typed messages at
//!   computed times, with per-kind traffic statistics.
//!
//! ```
//! use interconnect::{Mesh, MeshConfig};
//!
//! let mesh = Mesh::new(MeshConfig::paper_32());
//! // corner to corner on an 8×4 mesh: (7 + 3) hops
//! assert_eq!(mesh.hops(0, 31), 10);
//! assert!(mesh.latency(0, 31) > mesh.latency(0, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rmw_types::fasthash::FastHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cycle count type used throughout the simulator.
pub type Cycle = u64;

/// Mesh geometry and per-hop latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Number of columns.
    pub width: usize,
    /// Number of rows.
    pub height: usize,
    /// Per-link traversal latency in cycles (paper: 1).
    pub link_latency: Cycle,
    /// Per-router latency in cycles (paper: 4).
    pub router_latency: Cycle,
}

impl MeshConfig {
    /// The paper's 32-core configuration: an 8×4 mesh with 1-cycle links
    /// and 4-cycle routers (Table 2).
    pub fn paper_32() -> Self {
        MeshConfig {
            width: 8,
            height: 4,
            link_latency: 1,
            router_latency: 4,
        }
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }
}

/// A 2D mesh with XY routing.
#[derive(Debug, Clone)]
pub struct Mesh {
    config: MeshConfig,
    /// `(x, y)` per node id, precomputed: hop distances sit on the
    /// simulator's hottest paths (every coherence miss and write-buffer
    /// request), where the row-major div/mod would dominate.
    coords: Vec<(u32, u32)>,
}

impl Mesh {
    /// Creates a mesh from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(config: MeshConfig) -> Self {
        assert!(
            config.width > 0 && config.height > 0,
            "mesh dimensions must be nonzero"
        );
        let coords = (0..config.num_nodes())
            .map(|n| ((n % config.width) as u32, (n / config.width) as u32))
            .collect();
        Mesh { config, coords }
    }

    /// The configuration.
    pub fn config(&self) -> MeshConfig {
        self.config
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.config.num_nodes()
    }

    /// `(x, y)` coordinates of a node id (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.num_nodes(), "node {node} out of range");
        let (x, y) = self.coords[node];
        (x as usize, y as usize)
    }

    /// Manhattan hop count between two nodes (XY routing path length).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords[a];
        let (bx, by) = self.coords[b];
        (ax.abs_diff(bx) + ay.abs_diff(by)) as usize
    }

    /// One-way traversal latency from `a` to `b`: each hop crosses a link
    /// and a router, plus the injection router at the source. A self-send
    /// still pays one router traversal.
    pub fn latency(&self, a: usize, b: usize) -> Cycle {
        let hops = self.hops(a, b) as Cycle;
        self.config.router_latency + hops * (self.config.link_latency + self.config.router_latency)
    }

    /// Latency until *all* nodes have received a broadcast from `src`
    /// (messages travel in parallel; the farthest node dominates).
    pub fn broadcast_latency(&self, src: usize) -> Cycle {
        (0..self.num_nodes())
            .filter(|&n| n != src)
            .map(|n| self.latency(src, n))
            .max()
            .unwrap_or(0)
    }

    /// Latency of a broadcast followed by acknowledgements collected back
    /// at `src` — the cost of publishing a new RMW address (§3.2).
    pub fn broadcast_ack_latency(&self, src: usize) -> Cycle {
        (0..self.num_nodes())
            .filter(|&n| n != src)
            .map(|n| self.latency(src, n) + self.latency(n, src))
            .max()
            .unwrap_or(0)
    }
}

/// Classification of messages for traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Data/coherence request (GetS/GetM, etc.).
    Request,
    /// Data or ownership response.
    Response,
    /// Invalidation or its acknowledgement.
    Invalidation,
    /// RMW address broadcast of the deadlock-avoidance scheme.
    RmwBroadcast,
}

impl TrafficClass {
    /// All classes, indexable for the counter arrays.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Request,
        TrafficClass::Response,
        TrafficClass::Invalidation,
        TrafficClass::RmwBroadcast,
    ];

    fn index(self) -> usize {
        self as usize
    }
}

/// An in-flight message.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight<T> {
    deliver_at: Cycle,
    seq: u64,
    dst: usize,
    payload: T,
}

/// Event-queue network: messages are sent with [`Network::send`] and appear
/// from [`Network::deliver_ready`] once simulated time reaches their
/// delivery cycle.
#[derive(Debug, Clone)]
pub struct Network<T> {
    mesh: Mesh,
    queue: BinaryHeap<Reverse<(Cycle, u64)>>,
    messages: FastHashMap<u64, InFlight<T>>,
    next_seq: u64,
    /// Per-[`TrafficClass`] message counts (indexed by class — a map here
    /// would put two hash operations on every send of a 31-copy
    /// broadcast).
    sent_by_class: [u64; TrafficClass::ALL.len()],
    hops_by_class: [u64; TrafficClass::ALL.len()],
}

impl<T> Network<T> {
    /// Creates an empty network over the given mesh.
    pub fn new(mesh: Mesh) -> Self {
        Network {
            mesh,
            queue: BinaryHeap::new(),
            messages: FastHashMap::default(),
            next_seq: 0,
            sent_by_class: [0; TrafficClass::ALL.len()],
            hops_by_class: [0; TrafficClass::ALL.len()],
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Sends `payload` from `src` to `dst` at time `now`; returns the
    /// delivery cycle.
    pub fn send(
        &mut self,
        src: usize,
        dst: usize,
        payload: T,
        now: Cycle,
        class: TrafficClass,
    ) -> Cycle {
        let deliver_at = now + self.mesh.latency(src, dst);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse((deliver_at, seq)));
        self.messages.insert(
            seq,
            InFlight {
                deliver_at,
                seq,
                dst,
                payload,
            },
        );
        self.sent_by_class[class.index()] += 1;
        self.hops_by_class[class.index()] += self.mesh.hops(src, dst) as u64;
        deliver_at
    }

    /// Records a message in the traffic counters **without queueing it** —
    /// for messages whose timing is modeled analytically (e.g. broadcast
    /// acks whose worst-case round trip the sender already waits out) but
    /// whose network cost must still be accounted.
    pub fn account(&mut self, src: usize, dst: usize, class: TrafficClass) {
        self.sent_by_class[class.index()] += 1;
        self.hops_by_class[class.index()] += self.mesh.hops(src, dst) as u64;
    }

    /// Broadcasts `payload` to every node except `src` (cloning it), at
    /// time `now`; returns the cycle by which all copies have arrived.
    pub fn broadcast(&mut self, src: usize, payload: T, now: Cycle, class: TrafficClass) -> Cycle
    where
        T: Clone,
    {
        let mut done = now;
        for dst in 0..self.mesh.num_nodes() {
            if dst != src {
                done = done.max(self.send(src, dst, payload.clone(), now, class));
            }
        }
        done
    }

    /// Pops every message whose delivery time is `<= now`, in delivery
    /// order, as `(dst, payload)` pairs.
    pub fn deliver_ready(&mut self, now: Cycle) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        while let Some(&Reverse((t, seq))) = self.queue.peek() {
            if t > now {
                break;
            }
            self.queue.pop();
            let m = self
                .messages
                .remove(&seq)
                .expect("queued message has a body");
            debug_assert_eq!(m.deliver_at, t);
            debug_assert_eq!(m.seq, seq);
            out.push((m.dst, m.payload));
        }
        out
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.messages.len()
    }

    /// Delivery cycle of the earliest in-flight message, if any — the wake
    /// event a cycle-skipping simulator must arm so no delivery happens on
    /// a skipped cycle.
    pub fn next_delivery(&self) -> Option<Cycle> {
        self.queue.peek().map(|&Reverse((t, _))| t)
    }

    /// Messages sent so far, by class.
    pub fn sent(&self, class: TrafficClass) -> u64 {
        self.sent_by_class[class.index()]
    }

    /// Total messages sent across all classes.
    pub fn total_sent(&self) -> u64 {
        self.sent_by_class.iter().sum()
    }

    /// Link traversals (hop count) accumulated per class — the paper's
    /// network-traffic metric for quantifying broadcast overhead.
    pub fn hop_traffic(&self, class: TrafficClass) -> u64 {
        self.hops_by_class[class.index()]
    }

    /// Total hop traffic across classes.
    pub fn total_hop_traffic(&self) -> u64 {
        self.hops_by_class.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::paper_32())
    }

    #[test]
    fn paper_config_geometry() {
        let m = mesh();
        assert_eq!(m.num_nodes(), 32);
        assert_eq!(m.coords(0), (0, 0));
        assert_eq!(m.coords(7), (7, 0));
        assert_eq!(m.coords(8), (0, 1));
        assert_eq!(m.coords(31), (7, 3));
    }

    #[test]
    fn hops_are_manhattan_and_symmetric() {
        let m = mesh();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 7), 7);
        assert_eq!(m.hops(0, 31), 10);
        for (a, b) in [(0, 5), (3, 28), (12, 19)] {
            assert_eq!(m.hops(a, b), m.hops(b, a));
        }
    }

    #[test]
    fn latency_scales_with_hops() {
        let m = mesh();
        // self-send: one router traversal
        assert_eq!(m.latency(0, 0), 4);
        // one hop: injection router + (link + router)
        assert_eq!(m.latency(0, 1), 4 + 5);
        assert_eq!(m.latency(0, 31), 4 + 10 * 5);
    }

    #[test]
    fn triangle_inequality() {
        let m = mesh();
        for a in 0..32 {
            for b in 0..32 {
                for c in [0usize, 13, 31] {
                    assert!(m.hops(a, b) <= m.hops(a, c) + m.hops(c, b));
                }
            }
        }
    }

    #[test]
    fn broadcast_latency_is_max_pairwise() {
        let m = mesh();
        let expect = (1..32).map(|n| m.latency(0, n)).max().unwrap();
        assert_eq!(m.broadcast_latency(0), expect);
        // a central node reaches everyone faster than a corner
        assert!(m.broadcast_latency(11) < m.broadcast_latency(0));
        // ack round-trip is at most double the one-way broadcast
        assert!(m.broadcast_ack_latency(0) <= 2 * m.broadcast_latency(0));
        assert!(m.broadcast_ack_latency(0) >= m.broadcast_latency(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_bounds_checked() {
        let _ = mesh().coords(32);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_rejected() {
        let _ = Mesh::new(MeshConfig {
            width: 0,
            height: 4,
            link_latency: 1,
            router_latency: 4,
        });
    }

    #[test]
    fn network_delivers_in_time_order() {
        let mut net: Network<&'static str> = Network::new(mesh());
        assert_eq!(net.next_delivery(), None);
        let t_far = net.send(0, 31, "far", 0, TrafficClass::Request);
        let t_near = net.send(0, 1, "near", 0, TrafficClass::Request);
        assert!(t_near < t_far);
        assert_eq!(net.in_flight(), 2);
        assert_eq!(net.next_delivery(), Some(t_near));
        // nothing ready before the near message's time
        assert!(net.deliver_ready(t_near - 1).is_empty());
        let ready = net.deliver_ready(t_near);
        assert_eq!(ready, vec![(1, "near")]);
        assert_eq!(net.next_delivery(), Some(t_far));
        let ready = net.deliver_ready(t_far);
        assert_eq!(ready, vec![(31, "far")]);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.next_delivery(), None);
    }

    #[test]
    fn broadcast_reaches_all_but_source() {
        let mut net: Network<u64> = Network::new(mesh());
        let done = net.broadcast(5, 42, 100, TrafficClass::RmwBroadcast);
        assert_eq!(net.sent(TrafficClass::RmwBroadcast), 31);
        let delivered = net.deliver_ready(done);
        assert_eq!(delivered.len(), 31);
        assert!(delivered.iter().all(|&(dst, v)| dst != 5 && v == 42));
    }

    #[test]
    fn traffic_accounting_by_class() {
        let mut net: Network<()> = Network::new(mesh());
        net.send(0, 31, (), 0, TrafficClass::Request);
        net.send(0, 1, (), 0, TrafficClass::Invalidation);
        net.send(0, 1, (), 0, TrafficClass::Invalidation);
        assert_eq!(net.sent(TrafficClass::Request), 1);
        assert_eq!(net.sent(TrafficClass::Invalidation), 2);
        assert_eq!(net.sent(TrafficClass::Response), 0);
        assert_eq!(net.total_sent(), 3);
        assert_eq!(net.hop_traffic(TrafficClass::Request), 10);
        assert_eq!(net.hop_traffic(TrafficClass::Invalidation), 2);
        assert_eq!(net.total_hop_traffic(), 12);
    }
}
