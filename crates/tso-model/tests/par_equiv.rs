//! Equivalence of the parallel root-split engine ([`tso_model::par`]),
//! the memoized verdict cache ([`tso_model::cache`]), and the sequential
//! streaming engine — the reference implementation.
//!
//! The contract: parallelism and memoization are *observationally
//! invisible*. At every worker count the parallel engine must yield the
//! identical execution **sequence** (not just set), the identical outcome
//! set, the identical early-exit verdicts, and — because the root split
//! counts the top-of-tree decisions exactly once — identical decision
//! stats (`nodes`/`pruned`/`complete`/`valid`). The cache must return
//! exactly `allowed_outcomes` for every program, including
//! thread-permuted and address-renamed duplicates that share one entry.
//!
//! Checked over the full [`litmus::classic`] and [`litmus::paper`]
//! corpora, the generated families with a seeded random tail, and
//! proptest-generated random programs, at 1, 2, and 8 workers.

use proptest::prelude::*;
use rmw_types::{Addr, Atomicity, RmwKind, Value};
use std::ops::ControlFlow;
use tso_model::{
    allowed_outcomes, allowed_outcomes_cached, allowed_outcomes_par_with_stats,
    for_each_valid_execution, outcome_allowed, outcome_allowed_par, valid_executions,
    valid_executions_par, CandidateExecution, Instr, Program, SearchStats,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Asserts the parallel engine reproduces the sequential engine on one
/// program, at every worker count.
fn assert_parallel_matches_sequential(name: &str, p: &Program) {
    let seq_outcomes = allowed_outcomes(p);
    let seq_execs: Vec<Vec<Value>> = valid_executions(p)
        .iter()
        .map(CandidateExecution::read_values)
        .collect();
    let seq_stats: SearchStats = for_each_valid_execution(p, |_| ControlFlow::Continue(()));

    for workers in WORKER_COUNTS {
        let (par_outcomes, par_stats) = allowed_outcomes_par_with_stats(p, workers);
        assert_eq!(
            par_outcomes, seq_outcomes,
            "{name}: outcome sets differ at {workers} workers"
        );
        assert_eq!(
            par_stats.nodes, seq_stats.nodes,
            "{name}: node counts differ at {workers} workers"
        );
        assert_eq!(
            par_stats.pruned, seq_stats.pruned,
            "{name}: prune counts differ at {workers} workers"
        );
        assert_eq!(
            par_stats.complete, seq_stats.complete,
            "{name}: leaf counts differ at {workers} workers"
        );
        assert_eq!(
            par_stats.valid, seq_stats.valid,
            "{name}: valid counts differ at {workers} workers"
        );
        assert!(!par_stats.stopped_early, "{name}: no early exit requested");

        let par_execs: Vec<Vec<Value>> = valid_executions_par(p, workers)
            .iter()
            .map(CandidateExecution::read_values)
            .collect();
        assert_eq!(
            par_execs, seq_execs,
            "{name}: execution sequence differs at {workers} workers"
        );

        // Early-exit verdicts: every observed outcome is found, an
        // impossible one is not.
        for o in seq_outcomes.iter().take(4) {
            let target = o.read_values();
            assert!(
                outcome_allowed_par(p, workers, |rv| rv == target),
                "{name}: {target:?} lost at {workers} workers"
            );
        }
        let absent: Vec<Value> = vec![u64::MAX; p.num_reads()];
        assert_eq!(
            outcome_allowed_par(p, workers, |rv| rv == absent),
            outcome_allowed(p, |rv| rv == absent),
            "{name}: impossible-outcome verdict differs at {workers} workers"
        );
    }

    // The memoized cache answers with the same set as the direct search.
    let cached = allowed_outcomes_cached(p);
    assert_eq!(
        cached.outcomes, seq_outcomes,
        "{name}: cached outcome set differs"
    );
}

#[test]
fn classic_corpus_parallel_matches_sequential() {
    for test in litmus::classic::all() {
        assert_parallel_matches_sequential(&test.name, &test.program);
    }
}

#[test]
fn paper_corpus_parallel_matches_sequential() {
    for test in litmus::paper::all() {
        assert_parallel_matches_sequential(&test.name, &test.program);
    }
}

#[test]
fn generated_corpus_parallel_matches_sequential() {
    // Every generated family instance plus a seeded random tail (the tail
    // is capped to keep the debug-mode suite fast; the full 460-test tail
    // runs through the same engines in the release-mode harness jobs).
    for test in litmus::gen::generated_corpus(litmus::gen::DEFAULT_SEED, 48) {
        assert_parallel_matches_sequential(&test.name, &test.program);
    }
}

#[test]
fn corpora_verdicts_survive_parallelism_and_memoization() {
    // The litmus verdicts themselves now ride on the cache (and, on
    // multi-core hosts, the parallel engine); every expectation in both
    // hand-written corpora must still hold — twice, so the second pass is
    // all cache hits.
    for _ in 0..2 {
        let mut tests = litmus::classic::all();
        tests.extend(litmus::paper::all());
        let failures = litmus::run_all(&tests);
        assert!(failures.is_empty(), "corpus failures: {failures:?}");
    }
}

#[test]
fn permuted_corpus_tests_share_cache_entries_without_changing_answers() {
    // Reverse the thread order of every classic test: the canonical
    // fingerprint must match the original's, and the (remapped) outcome
    // set must equal a direct search on the permuted program.
    for test in litmus::classic::all() {
        let p = &test.program;
        let mut reversed = Program::new();
        let threads: Vec<Vec<Instr>> = p.iter().map(|(_, instrs)| instrs.to_vec()).collect();
        for t in threads.into_iter().rev() {
            reversed.add_thread(t);
        }
        assert_eq!(
            p.canonical_fingerprint(),
            reversed.canonical_fingerprint(),
            "{}: thread reversal must not change the canonical class",
            test.name
        );
        assert_eq!(
            allowed_outcomes_cached(&reversed).outcomes,
            allowed_outcomes(&reversed),
            "{}: cached set wrong for the permuted sibling",
            test.name
        );
    }
}

/// Generates a small random instruction.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u64..3).prop_map(|a| Instr::Read(Addr(a))),
        ((0u64..3), (1u64..3)).prop_map(|(a, v)| Instr::Write(Addr(a), v)),
        ((0u64..3), (0usize..3)).prop_map(|(a, t)| Instr::Rmw {
            addr: Addr(a),
            kind: RmwKind::FetchAndAdd(1),
            atomicity: Atomicity::ALL[t],
        }),
        Just(Instr::Fence),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    let thread = proptest::collection::vec(arb_instr(), 1..4);
    proptest::collection::vec(thread, 1..4).prop_map(|threads| {
        let mut p = Program::new();
        for t in threads {
            p.add_thread(t);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_programs_parallel_matches_sequential(p in arb_program()) {
        assert_parallel_matches_sequential("random", &p);
    }

    #[test]
    fn random_programs_cache_agrees_under_renaming(p in arb_program()) {
        // Shift every address by a constant: same canonical class, same
        // remapped answers.
        let mut shifted = Program::new();
        for (_, instrs) in p.iter() {
            let moved: Vec<Instr> = instrs.iter().map(|&i| match i {
                Instr::Read(a) => Instr::Read(Addr(a.0 + 11)),
                Instr::Write(a, v) => Instr::Write(Addr(a.0 + 11), v),
                Instr::Rmw { addr, kind, atomicity } =>
                    Instr::Rmw { addr: Addr(addr.0 + 11), kind, atomicity },
                Instr::Fence => Instr::Fence,
            }).collect();
            shifted.add_thread(moved);
        }
        prop_assert_eq!(p.canonical_fingerprint(), shifted.canonical_fingerprint());
        prop_assert_eq!(
            allowed_outcomes_cached(&shifted).outcomes,
            allowed_outcomes(&shifted)
        );
    }
}
