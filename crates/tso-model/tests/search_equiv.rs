//! Equivalence of the streaming, pruned search engine and the legacy
//! materializing enumerator.
//!
//! The contract of [`tso_model::search`] is that pruning never changes the
//! answer: the executions it yields are exactly the valid ones among
//! `enumerate_candidates(p)`. This suite checks that on
//!
//! * the full [`litmus::classic`] and [`litmus::paper`] corpora (every
//!   program the repo uses to reproduce the paper's Table 1 verdicts), and
//! * proptest-generated random programs mixing reads, writes, RMWs of all
//!   three atomicity types, and fences.
//!
//! "Agree" is stronger than matching verdicts: the *full outcome sets*
//! (read values and final memory) must be equal, and the early-exit
//! variant must agree with set membership for every target.

use proptest::prelude::*;
use rmw_types::{Addr, Atomicity, RmwKind, Value};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use tso_model::{
    allowed_outcomes, check_validity, enumerate_candidates, for_each_valid_execution,
    outcome_allowed, Instr, Outcome, Program,
};

/// Asserts full agreement between the two engines on one program.
fn assert_engines_agree(name: &str, p: &Program) {
    // Reference semantics, materialized once: filter by `check_validity`.
    let legacy_valid: Vec<_> = enumerate_candidates(p)
        .into_iter()
        .filter(|c| check_validity(c).is_valid())
        .collect();
    let legacy: BTreeSet<Outcome> = legacy_valid.iter().map(Outcome::of_execution).collect();
    let streaming = allowed_outcomes(p);
    assert_eq!(
        streaming, legacy,
        "{name}: streaming and legacy outcome sets differ"
    );

    // Streaming visits each valid execution with a per-execution witness;
    // re-check validity independently and count.
    let mut visited = 0usize;
    for_each_valid_execution(p, |exec| {
        assert!(
            check_validity(exec).is_valid(),
            "{name}: streaming yielded an invalid execution"
        );
        visited += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(
        visited,
        legacy_valid.len(),
        "{name}: streaming visited a different number of valid executions"
    );

    // The early-exit variant agrees with set membership on every observed
    // read-value vector (and on one vector that is not in the set).
    for o in &legacy {
        let target = o.read_values();
        assert!(
            outcome_allowed(p, |rv| rv == target),
            "{name}: outcome {target:?} in the set but not 'allowed'"
        );
    }
    let absent: Vec<Value> = vec![u64::MAX; p.num_reads()];
    if !legacy.iter().any(|o| o.read_values() == absent) {
        assert!(
            !outcome_allowed(p, |rv| rv == absent),
            "{name}: impossible outcome reported allowed"
        );
    }
}

#[test]
fn classic_corpus_engines_agree() {
    for test in litmus::classic::all() {
        assert_engines_agree(&test.name, &test.program);
    }
}

#[test]
fn paper_corpus_engines_agree() {
    for test in litmus::paper::all() {
        assert_engines_agree(&test.name, &test.program);
    }
}

#[test]
fn corpora_verdicts_unchanged_by_streaming() {
    // The litmus verdicts themselves ride on the streaming engine; every
    // expectation in both corpora must still hold.
    let mut tests = litmus::classic::all();
    tests.extend(litmus::paper::all());
    let failures = litmus::run_all(&tests);
    assert!(failures.is_empty(), "corpus failures: {failures:?}");
}

/// Generates a small random instruction.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u64..2).prop_map(|a| Instr::Read(Addr(a))),
        ((0u64..2), (1u64..3)).prop_map(|(a, v)| Instr::Write(Addr(a), v)),
        ((0u64..2), (0usize..3)).prop_map(|(a, t)| Instr::Rmw {
            addr: Addr(a),
            kind: RmwKind::FetchAndAdd(1),
            atomicity: Atomicity::ALL[t],
        }),
        Just(Instr::Fence),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    let thread = proptest::collection::vec(arb_instr(), 1..4);
    proptest::collection::vec(thread, 1..3).prop_map(|threads| {
        let mut p = Program::new();
        for t in threads {
            p.add_thread(t);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_engines_agree(p in arb_program()) {
        assert_engines_agree("random", &p);
    }
}
