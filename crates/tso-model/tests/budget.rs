//! Search-budget integration: exhausted budgets return explicit unknown
//! answers and never poison any cache tier; unhit budgets are
//! observationally invisible.
//!
//! The budget slot, verdict cache, and certificate cache are process-wide,
//! so every test here serializes on one mutex and uses programs made
//! unique by written values.

use rmw_types::{Addr, Atomicity, RmwKind};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use tso_model::cache::{self, VerdictStore};
use tso_model::{
    allowed_outcomes, allowed_outcomes_cached, for_each_valid_execution, set_budget, take_budget,
    Outcome, Program, ProgramBuilder, SearchBudget, SearchStats,
};

const X: Addr = Addr(0);
const Y: Addr = Addr(1);

fn budget_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A panicking holder poisons the mutex but leaves nothing corrupt.
    match LOCK.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A Dekker-like shape big enough that even its pruned search explores
/// thousands of decision nodes — room for a budget to bite mid-flight.
fn deep_program(tag: u64) -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..2u64 {
        let mine = Addr(i);
        let other = Addr((i + 1) % 2);
        let mut t = b.thread();
        for k in 1..=3u64 {
            t.write(mine, tag + k).read(other);
        }
    }
    b.build()
}

fn small_program(tag: u64) -> Program {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 7000 + tag).read(Y);
    b.thread().write(Y, 8000 + tag).read(X);
    b.build()
}

#[derive(Default)]
struct CountingStore {
    saves: AtomicU64,
    loads: AtomicU64,
}

impl VerdictStore for CountingStore {
    fn load(&self, _key: &[u64]) -> Option<(BTreeSet<Outcome>, SearchStats)> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        None
    }
    fn save(
        &self,
        _key: &[u64],
        _fingerprint: u64,
        _outcomes: &BTreeSet<Outcome>,
        _stats: &SearchStats,
    ) {
        self.saves.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn exhausted_budget_returns_unknown_and_poisons_nothing() {
    let _guard = budget_lock();
    let p = deep_program(100_000);
    let full = allowed_outcomes(&p);

    let store = std::sync::Arc::new(CountingStore::default());
    cache::set_store(std::sync::Arc::clone(&store) as std::sync::Arc<dyn VerdictStore>);
    set_budget(SearchBudget {
        max_nodes: Some(10),
        max_time: None,
    });

    let truncated = allowed_outcomes_cached(&p);
    assert!(truncated.unknown, "a 10-node budget must exhaust");
    assert!(truncated.stats.budget_exhausted);
    assert!(truncated.stats.stopped_early);
    assert!(!truncated.hit);
    assert!(
        truncated.outcomes.is_subset(&full),
        "truncated answers are sound subsets"
    );
    assert_eq!(
        store.saves.load(Ordering::Relaxed),
        0,
        "a truncated answer must never reach the verdict store"
    );

    // Still budgeted: the cache was not poisoned, so the query recomputes
    // (and exhausts again) instead of serving the truncated set as a hit.
    let before = cache::counters();
    let again = allowed_outcomes_cached(&p);
    let after = cache::counters();
    assert!(again.unknown);
    assert!(!again.hit, "truncated answers must not become cache hits");
    assert!(after.invocations > before.invocations, "the search re-ran");

    // Budget lifted: the same query now completes, matches the direct
    // engine, and is cached + persisted like any normal miss.
    take_budget();
    let complete = allowed_outcomes_cached(&p);
    assert!(!complete.unknown);
    assert!(!complete.stats.budget_exhausted);
    assert_eq!(complete.outcomes, full);
    assert!(store.saves.load(Ordering::Relaxed) >= 1);
    let warm = allowed_outcomes_cached(&p);
    assert!(warm.hit, "the complete answer is cached normally");
    cache::take_store();
}

#[test]
fn exhausted_budget_records_no_prefix_certificate() {
    let _guard = budget_lock();
    let mk = |a: Atomicity| {
        let mut b = ProgramBuilder::new();
        let mut t = b.thread();
        t.rmw(X, RmwKind::FetchAndAdd(200_000), a);
        for k in 1..=2u64 {
            t.write(X, 200_000 + k).read(Y);
        }
        let mut t = b.thread();
        for k in 1..=2u64 {
            t.write(Y, 200_100 + k).read(X);
        }
        b.build()
    };
    set_budget(SearchBudget {
        max_nodes: Some(5),
        max_time: None,
    });
    let before = tso_model::prefix::counters();
    let truncated = allowed_outcomes_cached(&mk(Atomicity::Type1));
    let after = tso_model::prefix::counters();
    assert!(truncated.unknown);
    assert_eq!(
        after.stored, before.stored,
        "a truncated search must not certify its incomplete leaf set"
    );
    take_budget();

    // The atomicity sibling cannot replay a (nonexistent) truncated cert:
    // it runs a full search and matches the direct engine.
    let sibling = mk(Atomicity::Type3);
    let complete = allowed_outcomes_cached(&sibling);
    assert!(!complete.unknown);
    assert_eq!(complete.outcomes, allowed_outcomes(&sibling));
}

#[test]
fn unhit_budget_is_bit_identical_to_no_budget() {
    let _guard = budget_lock();
    let p = small_program(1);
    let reference = allowed_outcomes(&p);
    let seq_stats = for_each_valid_execution(&p, |_| ControlFlow::Continue(()));

    set_budget(SearchBudget {
        max_nodes: Some(u64::MAX),
        max_time: Some(Duration::from_secs(3600)),
    });
    let budgeted = allowed_outcomes_cached(&p);
    take_budget();

    assert!(!budgeted.unknown);
    assert!(!budgeted.stats.budget_exhausted);
    assert_eq!(budgeted.outcomes, reference);
    assert_eq!(budgeted.stats.nodes, seq_stats.nodes);
    assert_eq!(budgeted.stats.pruned, seq_stats.pruned);
    assert_eq!(budgeted.stats.complete, seq_stats.complete);
    assert_eq!(budgeted.stats.valid, seq_stats.valid);

    // And the committed entry serves un-budgeted queries as a plain hit.
    let warm = allowed_outcomes_cached(&p);
    assert!(warm.hit);
    assert_eq!(warm.stats, budgeted.stats);
}

#[test]
fn zero_deadline_exhausts_deep_searches() {
    let _guard = budget_lock();
    let p = deep_program(300_000);
    set_budget(SearchBudget {
        max_nodes: None,
        max_time: Some(Duration::ZERO),
    });
    let truncated = allowed_outcomes_cached(&p);
    take_budget();
    assert!(
        truncated.unknown,
        "an already-expired deadline must exhaust a multi-thousand-node search"
    );

    // Unknown never sticks: the next (un-budgeted) query is complete.
    let complete = allowed_outcomes_cached(&p);
    assert!(!complete.unknown);
    assert_eq!(complete.outcomes, allowed_outcomes(&p));
}

#[test]
fn an_unlimited_budget_is_ignored_entirely() {
    let _guard = budget_lock();
    let p = small_program(2);
    set_budget(SearchBudget::default());
    let answer = allowed_outcomes_cached(&p);
    take_budget();
    assert!(!answer.unknown);
    assert_eq!(answer.outcomes, allowed_outcomes(&p));
}
