//! Property tests for the axiomatic model.
//!
//! Two global sanity properties:
//!
//! 1. **SC soundness**: every sequentially-consistent interleaving of a
//!    program is a TSO-allowed behaviour (TSO is weaker than SC).
//! 2. **Atomicity monotonicity**: weakening every RMW's atomicity
//!    (type-1 → type-2 → type-3) only *adds* allowed outcomes.

use proptest::prelude::*;
use rmw_types::{Addr, Atomicity, RmwKind, Value};
use std::collections::BTreeSet;
use tso_model::{allowed_outcomes, Instr, Program};

/// A reference SC interpreter: executes `program` under the interleaving
/// chosen by `schedule` (a sequence of thread indices), returning the read
/// values in `(thread, po)` order. RMWs execute atomically.
fn run_sc(program: &Program, schedule: &[usize]) -> Option<Vec<Value>> {
    let n = program.num_threads();
    let mut pc = vec![0usize; n];
    let mut mem = std::collections::BTreeMap::<Addr, Value>::new();
    // reads recorded per (thread, po) then flattened
    let mut reads: Vec<Vec<Value>> = vec![Vec::new(); n];
    let mut steps = 0usize;
    let mut sched_iter = schedule.iter().copied().cycle();
    let total: usize = (0..n)
        .map(|t| program.thread(rmw_types::ThreadId(t)).len())
        .sum();
    while steps < total {
        // pick next runnable thread from the schedule
        let mut tries = 0;
        let t = loop {
            let t = sched_iter.next()?;
            let t = t % n;
            if pc[t] < program.thread(rmw_types::ThreadId(t)).len() {
                break t;
            }
            tries += 1;
            if tries > schedule.len() * (n + 1) + 8 {
                // fall back to first runnable thread
                break (0..n).find(|&t| pc[t] < program.thread(rmw_types::ThreadId(t)).len())?;
            }
        };
        let instr = program.thread(rmw_types::ThreadId(t))[pc[t]];
        match instr {
            Instr::Read(a) => reads[t].push(*mem.get(&a).unwrap_or(&0)),
            Instr::Write(a, v) => {
                mem.insert(a, v);
            }
            Instr::Rmw { addr, kind, .. } => {
                let old = *mem.get(&addr).unwrap_or(&0);
                reads[t].push(old);
                mem.insert(addr, kind.apply(old));
            }
            Instr::Fence => {}
        }
        pc[t] += 1;
        steps += 1;
    }
    Some(reads.into_iter().flatten().collect())
}

/// Generates a small random program: 2 threads, up to 3 instructions each,
/// over 2 locations, with values in {1, 2}.
fn arb_instr(atomicity: Atomicity) -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u64..2).prop_map(|a| Instr::Read(Addr(a))),
        ((0u64..2), (1u64..3)).prop_map(|(a, v)| Instr::Write(Addr(a), v)),
        (0u64..2).prop_map(move |a| Instr::Rmw {
            addr: Addr(a),
            kind: RmwKind::FetchAndAdd(1),
            atomicity,
        }),
        Just(Instr::Fence),
    ]
}

fn arb_program(atomicity: Atomicity) -> impl Strategy<Value = Program> {
    let thread = proptest::collection::vec(arb_instr(atomicity), 1..3);
    proptest::collection::vec(thread, 2..3).prop_map(|threads| {
        let mut p = Program::new();
        for t in threads {
            p.add_thread(t);
        }
        p
    })
}

/// Rewrites every RMW in the program to the given atomicity.
fn with_atomicity(p: &Program, atomicity: Atomicity) -> Program {
    p.with_atomicity(atomicity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every SC interleaving outcome is allowed by the TSO model, for every
    /// atomicity assignment of the RMWs.
    #[test]
    fn sc_outcomes_are_tso_allowed(
        p in arb_program(Atomicity::Type1),
        schedule in proptest::collection::vec(0usize..2, 1..12),
    ) {
        for atomicity in Atomicity::ALL {
            let p = with_atomicity(&p, atomicity);
            let Some(sc_reads) = run_sc(&p, &schedule) else { continue };
            let outs = allowed_outcomes(&p);
            prop_assert!(
                outs.iter().any(|o| o.read_values() == sc_reads),
                "SC outcome {sc_reads:?} missing from TSO({atomicity}) set"
            );
        }
    }

    /// Weakening atomicity never removes allowed outcomes.
    #[test]
    fn weaker_atomicity_is_monotone(p in arb_program(Atomicity::Type1)) {
        let o1: BTreeSet<Vec<Value>> = allowed_outcomes(&with_atomicity(&p, Atomicity::Type1))
            .into_iter().map(|o| o.read_values()).collect();
        let o2: BTreeSet<Vec<Value>> = allowed_outcomes(&with_atomicity(&p, Atomicity::Type2))
            .into_iter().map(|o| o.read_values()).collect();
        let o3: BTreeSet<Vec<Value>> = allowed_outcomes(&with_atomicity(&p, Atomicity::Type3))
            .into_iter().map(|o| o.read_values()).collect();
        prop_assert!(o1.is_subset(&o2), "type-1 ⊄ type-2: {:?}", o1.difference(&o2));
        prop_assert!(o2.is_subset(&o3), "type-2 ⊄ type-3: {:?}", o2.difference(&o3));
    }

    /// Inserting a fence at a random position never adds outcomes.
    #[test]
    fn fences_only_restrict(
        p in arb_program(Atomicity::Type2),
        tid in 0usize..2,
        pos_frac in 0.0f64..1.0,
    ) {
        let base: BTreeSet<Vec<Value>> = allowed_outcomes(&p)
            .into_iter().map(|o| o.read_values()).collect();
        let mut fenced = Program::new();
        for (t, instrs) in p.iter() {
            let mut v: Vec<Instr> = instrs.to_vec();
            if t.index() == tid {
                let pos = ((v.len() as f64) * pos_frac) as usize;
                v.insert(pos.min(v.len()), Instr::Fence);
            }
            fenced.add_thread(v);
        }
        let restricted: BTreeSet<Vec<Value>> = allowed_outcomes(&fenced)
            .into_iter().map(|o| o.read_values()).collect();
        prop_assert!(restricted.is_subset(&base),
            "fence added outcomes: {:?}", restricted.difference(&base));
    }

    /// The model never produces out-of-thin-air values: every read returns
    /// 0 or a value some write in the program stores.
    #[test]
    fn no_thin_air_values(p in arb_program(Atomicity::Type3)) {
        let mut possible: BTreeSet<Value> = BTreeSet::from([0]);
        // writes store 1..3; FAA(1) chains can reach at most num_rmws + 2
        let rmws = p.iter().flat_map(|(_, i)| i.iter())
            .filter(|i| matches!(i, Instr::Rmw { .. })).count() as u64;
        for v in 0..=(3 + rmws) {
            possible.insert(v);
        }
        for o in allowed_outcomes(&p) {
            for v in o.read_values() {
                prop_assert!(possible.contains(&v), "thin-air value {v}");
            }
        }
    }
}
