//! Prefix-certificate equivalence: the atomicity rewrites of one shape —
//! and thread/address permutations thereof — share an atomicity-masked
//! canonical key, so after the first rewrite pays its pruned search the
//! siblings replay its recorded leaf set. These tests pin the transfer
//! contract: a replayed answer is **bit-identical** (outcome set and the
//! full [`SearchStats`]) to a fresh sequential search of the queried
//! program.
//!
//! The verdict cache, certificate cache, and their counters are
//! process-wide, so every test serializes on one mutex and builds
//! programs with test-unique written values (canonicalization does not
//! quotient values, so the keys cannot collide across tests).

use rmw_types::{Addr, Atomicity, RmwKind};
use std::ops::ControlFlow;
use std::sync::{Mutex, MutexGuard, OnceLock};
use tso_model::{
    allowed_outcomes, allowed_outcomes_cached, for_each_valid_execution, CachedOutcomes, Program,
    ProgramBuilder, SearchStats,
};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A 2-thread Dekker-RMW shape whose written values carry `tag`, making
/// its canonical (and masked) key unique to the calling test.
fn dekker_rmw(rounds: usize, atomicity: Atomicity, tag: u64) -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..2u64 {
        let mine = Addr(i);
        let other = Addr((i + 1) % 2);
        let mut t = b.thread();
        for k in 1..=rounds as u64 {
            t.rmw(mine, RmwKind::FetchAndAdd(tag + k), atomicity)
                .read(other);
        }
    }
    b.build()
}

/// The reference the certificate tier must reproduce exactly: outcome set
/// and stats of a plain sequential search.
fn sequential_reference(
    p: &Program,
) -> (std::collections::BTreeSet<tso_model::Outcome>, SearchStats) {
    (
        allowed_outcomes(p),
        for_each_valid_execution(p, |_| ControlFlow::<()>::Continue(())),
    )
}

/// Asserts `got` answered `p` with a certificate replay whose outcome set
/// and stats match a fresh sequential search bit-for-bit.
fn assert_replay_matches_sequential(name: &str, p: &Program, got: &CachedOutcomes) {
    assert!(!got.hit, "{name}: expected a verdict-cache miss");
    assert!(got.prefix_hit, "{name}: expected a certificate replay");
    assert!(!got.split, "{name}: a replay never fans out");
    let (outcomes, stats) = sequential_reference(p);
    assert_eq!(got.outcomes, outcomes, "{name}: outcome sets differ");
    assert_eq!(got.stats, stats, "{name}: replayed stats not bit-identical");
}

#[test]
fn atomicity_siblings_replay_the_first_rewrites_certificate() {
    let _guard = lock();
    for rounds in 1..=2 {
        let tag = 0x9100 + rounds as u64 * 16;
        let first = dekker_rmw(rounds, Atomicity::Type1, tag);
        let seeded = allowed_outcomes_cached(&first);
        assert!(
            !seeded.hit && !seeded.prefix_hit,
            "first rewrite pays the search"
        );
        let (outcomes, stats) = sequential_reference(&first);
        assert_eq!(seeded.outcomes, outcomes);
        assert_eq!(
            seeded.stats, stats,
            "the recording search reports sequential stats"
        );

        for atomicity in [Atomicity::Type2, Atomicity::Type3] {
            let sibling = dekker_rmw(rounds, atomicity, tag);
            let got = allowed_outcomes_cached(&sibling);
            assert_replay_matches_sequential(
                &format!("rounds={rounds} {atomicity}"),
                &sibling,
                &got,
            );
        }
    }
}

#[test]
fn thread_and_address_permutations_still_hit_the_certificate() {
    let _guard = lock();
    let tag = 0x9900u64;

    // Asymmetric shape (different round counts per thread) so swapping
    // the threads is a genuine permutation, not an identity.
    let original = |atomicity: Atomicity| {
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(tag + 1), atomicity)
            .read(Addr(1))
            .rmw(Addr(0), RmwKind::FetchAndAdd(tag + 2), atomicity)
            .read(Addr(1));
        b.thread()
            .rmw(Addr(1), RmwKind::FetchAndAdd(tag + 3), atomicity)
            .read(Addr(0));
        b.build()
    };
    // Threads swapped AND addresses renamed (0↔7, 1↔3): canonicalization
    // erases both, so only the atomicity distinguishes the keys.
    let permuted = |atomicity: Atomicity| {
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(3), RmwKind::FetchAndAdd(tag + 3), atomicity)
            .read(Addr(7));
        b.thread()
            .rmw(Addr(7), RmwKind::FetchAndAdd(tag + 1), atomicity)
            .read(Addr(3))
            .rmw(Addr(7), RmwKind::FetchAndAdd(tag + 2), atomicity)
            .read(Addr(3));
        b.build()
    };

    let seeded = allowed_outcomes_cached(&original(Atomicity::Type1));
    assert!(
        !seeded.hit && !seeded.prefix_hit,
        "original Type1 pays the search"
    );

    // Same atomicity + permutation: the verdict cache already unifies
    // these — no certificate needed.
    let same = allowed_outcomes_cached(&permuted(Atomicity::Type1));
    assert!(same.hit, "permutation alone is a verdict-cache hit");
    assert_eq!(same.outcomes, allowed_outcomes(&permuted(Atomicity::Type1)));

    // Different atomicity + permutation: verdict fingerprints differ, the
    // masked keys do not — the certificate transfers across both.
    for atomicity in [Atomicity::Type2, Atomicity::Type3] {
        let p = permuted(atomicity);
        let got = allowed_outcomes_cached(&p);
        assert_replay_matches_sequential(&format!("permuted {atomicity}"), &p, &got);
    }
}

#[test]
fn replay_counters_attribute_the_saved_work() {
    let _guard = lock();
    let tag = 0xa500u64;
    let before = tso_model::prefix::counters();

    let first = dekker_rmw(2, Atomicity::Type2, tag);
    let seeded = allowed_outcomes_cached(&first);
    assert!(!seeded.prefix_hit);
    let sibling = dekker_rmw(2, Atomicity::Type3, tag);
    let got = allowed_outcomes_cached(&sibling);
    assert!(got.prefix_hit);

    let after = tso_model::prefix::counters();
    assert_eq!(
        after.queries - before.queries,
        2,
        "both misses reached the tier"
    );
    assert_eq!(after.hits - before.hits, 1, "exactly the sibling replayed");
    assert_eq!(
        after.stored - before.stored,
        1,
        "exactly the first recorded"
    );
    assert_eq!(
        after.nodes_saved - before.nodes_saved,
        got.stats.nodes,
        "the saved work is the sibling's whole attributed decision tree"
    );
    assert!(after.replayed_leaves > before.replayed_leaves);
}
