//! Pins the adaptive engine's cheap path: a verdict-cache miss on a
//! small shape must run sequentially on the calling thread — **zero**
//! worker threads spawned — even though the miss routes through the
//! certificate tier and the parallel entry points.
//!
//! This is deliberately the only test in its binary:
//! [`exec_pool::spawned_threads`] is a process-wide monotone counter, so
//! any sibling test that legitimately fans out would race the zero-delta
//! assertion.

use rmw_types::{Addr, Atomicity, RmwKind};
use tso_model::{allowed_outcomes, allowed_outcomes_cached, allowed_outcomes_par, ProgramBuilder};

#[test]
fn small_shape_misses_spawn_zero_pool_threads() {
    let baseline = exec_pool::spawned_threads();

    // A handful of small litmus-style shapes, each unique (values are not
    // quotiented by canonicalization) so every query is a genuine miss.
    for tag in 0..4u64 {
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(7000 + tag), Atomicity::Type2)
            .read(Addr(1));
        b.thread().write(Addr(1), 8000 + tag).read(Addr(0));
        let p = b.build();

        // Cache miss → certificate tier → recording adaptive search: all
        // of it predicted far below the split floor, so all sequential.
        let cached = allowed_outcomes_cached(&p);
        assert!(!cached.hit, "unique program must miss");
        assert!(!cached.split, "small shapes must not fan out");
        assert_eq!((cached.stats.tasks, cached.stats.workers), (1, 1));
        assert_eq!(cached.outcomes, allowed_outcomes(&p));

        // The explicit parallel entry point makes the same call: workers
        // are *requested*, but the adaptive policy declines them.
        let par = allowed_outcomes_par(&p, 8);
        assert_eq!(par, cached.outcomes);
    }

    assert_eq!(
        exec_pool::spawned_threads(),
        baseline,
        "a small-shape miss must never wake the worker pool"
    );
}
