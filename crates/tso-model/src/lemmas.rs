//! Machine-checkable forms of the paper's Lemmas 1–3 (§2.3–§2.5).
//!
//! The lemmas speak about *enforced* and *disallowed* orderings:
//!
//! * an ordering `a → b` is **enforced** in a candidate execution iff `a`
//!   precedes `b` in *every* valid `ghb`; equivalently, no choice of
//!   atomicity-induced edges makes `com ∪ ppo ∪ bar ∪ ato ∪ {b → a}`
//!   acyclic ([`ordering_enforced`]);
//! * an ordering `a → b` is **derivable** iff some choice of induced edges
//!   yields a relation whose transitive closure contains a path `a → b`
//!   ([`ordering_derivable`]). Lemma 2/3's "disallows the enforcement of
//!   `Ra → W1`" asserts that no such path can be committed without creating
//!   a cycle — i.e. `Ra → W1` is not derivable in any valid execution.
//!
//! The unit tests instantiate the exact scenarios of Figures 2, 6, 7 and 9.

use crate::event::EventId;
use crate::execution::CandidateExecution;
use crate::graph::DiGraph;
use crate::validity::check_validity;

/// True iff `a → b` holds in every valid `ghb` of this candidate.
///
/// Decided by refutation: if `com ∪ ppo ∪ bar ∪ ato ∪ {b → a}` is
/// satisfiable (some ato choice acyclic), a linearization with `b` before
/// `a` exists and the ordering is *not* enforced.
///
/// Returns `false` for invalid candidates (nothing is enforced in them).
pub fn ordering_enforced(exec: &CandidateExecution, a: EventId, b: EventId) -> bool {
    if !check_validity(exec).is_valid() {
        return false;
    }
    let mut base = constraint_graph(exec);
    base.add_edge(b.index(), a.index());
    all_solutions_exist(exec, base).is_empty()
}

/// True iff some valid `ato` choice yields a committed relation whose
/// transitive closure contains `a → b`.
pub fn ordering_derivable(exec: &CandidateExecution, a: EventId, b: EventId) -> bool {
    let base = constraint_graph(exec);
    all_solutions_exist(exec, base)
        .iter()
        .any(|g| g.transitive_closure().has_edge(a.index(), b.index()))
}

/// True iff the ordering `a → b` can be *imposed* on this candidate without
/// invalidating it: `com ∪ ppo ∪ bar ∪ ato ∪ {a → b}` is satisfiable.
///
/// This captures Lemma 1's argument for `Wa → R2`: a read between `Ra` and
/// `Wa` "can safely be moved after `Wa`" — i.e. enforcing `Wa → R2` never
/// eliminates a valid execution, so the RMW *behaves as if* that ordering
/// held.
pub fn ordering_consistent(exec: &CandidateExecution, a: EventId, b: EventId) -> bool {
    if !check_validity(exec).is_valid() {
        return false;
    }
    let mut base = constraint_graph(exec);
    base.add_edge(a.index(), b.index());
    !all_solutions_exist(exec, base).is_empty()
}

/// The fixed (non-ato) part of the `ghb` constraint: `com ∪ ppo ∪ bar`.
fn constraint_graph(exec: &CandidateExecution) -> DiGraph {
    let mut g = exec.com_graph();
    g.union_with(&exec.ppo_graph());
    g.union_with(&exec.bar_graph());
    g
}

/// Enumerates *all* acyclic solutions of the atomicity disjunctions over the
/// given base graph (exponential; litmus scale only).
fn all_solutions_exist(exec: &CandidateExecution, mut base: DiGraph) -> Vec<DiGraph> {
    struct D {
        m: EventId,
        ra: EventId,
        wa: EventId,
    }
    let mut disjuncts = Vec::new();
    for (_, ra, wa, link) in exec.rmws() {
        let ra_addr = exec.event(ra).addr;
        for e in exec.events() {
            if !e.is_mem() || e.id == ra || e.id == wa {
                continue;
            }
            if link
                .atomicity
                .forbids_between(e.is_write(), e.addr == ra_addr)
            {
                disjuncts.push(D { m: e.id, ra, wa });
            }
        }
    }

    fn go(graph: &mut DiGraph, ds: &[D], idx: usize, out: &mut Vec<DiGraph>) {
        if !graph.is_acyclic() {
            return;
        }
        let Some(d) = ds.get(idx) else {
            out.push(graph.clone());
            return;
        };
        for (u, v) in [(d.m, d.ra), (d.wa, d.m)] {
            let already = graph.has_edge(u.index(), v.index());
            if !already {
                graph.add_edge(u.index(), v.index());
            }
            go(graph, ds, idx + 1, out);
            if !already {
                graph.remove_edge(u.index(), v.index());
            }
        }
    }

    let mut out = Vec::new();
    go(&mut base, &disjuncts, 0, &mut out);
    out
}

/// Convenience: every *valid* candidate execution of a program, collected
/// through the streaming, pruned search (thin wrapper used by the lemma
/// tests — the lemma predicates themselves need random access to the set).
pub fn valid_candidates(program: &crate::program::Program) -> Vec<CandidateExecution> {
    crate::search::valid_executions(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RmwHalf;
    use crate::program::ProgramBuilder;
    use rmw_types::{Addr, Atomicity, RmwKind, ThreadId};

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);
    const Z: Addr = Addr(2);

    /// Builds `W(x,1); RMW(z); R(y)` on thread 0 (the W1–RMW–R2 pattern of
    /// Figures 2/6/9), with a second thread writing y so R2 has something
    /// external to read.
    fn w1_rmw_r2(atomicity: Atomicity) -> crate::program::Program {
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, 1)
            .rmw(Z, RmwKind::TestAndSet, atomicity)
            .read(Y);
        b.thread().write(Y, 1);
        b.build()
    }

    /// Event ids for (W1, Ra, Wa, R2) on thread 0.
    fn pattern_ids(c: &CandidateExecution) -> (EventId, EventId, EventId, EventId) {
        let t0 = Some(ThreadId(0));
        let mut w1 = None;
        let mut ra = None;
        let mut wa = None;
        let mut r2 = None;
        for e in c.events() {
            if e.tid != t0 {
                continue;
            }
            match (e.is_write(), e.rmw.map(|l| l.half)) {
                (true, None) => w1 = Some(e.id),
                (false, Some(RmwHalf::Read)) => ra = Some(e.id),
                (true, Some(RmwHalf::Write)) => wa = Some(e.id),
                (false, None) => r2 = Some(e.id),
                _ => {}
            }
        }
        (w1.unwrap(), ra.unwrap(), wa.unwrap(), r2.unwrap())
    }

    #[test]
    fn lemma1_type1_rmw_enforces_w1_ra_wa_r2_w1_r2() {
        // Lemma 1: a type-1 RMW between W1 and R2 enforces W1→Ra and
        // (transitively) W1→R2 (Fig. 2). The Wa→R2 part is observational:
        // a read between Ra and Wa can safely be moved after Wa, so the
        // ordering can always be imposed (consistent) and its converse can
        // never be derived.
        let p = w1_rmw_r2(Atomicity::Type1);
        let cands = valid_candidates(&p);
        assert!(!cands.is_empty());
        for c in &cands {
            let (w1, ra, wa, r2) = pattern_ids(c);
            assert!(ordering_enforced(c, w1, ra), "W1 → Ra must be enforced");
            assert!(ordering_enforced(c, w1, r2), "W1 → R2 must be enforced");
            assert!(
                ordering_consistent(c, wa, r2),
                "Wa → R2 must be imposable on every valid execution"
            );
            assert!(
                !ordering_derivable(c, r2, wa),
                "R2 → Wa must never be derivable under type-1"
            );
        }
    }

    #[test]
    fn lemma2_type2_rmw_enforces_none_of_the_lemma1_orderings() {
        // §2.4: a type-2 RMW does not explicitly enforce W1→Ra, Wa→R2 or
        // W1→R2 ...
        let p = w1_rmw_r2(Atomicity::Type2);
        let cands = valid_candidates(&p);
        assert!(!cands.is_empty());
        let mut some_unenforced = (false, false, false);
        for c in &cands {
            let (w1, ra, wa, r2) = pattern_ids(c);
            some_unenforced.0 |= !ordering_enforced(c, w1, ra);
            some_unenforced.1 |= !ordering_enforced(c, wa, r2);
            some_unenforced.2 |= !ordering_enforced(c, w1, r2);
        }
        assert!(some_unenforced.0, "W1 → Ra must not be globally enforced");
        assert!(some_unenforced.1, "Wa → R2 must not be globally enforced");
        assert!(some_unenforced.2, "W1 → R2 must not be globally enforced");
    }

    #[test]
    fn lemma2_type2_rmw_disallows_ra_w1_and_r2_wa() {
        // ... but disallows deriving Ra→W1 and R2→Wa (Lemma 2, Fig. 6/7).
        let p = w1_rmw_r2(Atomicity::Type2);
        for c in &valid_candidates(&p) {
            let (w1, ra, wa, r2) = pattern_ids(c);
            assert!(
                !ordering_derivable(c, ra, w1),
                "Ra → W1 must not be derivable:\n{}",
                c.pretty()
            );
            assert!(
                !ordering_derivable(c, r2, wa),
                "R2 → Wa must not be derivable:\n{}",
                c.pretty()
            );
        }
    }

    #[test]
    fn lemma3_type3_rmw_disallows_ra_w1_only() {
        // Lemma 3: type-3 disallows Ra→W1 but may allow R2→Wa (Fig. 9).
        let p = w1_rmw_r2(Atomicity::Type3);
        for c in &valid_candidates(&p) {
            let (w1, ra, _wa, _r2) = pattern_ids(c);
            assert!(
                !ordering_derivable(c, ra, w1),
                "Ra → W1 must not be derivable under type-3"
            );
        }
    }

    #[test]
    fn lemma3_r2_wa_derivable_under_type3_but_not_type2() {
        // The distinguishing scenario of Fig. 7/9: a reader thread gives us
        // R''(z) fr→ Wa(z), and R2(y) ghb→ R''(z) via that thread's ppo.
        // Under type-3, R''(z) may sit between Ra and Wa, so R2 → Wa can be
        // committed; under type-2 it cannot.
        fn scenario(atomicity: Atomicity) -> bool {
            let mut b = ProgramBuilder::new();
            b.thread()
                .write(X, 1)
                .rmw(Z, RmwKind::TestAndSet, atomicity)
                .read(Y);
            // Observer thread: W'(y) fence R''(z). The fence provides the
            // W' → R'' leg so that R2(y) fr→ W'(y) bar→ R''(z) fr→ Wa(z)
            // is a candidate derivation of R2 → Wa.
            b.thread().write(Y, 1).fence().read(Z);
            let p = b.build();
            let mut derivable = false;
            for c in &valid_candidates(&p) {
                let (_, _, wa, r2) = pattern_ids(c);
                derivable |= ordering_derivable(c, r2, wa);
            }
            derivable
        }
        assert!(
            scenario(Atomicity::Type3),
            "type-3 must allow deriving R2 → Wa in some execution"
        );
        assert!(
            !scenario(Atomicity::Type2),
            "type-2 must never derive R2 → Wa"
        );
    }

    #[test]
    fn enforced_is_false_for_invalid_candidates() {
        // Build a candidate that violates uniproc and check the guard.
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(X, 2).read(X);
        let p = b.build();
        let all = crate::execution::enumerate_candidates(&p);
        let invalid: Vec<_> = all
            .iter()
            .filter(|c| !check_validity(c).is_valid())
            .collect();
        assert!(!invalid.is_empty());
        for c in invalid {
            let e0 = c.events()[0].id;
            let e1 = c.events()[1].id;
            assert!(!ordering_enforced(c, e0, e1));
        }
    }

    #[test]
    fn type2_rmw_strongly_ordered_wrt_synchronizing_ops() {
        // §2.4 "Effect of implicitly ordered type-2 RMWs": with respect to a
        // conflicting write W'(z) that synchronizes with Ra (Ra fr→ W'),
        // W1 appears ordered before the RMW: W1 → W' in every valid ghb.
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, 1)
            .rmw(Z, RmwKind::TestAndSet, Atomicity::Type2)
            .read(Y);
        b.thread().write(Z, 7); // W'(z), conflicts with the RMW
        let p = b.build();
        for c in &valid_candidates(&p) {
            let (w1, ra, _, _) = pattern_ids(c);
            let wprime = c
                .events()
                .iter()
                .find(|e| e.tid == Some(ThreadId(1)) && e.is_write())
                .unwrap()
                .id;
            // Does Ra read from *before* W' (i.e. Ra fr→ W')?
            let ra_fr_wprime = c.fr_edges().contains(&(ra, wprime));
            if ra_fr_wprime {
                assert!(
                    ordering_enforced(c, w1, wprime),
                    "W1 must appear before the synchronizing W':\n{}",
                    c.pretty()
                );
            }
        }
    }
}
