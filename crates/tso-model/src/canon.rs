//! Symmetry reduction: canonical forms of programs under thread- and
//! address-renaming.
//!
//! The axiomatic model is blind to thread identity and to which concrete
//! [`Addr`] values a program uses: permuting the threads of a program and
//! bijectively renaming its addresses permutes the allowed outcome set in
//! the same way (reads reorder with their threads, final-memory entries
//! rename with their addresses) but changes nothing semantically — `ppo`,
//! `bar`, `po-loc`, the `ato` disjunctions, and the initial-value-0
//! convention are all symmetric in both. The generated litmus families
//! are riddled with such permutation-equivalent programs (scaled rings,
//! the three per-atomicity rewrites of RMW-free tests, random draws), so
//! the verdict cache ([`crate::cache`]) keys on the canonical form and
//! proves each equivalence class **once**.
//!
//! [`Program::canonicalize`] picks the canonical representative:
//!
//! * threads are permuted to minimize the serialized form — exhaustively
//!   for programs up to [`PERM_SEARCH_MAX_THREADS`] threads, identity
//!   order above (still sound: a coarser canonical form only misses
//!   dedup opportunities, it never conflates inequivalent programs);
//! * addresses are renamed to `0, 1, 2, …` in order of first appearance
//!   under that thread order;
//! * instruction values, RMW kinds, and atomicities are serialized
//!   verbatim — only thread order and address names are quotiented.
//!
//! The full canonical serialization (not its 64-bit
//! [`fingerprint`](Canonical::fingerprint)) is the cache key, so a hash
//! collision can never smuggle one program's verdict to another. The
//! [`Canonical`] value keeps both direction maps, letting callers
//! translate read indices and addresses between original and canonical
//! coordinates — [`Canonical::outcome_to_original`] is how the cache
//! hands back outcome sets in the caller's frame.

use crate::outcome::Outcome;
use crate::program::{Instr, Program};
use rmw_types::fasthash::FastHasher;
use rmw_types::{Addr, Atomicity, RmwKind, ThreadId};
use std::collections::BTreeMap;
use std::hash::Hasher as _;

/// Exhaustive thread-permutation search is bounded by this thread count
/// (7! = 5040 serializations); larger programs keep their thread order.
/// The bound covers every generated family in the corpus (≤ 7 threads).
pub const PERM_SEARCH_MAX_THREADS: usize = 7;

/// A program's canonical form with the coordinate maps back to the
/// original. Produced by [`Program::canonicalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonical {
    program: Program,
    key: Vec<u64>,
    fingerprint: u64,
    /// `perm[canonical thread position] = original ThreadId`.
    perm: Vec<ThreadId>,
    /// Original address → canonical address, sorted by original.
    addr_to_canon: Vec<(Addr, Addr)>,
    /// `read_map[original read index] = canonical read index`, both in
    /// the respective `(thread, po)` orders.
    read_map: Vec<usize>,
}

impl Canonical {
    /// The canonical representative program — what the cache actually
    /// searches.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// 64-bit fingerprint of the canonical serialization (for reports and
    /// diagnostics; the cache keys on the full serialization).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The collision-proof cache key: the canonical serialization itself.
    pub fn key(&self) -> &[u64] {
        &self.key
    }

    /// Maps a canonical-coordinate outcome back into the original
    /// program's frame: reads reorder through the inverse read map,
    /// memory entries rename through the inverse address map.
    pub fn outcome_to_original(&self, canonical: &Outcome) -> Outcome {
        let canon_reads = canonical.read_values();
        let reads = self
            .read_map
            .iter()
            .map(|&ci| canon_reads[ci])
            .collect::<Vec<_>>();
        let memory = canonical
            .final_memory()
            .iter()
            .map(|&(ca, v)| (self.addr_to_original(ca), v))
            .collect();
        Outcome::new(reads, memory)
    }

    /// Maps an original read-value vector into canonical order (the
    /// direction membership queries need).
    pub fn reads_to_canonical(&self, original: &[u64]) -> Vec<u64> {
        let mut canon = vec![0u64; original.len()];
        for (oi, &ci) in self.read_map.iter().enumerate() {
            canon[ci] = original[oi];
        }
        canon
    }

    /// Canonical name of an original address.
    pub fn addr_to_canonical(&self, addr: Addr) -> Addr {
        self.addr_to_canon
            .binary_search_by_key(&addr, |&(o, _)| o)
            .map(|i| self.addr_to_canon[i].1)
            .expect("address appears in the program")
    }

    /// Original name of a canonical address.
    pub fn addr_to_original(&self, canon: Addr) -> Addr {
        self.addr_to_canon
            .iter()
            .find(|&&(_, c)| c == canon)
            .map(|&(o, _)| o)
            .expect("canonical address came from this program")
    }

    /// `perm[canonical thread position] = original ThreadId`.
    pub fn thread_perm(&self) -> &[ThreadId] {
        &self.perm
    }

    /// The atomicity-masked canonical key: [`Canonical::key`] with every
    /// RMW's atomicity-rank word zeroed. See [`masked_key`].
    pub(crate) fn masked_key(&self) -> Vec<u64> {
        masked_key(&self.key)
    }
}

/// Zeroes the atomicity-rank word of every RMW instruction in a canonical
/// serialization, walking the word format structurally (values may be any
/// `u64`, so scanning for separators would be unsound).
///
/// Two canonical programs with equal masked keys are identical except for
/// per-RMW atomicity — and atomicity enters the search *only* through the
/// leaf-level `ato` disjunctions ([`crate::validity::solve_ato`]); the
/// `ppo`/`bar`/`po-loc`/dep graphs and hence every `ws`/`rf` decision,
/// prune, and complete leaf are atomicity-independent. Masked-key
/// equality is therefore exactly the soundness condition for sharing a
/// prefix certificate ([`crate::prefix`]) between programs.
///
/// For *uniform* atomicity rewrites (`Program::with_atomicity`, the
/// harness's per-test sweep) the canonical thread permutation is also
/// unaffected — every candidate serialization changes by the same rank
/// word substitutions, preserving the lexicographic minimum — so all
/// three rewrites of a test share one masked key. Mixed-atomicity
/// programs may canonicalize differently and miss sharing; that costs
/// performance only, never soundness.
pub(crate) fn masked_key(key: &[u64]) -> Vec<u64> {
    let mut out = key.to_vec();
    let mut i = 1; // skip the thread count
    while i < out.len() {
        debug_assert_eq!(out[i], u64::MAX, "expected thread separator");
        i += 1;
        let count = out[i] as usize;
        i += 1;
        for _ in 0..count {
            match out[i] {
                1 => i += 2, // Read: tag, addr
                2 => i += 3, // Write: tag, addr, value
                3 => {
                    // Rmw: tag, addr, kind, arg1, arg2, atomicity rank
                    out[i + 5] = 0;
                    i += 6;
                }
                4 => i += 1, // Fence: tag
                _ => unreachable!("malformed canonical key"),
            }
        }
    }
    out
}

impl Program {
    /// Canonicalizes the program under thread permutation and address
    /// renaming; see the module docs for the exact quotient.
    pub fn canonicalize(&self) -> Canonical {
        let n = self.num_threads();
        let identity: Vec<usize> = (0..n).collect();
        type Best = Option<(Vec<u64>, Vec<usize>, BTreeMap<Addr, Addr>)>;
        let mut best: Best = None;
        let consider = |perm: &[usize], best: &mut Option<_>| {
            let (key, addr_map) = serialize_under(self, perm);
            let better = match best {
                Some((best_key, _, _)) => key < *best_key,
                None => true,
            };
            if better {
                *best = Some((key, perm.to_vec(), addr_map));
            }
        };
        if n <= PERM_SEARCH_MAX_THREADS {
            let mut perm = identity;
            permute(&mut perm, 0, &mut |p| consider(p, &mut best));
        } else {
            consider(&identity, &mut best);
        }
        let (key, perm, addr_map) = best.expect("at least the identity permutation considered");

        let mut hasher = FastHasher::default();
        for &word in &key {
            hasher.write_u64(word);
        }
        let fingerprint = hasher.finish();

        // Rebuild the canonical program from the winning permutation.
        let mut canonical = Program::new();
        for &t in &perm {
            let instrs = self
                .thread(ThreadId(t))
                .iter()
                .map(|&i| rename_instr(i, &addr_map))
                .collect();
            canonical.add_thread(instrs);
        }

        // Original read index -> canonical read index: reads stay in po
        // order within their thread; threads move as blocks.
        let reads_per_thread: Vec<usize> = (0..n)
            .map(|t| thread_read_count(self.thread(ThreadId(t))))
            .collect();
        let mut canon_offset_of_original = vec![0usize; n];
        let mut offset = 0usize;
        for &t in &perm {
            canon_offset_of_original[t] = offset;
            offset += reads_per_thread[t];
        }
        let mut read_map = Vec::with_capacity(offset);
        for (t, &count) in reads_per_thread.iter().enumerate() {
            for j in 0..count {
                read_map.push(canon_offset_of_original[t] + j);
            }
        }

        Canonical {
            program: canonical,
            key,
            fingerprint,
            perm: perm.into_iter().map(ThreadId).collect(),
            addr_to_canon: addr_map.into_iter().collect(),
            read_map,
        }
    }

    /// The canonical fingerprint alone — a stable 64-bit identity shared
    /// by every thread-permuted / address-renamed variant of the program
    /// (up to the permutation-search bound).
    ///
    /// This is the cheap path consumers that only need the identity should
    /// take (the campaign driver computes one per generated test to decide
    /// `--shard i/n` membership): it runs the same minimum-serialization
    /// search as [`Program::canonicalize`] but skips rebuilding the
    /// canonical program and the coordinate maps.
    pub fn canonical_fingerprint(&self) -> u64 {
        let n = self.num_threads();
        let mut best: Option<Vec<u64>> = None;
        let mut consider = |perm: &[usize]| {
            let (key, _) = serialize_under(self, perm);
            let better = match &best {
                Some(b) => key < *b,
                None => true,
            };
            if better {
                best = Some(key);
            }
        };
        if n <= PERM_SEARCH_MAX_THREADS {
            let mut perm: Vec<usize> = (0..n).collect();
            permute(&mut perm, 0, &mut consider);
        } else {
            let identity: Vec<usize> = (0..n).collect();
            consider(&identity);
        }
        let key = best.expect("at least the identity permutation considered");
        let mut hasher = FastHasher::default();
        for &word in &key {
            hasher.write_u64(word);
        }
        hasher.finish()
    }
}

fn thread_read_count(instrs: &[Instr]) -> usize {
    instrs
        .iter()
        .filter(|i| matches!(i, Instr::Read(_) | Instr::Rmw { .. }))
        .count()
}

/// Serializes the program with threads in `perm` order and addresses
/// renamed by first appearance; returns the word stream and the rename map.
fn serialize_under(p: &Program, perm: &[usize]) -> (Vec<u64>, BTreeMap<Addr, Addr>) {
    let mut addr_map: BTreeMap<Addr, Addr> = BTreeMap::new();
    let mut next_addr = 0u64;
    let mut canon_of = |a: Addr, map: &mut BTreeMap<Addr, Addr>| -> u64 {
        map.entry(a)
            .or_insert_with(|| {
                let c = Addr(next_addr);
                next_addr += 1;
                c
            })
            .0
    };
    let mut words = Vec::with_capacity(p.num_instrs() * 4 + perm.len() + 1);
    words.push(perm.len() as u64);
    for &t in perm {
        let instrs = p.thread(ThreadId(t));
        words.push(u64::MAX); // unambiguous thread separator
        words.push(instrs.len() as u64);
        for &i in instrs {
            match i {
                Instr::Read(a) => {
                    words.push(1);
                    words.push(canon_of(a, &mut addr_map));
                }
                Instr::Write(a, v) => {
                    words.push(2);
                    words.push(canon_of(a, &mut addr_map));
                    words.push(v);
                }
                Instr::Rmw {
                    addr,
                    kind,
                    atomicity,
                } => {
                    words.push(3);
                    words.push(canon_of(addr, &mut addr_map));
                    let (k, a1, a2) = encode_kind(kind);
                    words.push(k);
                    words.push(a1);
                    words.push(a2);
                    words.push(atomicity_rank(atomicity));
                }
                Instr::Fence => words.push(4),
            }
        }
    }
    (words, addr_map)
}

fn rename_instr(i: Instr, addr_map: &BTreeMap<Addr, Addr>) -> Instr {
    match i {
        Instr::Read(a) => Instr::Read(addr_map[&a]),
        Instr::Write(a, v) => Instr::Write(addr_map[&a], v),
        Instr::Rmw {
            addr,
            kind,
            atomicity,
        } => Instr::Rmw {
            addr: addr_map[&addr],
            kind,
            atomicity,
        },
        Instr::Fence => Instr::Fence,
    }
}

fn encode_kind(kind: RmwKind) -> (u64, u64, u64) {
    match kind {
        RmwKind::TestAndSet => (0, 0, 0),
        RmwKind::FetchAndAdd(k) => (1, k, 0),
        RmwKind::CompareAndSwap { expected, new } => (2, expected, new),
        RmwKind::Exchange(v) => (3, v, 0),
    }
}

fn atomicity_rank(a: Atomicity) -> u64 {
    match a {
        Atomicity::Type1 => 1,
        Atomicity::Type2 => 2,
        Atomicity::Type3 => 3,
    }
}

/// Visits every permutation of `items` (Heap's-style recursive swap
/// enumeration; deterministic order).
fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k + 1 >= items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::allowed_outcomes;
    use crate::program::ProgramBuilder;
    use std::collections::BTreeSet;

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);
    const Z: Addr = Addr(2);

    fn sb(first: Addr, second: Addr) -> Program {
        let mut b = ProgramBuilder::new();
        b.thread().write(first, 1).read(second);
        b.thread().write(second, 1).read(first);
        b.build()
    }

    #[test]
    fn thread_permutation_shares_a_fingerprint() {
        // SB with its threads swapped is the same program to the model.
        let a = sb(X, Y);
        let mut b = ProgramBuilder::new();
        b.thread().write(Y, 1).read(X);
        b.thread().write(X, 1).read(Y);
        let b = b.build();
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
        assert_eq!(a.canonicalize().key(), b.canonicalize().key());
    }

    #[test]
    fn address_renaming_shares_a_fingerprint() {
        assert_eq!(
            sb(X, Y).canonical_fingerprint(),
            sb(Z, Addr(17)).canonical_fingerprint()
        );
    }

    #[test]
    fn distinct_programs_get_distinct_keys() {
        let a = sb(X, Y); // W x; R y  ‖  W y; R x
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(X); // same-location variant
        b.thread().write(Y, 1).read(Y);
        let b = b.build();
        assert_ne!(a.canonicalize().key(), b.canonicalize().key());
        // Values are NOT quotiented.
        let mut c = ProgramBuilder::new();
        c.thread().write(X, 2).read(Y);
        c.thread().write(Y, 1).read(X);
        let c = c.build();
        assert_ne!(a.canonicalize().key(), c.canonicalize().key());
    }

    #[test]
    fn outcome_mapping_round_trips_the_allowed_set() {
        // allowed(P) must equal the canonical set mapped back through the
        // coordinate maps — for a program where the permutation is
        // non-trivial (distinguishable threads).
        let mut b = ProgramBuilder::new();
        b.thread().read(Y).read(X);
        b.thread().write(X, 1).write(Y, 2);
        let p = b.build();
        let canon = p.canonicalize();
        let direct = allowed_outcomes(&p);
        let mapped: BTreeSet<Outcome> = allowed_outcomes(canon.program())
            .iter()
            .map(|o| canon.outcome_to_original(o))
            .collect();
        assert_eq!(direct, mapped);
    }

    #[test]
    fn reads_map_is_a_bijection_consistent_with_both_frames() {
        let mut b = ProgramBuilder::new();
        b.thread().read(Y); // 1 read
        b.thread().write(X, 1).read(X).read(Y); // 2 reads
        let p = b.build();
        let canon = p.canonicalize();
        let outs = allowed_outcomes(&p);
        for o in &outs {
            let rv = o.read_values();
            let there = canon.reads_to_canonical(&rv);
            let back = canon.outcome_to_original(&Outcome::new(
                there,
                o.final_memory()
                    .iter()
                    .map(|&(a, v)| (canon.addr_to_canonical(a), v))
                    .collect(),
            ));
            assert_eq!(&back, o);
        }
    }

    #[test]
    fn canonical_verdicts_match_original_verdicts() {
        // The semantic core of symmetry reduction: the canonical program's
        // outcome set, mapped back, is the original's.
        for p in [sb(Addr(5), Addr(3)), {
            let mut b = ProgramBuilder::new();
            b.thread()
                .rmw(Z, rmw_types::RmwKind::TestAndSet, Atomicity::Type2)
                .read(X);
            b.thread().write(X, 1).fence().write(Z, 2);
            b.build()
        }] {
            let canon = p.canonicalize();
            let direct = allowed_outcomes(&p);
            let mapped: BTreeSet<Outcome> = allowed_outcomes(canon.program())
                .iter()
                .map(|o| canon.outcome_to_original(o))
                .collect();
            assert_eq!(direct, mapped, "program {p:?}");
        }
    }

    #[test]
    fn many_threaded_programs_still_canonicalize_soundly() {
        // Above the permutation bound only addresses are canonicalized;
        // the form must still be deterministic and self-consistent.
        let mut b = ProgramBuilder::new();
        for i in 0..(PERM_SEARCH_MAX_THREADS + 2) {
            b.thread().write(Addr(i as u64 + 40), 1).read(Addr(40));
        }
        let p = b.build();
        let c1 = p.canonicalize();
        let c2 = p.canonicalize();
        assert_eq!(c1.key(), c2.key());
        assert_eq!(c1.program().num_threads(), p.num_threads());
        // Addresses were renamed densely from 0.
        let addrs = c1.program().addresses();
        assert_eq!(addrs, (0..addrs.len() as u64).map(Addr).collect::<Vec<_>>());
    }

    #[test]
    fn masked_keys_match_across_atomicity_rewrites_only() {
        // The three uniform-atomicity rewrites of an RMW test share one
        // masked key (the certificate sharing condition) while their full
        // keys stay distinct (the verdict cache still distinguishes them).
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(X, rmw_types::RmwKind::FetchAndAdd(1), Atomicity::Type1)
            .read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        let base = p.canonicalize();
        for a in [Atomicity::Type2, Atomicity::Type3] {
            let rewritten = p.with_atomicity(a).canonicalize();
            assert_ne!(base.key(), rewritten.key(), "{a:?}");
            assert_eq!(base.masked_key(), rewritten.masked_key(), "{a:?}");
        }
        // A structurally different program must not collide.
        let other = sb(X, Y).canonicalize();
        assert_ne!(base.masked_key(), other.masked_key());
    }

    #[test]
    fn masked_key_only_touches_rmw_rank_words() {
        // Adversarial values: a write of u64::MAX must not be mistaken
        // for a thread separator, and Fence/Read tags must parse.
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, u64::MAX)
            .fence()
            .rmw(
                Y,
                rmw_types::RmwKind::CompareAndSwap {
                    expected: 3,
                    new: u64::MAX,
                },
                Atomicity::Type3,
            )
            .read(X);
        let p = b.build();
        let canon = p.canonicalize();
        let masked = canon.masked_key();
        let diffs: Vec<usize> = canon
            .key()
            .iter()
            .zip(&masked)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 1, "exactly the one RMW rank word changes");
        assert_eq!(canon.key()[diffs[0]], 3, "Type3 rank");
        assert_eq!(masked[diffs[0]], 0);
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let p = sb(X, Y);
        assert_eq!(p.canonical_fingerprint(), p.canonical_fingerprint());
    }

    #[test]
    fn fast_fingerprint_agrees_with_full_canonicalization() {
        // The rebuild-free path must hash the same minimum serialization
        // as `canonicalize()`, on both sides of the permutation bound.
        let mut small = ProgramBuilder::new();
        small.thread().read(Y).write(X, 3);
        small
            .thread()
            .rmw(X, rmw_types::RmwKind::TestAndSet, Atomicity::Type3)
            .fence()
            .read(Y);
        let small = small.build();
        assert_eq!(
            small.canonical_fingerprint(),
            small.canonicalize().fingerprint()
        );
        let mut big = ProgramBuilder::new();
        for i in 0..(PERM_SEARCH_MAX_THREADS + 2) {
            big.thread().write(Addr(i as u64 + 9), 1).read(Addr(9));
        }
        let big = big.build();
        assert_eq!(
            big.canonical_fingerprint(),
            big.canonicalize().fingerprint()
        );
    }
}
