//! Litmus-style multi-threaded programs and a small builder DSL.
//!
//! A [`Program`] is a list of threads, each a straight-line sequence of
//! [`Instr`]s (control flow is already unfolded, as usual in axiomatic
//! models). The builder keeps tests readable:
//!
//! ```
//! use tso_model::ProgramBuilder;
//! use rmw_types::{Addr, Atomicity, RmwKind};
//!
//! let (x, y) = (Addr(0), Addr(1));
//! let mut b = ProgramBuilder::new();
//! b.thread().write(x, 1).fence().read(y);
//! b.thread()
//!     .rmw(y, RmwKind::TestAndSet, Atomicity::Type2)
//!     .read(x);
//! let prog = b.build();
//! assert_eq!(prog.num_threads(), 2);
//! ```

use rmw_types::{Addr, Atomicity, RmwKind, ThreadId, Value};

/// One instruction of a litmus program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load from `addr`. The value read is an outcome of the execution.
    Read(Addr),
    /// Store the constant `Value` to `addr`.
    Write(Addr, Value),
    /// A read-modify-write to `addr` with the given operation and atomicity
    /// definition (paper §2.2). Yields two events: `Ra` then `Wa`.
    Rmw {
        /// Target address.
        addr: Addr,
        /// The modify operation.
        kind: RmwKind,
        /// Which atomicity definition governs this RMW.
        atomicity: Atomicity,
    },
    /// A full memory barrier (orders everything across it, like `mfence`).
    Fence,
}

impl Instr {
    /// The address accessed, if any (fences access none).
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Instr::Read(a) | Instr::Write(a, _) | Instr::Rmw { addr: a, .. } => Some(a),
            Instr::Fence => None,
        }
    }
}

/// A straight-line multi-threaded program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    threads: Vec<Vec<Instr>>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a thread with the given instruction sequence and returns its id.
    pub fn add_thread(&mut self, instrs: Vec<Instr>) -> ThreadId {
        self.threads.push(instrs);
        ThreadId(self.threads.len() - 1)
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Instructions of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread(&self, tid: ThreadId) -> &[Instr] {
        &self.threads[tid.index()]
    }

    /// Iterates `(ThreadId, &[Instr])` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, &[Instr])> {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| (ThreadId(i), t.as_slice()))
    }

    /// All distinct addresses the program touches, sorted.
    pub fn addresses(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self
            .threads
            .iter()
            .flatten()
            .filter_map(Instr::addr)
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// Total number of instructions across threads.
    pub fn num_instrs(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Number of reads the program performs, in `(thread, po)` order —
    /// including the read halves of RMWs. Outcome vectors use this order.
    pub fn num_reads(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instr::Read(_) | Instr::Rmw { .. }))
            .count()
    }

    /// A copy of the program with every RMW rewritten to `atomicity`.
    ///
    /// The cross-validation harness uses this to align a mixed-atomicity
    /// litmus program with the simulator, whose RMW implementation is a
    /// machine-wide configuration rather than a per-instruction attribute.
    pub fn with_atomicity(&self, atomicity: Atomicity) -> Program {
        let threads = self
            .threads
            .iter()
            .map(|instrs| {
                instrs
                    .iter()
                    .map(|&i| match i {
                        Instr::Rmw { addr, kind, .. } => Instr::Rmw {
                            addr,
                            kind,
                            atomicity,
                        },
                        other => other,
                    })
                    .collect()
            })
            .collect();
        Program { threads }
    }
}

/// Builder for [`Program`], producing [`ThreadBuilder`]s.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    threads: Vec<Vec<Instr>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Starts a new thread; chain instruction calls on the returned builder.
    pub fn thread(&mut self) -> ThreadBuilder<'_> {
        self.threads.push(Vec::new());
        let idx = self.threads.len() - 1;
        ThreadBuilder { program: self, idx }
    }

    /// Finalizes into a [`Program`].
    pub fn build(self) -> Program {
        Program {
            threads: self.threads,
        }
    }
}

/// Appends instructions to one thread of a [`ProgramBuilder`].
#[derive(Debug)]
pub struct ThreadBuilder<'a> {
    program: &'a mut ProgramBuilder,
    idx: usize,
}

impl ThreadBuilder<'_> {
    /// Appends a load of `addr`.
    pub fn read(&mut self, addr: Addr) -> &mut Self {
        self.push(Instr::Read(addr))
    }

    /// Appends a store of `value` to `addr`.
    pub fn write(&mut self, addr: Addr, value: Value) -> &mut Self {
        self.push(Instr::Write(addr, value))
    }

    /// Appends an RMW to `addr`.
    pub fn rmw(&mut self, addr: Addr, kind: RmwKind, atomicity: Atomicity) -> &mut Self {
        self.push(Instr::Rmw {
            addr,
            kind,
            atomicity,
        })
    }

    /// Appends a full fence.
    pub fn fence(&mut self) -> &mut Self {
        self.push(Instr::Fence)
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.program.threads[self.idx].push(i);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = ProgramBuilder::new();
        b.thread().write(x, 1).read(y);
        b.thread()
            .rmw(y, RmwKind::TestAndSet, Atomicity::Type1)
            .fence()
            .read(x);
        let p = b.build();
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.thread(ThreadId(0)), &[Instr::Write(x, 1), Instr::Read(y)]);
        assert_eq!(p.num_instrs(), 5);
        assert_eq!(p.num_reads(), 3); // read, RMW, read
        assert_eq!(p.addresses(), vec![x, y]);
    }

    #[test]
    fn instr_addr() {
        assert_eq!(Instr::Read(Addr(3)).addr(), Some(Addr(3)));
        assert_eq!(Instr::Write(Addr(4), 1).addr(), Some(Addr(4)));
        assert_eq!(Instr::Fence.addr(), None);
        let r = Instr::Rmw {
            addr: Addr(5),
            kind: RmwKind::TestAndSet,
            atomicity: Atomicity::Type3,
        };
        assert_eq!(r.addr(), Some(Addr(5)));
    }

    #[test]
    fn addresses_deduplicated_and_sorted() {
        let mut b = ProgramBuilder::new();
        b.thread().write(Addr(2), 1).write(Addr(0), 1).read(Addr(2));
        let p = b.build();
        assert_eq!(p.addresses(), vec![Addr(0), Addr(2)]);
    }

    #[test]
    fn with_atomicity_rewrites_only_rmws() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(Addr(0), 1)
            .rmw(Addr(1), RmwKind::TestAndSet, Atomicity::Type1)
            .fence();
        b.thread()
            .rmw(Addr(0), RmwKind::Exchange(3), Atomicity::Type3);
        let p = b.build().with_atomicity(Atomicity::Type2);
        for (_, instrs) in p.iter() {
            for i in instrs {
                if let Instr::Rmw { atomicity, .. } = i {
                    assert_eq!(*atomicity, Atomicity::Type2);
                }
            }
        }
        assert_eq!(p.thread(ThreadId(0))[0], Instr::Write(Addr(0), 1));
        assert_eq!(p.thread(ThreadId(0))[2], Instr::Fence);
    }

    #[test]
    fn iter_yields_thread_ids_in_order() {
        let mut b = ProgramBuilder::new();
        b.thread().read(Addr(0));
        b.thread().read(Addr(1));
        let p = b.build();
        let ids: Vec<ThreadId> = p.iter().map(|(t, _)| t).collect();
        assert_eq!(ids, vec![ThreadId(0), ThreadId(1)]);
    }
}
