//! Axiomatic TSO memory model with weak RMW atomicity, reproducing §2 of
//! *Fast RMWs for TSO: Semantics and Implementation* (PLDI 2013).
//!
//! The model follows Alglave's framework, as the paper does:
//!
//! * a [`Program`] yields *candidate executions*: an assignment of a
//!   reads-from map `rf` and a per-location write serialization `ws`;
//! * from these we derive `fr` (from-reads), `rfe` (external reads-from) and
//!   `com = ws ∪ rfe ∪ fr`;
//! * TSO's preserved program order `ppo` keeps all of `po` except W→R;
//!   `bar` relates operations separated by a fence;
//! * each RMW contributes *atomicity-induced* ordering obligations `ato`:
//!   for every event `M` whose shape its [`Atomicity`](rmw_types::Atomicity)
//!   forbids between the
//!   RMW's read `Ra` and write `Wa`, either `M →ghb Ra` or `Wa →ghb M`;
//! * a candidate is **valid** iff `com ∪ ppo ∪ bar ∪ ato` can be made
//!   acyclic by some choice of the `ato` disjuncts, and the `uniproc`
//!   condition (per-location SC) holds. A linear extension of the union is
//!   the global-happens-before order `ghb`.
//!
//! Candidate executions are explored by a **streaming, pruned search**
//! ([`search`]): `rf` and `ws` are assigned incrementally (DFS over
//! per-location choices) and a branch is cut as soon as a partial
//! assignment is doomed — coherence (`uniproc`) violations, circular value
//! dependencies, or `com ∪ ppo ∪ bar` cycles, all detected incrementally
//! on bitset digraphs. Valid executions stream through a visitor
//! ([`for_each_valid_execution`]) with early exit
//! ([`outcome_allowed`]) — this is the engine under the `litmus` corpus,
//! the lemma-1/2/3 checks, and `cc11`'s mapping verification. The legacy
//! [`enumerate_candidates`] survives as a materializing compatibility
//! wrapper.
//!
//! Three layers scale that engine across cores and across a corpus
//! (each observationally invisible — same sets, same verdicts, same
//! decision stats):
//!
//! * [`par`] — **adaptive parallel search**: shapes predicted (via a
//!   once-per-process calibrated node rate) to be too small to amortize
//!   fan-out run sequentially; larger ones expand their first decision
//!   levels into independent subtree tasks fanned out on the shared
//!   `exec-pool` workers, merged deterministically;
//! * [`canon`] — **symmetry reduction**: programs are canonicalized
//!   under thread- and address-renaming
//!   ([`Program::canonicalize`](program::Program::canonicalize));
//! * [`cache`] — **verdict memoization**: [`allowed_outcomes_cached`]
//!   proves each canonical class once, process-wide;
//! * [`prefix`] — **prefix-certificate sharing**: programs identical up
//!   to per-RMW atomicity (equal atomicity-masked canonical keys) share
//!   one pruned search; siblings replay its recorded complete leaves and
//!   re-solve only the leaf-level atomicity disjunctions.
//!
//! # Quickstart
//!
//! ```
//! use tso_model::{Program, ProgramBuilder, allowed_outcomes};
//! use rmw_types::{Addr, Atomicity};
//!
//! // Store buffering (SB): TSO famously allows both reads to see 0.
//! let x = Addr(0);
//! let y = Addr(1);
//! let mut b = ProgramBuilder::new();
//! b.thread().write(x, 1).read(y);
//! b.thread().write(y, 1).read(x);
//! let prog = b.build();
//!
//! let outcomes = allowed_outcomes(&prog);
//! assert!(outcomes.iter().any(|o| o.read_values() == vec![0, 0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod canon;
pub mod event;
pub mod execution;
pub mod graph;
pub mod lemmas;
pub mod outcome;
pub mod par;
pub mod prefix;
pub mod program;
pub mod search;
pub mod validity;

pub use budget::{current_budget, set_budget, take_budget, SearchBudget};
pub use cache::{allowed_outcomes_cached, CacheCounters, CachedOutcomes, VerdictStore};
pub use canon::Canonical;
pub use event::{Event, EventId, EventKind, RmwHalf};
pub use execution::{enumerate_candidates, CandidateExecution};
pub use graph::DiGraph;
pub use outcome::{
    allowed_outcomes, allowed_outcomes_with_stats, find_execution, outcome_allowed, Outcome,
};
pub use par::{
    allowed_outcomes_par, allowed_outcomes_par_with_stats, fold_valid_executions_par,
    fold_valid_executions_split, outcome_allowed_par, valid_executions_par,
};
pub use program::{Instr, Program, ProgramBuilder, ThreadBuilder};
pub use search::{any_valid_execution, for_each_valid_execution, valid_executions, SearchStats};
pub use validity::{check_validity, Validity, Witness};
