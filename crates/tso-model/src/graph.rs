//! A small dense directed graph over event indices, with the operations the
//! validity checker needs: acyclicity, reachability, topological order.
//!
//! Litmus-scale executions have tens of events, so an adjacency-matrix
//! representation (bit rows) is both simple and fast.

/// Dense directed graph over nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    words_per_row: usize,
    /// Row-major bit matrix: bit `v` of row `u` set ⇔ edge `u → v`.
    rows: Vec<u64>,
}

impl DiGraph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        DiGraph {
            n,
            words_per_row,
            rows: vec![0; n * words_per_row],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds edge `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range {}",
            self.n
        );
        self.rows[u * self.words_per_row + v / 64] |= 1u64 << (v % 64);
    }

    /// Removes edge `u → v` (no-op if absent).
    #[inline]
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range {}",
            self.n
        );
        self.rows[u * self.words_per_row + v / 64] &= !(1u64 << (v % 64));
    }

    /// True if edge `u → v` is present.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u * self.words_per_row + v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Successors of `u` as an iterator of node indices.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        let base = u * self.words_per_row;
        (0..self.words_per_row).flat_map(move |w| {
            let mut bits = self.rows[base + w];
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the graph has no directed cycle (self-loops count as cycles).
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// A topological order of the nodes, or `None` if cyclic (Kahn's
    /// algorithm).
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for u in 0..self.n {
            for v in self.successors(u) {
                indeg[v] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        // Pop smallest id first so the order is deterministic.
        queue.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop() {
            order.push(u);
            let mut newly: Vec<usize> = Vec::new();
            for v in self.successors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    newly.push(v);
                }
            }
            // keep determinism: maintain queue sorted descending
            for v in newly {
                let pos = queue.partition_point(|&q| q > v);
                queue.insert(pos, v);
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// True iff `v` is reachable from `u` by a nonempty path.
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack: Vec<usize> = self.successors(u).collect();
        while let Some(w) = stack.pop() {
            if w == v {
                return true;
            }
            if !seen[w] {
                seen[w] = true;
                stack.extend(self.successors(w));
            }
        }
        false
    }

    /// Adds all edges of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the graphs have different node counts.
    pub fn union_with(&mut self, other: &DiGraph) {
        assert_eq!(self.n, other.n, "graph size mismatch");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            *a |= *b;
        }
    }

    /// The transitive closure as a new graph (Floyd–Warshall over bit rows).
    pub fn transitive_closure(&self) -> DiGraph {
        let mut c = self.clone();
        for k in 0..self.n {
            for u in 0..self.n {
                if c.has_edge(u, k) {
                    // row(u) |= row(k)
                    let (uk, kk) = (u * c.words_per_row, k * c.words_per_row);
                    for w in 0..c.words_per_row {
                        let bits = c.rows[kk + w];
                        c.rows[uk + w] |= bits;
                    }
                }
            }
        }
        c
    }

    /// All edges as `(u, v)` pairs (ascending `u`, then `v`).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        (0..self.n)
            .flat_map(|u| self.successors(u).map(move |v| (u, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_acyclic() {
        let g = DiGraph::new(0);
        assert!(g.is_empty());
        assert!(g.is_acyclic());
        assert_eq!(g.topo_order(), Some(vec![]));
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2)]);
        g.remove_edge(0, 1);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn detects_cycles() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_acyclic());
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
        assert_eq!(g.topo_order(), None);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new(1);
        assert!(g.is_acyclic());
        g.add_edge(0, 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn topo_order_is_deterministic_and_consistent() {
        let mut g = DiGraph::new(5);
        g.add_edge(3, 1);
        g.add_edge(1, 0);
        g.add_edge(4, 2);
        let order = g.topo_order().expect("acyclic");
        assert_eq!(order.len(), 5);
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u] < pos[v], "edge ({u},{v}) violates topo order");
        }
        // deterministic: same input, same order
        assert_eq!(g.topo_order().unwrap(), order);
    }

    #[test]
    fn reachability() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.reaches(0, 2));
        assert!(!g.reaches(2, 0));
        assert!(!g.reaches(0, 3));
        // non-empty path required: node does not trivially reach itself
        assert!(!g.reaches(0, 0));
        g.add_edge(2, 0);
        assert!(g.reaches(0, 0));
    }

    #[test]
    fn transitive_closure_contains_paths() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let c = g.transitive_closure();
        assert!(c.has_edge(0, 3));
        assert!(c.has_edge(1, 3));
        assert!(!c.has_edge(3, 0));
    }

    #[test]
    fn union_with_merges_edges() {
        let mut a = DiGraph::new(3);
        a.add_edge(0, 1);
        let mut b = DiGraph::new(3);
        b.add_edge(1, 2);
        a.union_with(&b);
        assert!(a.has_edge(0, 1) && a.has_edge(1, 2));
    }

    #[test]
    fn large_graph_bitrows() {
        // Exercise multi-word rows (n > 64).
        let n = 130;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        assert!(g.is_acyclic());
        assert!(g.reaches(0, n - 1));
        let c = g.transitive_closure();
        assert!(c.has_edge(0, n - 1));
        g.add_edge(n - 1, 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 2);
    }
}
