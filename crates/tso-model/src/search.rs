//! Streaming, pruned search over candidate executions — the engine behind
//! [`allowed_outcomes`](crate::outcome::allowed_outcomes),
//! [`outcome_allowed`](crate::outcome::outcome_allowed), the litmus
//! verdicts, and `cc11`'s mapping verification.
//!
//! The legacy enumerator ([`crate::execution::enumerate_candidates`])
//! materializes every `rf × ws` assignment into a `Vec` and filters
//! afterwards, so both time and peak memory grow factorially with events
//! per location. This module instead assigns `rf` and `ws` *incrementally*
//! — a depth-first search over per-location choices — and prunes a branch
//! the moment a partial assignment is doomed:
//!
//! * **`ws` placement.** Each location's write serialization is built one
//!   write at a time. Placing `w` next commits `w` before every still
//!   unplaced write of that location in *every* completion, so those edges
//!   go into the incremental graphs immediately; a cycle kills the whole
//!   subtree (e.g. a `ws` order contradicting same-thread `ppo` W→W edges
//!   dies at depth 1 instead of being enumerated `(k-1)!` times).
//! * **`rf` assignment.** Once the serializations are fixed, each read's
//!   `rf` choice determines its `rfe` and *all* of its `fr` edges, which
//!   are pushed into the graphs and cycle-checked on the spot.
//! * **Pruning conditions.** A branch is cut when (a) `com ∪ ppo ∪ bar`
//!   acquires a cycle (no `ato` choice can ever fix it — `ato` only adds
//!   edges), (b) `com ∪ po-loc` acquires a cycle (the `uniproc` /
//!   coherence violation of paper §2.1), or (c) the value-dependency graph
//!   (`rf` edges plus each RMW's internal `Ra → Wa`) becomes cyclic, i.e.
//!   an RMW's value would depend on itself.
//!
//! All three checks are *sound* for pruning: a completion only ever adds
//! edges to the partial graphs, so a cyclic partial state can never reach
//! a valid leaf. At a complete assignment the remaining existential — the
//! per-RMW atomicity disjunctions — is solved exactly as before
//! ([`crate::validity`]), so the set of executions yielded here is
//! *identical* to filtering the legacy enumeration with `check_validity`.
//!
//! Valid executions are yielded through a visitor
//! ([`for_each_valid_execution`]); returning [`ControlFlow::Break`] stops
//! the search, which is what gives `outcome_allowed` its early exit.
//!
//! # Parallelism hooks
//!
//! The decision tree has an exploitable shape: the first few decision
//! levels partition the remaining search into *independent* subtrees. The
//! crate-private primitives at the bottom of this module —
//! `build_ctx` (the immutable per-program context), `split_prefixes`
//! (a bounded DFS over the first `ws`-placement — and, for `ws`-trivial
//! programs, `rf` — levels, yielding viable decision prefixes in exactly
//! the order the sequential engine would visit them), and `run_prefix`
//! (replay a prefix, then resume the ordinary DFS below it, with an
//! optional cooperative stop flag) — are what [`crate::par`] fans out over
//! the shared `exec-pool` workers. The split counts decision nodes
//! exactly as the sequential engine would for those levels, so
//! `split stats + Σ task stats` equals the sequential [`SearchStats`]
//! identically, at any task granularity.

use crate::budget::QueryBudget;
use crate::event::{EventId, RmwHalf};
use crate::execution::{
    bar_graph_of, build_events, poloc_graph_of, ppo_graph_of, resolve_values, CandidateExecution,
    ExecCtx,
};
use crate::graph::DiGraph;
use crate::program::Program;
use crate::validity::{atomicity_disjuncts, solve_ato, Disjunct, Validity};
use rmw_types::Addr;
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Counters describing one search run, for benchmarks and scaling reports.
///
/// The decision-tree counters (`nodes`, `pruned`, `complete`, `valid`) are
/// *engine-independent*: the parallel root-split engine ([`crate::par`])
/// reports exactly the sequential engine's numbers at every worker count
/// (asserted by `tests/par_equiv.rs`), because the split phase counts the
/// top-of-tree decisions once and each subtree task counts only its own.
/// `tasks`/`workers` describe the parallel plumbing and legitimately vary
/// with the worker count (both are 1 on the sequential engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Partial-assignment decision nodes explored (one per `ws` placement
    /// or `rf` choice tried).
    pub nodes: u64,
    /// Branches cut by incremental pruning before reaching a leaf.
    pub pruned: u64,
    /// Complete `rf × ws` assignments reached (the legacy enumerator
    /// materializes one candidate per such leaf).
    pub complete: u64,
    /// Valid executions yielded to the visitor.
    pub valid: u64,
    /// Independent subtree tasks the search ran as (1 = sequential).
    pub tasks: u64,
    /// Worker threads those tasks were distributed over (1 = sequential).
    pub workers: u64,
    /// True when the visitor stopped the search early.
    pub stopped_early: bool,
    /// True when a [`SearchBudget`](crate::budget::SearchBudget) ran out
    /// mid-search: the run stopped at a decision node with subtrees
    /// unexplored, so the yielded set is a (sound but possibly
    /// incomplete) subset. Always implies `stopped_early`. Never set on
    /// un-budgeted runs, so stats stay bit-identical when no budget is
    /// installed or the installed one is not hit.
    pub budget_exhausted: bool,
}

impl SearchStats {
    /// Accumulates another run's counters into `self`: decision counters
    /// and `tasks` add, `workers` takes the maximum, `stopped_early` ORs.
    /// Used both by the parallel engine (merging per-task stats) and by
    /// consumers aggregating several searches (e.g. the harness's
    /// per-test model stats across its four model queries).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.pruned += other.pruned;
        self.complete += other.complete;
        self.valid += other.valid;
        self.tasks += other.tasks;
        self.workers = self.workers.max(other.workers);
        self.stopped_early |= other.stopped_early;
        self.budget_exhausted |= other.budget_exhausted;
    }
}

/// What the search yields and how aggressively it prunes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Prune doomed branches; yield only valid executions.
    ValidOnly,
    /// No graph pruning (only circular value dependencies are dropped, as
    /// the legacy enumerator does); yield every complete candidate. Backs
    /// the [`enumerate_candidates`](crate::execution::enumerate_candidates)
    /// compatibility wrapper.
    AllCandidates,
}

/// Visits every **valid** execution of `program` in a streaming fashion —
/// nothing is materialized beyond the single execution handed to the
/// visitor. Return [`ControlFlow::Break`] to stop the search early.
///
/// The executions visited are exactly those of
/// `enumerate_candidates(program)` that pass
/// [`check_validity`](crate::validity::check_validity), without ever
/// holding more than one of them in memory.
pub fn for_each_valid_execution<F>(program: &Program, mut visitor: F) -> SearchStats
where
    F: FnMut(&CandidateExecution) -> ControlFlow<()>,
{
    run(program, Mode::ValidOnly, &mut visitor)
}

/// Early-exit search: true iff some valid execution satisfies `pred`.
///
/// This is the primitive behind
/// [`outcome_allowed`](crate::outcome::outcome_allowed) and the litmus
/// verdicts: the search stops at the first witness.
pub fn any_valid_execution<F>(program: &Program, mut pred: F) -> bool
where
    F: FnMut(&CandidateExecution) -> bool,
{
    let mut found = false;
    for_each_valid_execution(program, |exec| {
        if pred(exec) {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

/// Collects every valid execution (streaming under the hood; the result
/// `Vec` is the only materialization).
pub fn valid_executions(program: &Program) -> Vec<CandidateExecution> {
    let mut out = Vec::new();
    for_each_valid_execution(program, |exec| {
        out.push(exec.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Visits every candidate execution, valid or not (pruning off, matching
/// the legacy enumeration semantics: only circular value dependencies are
/// dropped). Backs the `enumerate_candidates` compatibility wrapper.
pub(crate) fn for_each_candidate<F>(program: &Program, mut visitor: F) -> SearchStats
where
    F: FnMut(&CandidateExecution) -> ControlFlow<()>,
{
    run(program, Mode::AllCandidates, &mut visitor)
}

/// One location's write set: address, implicit initial write, and the
/// non-init writes to serialize after it.
struct LocWrites {
    addr: Addr,
    writes: Vec<EventId>,
}

/// Immutable per-program search context: everything the DFS reads but
/// never writes. Shared by reference across the parallel subtree tasks.
pub(crate) struct SearchCtx {
    ctx: Arc<ExecCtx>,
    mode: Mode,
    locs: Vec<LocWrites>,
    reads: Vec<EventId>,
    rf_choices: Vec<Vec<EventId>>,
    disjuncts: Vec<Disjunct>,
    /// `ppo ∪ bar` plus the fixed init→write `ws` edges.
    base_ghb: DiGraph,
    /// `po-loc` plus the fixed init→write `ws` edges.
    base_uni: DiGraph,
    /// Each RMW's internal `Ra → Wa` value dependency.
    base_dep: DiGraph,
    /// Per-location serializations holding just the init writes.
    base_ws: BTreeMap<Addr, Vec<EventId>>,
}

/// Builds the search context for the valid-only (pruned) engine — the
/// parallel front end in [`crate::par`] starts here.
pub(crate) fn build_ctx(program: &Program) -> SearchCtx {
    SearchCtx::build(program, Mode::ValidOnly)
}

impl SearchCtx {
    fn build(program: &Program, mode: Mode) -> SearchCtx {
        let events = build_events(program);
        let n = events.len();

        // Candidate rf sources per read: writes to the same address, except
        // the read's own RMW write half ("Ra reads an earlier value, not
        // Wa's").
        let reads: Vec<EventId> = events
            .iter()
            .filter(|e| e.is_read())
            .map(|e| e.id)
            .collect();
        let rf_choices: Vec<Vec<EventId>> = reads
            .iter()
            .map(|&r| {
                let er = &events[r.index()];
                events
                    .iter()
                    .filter(|w| w.is_write() && w.addr == er.addr)
                    .filter(|w| match (er.rmw, w.rmw) {
                        (Some(lr), Some(lw)) => lr.rmw_id != lw.rmw_id,
                        _ => true,
                    })
                    .map(|w| w.id)
                    .collect()
            })
            .collect();

        // Per-location write sets, keyed by the (sorted) initial writes.
        let mut by_addr: BTreeMap<Addr, (EventId, Vec<EventId>)> = events
            .iter()
            .filter(|e| e.is_init())
            .map(|e| (e.addr.expect("init write has addr"), (e.id, Vec::new())))
            .collect();
        for e in &events {
            if e.is_write() && !e.is_init() {
                by_addr
                    .get_mut(&e.addr.expect("write has addr"))
                    .expect("every address has an init write")
                    .1
                    .push(e.id);
            }
        }

        // Fixed graph parts. The init write precedes every other write of
        // its location in every candidate, so those `ws` edges are part of
        // the base.
        let (base_ghb, base_uni) = if mode == Mode::ValidOnly {
            let mut ghb = ppo_graph_of(&events);
            ghb.union_with(&bar_graph_of(&events));
            let mut uni = poloc_graph_of(&events);
            for (init, ws_writes) in by_addr.values() {
                for &w in ws_writes {
                    ghb.add_edge(init.index(), w.index());
                    uni.add_edge(init.index(), w.index());
                }
            }
            (ghb, uni)
        } else {
            (DiGraph::new(n), DiGraph::new(n))
        };

        // Value dependencies internal to each RMW: Wa's value is computed
        // from what Ra read.
        let mut base_dep = DiGraph::new(n);
        {
            let mut ra_of: BTreeMap<usize, EventId> = BTreeMap::new();
            for e in &events {
                if let Some(l) = e.rmw {
                    if l.half == RmwHalf::Read {
                        ra_of.insert(l.rmw_id.0, e.id);
                    }
                }
            }
            for e in &events {
                if let Some(l) = e.rmw {
                    if l.half == RmwHalf::Write {
                        base_dep.add_edge(ra_of[&l.rmw_id.0].index(), e.id.index());
                    }
                }
            }
        }

        let base_ws: BTreeMap<Addr, Vec<EventId>> = by_addr
            .iter()
            .map(|(&a, (init, _))| (a, vec![*init]))
            .collect();
        let locs: Vec<LocWrites> = by_addr
            .into_iter()
            .map(|(addr, (_, writes))| LocWrites { addr, writes })
            .collect();
        let disjuncts = if mode == Mode::ValidOnly {
            atomicity_disjuncts(&events)
        } else {
            Vec::new()
        };

        SearchCtx {
            ctx: ExecCtx::new(events),
            mode,
            locs,
            reads,
            rf_choices,
            disjuncts,
            base_ghb,
            base_uni,
            base_dep,
            base_ws,
        }
    }

    /// Branching factor of each decision level, in decision order: for
    /// every location the factors `k, k-1, …, 1` of its placement steps,
    /// then one factor per read (`rf` source count). Used to pick the
    /// root-split depth.
    fn level_factors(&self) -> Vec<usize> {
        let mut factors = Vec::new();
        for loc in &self.locs {
            for placed in 0..loc.writes.len() {
                factors.push(loc.writes.len() - placed);
            }
        }
        for choices in &self.rf_choices {
            factors.push(choices.len());
        }
        factors
    }

    /// The decision shape `(total non-init writes, reads)` — the exact
    /// lengths a full-depth leaf path must have. [`crate::prefix`] uses
    /// this (plus [`SearchCtx::max_event_id`]) to reject a persisted
    /// certificate that does not structurally fit the program before
    /// replaying it.
    pub(crate) fn decision_shape(&self) -> (usize, usize) {
        let writes = self.locs.iter().map(|l| l.writes.len()).sum();
        (writes, self.reads.len())
    }

    /// One past the largest valid [`EventId`] index for this program.
    pub(crate) fn max_event_id(&self) -> usize {
        self.ctx.events.len()
    }

    /// Upper estimate of the decision nodes a search of this program can
    /// visit: the node count of the *unpruned* decision tree, i.e. the sum
    /// over decision levels of the running product of branching factors.
    /// Pruning only shrinks the real count, so thresholding on this value
    /// errs toward "the subtree is big" — the safe direction for the
    /// adaptive split policy in [`crate::par`], which only fans out above
    /// a generous floor. Saturates instead of overflowing on deep shapes.
    pub(crate) fn estimate_nodes(&self) -> u64 {
        let mut total = 1u64; // the root itself
        let mut width = 1u64;
        for &f in &self.level_factors() {
            width = width.saturating_mul(f as u64);
            total = total.saturating_add(width);
            if total >= u64::MAX / 2 {
                return u64::MAX / 2;
            }
        }
        total
    }
}

/// A decision prefix identifying one independent subtree of the search:
/// the first `ws` placements (in decision order, locations in address
/// order), and — only when every write is already placed — the first
/// `rf` choices. Produced by [`split_prefixes`], consumed by
/// [`run_prefix`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Prefix {
    pub(crate) ws: Vec<EventId>,
    pub(crate) rf: Vec<EventId>,
}

/// Enumerates the viable decision prefixes at a depth chosen so their
/// count reaches `target` (or the whole tree if it never does), in
/// exactly the order the sequential DFS visits those subtrees. The
/// returned stats cover the split levels' decision nodes — sequential
/// totals are `split stats + Σ` [`run_prefix`] stats.
pub(crate) fn split_prefixes(sc: &SearchCtx, target: usize) -> (Vec<Prefix>, SearchStats) {
    let factors = sc.level_factors();
    let mut depth = 0usize;
    let mut product = 1u64;
    while depth < factors.len() && product < target as u64 {
        product = product.saturating_mul(factors[depth] as u64);
        depth += 1;
    }
    let mut out = Vec::new();
    let mut stats = SearchStats::default();
    if depth == 0 {
        // No decisions to split on (or target ≤ 1): one task, whole tree.
        out.push(Prefix::default());
        return (out, stats);
    }
    let mut sink = |_: &CandidateExecution| ControlFlow::Continue(());
    let mut search = Search::new(sc, &mut sink, None);
    let mut path = Prefix::default();
    search.split_ws(0, depth, &mut path, &mut out);
    stats.absorb(&search.stats);
    // `absorb` summed the split's zeroed tasks/workers; the caller sets
    // the real values after merging task stats.
    (out, stats)
}

/// Runs the full sequential DFS from a prebuilt context, optionally
/// recording the decision path of every complete leaf into `leaves` (in
/// DFS order — the order [`run_prefix`] replays them for a certificate
/// hit, see [`crate::prefix`]). Reports `tasks = workers = 1` like
/// [`for_each_valid_execution`]; the context must be `ValidOnly` when
/// recording (only complete leaves of the pruned engine are meaningful
/// certificate entries).
pub(crate) fn run_ctx(
    sc: &SearchCtx,
    visitor: &mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
    leaves: Option<&mut Vec<Prefix>>,
) -> SearchStats {
    run_ctx_budgeted(sc, visitor, leaves, None)
}

/// [`run_ctx`] under an optional [`QueryBudget`]: the DFS additionally
/// charges every decision node against `budget` and aborts (marking the
/// stats budget-exhausted) when it runs out. `budget = None` is exactly
/// [`run_ctx`] — the calibration path and every pre-budget caller go
/// through that and can never be truncated.
pub(crate) fn run_ctx_budgeted(
    sc: &SearchCtx,
    visitor: &mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
    leaves: Option<&mut Vec<Prefix>>,
    budget: Option<&QueryBudget>,
) -> SearchStats {
    let mut search = Search::new(sc, visitor, None);
    search.leaves = leaves;
    search.budget = budget;
    // A `Break` here is just the early exit reaching the root.
    let _ = search.search_ws(0);
    let mut stats = search.stats;
    stats.tasks = 1;
    stats.workers = 1;
    stats
}

/// Replays `prefix` (whose viability the split already established) and
/// resumes the ordinary DFS below it, yielding to `visitor`. `stop` is a
/// cooperative cancellation flag checked at every decision node.
pub(crate) fn run_prefix(
    sc: &SearchCtx,
    prefix: &Prefix,
    visitor: &mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
    stop: Option<&AtomicBool>,
) -> SearchStats {
    run_prefix_with(sc, prefix, visitor, stop, None, None)
}

/// [`run_prefix`] with optional complete-leaf recording (the recording
/// engine behind certificate capture on the split path). A *full-depth*
/// `prefix` — one naming every `ws` placement and every `rf` choice —
/// replays straight to the leaf: zero decision nodes, one `complete`,
/// with the atomicity disjunctions solved for *this* context's program.
/// That degenerate case is exactly how [`crate::prefix`] replays a
/// certificate's leaves for a sibling program.
pub(crate) fn run_prefix_with(
    sc: &SearchCtx,
    prefix: &Prefix,
    visitor: &mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
    stop: Option<&AtomicBool>,
    leaves: Option<&mut Vec<Prefix>>,
    budget: Option<&QueryBudget>,
) -> SearchStats {
    let mut search = Search::new(sc, visitor, stop);
    search.leaves = leaves;
    search.budget = budget;

    // Replay the ws placements. Decision order fills locations in order,
    // so the prefix entries for the current location form the contiguous
    // slice `prefix.ws[loc_start..]`.
    let (mut li, mut loc_start) = (0usize, 0usize);
    for (pos, &w) in prefix.ws.iter().enumerate() {
        while sc.locs[li].writes.len() == pos - loc_start {
            li += 1;
            loc_start = pos;
        }
        let placed = &prefix.ws[loc_start..pos];
        let mut added = Vec::new();
        for &u in &sc.locs[li].writes {
            if u != w && !placed.contains(&u) {
                search.add_com_edge(w, u, &mut added);
            }
        }
        search
            .ws
            .get_mut(&sc.locs[li].addr)
            .expect("ws has every addr")
            .push(w);
        // The edges stay committed for the lifetime of the task.
    }

    if prefix.rf.is_empty() {
        // Resume mid-placement (or at the rf phase if everything is
        // placed — `place_writes` falls through on an empty remainder).
        if li < sc.locs.len() {
            let placed = &prefix.ws[loc_start..];
            let mut remaining: Vec<EventId> = sc.locs[li]
                .writes
                .iter()
                .copied()
                .filter(|u| !placed.contains(u))
                .collect();
            let _ = search.place_writes(li, &mut remaining);
        } else {
            let _ = search.search_rf(0);
        }
    } else {
        // An rf prefix implies every write was placed during the split.
        for (ri, &w) in prefix.rf.iter().enumerate() {
            let mut added = Vec::new();
            search.push_rf(ri, w, &mut added);
        }
        let _ = search.search_rf(prefix.rf.len());
    }
    search.stats
}

struct Search<'a> {
    sc: &'a SearchCtx,
    /// `com ∪ ppo ∪ bar`, maintained incrementally (`ValidOnly` mode).
    ghb: DiGraph,
    /// `com ∪ po-loc` — the uniproc check (`ValidOnly` mode).
    uni: DiGraph,
    /// Value-dependency graph: `rf` edges plus each RMW's `Ra → Wa`.
    dep: DiGraph,
    ws: BTreeMap<Addr, Vec<EventId>>,
    rf: BTreeMap<EventId, EventId>,
    stats: SearchStats,
    stop: Option<&'a AtomicBool>,
    /// When set, every decision node is charged against this (shared)
    /// query budget; exhaustion aborts the run with
    /// `stats.budget_exhausted` set.
    budget: Option<&'a QueryBudget>,
    visitor: &'a mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
    /// When set, every complete leaf's full decision path is appended (in
    /// DFS order) — the raw material of a prefix certificate.
    leaves: Option<&'a mut Vec<Prefix>>,
}

fn run(
    program: &Program,
    mode: Mode,
    visitor: &mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
) -> SearchStats {
    let sc = SearchCtx::build(program, mode);
    run_ctx(&sc, visitor, None)
}

impl<'a> Search<'a> {
    fn new(
        sc: &'a SearchCtx,
        visitor: &'a mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
        stop: Option<&'a AtomicBool>,
    ) -> Self {
        Search {
            sc,
            ghb: sc.base_ghb.clone(),
            uni: sc.base_uni.clone(),
            dep: sc.base_dep.clone(),
            ws: sc.base_ws.clone(),
            rf: BTreeMap::new(),
            stats: SearchStats::default(),
            stop,
            budget: None,
            visitor,
            leaves: None,
        }
    }

    /// The full decision path of the current (complete) assignment: every
    /// location's non-init serialization in decision order, then every
    /// read's `rf` source in read order. Feeding this back through
    /// [`run_prefix`] replays straight to the same leaf.
    fn leaf_path(&self) -> Prefix {
        let mut ws = Vec::new();
        for loc in &self.sc.locs {
            ws.extend_from_slice(&self.ws[&loc.addr][1..]);
        }
        let rf = self.sc.reads.iter().map(|r| self.rf[r]).collect();
        Prefix { ws, rf }
    }

    /// True when a cooperative stop was requested or the query budget ran
    /// out; the caller unwinds with `Break` (marking the run as stopped
    /// early, and as budget-exhausted in the latter case).
    fn should_stop(&mut self) -> bool {
        if self.stop.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            self.stats.stopped_early = true;
            return true;
        }
        if self.budget.is_some_and(QueryBudget::charge) {
            self.stats.stopped_early = true;
            self.stats.budget_exhausted = true;
            return true;
        }
        false
    }

    /// DFS level 1: serialize the writes of location `li` (then recurse to
    /// the next location, then to `rf` assignment).
    fn search_ws(&mut self, li: usize) -> ControlFlow<()> {
        let Some(loc) = self.sc.locs.get(li) else {
            return self.search_rf(0);
        };
        let mut remaining = loc.writes.clone();
        self.place_writes(li, &mut remaining)
    }

    /// Chooses the next write in location `li`'s serialization among
    /// `remaining`, committing the implied `ws` edges incrementally.
    fn place_writes(&mut self, li: usize, remaining: &mut Vec<EventId>) -> ControlFlow<()> {
        if remaining.is_empty() {
            return self.search_ws(li + 1);
        }
        let addr = self.sc.locs[li].addr;
        for i in 0..remaining.len() {
            if self.should_stop() {
                return ControlFlow::Break(());
            }
            let w = remaining.remove(i);
            self.stats.nodes += 1;
            // Placing `w` next means `w` precedes every still-unplaced
            // write of this location in every completion of this branch.
            // (Edges from the already-placed prefix to `w` were added when
            // those writes were placed; init → `w` is in the base.)
            let mut added = Vec::new();
            if self.sc.mode == Mode::ValidOnly {
                for &u in remaining.iter() {
                    self.add_com_edge(w, u, &mut added);
                }
            }
            self.ws.get_mut(&addr).expect("ws has every addr").push(w);

            let viable = self.sc.mode == Mode::AllCandidates || self.still_acyclic(&added);
            let flow = if viable {
                self.place_writes(li, remaining)
            } else {
                self.stats.pruned += 1;
                ControlFlow::Continue(())
            };

            self.ws.get_mut(&addr).expect("ws has every addr").pop();
            self.remove_com_edges(&added);
            remaining.insert(i, w);
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// DFS level 2: assign a reads-from source to read `ri` (all `ws`
    /// serializations are complete at this point, so the choice fixes the
    /// read's `rfe` and `fr` edges exactly).
    fn search_rf(&mut self, ri: usize) -> ControlFlow<()> {
        let Some(&r) = self.sc.reads.get(ri) else {
            return self.complete();
        };
        // Value dependencies can only cycle through an RMW read half: a
        // plain read has no outgoing dep edge (its value feeds nothing), so
        // it can never be part of a cycle and its dep edge can be elided.
        let is_rmw_read = self.sc.ctx.events[r.index()].rmw.is_some();
        for ci in 0..self.sc.rf_choices[ri].len() {
            if self.should_stop() {
                return ControlFlow::Break(());
            }
            let w = self.sc.rf_choices[ri][ci];
            self.stats.nodes += 1;

            // Value dependency r ← w; a cycle means an RMW's value would
            // depend on itself — dropped in every mode (as the legacy
            // enumerator drops candidates `resolve_values` rejects).
            // Adding w → r closes a cycle iff r already reaches w.
            if is_rmw_read && self.dep.reaches(r.index(), w.index()) {
                self.stats.pruned += 1;
                continue;
            }
            let mut added = Vec::new();
            self.push_rf(ri, w, &mut added);
            let viable = self.sc.mode == Mode::AllCandidates || self.still_acyclic(&added);

            let flow = if viable {
                self.search_rf(ri + 1)
            } else {
                self.stats.pruned += 1;
                ControlFlow::Continue(())
            };

            self.pop_rf(ri, w, &added);
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// Commits read `ri`'s `rf` choice `w`: the value-dependency edge (for
    /// RMW read halves), the `rf` map entry, and — in pruning mode — the
    /// implied `rfe` and `fr` `com` edges, recorded in `added` for undo.
    /// The dep-cycle check is the *caller's* job (a prefix replay skips it;
    /// the split established viability already).
    fn push_rf(&mut self, ri: usize, w: EventId, added: &mut Vec<(usize, usize, bool, bool)>) {
        let r = self.sc.reads[ri];
        if self.sc.ctx.events[r.index()].rmw.is_some() {
            self.dep.add_edge(w.index(), r.index());
        }
        self.rf.insert(r, w);
        if self.sc.mode == Mode::ValidOnly {
            let er = &self.sc.ctx.events[r.index()];
            let ew = &self.sc.ctx.events[w.index()];
            let external = ew.is_init() || er.tid != ew.tid;
            let addr = er.addr.expect("read has addr");
            // rfe: external reads-from participates in com (both graphs);
            // rfi participates in uniproc only — it is not `ghb` (TSO
            // store forwarding) but still forbids reading one's own
            // po-later write.
            if external {
                self.add_com_edge(w, r, added);
            } else {
                self.add_uni_edge(w, r, added);
            }
            // fr: r precedes every write ws-after its source.
            let order = &self.ws[&addr];
            let pos = order
                .iter()
                .position(|&x| x == w)
                .expect("rf source is in ws");
            let later: Vec<EventId> = order[pos + 1..].to_vec();
            for u in later {
                self.add_com_edge(r, u, added);
            }
        }
    }

    /// Undoes [`Search::push_rf`].
    fn pop_rf(&mut self, ri: usize, w: EventId, added: &[(usize, usize, bool, bool)]) {
        let r = self.sc.reads[ri];
        self.remove_com_edges(added);
        self.rf.remove(&r);
        if self.sc.ctx.events[r.index()].rmw.is_some() {
            self.dep.remove_edge(w.index(), r.index());
        }
    }

    /// A complete `rf × ws` assignment: assemble the execution, finish the
    /// validity check (the atomicity disjunctions), and yield.
    fn complete(&mut self) -> ControlFlow<()> {
        self.stats.complete += 1;
        if self.leaves.is_some() {
            // `leaf_path` needs `&self`, so the path is built before the
            // mutable re-borrow of the log.
            let path = self.leaf_path();
            if let Some(leaves) = &mut self.leaves {
                leaves.push(path);
            }
        }
        let Some(values) = resolve_values(&self.sc.ctx.events, &self.rf) else {
            // Unreachable: the dep graph is acyclic on this path, and it
            // contains every value dependency `resolve_values` follows.
            return ControlFlow::Continue(());
        };
        let exec = CandidateExecution::assemble(
            Arc::clone(&self.sc.ctx),
            self.rf.clone(),
            self.ws.clone(),
            values,
        );
        let flow = match self.sc.mode {
            Mode::AllCandidates => (self.visitor)(&exec),
            Mode::ValidOnly => {
                // uniproc already holds (incremental `uni` checks); what is
                // left is the existential over atomicity-induced edges, on
                // the incrementally maintained `com ∪ ppo ∪ bar`.
                match solve_ato(&exec, self.ghb.clone(), &self.sc.disjuncts) {
                    Validity::Valid(_) => {
                        self.stats.valid += 1;
                        (self.visitor)(&exec)
                    }
                    _ => ControlFlow::Continue(()),
                }
            }
        };
        if flow.is_break() {
            self.stats.stopped_early = true;
        }
        flow
    }

    /// Split-phase mirror of [`Search::search_ws`]: descend `depth_left`
    /// more decision levels, emitting every viable prefix.
    fn split_ws(&mut self, li: usize, depth_left: usize, path: &mut Prefix, out: &mut Vec<Prefix>) {
        if depth_left == 0 {
            out.push(path.clone());
            return;
        }
        let Some(loc) = self.sc.locs.get(li) else {
            self.split_rf(0, depth_left, path, out);
            return;
        };
        let mut remaining = loc.writes.clone();
        self.split_place(li, &mut remaining, depth_left, path, out);
    }

    /// Split-phase mirror of [`Search::place_writes`], counting nodes and
    /// prunes exactly as the sequential engine would at these levels.
    fn split_place(
        &mut self,
        li: usize,
        remaining: &mut Vec<EventId>,
        depth_left: usize,
        path: &mut Prefix,
        out: &mut Vec<Prefix>,
    ) {
        if depth_left == 0 {
            out.push(path.clone());
            return;
        }
        if remaining.is_empty() {
            self.split_ws(li + 1, depth_left, path, out);
            return;
        }
        let addr = self.sc.locs[li].addr;
        for i in 0..remaining.len() {
            let w = remaining.remove(i);
            self.stats.nodes += 1;
            let mut added = Vec::new();
            for &u in remaining.iter() {
                self.add_com_edge(w, u, &mut added);
            }
            self.ws.get_mut(&addr).expect("ws has every addr").push(w);

            if self.still_acyclic(&added) {
                path.ws.push(w);
                self.split_place(li, remaining, depth_left - 1, path, out);
                path.ws.pop();
            } else {
                self.stats.pruned += 1;
            }

            self.ws.get_mut(&addr).expect("ws has every addr").pop();
            self.remove_com_edges(&added);
            remaining.insert(i, w);
        }
    }

    /// Split-phase mirror of [`Search::search_rf`] — reached only when the
    /// program has so little `ws` choice that the split extends into the
    /// `rf` levels to find enough independent subtrees.
    fn split_rf(&mut self, ri: usize, depth_left: usize, path: &mut Prefix, out: &mut Vec<Prefix>) {
        if depth_left == 0 || ri >= self.sc.reads.len() {
            out.push(path.clone());
            return;
        }
        let r = self.sc.reads[ri];
        let is_rmw_read = self.sc.ctx.events[r.index()].rmw.is_some();
        for ci in 0..self.sc.rf_choices[ri].len() {
            let w = self.sc.rf_choices[ri][ci];
            self.stats.nodes += 1;
            if is_rmw_read && self.dep.reaches(r.index(), w.index()) {
                self.stats.pruned += 1;
                continue;
            }
            let mut added = Vec::new();
            self.push_rf(ri, w, &mut added);
            if self.still_acyclic(&added) {
                path.rf.push(w);
                self.split_rf(ri + 1, depth_left - 1, path, out);
                path.rf.pop();
            } else {
                self.stats.pruned += 1;
            }
            self.pop_rf(ri, w, &added);
        }
    }

    /// Adds a `com` edge to both incremental graphs, recording which of the
    /// two actually changed so backtracking restores the exact state (the
    /// edge may already be present via `ppo`, `bar`, or `po-loc`).
    fn add_com_edge(
        &mut self,
        u: EventId,
        v: EventId,
        added: &mut Vec<(usize, usize, bool, bool)>,
    ) {
        let (ui, vi) = (u.index(), v.index());
        let in_ghb = self.ghb.has_edge(ui, vi);
        let in_uni = self.uni.has_edge(ui, vi);
        if !in_ghb {
            self.ghb.add_edge(ui, vi);
        }
        if !in_uni {
            self.uni.add_edge(ui, vi);
        }
        if !(in_ghb && in_uni) {
            added.push((ui, vi, !in_ghb, !in_uni));
        }
    }

    /// Adds an edge to the `uni` (uniproc) graph only — used for `rfi`,
    /// which constrains per-location coherence but not `ghb`.
    fn add_uni_edge(
        &mut self,
        u: EventId,
        v: EventId,
        added: &mut Vec<(usize, usize, bool, bool)>,
    ) {
        let (ui, vi) = (u.index(), v.index());
        if !self.uni.has_edge(ui, vi) {
            self.uni.add_edge(ui, vi);
            added.push((ui, vi, false, true));
        }
    }

    /// True iff `ghb` and `uni` are still acyclic after the batch of edge
    /// insertions recorded in `added`. Both graphs were acyclic before the
    /// batch, so any new cycle must pass through an inserted edge
    /// `u → v` — i.e. `v` must (now) reach `u`. Probing reachability from
    /// the handful of new edges is much cheaper than re-running a
    /// whole-graph topological sort at every decision node.
    fn still_acyclic(&self, added: &[(usize, usize, bool, bool)]) -> bool {
        added.iter().all(|&(u, v, in_ghb, in_uni)| {
            (!in_ghb || !self.ghb.reaches(v, u)) && (!in_uni || !self.uni.reaches(v, u))
        })
    }

    /// Undoes a batch of [`Search::add_com_edge`] calls.
    fn remove_com_edges(&mut self, added: &[(usize, usize, bool, bool)]) {
        for &(u, v, ghb, uni) in added {
            if ghb {
                self.ghb.remove_edge(u, v);
            }
            if uni {
                self.uni.remove_edge(u, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::enumerate_candidates;
    use crate::program::ProgramBuilder;
    use crate::validity::check_validity;
    use rmw_types::{Atomicity, RmwKind};
    use std::collections::BTreeSet;

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    fn sb() -> Program {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        b.build()
    }

    /// Reference implementation: legacy enumeration + filter.
    fn legacy_valid_read_values(p: &Program) -> BTreeSet<Vec<u64>> {
        enumerate_candidates(p)
            .into_iter()
            .filter(|c| check_validity(c).is_valid())
            .map(|c| c.read_values())
            .collect()
    }

    #[test]
    fn streaming_matches_legacy_on_sb() {
        let p = sb();
        let mut streamed = BTreeSet::new();
        let stats = for_each_valid_execution(&p, |exec| {
            streamed.insert(exec.read_values());
            ControlFlow::Continue(())
        });
        assert_eq!(streamed, legacy_valid_read_values(&p));
        assert_eq!(stats.valid as usize, valid_executions(&p).len());
        assert!(!stats.stopped_early);
        assert_eq!((stats.tasks, stats.workers), (1, 1));
    }

    #[test]
    fn reads_never_source_their_own_future_writes() {
        // Regression: `rfi` was absent from the uniproc graph in both
        // engines, so a read could source its own po-*later* write. Found
        // by the zoo spin-handoff litmus family — the phantom execution
        // let a lock acquirer see 0 from its own upcoming release store.
        let mut b = ProgramBuilder::new();
        b.thread().read(X).write(X, 1);
        b.thread().write(X, 2);
        let p = b.build();
        for c in enumerate_candidates(&p) {
            if c.read_values() == vec![1] {
                assert!(
                    !check_validity(&c).is_valid(),
                    "legacy checker accepted a read-from-the-future"
                );
            }
        }
        let streamed = legacy_valid_read_values(&p);
        assert_eq!(streamed, BTreeSet::from([vec![0], vec![2]]));
        for e in valid_executions(&p) {
            assert_ne!(
                e.read_values(),
                vec![1],
                "streaming search accepted a read-from-the-future"
            );
        }
        // The TAS handoff shape that exposed the bug: T0 acquires,
        // publishes, releases; T1's TAS observes the release. T1 reading
        // stale data is forbidden once the phantom execution is gone.
        let (lock, data) = (X, Y);
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(lock, RmwKind::TestAndSet, Atomicity::Type1)
            .write(data, 1)
            .write(lock, 0);
        b.thread()
            .rmw(lock, RmwKind::TestAndSet, Atomicity::Type1)
            .read(data);
        let p = b.build();
        assert!(!any_valid_execution(&p, |e| e.read_values() == vec![0, 0, 0]));
    }

    #[test]
    fn streaming_matches_legacy_with_rmws_and_fences() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, 1)
            .rmw(Y, RmwKind::FetchAndAdd(1), Atomicity::Type2)
            .read(X);
        b.thread().write(Y, 5).fence().read(X);
        let p = b.build();
        let mut streamed = BTreeSet::new();
        for_each_valid_execution(&p, |exec| {
            streamed.insert(exec.read_values());
            ControlFlow::Continue(())
        });
        assert_eq!(streamed, legacy_valid_read_values(&p));
    }

    #[test]
    fn early_exit_stops_the_search() {
        let p = sb();
        let mut seen = 0u32;
        let stats = for_each_valid_execution(&p, |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
        assert!(stats.stopped_early);
        // The early-exit variant agrees with an exhaustive check.
        assert!(any_valid_execution(&p, |e| e.read_values() == vec![0, 0]));
        assert!(!any_valid_execution(&p, |e| e.read_values() == vec![9, 9]));
    }

    #[test]
    fn pruning_cuts_branches_without_losing_executions() {
        // Three same-thread writes: 3! = 6 serializations, only the po
        // order survives — the other branches must be pruned, not filtered
        // at the leaves.
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(X, 2).write(X, 3);
        b.thread().read(X).read(X);
        let p = b.build();
        let mut streamed = BTreeSet::new();
        let stats = for_each_valid_execution(&p, |exec| {
            streamed.insert(exec.read_values());
            ControlFlow::Continue(())
        });
        assert_eq!(streamed, legacy_valid_read_values(&p));
        assert!(stats.pruned > 0, "expected pruning, got {stats:?}");
        let legacy_leaves = enumerate_candidates(&p).len() as u64;
        assert!(
            stats.complete < legacy_leaves,
            "streaming reached {} leaves, legacy materializes {legacy_leaves}",
            stats.complete
        );
    }

    #[test]
    fn valid_executions_pass_check_validity() {
        for exec in valid_executions(&sb()) {
            assert!(check_validity(&exec).is_valid());
        }
    }

    #[test]
    fn empty_program_has_one_trivial_execution() {
        let p = Program::new();
        let stats = for_each_valid_execution(&p, |exec| {
            assert!(exec.read_values().is_empty());
            ControlFlow::Continue(())
        });
        assert_eq!(stats.valid, 1);
    }

    #[test]
    fn absorb_sums_counters_and_ors_early_stop() {
        let mut a = SearchStats {
            nodes: 10,
            pruned: 2,
            complete: 3,
            valid: 1,
            tasks: 1,
            workers: 4,
            stopped_early: false,
            budget_exhausted: false,
        };
        let b = SearchStats {
            nodes: 5,
            pruned: 1,
            complete: 2,
            valid: 2,
            tasks: 2,
            workers: 2,
            stopped_early: true,
            budget_exhausted: true,
        };
        a.absorb(&b);
        assert_eq!(a.nodes, 15);
        assert_eq!(a.pruned, 3);
        assert_eq!(a.complete, 5);
        assert_eq!(a.valid, 3);
        assert_eq!(a.tasks, 3);
        assert_eq!(a.workers, 4);
        assert!(a.stopped_early);
        assert!(a.budget_exhausted);
    }

    #[test]
    fn split_plus_task_stats_equal_sequential_stats() {
        // The invariant the parallel engine's determinism rests on:
        // split-phase nodes plus per-subtree nodes add up to exactly the
        // sequential engine's counts, whatever the split target.
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(Y, 1).read(Y);
        b.thread()
            .write(Y, 2)
            .rmw(X, RmwKind::TestAndSet, Atomicity::Type3);
        b.thread().read(X).read(Y);
        let p = b.build();
        let seq = for_each_valid_execution(&p, |_| ControlFlow::Continue(()));
        for target in [2usize, 4, 16, 64, 1 << 20] {
            let sc = build_ctx(&p);
            let (prefixes, mut total) = split_prefixes(&sc, target);
            let mut yielded = Vec::new();
            for prefix in &prefixes {
                let mut visitor = |e: &CandidateExecution| {
                    yielded.push(e.read_values());
                    ControlFlow::Continue(())
                };
                total.absorb(&run_prefix(&sc, prefix, &mut visitor, None));
            }
            assert_eq!(total.nodes, seq.nodes, "target {target}");
            assert_eq!(total.pruned, seq.pruned, "target {target}");
            assert_eq!(total.complete, seq.complete, "target {target}");
            assert_eq!(total.valid, seq.valid, "target {target}");
            // Task order is DFS order: concatenation reproduces the
            // sequential yield sequence exactly.
            let mut seq_yield = Vec::new();
            for_each_valid_execution(&p, |e| {
                seq_yield.push(e.read_values());
                ControlFlow::Continue(())
            });
            assert_eq!(yielded, seq_yield, "target {target}");
        }
    }

    #[test]
    fn recorded_leaves_replay_to_the_same_executions() {
        // The invariant prefix certificates rest on: replaying each
        // recorded full-depth leaf path reproduces the sequential yield
        // sequence with zero decision nodes and one `complete` per leaf.
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, 1)
            .rmw(Y, RmwKind::FetchAndAdd(1), Atomicity::Type2);
        b.thread().write(Y, 5).read(X);
        let p = b.build();
        let sc = build_ctx(&p);
        let mut leaves = Vec::new();
        let mut seq_yield = Vec::new();
        let stats = run_ctx(
            &sc,
            &mut |e| {
                seq_yield.push(e.read_values());
                ControlFlow::Continue(())
            },
            Some(&mut leaves),
        );
        assert_eq!(leaves.len() as u64, stats.complete);
        let mut replay_yield = Vec::new();
        let mut replay = SearchStats::default();
        for leaf in &leaves {
            replay.absorb(&run_prefix(
                &sc,
                leaf,
                &mut |e| {
                    replay_yield.push(e.read_values());
                    ControlFlow::Continue(())
                },
                None,
            ));
        }
        assert_eq!(replay.nodes, 0, "full-depth replay explores no decisions");
        assert_eq!(replay.complete, stats.complete);
        assert_eq!(replay.valid, stats.valid);
        assert_eq!(replay_yield, seq_yield);
    }

    #[test]
    fn estimate_nodes_bounds_the_real_search_from_above() {
        for p in [sb(), {
            let mut b = ProgramBuilder::new();
            b.thread().write(X, 1).write(X, 2).read(Y);
            b.thread()
                .write(Y, 1)
                .rmw(X, RmwKind::TestAndSet, Atomicity::Type1);
            b.build()
        }] {
            let sc = build_ctx(&p);
            let real = for_each_valid_execution(&p, |_| ControlFlow::Continue(()));
            assert!(
                sc.estimate_nodes() >= real.nodes,
                "estimate {} below real {}",
                sc.estimate_nodes(),
                real.nodes
            );
        }
    }

    #[test]
    fn split_extends_into_rf_levels_when_ws_is_trivial() {
        // Single-write locations: the only ws order is forced, so subtree
        // tasks must come from rf choices.
        let p = sb();
        let sc = build_ctx(&p);
        let (prefixes, _) = split_prefixes(&sc, 4);
        assert!(
            prefixes.len() > 1,
            "expected rf-level split, got {} task(s)",
            prefixes.len()
        );
        assert!(prefixes.iter().any(|p| !p.rf.is_empty()));
    }

    #[test]
    fn stop_flag_aborts_the_search() {
        let p = sb();
        let sc = build_ctx(&p);
        let (prefixes, _) = split_prefixes(&sc, 1);
        assert_eq!(prefixes.len(), 1);
        let stop = AtomicBool::new(true);
        let mut seen = 0u32;
        let mut visitor = |_: &CandidateExecution| {
            seen += 1;
            ControlFlow::Continue(())
        };
        let stats = run_prefix(&sc, &prefixes[0], &mut visitor, Some(&stop));
        assert_eq!(seen, 0, "pre-set stop flag must abort before any yield");
        assert!(stats.stopped_early);
    }
}
