//! Streaming, pruned search over candidate executions — the engine behind
//! [`allowed_outcomes`](crate::outcome::allowed_outcomes),
//! [`outcome_allowed`](crate::outcome::outcome_allowed), the litmus
//! verdicts, and `cc11`'s mapping verification.
//!
//! The legacy enumerator ([`crate::execution::enumerate_candidates`])
//! materializes every `rf × ws` assignment into a `Vec` and filters
//! afterwards, so both time and peak memory grow factorially with events
//! per location. This module instead assigns `rf` and `ws` *incrementally*
//! — a depth-first search over per-location choices — and prunes a branch
//! the moment a partial assignment is doomed:
//!
//! * **`ws` placement.** Each location's write serialization is built one
//!   write at a time. Placing `w` next commits `w` before every still
//!   unplaced write of that location in *every* completion, so those edges
//!   go into the incremental graphs immediately; a cycle kills the whole
//!   subtree (e.g. a `ws` order contradicting same-thread `ppo` W→W edges
//!   dies at depth 1 instead of being enumerated `(k-1)!` times).
//! * **`rf` assignment.** Once the serializations are fixed, each read's
//!   `rf` choice determines its `rfe` and *all* of its `fr` edges, which
//!   are pushed into the graphs and cycle-checked on the spot.
//! * **Pruning conditions.** A branch is cut when (a) `com ∪ ppo ∪ bar`
//!   acquires a cycle (no `ato` choice can ever fix it — `ato` only adds
//!   edges), (b) `com ∪ po-loc` acquires a cycle (the `uniproc` /
//!   coherence violation of paper §2.1), or (c) the value-dependency graph
//!   (`rf` edges plus each RMW's internal `Ra → Wa`) becomes cyclic, i.e.
//!   an RMW's value would depend on itself.
//!
//! All three checks are *sound* for pruning: a completion only ever adds
//! edges to the partial graphs, so a cyclic partial state can never reach
//! a valid leaf. At a complete assignment the remaining existential — the
//! per-RMW atomicity disjunctions — is solved exactly as before
//! ([`crate::validity`]), so the set of executions yielded here is
//! *identical* to filtering the legacy enumeration with `check_validity`.
//!
//! Valid executions are yielded through a visitor
//! ([`for_each_valid_execution`]); returning [`ControlFlow::Break`] stops
//! the search, which is what gives `outcome_allowed` its early exit.

use crate::event::{EventId, RmwHalf};
use crate::execution::{
    bar_graph_of, build_events, poloc_graph_of, ppo_graph_of, resolve_values, CandidateExecution,
    ExecCtx,
};
use crate::graph::DiGraph;
use crate::program::Program;
use crate::validity::{atomicity_disjuncts, solve_ato, Disjunct, Validity};
use rmw_types::Addr;
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Counters describing one search run, for benchmarks and scaling reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Partial-assignment decision nodes explored (one per `ws` placement
    /// or `rf` choice tried).
    pub nodes: u64,
    /// Branches cut by incremental pruning before reaching a leaf.
    pub pruned: u64,
    /// Complete `rf × ws` assignments reached (the legacy enumerator
    /// materializes one candidate per such leaf).
    pub complete: u64,
    /// Valid executions yielded to the visitor.
    pub valid: u64,
    /// True when the visitor stopped the search early.
    pub stopped_early: bool,
}

/// What the search yields and how aggressively it prunes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Prune doomed branches; yield only valid executions.
    ValidOnly,
    /// No graph pruning (only circular value dependencies are dropped, as
    /// the legacy enumerator does); yield every complete candidate. Backs
    /// the [`enumerate_candidates`](crate::execution::enumerate_candidates)
    /// compatibility wrapper.
    AllCandidates,
}

/// Visits every **valid** execution of `program` in a streaming fashion —
/// nothing is materialized beyond the single execution handed to the
/// visitor. Return [`ControlFlow::Break`] to stop the search early.
///
/// The executions visited are exactly those of
/// `enumerate_candidates(program)` that pass
/// [`check_validity`](crate::validity::check_validity), without ever
/// holding more than one of them in memory.
pub fn for_each_valid_execution<F>(program: &Program, mut visitor: F) -> SearchStats
where
    F: FnMut(&CandidateExecution) -> ControlFlow<()>,
{
    run(program, Mode::ValidOnly, &mut visitor)
}

/// Early-exit search: true iff some valid execution satisfies `pred`.
///
/// This is the primitive behind
/// [`outcome_allowed`](crate::outcome::outcome_allowed) and the litmus
/// verdicts: the search stops at the first witness.
pub fn any_valid_execution<F>(program: &Program, mut pred: F) -> bool
where
    F: FnMut(&CandidateExecution) -> bool,
{
    let mut found = false;
    for_each_valid_execution(program, |exec| {
        if pred(exec) {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

/// Collects every valid execution (streaming under the hood; the result
/// `Vec` is the only materialization).
pub fn valid_executions(program: &Program) -> Vec<CandidateExecution> {
    let mut out = Vec::new();
    for_each_valid_execution(program, |exec| {
        out.push(exec.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Visits every candidate execution, valid or not (pruning off, matching
/// the legacy enumeration semantics: only circular value dependencies are
/// dropped). Backs the `enumerate_candidates` compatibility wrapper.
pub(crate) fn for_each_candidate<F>(program: &Program, mut visitor: F) -> SearchStats
where
    F: FnMut(&CandidateExecution) -> ControlFlow<()>,
{
    run(program, Mode::AllCandidates, &mut visitor)
}

/// One location's write set: address, implicit initial write, and the
/// non-init writes to serialize after it.
struct LocWrites {
    addr: Addr,
    writes: Vec<EventId>,
}

struct Search<'a> {
    ctx: Arc<ExecCtx>,
    mode: Mode,
    locs: Vec<LocWrites>,
    reads: Vec<EventId>,
    rf_choices: Vec<Vec<EventId>>,
    disjuncts: Vec<Disjunct>,
    /// `com ∪ ppo ∪ bar`, maintained incrementally (`ValidOnly` mode).
    ghb: DiGraph,
    /// `com ∪ po-loc` — the uniproc check (`ValidOnly` mode).
    uni: DiGraph,
    /// Value-dependency graph: `rf` edges plus each RMW's `Ra → Wa`.
    dep: DiGraph,
    ws: BTreeMap<Addr, Vec<EventId>>,
    rf: BTreeMap<EventId, EventId>,
    stats: SearchStats,
    visitor: &'a mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
}

fn run(
    program: &Program,
    mode: Mode,
    visitor: &mut dyn FnMut(&CandidateExecution) -> ControlFlow<()>,
) -> SearchStats {
    let events = build_events(program);
    let n = events.len();

    // Candidate rf sources per read: writes to the same address, except the
    // read's own RMW write half ("Ra reads an earlier value, not Wa's").
    let reads: Vec<EventId> = events
        .iter()
        .filter(|e| e.is_read())
        .map(|e| e.id)
        .collect();
    let rf_choices: Vec<Vec<EventId>> = reads
        .iter()
        .map(|&r| {
            let er = &events[r.index()];
            events
                .iter()
                .filter(|w| w.is_write() && w.addr == er.addr)
                .filter(|w| match (er.rmw, w.rmw) {
                    (Some(lr), Some(lw)) => lr.rmw_id != lw.rmw_id,
                    _ => true,
                })
                .map(|w| w.id)
                .collect()
        })
        .collect();

    // Per-location write sets, keyed by the (sorted) initial writes.
    let mut by_addr: BTreeMap<Addr, (EventId, Vec<EventId>)> = events
        .iter()
        .filter(|e| e.is_init())
        .map(|e| (e.addr.expect("init write has addr"), (e.id, Vec::new())))
        .collect();
    for e in &events {
        if e.is_write() && !e.is_init() {
            by_addr
                .get_mut(&e.addr.expect("write has addr"))
                .expect("every address has an init write")
                .1
                .push(e.id);
        }
    }

    // Fixed graph parts. The init write precedes every other write of its
    // location in every candidate, so those `ws` edges are part of the base.
    let (ghb, uni) = if mode == Mode::ValidOnly {
        let mut ghb = ppo_graph_of(&events);
        ghb.union_with(&bar_graph_of(&events));
        let mut uni = poloc_graph_of(&events);
        for (init, ws_writes) in by_addr.values() {
            for &w in ws_writes {
                ghb.add_edge(init.index(), w.index());
                uni.add_edge(init.index(), w.index());
            }
        }
        (ghb, uni)
    } else {
        (DiGraph::new(n), DiGraph::new(n))
    };

    // Value dependencies internal to each RMW: Wa's value is computed from
    // what Ra read.
    let mut dep = DiGraph::new(n);
    {
        let mut ra_of: BTreeMap<usize, EventId> = BTreeMap::new();
        for e in &events {
            if let Some(l) = e.rmw {
                if l.half == RmwHalf::Read {
                    ra_of.insert(l.rmw_id.0, e.id);
                }
            }
        }
        for e in &events {
            if let Some(l) = e.rmw {
                if l.half == RmwHalf::Write {
                    dep.add_edge(ra_of[&l.rmw_id.0].index(), e.id.index());
                }
            }
        }
    }

    let ws: BTreeMap<Addr, Vec<EventId>> = by_addr
        .iter()
        .map(|(&a, (init, _))| (a, vec![*init]))
        .collect();
    let locs: Vec<LocWrites> = by_addr
        .into_iter()
        .map(|(addr, (_, writes))| LocWrites { addr, writes })
        .collect();
    let disjuncts = if mode == Mode::ValidOnly {
        atomicity_disjuncts(&events)
    } else {
        Vec::new()
    };

    let mut search = Search {
        ctx: ExecCtx::new(events),
        mode,
        locs,
        reads,
        rf_choices,
        disjuncts,
        ghb,
        uni,
        dep,
        ws,
        rf: BTreeMap::new(),
        stats: SearchStats::default(),
        visitor,
    };
    // A `Break` here is just the early exit reaching the root.
    let _ = search.search_ws(0);
    search.stats
}

impl Search<'_> {
    /// DFS level 1: serialize the writes of location `li` (then recurse to
    /// the next location, then to `rf` assignment).
    fn search_ws(&mut self, li: usize) -> ControlFlow<()> {
        let Some(loc) = self.locs.get(li) else {
            return self.search_rf(0);
        };
        let mut remaining = loc.writes.clone();
        self.place_writes(li, &mut remaining)
    }

    /// Chooses the next write in location `li`'s serialization among
    /// `remaining`, committing the implied `ws` edges incrementally.
    fn place_writes(&mut self, li: usize, remaining: &mut Vec<EventId>) -> ControlFlow<()> {
        if remaining.is_empty() {
            return self.search_ws(li + 1);
        }
        let addr = self.locs[li].addr;
        for i in 0..remaining.len() {
            let w = remaining.remove(i);
            self.stats.nodes += 1;
            // Placing `w` next means `w` precedes every still-unplaced
            // write of this location in every completion of this branch.
            // (Edges from the already-placed prefix to `w` were added when
            // those writes were placed; init → `w` is in the base.)
            let mut added = Vec::new();
            if self.mode == Mode::ValidOnly {
                for &u in remaining.iter() {
                    self.add_com_edge(w, u, &mut added);
                }
            }
            self.ws.get_mut(&addr).expect("ws has every addr").push(w);

            let viable = self.mode == Mode::AllCandidates || self.still_acyclic(&added);
            let flow = if viable {
                self.place_writes(li, remaining)
            } else {
                self.stats.pruned += 1;
                ControlFlow::Continue(())
            };

            self.ws.get_mut(&addr).expect("ws has every addr").pop();
            self.remove_com_edges(&added);
            remaining.insert(i, w);
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// DFS level 2: assign a reads-from source to read `ri` (all `ws`
    /// serializations are complete at this point, so the choice fixes the
    /// read's `rfe` and `fr` edges exactly).
    fn search_rf(&mut self, ri: usize) -> ControlFlow<()> {
        let Some(&r) = self.reads.get(ri) else {
            return self.complete();
        };
        // Value dependencies can only cycle through an RMW read half: a
        // plain read has no outgoing dep edge (its value feeds nothing), so
        // it can never be part of a cycle and its dep edge can be elided.
        let is_rmw_read = self.ctx.events[r.index()].rmw.is_some();
        for ci in 0..self.rf_choices[ri].len() {
            let w = self.rf_choices[ri][ci];
            self.stats.nodes += 1;

            // Value dependency r ← w; a cycle means an RMW's value would
            // depend on itself — dropped in every mode (as the legacy
            // enumerator drops candidates `resolve_values` rejects).
            if is_rmw_read {
                // Adding w → r closes a cycle iff r already reaches w.
                if self.dep.reaches(r.index(), w.index()) {
                    self.stats.pruned += 1;
                    continue;
                }
                self.dep.add_edge(w.index(), r.index());
            }
            self.rf.insert(r, w);

            let mut added = Vec::new();
            let viable = if self.mode == Mode::ValidOnly {
                let er = &self.ctx.events[r.index()];
                let ew = &self.ctx.events[w.index()];
                let external = ew.is_init() || er.tid != ew.tid;
                let addr = er.addr.expect("read has addr");
                // rfe: external reads-from participates in com.
                if external {
                    self.add_com_edge(w, r, &mut added);
                }
                // fr: r precedes every write ws-after its source.
                let order = &self.ws[&addr];
                let pos = order
                    .iter()
                    .position(|&x| x == w)
                    .expect("rf source is in ws");
                let later: Vec<EventId> = order[pos + 1..].to_vec();
                for u in later {
                    self.add_com_edge(r, u, &mut added);
                }
                self.still_acyclic(&added)
            } else {
                true
            };

            let flow = if viable {
                self.search_rf(ri + 1)
            } else {
                self.stats.pruned += 1;
                ControlFlow::Continue(())
            };

            self.remove_com_edges(&added);
            self.rf.remove(&r);
            if is_rmw_read {
                self.dep.remove_edge(w.index(), r.index());
            }
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// A complete `rf × ws` assignment: assemble the execution, finish the
    /// validity check (the atomicity disjunctions), and yield.
    fn complete(&mut self) -> ControlFlow<()> {
        self.stats.complete += 1;
        let Some(values) = resolve_values(&self.ctx.events, &self.rf) else {
            // Unreachable: the dep graph is acyclic on this path, and it
            // contains every value dependency `resolve_values` follows.
            return ControlFlow::Continue(());
        };
        let exec = CandidateExecution::assemble(
            Arc::clone(&self.ctx),
            self.rf.clone(),
            self.ws.clone(),
            values,
        );
        let flow = match self.mode {
            Mode::AllCandidates => (self.visitor)(&exec),
            Mode::ValidOnly => {
                // uniproc already holds (incremental `uni` checks); what is
                // left is the existential over atomicity-induced edges, on
                // the incrementally maintained `com ∪ ppo ∪ bar`.
                match solve_ato(&exec, self.ghb.clone(), &self.disjuncts) {
                    Validity::Valid(_) => {
                        self.stats.valid += 1;
                        (self.visitor)(&exec)
                    }
                    _ => ControlFlow::Continue(()),
                }
            }
        };
        if flow.is_break() {
            self.stats.stopped_early = true;
        }
        flow
    }

    /// Adds a `com` edge to both incremental graphs, recording which of the
    /// two actually changed so backtracking restores the exact state (the
    /// edge may already be present via `ppo`, `bar`, or `po-loc`).
    fn add_com_edge(
        &mut self,
        u: EventId,
        v: EventId,
        added: &mut Vec<(usize, usize, bool, bool)>,
    ) {
        let (ui, vi) = (u.index(), v.index());
        let in_ghb = self.ghb.has_edge(ui, vi);
        let in_uni = self.uni.has_edge(ui, vi);
        if !in_ghb {
            self.ghb.add_edge(ui, vi);
        }
        if !in_uni {
            self.uni.add_edge(ui, vi);
        }
        if !(in_ghb && in_uni) {
            added.push((ui, vi, !in_ghb, !in_uni));
        }
    }

    /// True iff `ghb` and `uni` are still acyclic after the batch of edge
    /// insertions recorded in `added`. Both graphs were acyclic before the
    /// batch, so any new cycle must pass through an inserted edge
    /// `u → v` — i.e. `v` must (now) reach `u`. Probing reachability from
    /// the handful of new edges is much cheaper than re-running a
    /// whole-graph topological sort at every decision node.
    fn still_acyclic(&self, added: &[(usize, usize, bool, bool)]) -> bool {
        added.iter().all(|&(u, v, in_ghb, in_uni)| {
            (!in_ghb || !self.ghb.reaches(v, u)) && (!in_uni || !self.uni.reaches(v, u))
        })
    }

    /// Undoes a batch of [`Search::add_com_edge`] calls.
    fn remove_com_edges(&mut self, added: &[(usize, usize, bool, bool)]) {
        for &(u, v, ghb, uni) in added {
            if ghb {
                self.ghb.remove_edge(u, v);
            }
            if uni {
                self.uni.remove_edge(u, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::enumerate_candidates;
    use crate::program::ProgramBuilder;
    use crate::validity::check_validity;
    use rmw_types::{Atomicity, RmwKind};
    use std::collections::BTreeSet;

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    fn sb() -> Program {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        b.build()
    }

    /// Reference implementation: legacy enumeration + filter.
    fn legacy_valid_read_values(p: &Program) -> BTreeSet<Vec<u64>> {
        enumerate_candidates(p)
            .into_iter()
            .filter(|c| check_validity(c).is_valid())
            .map(|c| c.read_values())
            .collect()
    }

    #[test]
    fn streaming_matches_legacy_on_sb() {
        let p = sb();
        let mut streamed = BTreeSet::new();
        let stats = for_each_valid_execution(&p, |exec| {
            streamed.insert(exec.read_values());
            ControlFlow::Continue(())
        });
        assert_eq!(streamed, legacy_valid_read_values(&p));
        assert_eq!(stats.valid as usize, valid_executions(&p).len());
        assert!(!stats.stopped_early);
    }

    #[test]
    fn streaming_matches_legacy_with_rmws_and_fences() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, 1)
            .rmw(Y, RmwKind::FetchAndAdd(1), Atomicity::Type2)
            .read(X);
        b.thread().write(Y, 5).fence().read(X);
        let p = b.build();
        let mut streamed = BTreeSet::new();
        for_each_valid_execution(&p, |exec| {
            streamed.insert(exec.read_values());
            ControlFlow::Continue(())
        });
        assert_eq!(streamed, legacy_valid_read_values(&p));
    }

    #[test]
    fn early_exit_stops_the_search() {
        let p = sb();
        let mut seen = 0u32;
        let stats = for_each_valid_execution(&p, |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
        assert!(stats.stopped_early);
        // The early-exit variant agrees with an exhaustive check.
        assert!(any_valid_execution(&p, |e| e.read_values() == vec![0, 0]));
        assert!(!any_valid_execution(&p, |e| e.read_values() == vec![9, 9]));
    }

    #[test]
    fn pruning_cuts_branches_without_losing_executions() {
        // Three same-thread writes: 3! = 6 serializations, only the po
        // order survives — the other branches must be pruned, not filtered
        // at the leaves.
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(X, 2).write(X, 3);
        b.thread().read(X).read(X);
        let p = b.build();
        let mut streamed = BTreeSet::new();
        let stats = for_each_valid_execution(&p, |exec| {
            streamed.insert(exec.read_values());
            ControlFlow::Continue(())
        });
        assert_eq!(streamed, legacy_valid_read_values(&p));
        assert!(stats.pruned > 0, "expected pruning, got {stats:?}");
        let legacy_leaves = enumerate_candidates(&p).len() as u64;
        assert!(
            stats.complete < legacy_leaves,
            "streaming reached {} leaves, legacy materializes {legacy_leaves}",
            stats.complete
        );
    }

    #[test]
    fn valid_executions_pass_check_validity() {
        for exec in valid_executions(&sb()) {
            assert!(check_validity(&exec).is_valid());
        }
    }

    #[test]
    fn empty_program_has_one_trivial_execution() {
        let p = Program::new();
        let stats = for_each_valid_execution(&p, |exec| {
            assert!(exec.read_values().is_empty());
            ControlFlow::Continue(())
        });
        assert_eq!(stats.valid, 1);
    }
}
