//! Allowed outcomes of a program under the model.
//!
//! An [`Outcome`] is the observable result of one valid execution: the value
//! obtained by every read (in `(thread, po)` order, RMW reads included) and
//! the final memory value of every location. [`allowed_outcomes`] collects
//! the set of outcomes over all valid candidate executions — the model's
//! notion of "the behaviours of the program".
//!
//! Both entry points run on the streaming, pruned engine of
//! [`crate::search`]: `allowed_outcomes` folds the visited executions into
//! a set without ever materializing the candidate space, and
//! `outcome_allowed` stops at the first witness.
//!
//! Hot-path representation: while the search runs, outcomes accumulate in
//! a [`FastHashSet`] (the deterministic multiplicative hasher from
//! `rmw_types::fasthash` — one hash per candidate instead of a `BTreeSet`'s
//! log-depth comparison chain), and the final memory inside an [`Outcome`]
//! is a `Vec` sorted by address rather than a pointer-chasing `BTreeMap`.
//! Ordering is applied once at the edge: the public result is still a
//! sorted `BTreeSet<Outcome>`, so every downstream consumer (reports,
//! equality tests, JSON) sees the same deterministic order as before.

use crate::execution::CandidateExecution;
use crate::program::Program;
use crate::search::{any_valid_execution, for_each_valid_execution, SearchStats};
use rmw_types::fasthash::FastHashSet;
use rmw_types::{Addr, Value};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Observable result of one valid execution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Outcome {
    reads: Vec<Value>,
    /// Final value per location, sorted by address (the `ws` map the
    /// search maintains is address-ordered, so this costs nothing to
    /// produce and keeps `Ord`/`Hash` canonical).
    memory: Vec<(Addr, Value)>,
}

impl Outcome {
    /// Creates an outcome from its parts (mostly useful in tests). The
    /// memory pairs are sorted by address so equality and ordering are
    /// representation-independent.
    pub fn new(reads: Vec<Value>, mut memory: Vec<(Addr, Value)>) -> Self {
        memory.sort_unstable_by_key(|&(a, _)| a);
        Outcome { reads, memory }
    }

    /// Values obtained by the program's reads, in `(thread, po)` order —
    /// the read halves of RMWs included.
    pub fn read_values(&self) -> Vec<Value> {
        self.reads.clone()
    }

    /// Final value of each location, sorted by address.
    pub fn final_memory(&self) -> &[(Addr, Value)] {
        &self.memory
    }

    /// Final value of one location, if the program touches it.
    pub fn memory_value(&self, addr: Addr) -> Option<Value> {
        self.memory
            .binary_search_by_key(&addr, |&(a, _)| a)
            .ok()
            .map(|i| self.memory[i].1)
    }

    /// Extracts the outcome of a candidate execution (valid or not).
    pub fn of_execution(exec: &CandidateExecution) -> Self {
        Outcome {
            reads: exec.read_values(),
            memory: exec.final_memory(),
        }
    }
}

/// All outcomes of valid executions of `program`, via the streaming search
/// (one execution in memory at a time).
pub fn allowed_outcomes(program: &Program) -> BTreeSet<Outcome> {
    allowed_outcomes_with_stats(program).0
}

/// [`allowed_outcomes`] plus the search's [`SearchStats`] — the numbers the
/// harness plumbs into its per-test JSON report.
pub fn allowed_outcomes_with_stats(program: &Program) -> (BTreeSet<Outcome>, SearchStats) {
    let mut seen: FastHashSet<Outcome> = FastHashSet::default();
    let stats = for_each_valid_execution(program, |exec| {
        seen.insert(Outcome::of_execution(exec));
        ControlFlow::Continue(())
    });
    (seen.into_iter().collect(), stats)
}

/// True iff some valid execution satisfies `pred` on its read-value vector.
///
/// This is the primitive litmus assertion: "is the outcome
/// `r1=v1 ∧ r2=v2 ∧ …` allowed?". The search exits at the first witness.
pub fn outcome_allowed(program: &Program, pred: impl Fn(&[Value]) -> bool) -> bool {
    any_valid_execution(program, |exec| pred(&exec.read_values()))
}

/// The first valid execution whose read-value vector satisfies `pred`, or
/// `None` when no valid execution does.
///
/// Same early-exit cost as [`outcome_allowed`], but the witness execution —
/// its `rf`, `ws`, and resolved values — is returned so callers (litmus
/// failure reports, the differential harness) can show *which* execution
/// exhibits an outcome instead of a bare boolean.
pub fn find_execution(
    program: &Program,
    pred: impl Fn(&[Value]) -> bool,
) -> Option<CandidateExecution> {
    let mut found = None;
    for_each_valid_execution(program, |exec| {
        if pred(&exec.read_values()) {
            found = Some(exec.clone());
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use rmw_types::{Atomicity, RmwKind};

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    #[test]
    fn outcomes_of_trivial_program() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 7);
        let p = b.build();
        let outs = allowed_outcomes(&p);
        assert_eq!(outs.len(), 1);
        let o = outs.iter().next().unwrap();
        assert_eq!(o.read_values(), Vec::<Value>::new());
        assert_eq!(o.memory_value(X), Some(7));
        assert_eq!(o.memory_value(Y), None);
        assert_eq!(o.final_memory(), &[(X, 7)]);
    }

    #[test]
    fn coherence_final_state() {
        // Two racing writes: final value is one or the other.
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1);
        b.thread().write(X, 2);
        let p = b.build();
        let finals: BTreeSet<Value> = allowed_outcomes(&p)
            .into_iter()
            .map(|o| o.memory_value(X).expect("x is written"))
            .collect();
        assert_eq!(finals, BTreeSet::from([1, 2]));
    }

    #[test]
    fn outcome_allowed_matches_allowed_outcomes() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        let outs = allowed_outcomes(&p);
        for target in [[0u64, 0], [0, 1], [1, 0], [1, 1]] {
            let via_set = outs.iter().any(|o| o.read_values() == target);
            let via_pred = outcome_allowed(&p, |rv| rv == target);
            assert_eq!(via_set, via_pred, "outcome {target:?}");
        }
    }

    #[test]
    fn rmw_read_is_part_of_outcome_vector() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(X, RmwKind::FetchAndAdd(1), Atomicity::Type1)
            .read(X);
        let p = b.build();
        let outs = allowed_outcomes(&p);
        // single thread: RMW reads 0, subsequent read sees 1.
        assert!(outs.iter().any(|o| o.read_values() == vec![0, 1]));
        assert!(outs.iter().all(|o| o.read_values()[0] == 0));
    }

    #[test]
    fn find_execution_returns_a_matching_witness() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        let w = find_execution(&p, |rv| rv == [0, 0]).expect("SB 0/0 is allowed");
        assert_eq!(w.read_values(), vec![0, 0]);
        // Both reads must read from the initial writes in this witness.
        for (&r, &src) in w.rf() {
            if w.event(r).tid.is_some() {
                assert!(w.event(src).is_init(), "0/0 witness reads from init");
            }
        }
        assert!(find_execution(&p, |rv| rv == [7, 7]).is_none());
    }

    #[test]
    fn two_tas_consensus() {
        // Consensus via TAS: exactly one thread's RMW reads 0 in every
        // valid execution (this is the atomicity property — any type).
        for atomicity in Atomicity::ALL {
            let mut b = ProgramBuilder::new();
            b.thread().rmw(X, RmwKind::TestAndSet, atomicity);
            b.thread().rmw(X, RmwKind::TestAndSet, atomicity);
            let p = b.build();
            let outs = allowed_outcomes(&p);
            assert!(!outs.is_empty());
            for o in &outs {
                let winners = o.read_values().iter().filter(|&&v| v == 0).count();
                assert_eq!(
                    winners, 1,
                    "{atomicity}: exactly one TAS must win, got {o:?}"
                );
            }
        }
    }

    #[test]
    fn outcome_new_sorts_its_memory() {
        let a = Outcome::new(vec![1], vec![(Y, 2), (X, 1)]);
        let b = Outcome::new(vec![1], vec![(X, 1), (Y, 2)]);
        assert_eq!(a, b);
        assert_eq!(a.final_memory(), &[(X, 1), (Y, 2)]);
    }

    #[test]
    fn stats_ride_along_with_the_outcome_set() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        let (outs, stats) = allowed_outcomes_with_stats(&p);
        assert_eq!(outs, allowed_outcomes(&p));
        assert!(stats.nodes > 0);
        assert_eq!(stats.valid as usize, crate::valid_executions(&p).len());
        assert_eq!((stats.tasks, stats.workers), (1, 1));
    }
}
