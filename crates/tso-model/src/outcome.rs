//! Allowed outcomes of a program under the model.
//!
//! An [`Outcome`] is the observable result of one valid execution: the value
//! obtained by every read (in `(thread, po)` order, RMW reads included) and
//! the final memory value of every location. [`allowed_outcomes`] collects
//! the set of outcomes over all valid candidate executions — the model's
//! notion of "the behaviours of the program".
//!
//! Both entry points run on the streaming, pruned engine of
//! [`crate::search`]: `allowed_outcomes` folds the visited executions into
//! a set without ever materializing the candidate space, and
//! `outcome_allowed` stops at the first witness.

use crate::execution::CandidateExecution;
use crate::program::Program;
use crate::search::{any_valid_execution, for_each_valid_execution};
use rmw_types::{Addr, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;

/// Observable result of one valid execution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Outcome {
    reads: Vec<Value>,
    memory: BTreeMap<Addr, Value>,
}

impl Outcome {
    /// Creates an outcome from its parts (mostly useful in tests).
    pub fn new(reads: Vec<Value>, memory: BTreeMap<Addr, Value>) -> Self {
        Outcome { reads, memory }
    }

    /// Values obtained by the program's reads, in `(thread, po)` order —
    /// the read halves of RMWs included.
    pub fn read_values(&self) -> Vec<Value> {
        self.reads.clone()
    }

    /// Final value of each location.
    pub fn final_memory(&self) -> &BTreeMap<Addr, Value> {
        &self.memory
    }

    /// Extracts the outcome of a candidate execution (valid or not).
    pub fn of_execution(exec: &CandidateExecution) -> Self {
        Outcome {
            reads: exec.read_values(),
            memory: exec.final_memory(),
        }
    }
}

/// All outcomes of valid executions of `program`, via the streaming search
/// (one execution in memory at a time).
pub fn allowed_outcomes(program: &Program) -> BTreeSet<Outcome> {
    let mut out = BTreeSet::new();
    for_each_valid_execution(program, |exec| {
        out.insert(Outcome::of_execution(exec));
        ControlFlow::Continue(())
    });
    out
}

/// True iff some valid execution satisfies `pred` on its read-value vector.
///
/// This is the primitive litmus assertion: "is the outcome
/// `r1=v1 ∧ r2=v2 ∧ …` allowed?". The search exits at the first witness.
pub fn outcome_allowed(program: &Program, pred: impl Fn(&[Value]) -> bool) -> bool {
    any_valid_execution(program, |exec| pred(&exec.read_values()))
}

/// The first valid execution whose read-value vector satisfies `pred`, or
/// `None` when no valid execution does.
///
/// Same early-exit cost as [`outcome_allowed`], but the witness execution —
/// its `rf`, `ws`, and resolved values — is returned so callers (litmus
/// failure reports, the differential harness) can show *which* execution
/// exhibits an outcome instead of a bare boolean.
pub fn find_execution(
    program: &Program,
    pred: impl Fn(&[Value]) -> bool,
) -> Option<CandidateExecution> {
    let mut found = None;
    for_each_valid_execution(program, |exec| {
        if pred(&exec.read_values()) {
            found = Some(exec.clone());
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use rmw_types::{Atomicity, RmwKind};

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    #[test]
    fn outcomes_of_trivial_program() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 7);
        let p = b.build();
        let outs = allowed_outcomes(&p);
        assert_eq!(outs.len(), 1);
        let o = outs.iter().next().unwrap();
        assert_eq!(o.read_values(), Vec::<Value>::new());
        assert_eq!(o.final_memory()[&X], 7);
    }

    #[test]
    fn coherence_final_state() {
        // Two racing writes: final value is one or the other.
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1);
        b.thread().write(X, 2);
        let p = b.build();
        let finals: BTreeSet<Value> = allowed_outcomes(&p)
            .into_iter()
            .map(|o| o.final_memory()[&X])
            .collect();
        assert_eq!(finals, BTreeSet::from([1, 2]));
    }

    #[test]
    fn outcome_allowed_matches_allowed_outcomes() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        let outs = allowed_outcomes(&p);
        for target in [[0u64, 0], [0, 1], [1, 0], [1, 1]] {
            let via_set = outs.iter().any(|o| o.read_values() == target);
            let via_pred = outcome_allowed(&p, |rv| rv == target);
            assert_eq!(via_set, via_pred, "outcome {target:?}");
        }
    }

    #[test]
    fn rmw_read_is_part_of_outcome_vector() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(X, RmwKind::FetchAndAdd(1), Atomicity::Type1)
            .read(X);
        let p = b.build();
        let outs = allowed_outcomes(&p);
        // single thread: RMW reads 0, subsequent read sees 1.
        assert!(outs.iter().any(|o| o.read_values() == vec![0, 1]));
        assert!(outs.iter().all(|o| o.read_values()[0] == 0));
    }

    #[test]
    fn find_execution_returns_a_matching_witness() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        let w = find_execution(&p, |rv| rv == [0, 0]).expect("SB 0/0 is allowed");
        assert_eq!(w.read_values(), vec![0, 0]);
        // Both reads must read from the initial writes in this witness.
        for (&r, &src) in w.rf() {
            if w.event(r).tid.is_some() {
                assert!(w.event(src).is_init(), "0/0 witness reads from init");
            }
        }
        assert!(find_execution(&p, |rv| rv == [7, 7]).is_none());
    }

    #[test]
    fn two_tas_consensus() {
        // Consensus via TAS: exactly one thread's RMW reads 0 in every
        // valid execution (this is the atomicity property — any type).
        for atomicity in Atomicity::ALL {
            let mut b = ProgramBuilder::new();
            b.thread().rmw(X, RmwKind::TestAndSet, atomicity);
            b.thread().rmw(X, RmwKind::TestAndSet, atomicity);
            let p = b.build();
            let outs = allowed_outcomes(&p);
            assert!(!outs.is_empty());
            for o in &outs {
                let winners = o.read_values().iter().filter(|&&v| v == 0).count();
                assert_eq!(
                    winners, 1,
                    "{atomicity}: exactly one TAS must win, got {o:?}"
                );
            }
        }
    }
}
