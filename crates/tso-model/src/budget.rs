//! Search budgets: bounded node counts and wall-clock deadlines for the
//! cache-tier model queries.
//!
//! The axiomatic search always terminates, but its cost is factorial in
//! events per location — a pathological generated draft can make one
//! verdict query monopolize a campaign shard for hours. A
//! [`SearchBudget`] installed via [`set_budget`] bounds every
//! *cache-tier* query (the [`allowed_outcomes_cached`](crate::allowed_outcomes_cached) path behind the
//! litmus verdicts and the differential harness): when the budget is
//! exhausted mid-search, the query stops at the next decision node and
//! returns whatever it has with
//! [`SearchStats::budget_exhausted`](crate::SearchStats::budget_exhausted)
//! set, which the cache layer surfaces as an explicit *unknown* answer
//! ([`CachedOutcomes::unknown`](crate::CachedOutcomes::unknown)).
//!
//! The contract is *missing, never wrong*:
//!
//! * every execution yielded before exhaustion is genuinely valid, so
//!   **positive** observations (a witness was found) remain sound;
//! * **absence** is unproven, so consumers must treat "not observed" as
//!   unknown, not forbidden;
//! * a truncated result never poisons any cache tier — the in-memory
//!   verdict cache, the persistent [`VerdictStore`](crate::VerdictStore),
//!   and the prefix-certificate store all skip budget-exhausted answers,
//!   so a later (or un-budgeted) query recomputes from scratch;
//! * the parallel engine's once-per-process node-rate calibration runs
//!   outside the budget, so an installed budget cannot skew the adaptive
//!   split policy.
//!
//! With no budget installed — or with one installed but never hit — every
//! result and every [`SearchStats`](crate::SearchStats) is bit-identical
//! to the un-budgeted engine.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A bound on the work one cache-tier model query may spend.
///
/// Both limits are optional; an all-`None` budget never exhausts. The
/// node limit counts decision nodes (the same quantity as
/// [`SearchStats::nodes`](crate::SearchStats::nodes)) across *all*
/// subtree tasks of one query; the deadline is measured from the moment
/// the query starts its search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchBudget {
    /// Maximum decision nodes a single query may explore.
    pub max_nodes: Option<u64>,
    /// Maximum wall-clock time a single query may search for.
    pub max_time: Option<Duration>,
}

impl SearchBudget {
    /// True when the budget can never exhaust (both limits absent).
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none() && self.max_time.is_none()
    }
}

fn budget_slot() -> &'static RwLock<Option<SearchBudget>> {
    static SLOT: OnceLock<RwLock<Option<SearchBudget>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs the process-wide search budget (replacing any previous one).
/// Applies to every subsequent cache-tier query until [`take_budget`].
pub fn set_budget(budget: SearchBudget) {
    *budget_slot().write().expect("search budget lock") = Some(budget);
}

/// Uninstalls the process-wide search budget, returning it. Subsequent
/// queries run unbounded, exactly as if no budget was ever set.
pub fn take_budget() -> Option<SearchBudget> {
    budget_slot().write().expect("search budget lock").take()
}

/// The currently installed budget, if any.
pub fn current_budget() -> Option<SearchBudget> {
    *budget_slot().read().expect("search budget lock")
}

/// Live accounting for one budgeted query: shared by every subtree task
/// of the query's search, so the node limit is global to the query, not
/// per-task.
pub(crate) struct QueryBudget {
    max_nodes: Option<u64>,
    deadline: Option<Instant>,
    nodes: AtomicU64,
    exhausted: AtomicBool,
}

/// How many charged nodes elapse between wall-clock checks: `Instant::now`
/// per decision node would dominate small searches.
const DEADLINE_CHECK_MASK: u64 = 1023;

impl QueryBudget {
    /// Charges one decision node against the budget. Returns `true` when
    /// the budget is (now) exhausted — the search must stop.
    pub(crate) fn charge(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return true;
        }
        let n = self.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        let over_nodes = self.max_nodes.is_some_and(|m| n > m);
        let over_time =
            n & DEADLINE_CHECK_MASK == 0 && self.deadline.is_some_and(|d| Instant::now() >= d);
        if over_nodes || over_time {
            self.exhausted.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Starts accounting for one query under the installed budget, or `None`
/// when no (limiting) budget is installed — the common case, which costs
/// one `RwLock` read and no allocation.
pub(crate) fn begin_query() -> Option<Arc<QueryBudget>> {
    let budget = current_budget()?;
    if budget.is_unlimited() {
        return None;
    }
    Some(Arc::new(QueryBudget {
        max_nodes: budget.max_nodes,
        deadline: budget.max_time.map(|t| Instant::now() + t),
        nodes: AtomicU64::new(0),
        exhausted: AtomicBool::new(false),
    }))
}

/// True when a limiting budget is installed (the cache layer routes
/// around its memoization cells in that case, so truncated answers are
/// never committed).
pub(crate) fn installed() -> bool {
    current_budget().is_some_and(|b| !b.is_unlimited())
}

#[cfg(test)]
mod tests {
    use super::*;

    // NB: the budget slot is process-wide; tests here only exercise the
    // pure accounting (install/uninstall cycles live in the integration
    // suite, serialized against other budget users).

    #[test]
    fn unlimited_budgets_never_begin_accounting() {
        assert!(SearchBudget::default().is_unlimited());
        let qb = QueryBudget {
            max_nodes: None,
            deadline: None,
            nodes: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        };
        for _ in 0..10_000 {
            assert!(!qb.charge());
        }
    }

    #[test]
    fn node_limit_trips_exactly_past_the_cap() {
        let qb = QueryBudget {
            max_nodes: Some(5),
            deadline: None,
            nodes: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        };
        for _ in 0..5 {
            assert!(!qb.charge());
        }
        assert!(qb.charge(), "node 6 exceeds a 5-node budget");
        assert!(qb.charge(), "exhaustion is sticky");
    }

    #[test]
    fn expired_deadline_trips_at_the_next_check_window() {
        let qb = QueryBudget {
            max_nodes: None,
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            nodes: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        };
        // The deadline is only consulted every `DEADLINE_CHECK_MASK + 1`
        // nodes; it must trip within one window.
        let mut tripped = false;
        for _ in 0..=DEADLINE_CHECK_MASK + 1 {
            if qb.charge() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "expired deadline must exhaust within one window");
    }
}
