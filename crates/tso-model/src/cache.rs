//! Process-wide verdict memoization for the axiomatic model.
//!
//! Every consumer that needs a program's full behaviour — the litmus
//! verdicts, the harness's three-atomicity differential comparison, the
//! corpus generators — funnels through [`allowed_outcomes_cached`]. The
//! cache is keyed by the **full canonical serialization** of the program
//! ([`Program::canonicalize`] — thread- and address-renaming quotiented,
//! collision-proof by construction), so:
//!
//! * the three `with_atomicity` rewrites of an RMW-free test are *one*
//!   entry (they are literally the same program);
//! * thread-permuted / address-renamed duplicates across the generated
//!   families and random corpus collapse to one model invocation each;
//! * a litmus verdict and the harness's differential pass over the same
//!   program never search twice.
//!
//! Entries store the outcome set in canonical coordinates plus the
//! [`SearchStats`] of the search that produced it; lookups map the set
//! back into the caller's coordinates ([`Canonical::outcome_to_original`])
//! and report whether they hit. Concurrent misses on the same key are
//! collapsed by a per-entry [`OnceLock`], so two harness workers racing on
//! equivalent tests compute the search once and one of them blocks
//! briefly instead of both burning a core.
//!
//! On a miss the query drops to the prefix-certificate tier
//! ([`crate::prefix`]): a program sharing its atomicity-masked canonical
//! key with an already searched sibling replays that sibling's
//! certificate instead of searching, and a genuinely novel program runs
//! the *adaptive* engine ([`crate::par`]) at
//! [`exec_pool::default_workers`] — sequential on small shapes (fan-out
//! overhead never amortizes there), split across the pool on large ones,
//! and identical results and stats either way.
//!
//! The cache grows with distinct canonical programs. Litmus-scale
//! workloads (a few hundred small entries) make eviction pointless;
//! [`clear`] exists for tests and long-lived embedders.
//!
//! # Persistence
//!
//! The in-memory cache dies with the process. A [`VerdictStore`]
//! registered via [`set_store`] extends it across invocations: on a miss
//! the cache first asks the store for the key ([`VerdictStore::load`] — a
//! *store hit*, counted separately from searches), and only searches when
//! the store doesn't know the program either, handing the fresh entry to
//! [`VerdictStore::save`] so the next process never searches it again.
//! The `harness` crate provides the production implementation (an
//! append-only record file; see `DESIGN.md` "verdict store") and installs
//! it from the `litmus_run` CLI; the hook lives here so *every* consumer
//! of [`allowed_outcomes_cached`] — `Litmus::check`, corpus generation,
//! the differential harness — shares one store without `tso-model`
//! depending on any I/O code.

use crate::canon::Canonical;
use crate::outcome::Outcome;
use crate::program::Program;
use crate::search::SearchStats;
use rmw_types::fasthash::FastHashMap;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// One cached canonical program: its outcome set (canonical coordinates)
/// and the stats of the search that computed it.
struct Entry {
    outcomes: BTreeSet<Outcome>,
    stats: SearchStats,
}

type Cell = Arc<OnceLock<Arc<Entry>>>;

fn cache() -> &'static Mutex<FastHashMap<Vec<u64>, Cell>> {
    static CACHE: OnceLock<Mutex<FastHashMap<Vec<u64>, Cell>>> = OnceLock::new();
    CACHE.get_or_init(Mutex::default)
}

static QUERIES: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORE_HITS: AtomicU64 = AtomicU64::new(0);

/// A persistent verdict backend the in-memory cache consults on misses.
///
/// Keys are the program's **full canonical serialization**
/// ([`Canonical::key`] — collision-proof), and outcome sets are in the
/// canonical program's coordinates, exactly as cached in memory. An
/// implementation must be internally synchronized: the cache calls it
/// from concurrent workers.
pub trait VerdictStore: Send + Sync {
    /// Returns the persisted outcome set and attributed search stats for
    /// `key`, or `None` when the store has never seen the program class.
    fn load(&self, key: &[u64]) -> Option<(BTreeSet<Outcome>, SearchStats)>;

    /// Persists a freshly searched entry. `fingerprint` is the 64-bit
    /// canonical fingerprint of `key` (useful as an index/shard hint —
    /// the collision-proof identity is still `key`). Failures must be
    /// swallowed or logged by the implementation: persistence is an
    /// optimization, never a correctness dependency.
    fn save(
        &self,
        key: &[u64],
        fingerprint: u64,
        outcomes: &BTreeSet<Outcome>,
        stats: &SearchStats,
    );
}

fn store_slot() -> &'static RwLock<Option<Arc<dyn VerdictStore>>> {
    static STORE: OnceLock<RwLock<Option<Arc<dyn VerdictStore>>>> = OnceLock::new();
    STORE.get_or_init(|| RwLock::new(None))
}

/// Installs the process-wide persistent verdict store (replacing any
/// previous one). Entries already cached in memory are not re-saved;
/// install the store before the first query to capture everything.
pub fn set_store(store: Arc<dyn VerdictStore>) {
    *store_slot().write().expect("verdict store lock") = Some(store);
}

/// Uninstalls the persistent store, returning it so the owner can flush
/// or inspect it. Subsequent misses search (and stay in memory) as if no
/// store was ever configured.
pub fn take_store() -> Option<Arc<dyn VerdictStore>> {
    store_slot().write().expect("verdict store lock").take()
}

fn current_store() -> Option<Arc<dyn VerdictStore>> {
    store_slot().read().expect("verdict store lock").clone()
}

/// Cumulative cache counters, as exposed in the harness JSON report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Outcome-set queries answered (hit or miss).
    pub queries: u64,
    /// Queries that ran an actual model search — the "total model
    /// invocations" number the memoization layer exists to shrink.
    pub invocations: u64,
    /// Misses answered by the persistent [`VerdictStore`] instead of a
    /// search (0 when no store is installed). Store hits are *not*
    /// invocations: no search ran.
    pub store_hits: u64,
    /// Distinct canonical programs currently cached.
    pub entries: u64,
}

impl CacheCounters {
    /// Queries served without a search.
    pub fn hits(&self) -> u64 {
        self.queries - self.invocations
    }
}

/// Snapshot of the process-wide counters.
pub fn counters() -> CacheCounters {
    CacheCounters {
        queries: QUERIES.load(Ordering::Relaxed),
        invocations: MISSES.load(Ordering::Relaxed),
        store_hits: STORE_HITS.load(Ordering::Relaxed),
        entries: cache().lock().expect("model cache lock").len() as u64,
    }
}

/// Empties the in-memory cache and zeroes the counters (tests; embedders
/// that want a fresh measurement). A registered [`VerdictStore`] is left
/// installed and keeps its contents — persisted verdicts outlive clears
/// by design; use [`take_store`] to detach it.
pub fn clear() {
    cache().lock().expect("model cache lock").clear();
    QUERIES.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    STORE_HITS.store(0, Ordering::Relaxed);
}

/// A memoized outcome-set query, in the **original program's**
/// coordinates.
#[derive(Debug, Clone)]
pub struct CachedOutcomes {
    /// The allowed outcome set, identical to
    /// [`allowed_outcomes`](crate::outcome::allowed_outcomes) on the same
    /// program.
    pub outcomes: BTreeSet<Outcome>,
    /// Stats of the search that populated the entry. On a hit this is
    /// *attributed* (the work happened when the entry was created,
    /// possibly for a permuted sibling), so consumers can still see how
    /// heavy the program class is.
    pub stats: SearchStats,
    /// True when no search ran for this query.
    pub hit: bool,
    /// True when this query was answered by replaying a prefix
    /// certificate ([`crate::prefix`]) recorded for a masked-key sibling
    /// — set only on the query that did the work, like `hit`'s negation.
    pub prefix_hit: bool,
    /// True when this query ran a fresh search and the adaptive engine
    /// decided to fan out across the worker pool.
    pub split: bool,
    /// True when an installed [`SearchBudget`](crate::budget::SearchBudget)
    /// ran out mid-search: `outcomes` is a sound but possibly incomplete
    /// subset (*missing, never wrong* — every member is genuinely
    /// allowed, but absence proves nothing). Truncated answers are never
    /// committed to the in-memory cache, the [`VerdictStore`], or the
    /// certificate tier, so a later query recomputes. Always false when
    /// no budget is installed.
    pub unknown: bool,
    /// The canonical fingerprint the entry is filed under (diagnostics).
    pub fingerprint: u64,
}

/// The memoized [`allowed_outcomes`](crate::outcome::allowed_outcomes):
/// canonicalize, look up, search only on a miss (parallel, at
/// [`exec_pool::default_workers`]), and map the set back into the
/// caller's coordinates.
pub fn allowed_outcomes_cached(program: &Program) -> CachedOutcomes {
    let canon = program.canonicalize();
    allowed_outcomes_canonical(&canon)
}

/// [`allowed_outcomes_cached`] for callers that already canonicalized.
pub fn allowed_outcomes_canonical(canon: &Canonical) -> CachedOutcomes {
    QUERIES.fetch_add(1, Ordering::Relaxed);
    let cell: Cell = {
        let mut map = cache().lock().expect("model cache lock");
        Arc::clone(map.entry(canon.key().to_vec()).or_default())
    };
    if crate::budget::installed() {
        // A limiting budget might truncate the search, and a `OnceLock`
        // cell cannot be un-populated — so budgeted queries take a path
        // that only commits complete answers.
        return budgeted_canonical(canon, &cell);
    }
    let mut searched = false;
    let mut prefix_hit = false;
    let mut split = false;
    let entry = Arc::clone(cell.get_or_init(|| {
        // Memory miss: the persistent store (when installed) is the next
        // tier — a store hit costs a lookup, not a search.
        if let Some(store) = current_store() {
            if let Some((outcomes, stats)) = store.load(canon.key()) {
                STORE_HITS.fetch_add(1, Ordering::Relaxed);
                return Arc::new(Entry { outcomes, stats });
            }
        }
        searched = true;
        MISSES.fetch_add(1, Ordering::Relaxed);
        // The certificate tier replays a masked-key sibling's pruned
        // search when it can, and otherwise runs the recording adaptive
        // engine (sequential below the split floor, fanned out above it).
        let answer = crate::prefix::query(canon, exec_pool::default_workers());
        prefix_hit = answer.prefix_hit;
        split = answer.split;
        if let Some(store) = current_store() {
            store.save(
                canon.key(),
                canon.fingerprint(),
                &answer.outcomes,
                &answer.stats,
            );
        }
        Arc::new(Entry {
            outcomes: answer.outcomes,
            stats: answer.stats,
        })
    }));
    let outcomes = entry
        .outcomes
        .iter()
        .map(|o| canon.outcome_to_original(o))
        .collect();
    CachedOutcomes {
        outcomes,
        stats: entry.stats,
        hit: !searched,
        prefix_hit,
        split,
        unknown: false,
        fingerprint: canon.fingerprint(),
    }
}

/// Builds a [`CachedOutcomes`] hit answer from a committed entry, mapped
/// back into the caller's coordinates. Committed entries are always
/// complete (truncated answers never reach a cell), hence `unknown:
/// false`.
fn from_entry(canon: &Canonical, entry: &Entry) -> CachedOutcomes {
    CachedOutcomes {
        outcomes: entry
            .outcomes
            .iter()
            .map(|o| canon.outcome_to_original(o))
            .collect(),
        stats: entry.stats,
        hit: true,
        prefix_hit: false,
        split: false,
        unknown: false,
        fingerprint: canon.fingerprint(),
    }
}

/// The budget-aware query path: same tiers as the `OnceLock` path
/// (memory → persistent store → prefix/search), but a budget-exhausted
/// search result is returned as an explicit *unknown* answer without
/// being written to the cell, the [`VerdictStore`], or (via the
/// `stopped_early` gate in [`crate::prefix`]) the certificate tier.
/// Concurrent misses on the same key may each search — the miss-collapse
/// optimization is traded away while a budget is installed, results are
/// unaffected.
fn budgeted_canonical(canon: &Canonical, cell: &Cell) -> CachedOutcomes {
    if let Some(entry) = cell.get() {
        return from_entry(canon, entry);
    }
    if let Some(store) = current_store() {
        if let Some((outcomes, stats)) = store.load(canon.key()) {
            STORE_HITS.fetch_add(1, Ordering::Relaxed);
            let entry = Arc::new(Entry { outcomes, stats });
            let answer = from_entry(canon, &entry);
            let _ = cell.set(entry); // a racing loser changes nothing
            return answer;
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let answer = crate::prefix::query(canon, exec_pool::default_workers());
    let outcomes = answer
        .outcomes
        .iter()
        .map(|o| canon.outcome_to_original(o))
        .collect();
    let truncated = answer.stats.budget_exhausted;
    if !truncated {
        if let Some(store) = current_store() {
            store.save(
                canon.key(),
                canon.fingerprint(),
                &answer.outcomes,
                &answer.stats,
            );
        }
        let _ = cell.set(Arc::new(Entry {
            outcomes: answer.outcomes,
            stats: answer.stats,
        }));
    }
    CachedOutcomes {
        outcomes,
        stats: answer.stats,
        hit: false,
        prefix_hit: answer.prefix_hit,
        split: answer.split,
        unknown: truncated,
        fingerprint: canon.fingerprint(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::allowed_outcomes;
    use crate::program::ProgramBuilder;
    use rmw_types::{Addr, Atomicity, RmwKind};

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    // NB: the cache and its counters are process-wide and the test harness
    // is multi-threaded, so assertions compare *deltas of this test's own
    // queries* or use programs unique to each test.

    fn unique_program(tag: u64) -> Program {
        let mut b = ProgramBuilder::new();
        // The written value makes the program unique to the caller: values
        // are not quotiented by canonicalization.
        b.thread().write(X, 1000 + tag).read(Y);
        b.thread().write(Y, 2000 + tag).read(X);
        b.build()
    }

    #[test]
    fn cached_set_equals_direct_set() {
        let p = unique_program(1);
        let cached = allowed_outcomes_cached(&p);
        assert_eq!(cached.outcomes, allowed_outcomes(&p));
        assert!(!cached.hit, "first query of a unique program must miss");
        let again = allowed_outcomes_cached(&p);
        assert!(again.hit);
        assert_eq!(again.outcomes, cached.outcomes);
        assert_eq!(again.stats, cached.stats, "stats are attributed on hits");
    }

    #[test]
    fn permuted_siblings_share_one_entry_with_correct_frames() {
        // Same program modulo thread order and address names — and with
        // asymmetric threads, so the coordinate mapping actually works.
        let mut a = ProgramBuilder::new();
        a.thread().write(X, 3001).write(Y, 3002);
        a.thread().read(Y).read(X);
        let a = a.build();

        let mut b = ProgramBuilder::new();
        b.thread().read(Addr(7)).read(Addr(5));
        b.thread().write(Addr(5), 3001).write(Addr(7), 3002);
        let b = b.build();

        let ca = allowed_outcomes_cached(&a);
        let cb = allowed_outcomes_cached(&b);
        assert_eq!(ca.fingerprint, cb.fingerprint);
        assert!(!ca.hit || !cb.hit, "at most one of the pair computes");
        assert!(ca.hit || cb.hit, "the second query must hit");
        // Each answer is in its own frame and matches a direct search.
        assert_eq!(ca.outcomes, allowed_outcomes(&a));
        assert_eq!(cb.outcomes, allowed_outcomes(&b));
    }

    #[test]
    fn atomicity_rewrites_of_rmw_free_programs_collapse() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 4001).read(Y);
        b.thread().write(Y, 4002).fence().read(X);
        let p = b.build();
        let mut hits = 0;
        for atomicity in Atomicity::ALL {
            if allowed_outcomes_cached(&p.with_atomicity(atomicity)).hit {
                hits += 1;
            }
        }
        assert!(hits >= 2, "RMW-free rewrites are identical programs");
    }

    #[test]
    fn rmw_atomicity_is_part_of_the_key() {
        let mk = |a: Atomicity| {
            let mut b = ProgramBuilder::new();
            b.thread().rmw(X, RmwKind::FetchAndAdd(5001), a).read(Y);
            b.thread().write(Y, 5002).read(X);
            b.build()
        };
        let f1 = mk(Atomicity::Type1).canonical_fingerprint();
        let f3 = mk(Atomicity::Type3).canonical_fingerprint();
        assert_ne!(f1, f3, "atomicity must distinguish cache entries");
    }

    #[test]
    fn a_persistent_store_answers_misses_and_receives_fresh_entries() {
        // An in-memory fake of the harness's on-disk store: the contract
        // is load-on-miss / save-after-search, in canonical coordinates.
        type Entry = (BTreeSet<Outcome>, SearchStats);
        #[derive(Default)]
        struct FakeStore {
            entries: Mutex<FastHashMap<Vec<u64>, Entry>>,
            loads: AtomicU64,
            saves: AtomicU64,
        }
        impl VerdictStore for FakeStore {
            fn load(&self, key: &[u64]) -> Option<(BTreeSet<Outcome>, SearchStats)> {
                self.loads.fetch_add(1, Ordering::Relaxed);
                self.entries.lock().unwrap().get(key).cloned()
            }
            fn save(
                &self,
                key: &[u64],
                _fingerprint: u64,
                outcomes: &BTreeSet<Outcome>,
                stats: &SearchStats,
            ) {
                self.saves.fetch_add(1, Ordering::Relaxed);
                self.entries
                    .lock()
                    .unwrap()
                    .insert(key.to_vec(), (outcomes.clone(), *stats));
            }
        }

        let store = Arc::new(FakeStore::default());
        set_store(Arc::<FakeStore>::clone(&store));
        // Fresh search: saved into the store.
        let p = unique_program(71);
        let first = allowed_outcomes_cached(&p);
        assert!(!first.hit);
        assert!(store.saves.load(Ordering::Relaxed) >= 1);
        let key = p.canonicalize().key().to_vec();
        assert!(store.entries.lock().unwrap().contains_key(&key));

        // Simulate a process restart: drop the memory cache, keep the
        // store. The next query is a *store hit* — no search, `hit` true.
        let dropped = {
            let mut map = cache().lock().unwrap();
            map.remove(&key).is_some()
        };
        assert!(dropped, "entry was in the memory cache");
        let before = counters();
        let again = allowed_outcomes_cached(&p);
        let after = counters();
        assert!(again.hit, "store hits run no search");
        assert_eq!(again.outcomes, first.outcomes);
        assert_eq!(
            again.stats, first.stats,
            "stats attributed through the store"
        );
        assert_eq!(after.invocations, before.invocations, "no search ran");
        assert!(after.store_hits > before.store_hits);

        // Detach: the store comes back out, and a fresh miss searches
        // again instead of loading.
        let detached = take_store().expect("store was installed");
        assert!(Arc::ptr_eq(
            &(detached as Arc<dyn VerdictStore>),
            &(store as Arc<dyn VerdictStore>)
        ));
    }

    #[test]
    fn counters_move_with_queries() {
        let before = counters();
        let p = unique_program(6);
        let _ = allowed_outcomes_cached(&p);
        let _ = allowed_outcomes_cached(&p);
        let after = counters();
        assert!(after.queries >= before.queries + 2);
        assert!(after.invocations > before.invocations);
        assert!(after.hits() > before.hits());
        assert!(after.entries >= 1);
    }
}
