//! Candidate executions: events plus existentially-quantified `rf` and `ws`
//! (paper §2.1), with the derived relations `fr`, `rfe`, `com`, `ppo`, `bar`.
//!
//! [`enumerate_candidates`] produces every candidate execution of a program:
//! each read is assigned a write to the same location to read from, and each
//! location's writes are linearly ordered (`ws`, with the implicit initial
//! write first). Validity of a candidate is decided separately by
//! [`crate::validity::check_validity`].

use crate::event::{Event, EventId, EventKind, RmwHalf, RmwId, RmwLink};
use crate::graph::DiGraph;
use crate::program::{Instr, Program};
use rmw_types::{Addr, ThreadId, Value};
use std::collections::BTreeMap;

/// A candidate execution: events with a concrete `rf` and `ws` assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateExecution {
    events: Vec<Event>,
    /// For each read event id: the write event it reads from.
    rf: BTreeMap<EventId, EventId>,
    /// Per location: the write serialization, initial write first.
    ws: BTreeMap<Addr, Vec<EventId>>,
    /// Resolved value of every memory event (reads: value read; writes:
    /// value stored).
    values: Vec<Value>,
}

impl CandidateExecution {
    /// All events, indexed by [`EventId`].
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// The write each read reads from.
    pub fn rf(&self) -> &BTreeMap<EventId, EventId> {
        &self.rf
    }

    /// The write serialization per location (initial write first).
    pub fn ws(&self) -> &BTreeMap<Addr, Vec<EventId>> {
        &self.ws
    }

    /// The resolved value of a memory event (reads: value obtained; writes:
    /// value stored). Fences have value 0.
    pub fn value_of(&self, id: EventId) -> Value {
        self.values[id.index()]
    }

    /// Values of all reads in `(thread, po)` order — the canonical outcome
    /// vector of the execution (RMW reads included).
    pub fn read_values(&self) -> Vec<Value> {
        let mut reads: Vec<&Event> = self.events.iter().filter(|e| e.is_read()).collect();
        reads.sort_by_key(|e| (e.tid, e.po_index));
        reads.iter().map(|e| self.value_of(e.id)).collect()
    }

    /// Final memory value per location: the last write in `ws`.
    pub fn final_memory(&self) -> BTreeMap<Addr, Value> {
        self.ws
            .iter()
            .map(|(&a, order)| {
                let last = *order.last().expect("ws contains at least the init write");
                (a, self.value_of(last))
            })
            .collect()
    }

    /// `fr`: each read is before every write (to the same location) that is
    /// `ws`-after the write it read from.
    pub fn fr_edges(&self) -> Vec<(EventId, EventId)> {
        let mut fr = Vec::new();
        for (&r, &w) in &self.rf {
            let addr = self.event(r).addr.expect("read has address");
            let order = &self.ws[&addr];
            let pos = order
                .iter()
                .position(|&x| x == w)
                .expect("rf source is in ws");
            for &later in &order[pos + 1..] {
                fr.push((r, later));
            }
        }
        fr
    }

    /// `rfe`: the external sub-relation of `rf` (different threads; reads
    /// from the initial writes count as external).
    pub fn rfe_edges(&self) -> Vec<(EventId, EventId)> {
        self.rf
            .iter()
            .filter(|(&r, &w)| {
                let (er, ew) = (self.event(r), self.event(w));
                ew.is_init() || er.tid != ew.tid
            })
            .map(|(&r, &w)| (w, r))
            .collect()
    }

    /// `ws` as edges (transitively reduced: consecutive pairs suffice for
    /// cycle detection; we emit the full order for clarity).
    pub fn ws_edges(&self) -> Vec<(EventId, EventId)> {
        let mut edges = Vec::new();
        for order in self.ws.values() {
            for i in 0..order.len() {
                for j in i + 1..order.len() {
                    edges.push((order[i], order[j]));
                }
            }
        }
        edges
    }

    /// `com = ws ∪ rfe ∪ fr` as a graph over events.
    pub fn com_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.events.len());
        for (u, v) in self
            .ws_edges()
            .into_iter()
            .chain(self.rfe_edges())
            .chain(self.fr_edges())
        {
            g.add_edge(u.index(), v.index());
        }
        g
    }

    /// `ppo`: same-thread program-order pairs of memory events, except W→R
    /// (TSO lets reads bypass buffered writes).
    pub fn ppo_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.events.len());
        for (u, v) in self.same_thread_mem_pairs() {
            let (eu, ev) = (self.event(u), self.event(v));
            let w_to_r = eu.is_write() && ev.is_read();
            if !w_to_r {
                g.add_edge(u.index(), v.index());
            }
        }
        g
    }

    /// `bar`: memory operations separated by a fence in program order.
    pub fn bar_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.events.len());
        let mut by_thread: BTreeMap<ThreadId, Vec<&Event>> = BTreeMap::new();
        for e in &self.events {
            if let Some(t) = e.tid {
                by_thread.entry(t).or_default().push(e);
            }
        }
        for evs in by_thread.values_mut() {
            evs.sort_by_key(|e| e.po_index);
            for (i, f) in evs.iter().enumerate() {
                if f.kind != EventKind::Fence {
                    continue;
                }
                for before in &evs[..i] {
                    if !before.is_mem() {
                        continue;
                    }
                    for after in &evs[i + 1..] {
                        if after.is_mem() {
                            g.add_edge(before.id.index(), after.id.index());
                        }
                    }
                }
            }
        }
        g
    }

    /// `po-loc`: same-thread, same-location program-order pairs of memory
    /// events — the per-location order `uniproc` compares `com` against.
    pub fn poloc_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.events.len());
        for (u, v) in self.same_thread_mem_pairs() {
            if self.event(u).addr == self.event(v).addr {
                g.add_edge(u.index(), v.index());
            }
        }
        g
    }

    /// All RMW instances: `(rmw_id, Ra, Wa, link)`.
    pub fn rmws(&self) -> Vec<(RmwId, EventId, EventId, RmwLink)> {
        type Halves = (Option<EventId>, Option<EventId>, Option<RmwLink>);
        let mut by_id: BTreeMap<RmwId, Halves> = BTreeMap::new();
        for e in &self.events {
            if let Some(link) = e.rmw {
                let slot = by_id.entry(link.rmw_id).or_default();
                match link.half {
                    RmwHalf::Read => slot.0 = Some(e.id),
                    RmwHalf::Write => slot.1 = Some(e.id),
                }
                slot.2 = Some(link);
            }
        }
        by_id
            .into_iter()
            .map(|(id, (r, w, l))| {
                (
                    id,
                    r.expect("RMW has read half"),
                    w.expect("RMW has write half"),
                    l.expect("RMW has link"),
                )
            })
            .collect()
    }

    /// Same-thread ordered pairs of *memory* events (skipping fences),
    /// `u` po-before `v`.
    fn same_thread_mem_pairs(&self) -> Vec<(EventId, EventId)> {
        let mut by_thread: BTreeMap<ThreadId, Vec<&Event>> = BTreeMap::new();
        for e in &self.events {
            if e.is_mem() {
                if let Some(t) = e.tid {
                    by_thread.entry(t).or_default().push(e);
                }
            }
        }
        let mut pairs = Vec::new();
        for evs in by_thread.values_mut() {
            evs.sort_by_key(|e| e.po_index);
            for i in 0..evs.len() {
                for j in i + 1..evs.len() {
                    pairs.push((evs[i].id, evs[j].id));
                }
            }
        }
        pairs
    }

    /// Renders the execution for debugging: events, rf, ws.
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{} = {}  [v={}]", e.id, e.label(), self.value_of(e.id));
        }
        for (&r, &w) in &self.rf {
            let _ = writeln!(s, "rf: {} -> {}", w, r);
        }
        for (a, order) in &self.ws {
            let names: Vec<String> = order.iter().map(ToString::to_string).collect();
            let _ = writeln!(s, "ws[{}]: {}", a.name(), names.join(" -> "));
        }
        s
    }
}

/// Builds the event list of a program: initial writes first, then each
/// thread's events in program order (RMWs expand to read-then-write).
fn build_events(program: &Program) -> Vec<Event> {
    let mut events = Vec::new();
    let mut next_rmw = 0usize;
    // Initial writes, one per touched address, value 0.
    for addr in program.addresses() {
        events.push(Event {
            id: EventId(events.len()),
            tid: None,
            po_index: 0,
            kind: EventKind::Write,
            addr: Some(addr),
            rmw: None,
            write_value: Some(0),
        });
    }
    for (tid, instrs) in program.iter() {
        let mut po = 0usize;
        for &instr in instrs {
            match instr {
                Instr::Read(addr) => {
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Read,
                        addr: Some(addr),
                        rmw: None,
                        write_value: None,
                    });
                    po += 1;
                }
                Instr::Write(addr, v) => {
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Write,
                        addr: Some(addr),
                        rmw: None,
                        write_value: Some(v),
                    });
                    po += 1;
                }
                Instr::Rmw {
                    addr,
                    kind,
                    atomicity,
                } => {
                    let rmw_id = RmwId(next_rmw);
                    next_rmw += 1;
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Read,
                        addr: Some(addr),
                        rmw: Some(RmwLink {
                            rmw_id,
                            half: RmwHalf::Read,
                            kind,
                            atomicity,
                        }),
                        write_value: None,
                    });
                    po += 1;
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Write,
                        addr: Some(addr),
                        rmw: Some(RmwLink {
                            rmw_id,
                            half: RmwHalf::Write,
                            kind,
                            atomicity,
                        }),
                        write_value: None,
                    });
                    po += 1;
                }
                Instr::Fence => {
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Fence,
                        addr: None,
                        rmw: None,
                        write_value: None,
                    });
                    po += 1;
                }
            }
        }
    }
    events
}

/// Resolves the value of every event given an `rf` assignment, or `None`
/// when the assignment is circular (an RMW's value depending on itself
/// through `rf` without a fixed point — such candidates are discarded; they
/// are also rejected by the acyclicity check).
fn resolve_values(events: &[Event], rf: &BTreeMap<EventId, EventId>) -> Option<Vec<Value>> {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Unvisited,
        InProgress,
        Done,
    }
    let n = events.len();
    let mut values = vec![0u64; n];
    let mut state = vec![St::Unvisited; n];

    // Pair up RMW halves so the write half can find its read half.
    let mut rmw_read_of_write: BTreeMap<usize, usize> = BTreeMap::new();
    {
        let mut reads: BTreeMap<RmwId, usize> = BTreeMap::new();
        for e in events {
            if let Some(l) = e.rmw {
                if l.half == RmwHalf::Read {
                    reads.insert(l.rmw_id, e.id.index());
                }
            }
        }
        for e in events {
            if let Some(l) = e.rmw {
                if l.half == RmwHalf::Write {
                    rmw_read_of_write.insert(e.id.index(), reads[&l.rmw_id]);
                }
            }
        }
    }

    fn eval(
        i: usize,
        events: &[Event],
        rf: &BTreeMap<EventId, EventId>,
        rmw_read_of_write: &BTreeMap<usize, usize>,
        values: &mut [Value],
        state: &mut [St],
    ) -> Option<Value> {
        match state[i] {
            St::Done => return Some(values[i]),
            St::InProgress => return None, // circular dependency
            St::Unvisited => {}
        }
        state[i] = St::InProgress;
        let e = &events[i];
        let v = match e.kind {
            EventKind::Fence => 0,
            EventKind::Read => {
                let src = rf.get(&e.id).expect("every read has an rf source");
                eval(src.index(), events, rf, rmw_read_of_write, values, state)?
            }
            EventKind::Write => match (e.write_value, e.rmw) {
                (Some(c), _) => c,
                (None, Some(link)) => {
                    let ra = rmw_read_of_write[&i];
                    let read_v = eval(ra, events, rf, rmw_read_of_write, values, state)?;
                    link.kind.apply(read_v)
                }
                (None, None) => unreachable!("plain write without value"),
            },
        };
        values[i] = v;
        state[i] = St::Done;
        Some(v)
    }

    for i in 0..n {
        eval(i, events, rf, &rmw_read_of_write, &mut values, &mut state)?;
    }
    Some(values)
}

/// Enumerates every candidate execution of `program`: all `rf` choices ×
/// all `ws` linearizations. Candidates with circular value dependencies are
/// dropped (they can never be valid).
///
/// The cost is exponential in program size; litmus tests (≤ ~12 events) are
/// the intended scale.
pub fn enumerate_candidates(program: &Program) -> Vec<CandidateExecution> {
    let events = build_events(program);
    let reads: Vec<EventId> = events
        .iter()
        .filter(|e| e.is_read())
        .map(|e| e.id)
        .collect();

    // Candidate rf sources per read: writes to the same address, except the
    // read's own RMW write half ("Ra reads an earlier value, not Wa's").
    let rf_choices: Vec<Vec<EventId>> = reads
        .iter()
        .map(|&r| {
            let er = &events[r.index()];
            events
                .iter()
                .filter(|w| w.is_write() && w.addr == er.addr)
                .filter(|w| match (er.rmw, w.rmw) {
                    (Some(lr), Some(lw)) => lr.rmw_id != lw.rmw_id,
                    _ => true,
                })
                .map(|w| w.id)
                .collect()
        })
        .collect();

    // Writes per location (non-init), to permute after the init write.
    let mut writes_by_addr: BTreeMap<Addr, Vec<EventId>> = BTreeMap::new();
    for e in &events {
        if e.is_write() && !e.is_init() {
            writes_by_addr
                .entry(e.addr.expect("write has addr"))
                .or_default()
                .push(e.id);
        }
    }
    let init_by_addr: BTreeMap<Addr, EventId> = events
        .iter()
        .filter(|e| e.is_init())
        .map(|e| (e.addr.expect("init write has addr"), e.id))
        .collect();

    let mut out = Vec::new();
    let mut rf_pick = vec![0usize; reads.len()];
    loop {
        let rf: BTreeMap<EventId, EventId> = reads
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, rf_choices[i][rf_pick[i]]))
            .collect();

        if let Some(values) = resolve_values(&events, &rf) {
            // Enumerate ws permutations per address.
            let addrs: Vec<Addr> = init_by_addr.keys().copied().collect();
            let mut perms_per_addr: Vec<Vec<Vec<EventId>>> = Vec::new();
            for a in &addrs {
                let ws_writes = writes_by_addr.get(a).cloned().unwrap_or_default();
                perms_per_addr.push(permutations(&ws_writes));
            }
            let mut pick = vec![0usize; addrs.len()];
            loop {
                let mut ws = BTreeMap::new();
                for (ai, a) in addrs.iter().enumerate() {
                    let mut order = vec![init_by_addr[a]];
                    order.extend(perms_per_addr[ai][pick[ai]].iter().copied());
                    ws.insert(*a, order);
                }
                out.push(CandidateExecution {
                    events: events.clone(),
                    rf: rf.clone(),
                    ws,
                    values: values.clone(),
                });
                // advance ws pick
                let mut i = 0;
                loop {
                    if i == addrs.len() {
                        break;
                    }
                    pick[i] += 1;
                    if pick[i] < perms_per_addr[i].len() {
                        break;
                    }
                    pick[i] = 0;
                    i += 1;
                }
                if i == addrs.len() {
                    break;
                }
            }
        }

        // advance rf pick
        let mut i = 0;
        loop {
            if i == reads.len() {
                break;
            }
            rf_pick[i] += 1;
            if rf_pick[i] < rf_choices[i].len() {
                break;
            }
            rf_pick[i] = 0;
            i += 1;
        }
        if i == reads.len() || reads.is_empty() {
            break;
        }
    }
    out
}

/// All permutations of a slice (empty slice ⇒ one empty permutation).
fn permutations(items: &[EventId]) -> Vec<Vec<EventId>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<EventId> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut p = vec![head];
            p.append(&mut tail);
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use rmw_types::{Atomicity, RmwKind};

    fn sb_program() -> Program {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = ProgramBuilder::new();
        b.thread().write(x, 1).read(y);
        b.thread().write(y, 1).read(x);
        b.build()
    }

    #[test]
    fn events_include_init_writes() {
        let p = sb_program();
        let evs = build_events(&p);
        let inits: Vec<&Event> = evs.iter().filter(|e| e.is_init()).collect();
        assert_eq!(inits.len(), 2);
        assert!(inits.iter().all(|e| e.write_value == Some(0)));
        assert_eq!(evs.len(), 2 + 4);
    }

    #[test]
    fn rmw_expands_to_two_linked_events() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::TestAndSet, Atomicity::Type2);
        let p = b.build();
        let evs = build_events(&p);
        let halves: Vec<&Event> = evs.iter().filter(|e| e.rmw.is_some()).collect();
        assert_eq!(halves.len(), 2);
        assert_eq!(halves[0].kind, EventKind::Read);
        assert_eq!(halves[1].kind, EventKind::Write);
        assert_eq!(halves[0].rmw.unwrap().rmw_id, halves[1].rmw.unwrap().rmw_id);
        assert!(halves[0].po_index < halves[1].po_index);
    }

    #[test]
    fn sb_candidate_count() {
        // SB: 2 reads × 2 candidate sources each (init or the other thread's
        // write... plus own-thread write of same addr? reads are of the
        // *other* location, so sources = init + 1 write) = 2 each; ws: each
        // location has 1 non-init write → 1 permutation. Total 4 candidates.
        let cands = enumerate_candidates(&sb_program());
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn read_values_follow_rf() {
        let cands = enumerate_candidates(&sb_program());
        // Some candidate has both reads from init (0,0)
        assert!(cands.iter().any(|c| c.read_values() == vec![0, 0]));
        // and some candidate has both reads seeing 1
        assert!(cands.iter().any(|c| c.read_values() == vec![1, 1]));
    }

    #[test]
    fn rmw_value_resolution_chains() {
        // Two FAA(1) on x: if the second reads from the first's write, it
        // must see 1 and write 2.
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        let p = b.build();
        let cands = enumerate_candidates(&p);
        let chained: Vec<&CandidateExecution> = cands
            .iter()
            .filter(|c| c.read_values().contains(&1))
            .collect();
        assert!(!chained.is_empty());
        for c in chained {
            assert!(c.final_memory()[&Addr(0)] == 2 || c.final_memory()[&Addr(0)] == 1);
        }
    }

    #[test]
    fn circular_rf_between_rmws_is_dropped() {
        // RMW1 reads from RMW2's write and vice versa: circular value
        // dependency, dropped during enumeration.
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        let p = b.build();
        let cands = enumerate_candidates(&p);
        // each RMW read has 2 candidate sources (init, other's Wa); the
        // (other, other) choice is circular and dropped → 3 rf choices
        // survive; ws has 2 writes → 2 permutations each.
        assert_eq!(cands.len(), 3 * 2);
    }

    #[test]
    fn fr_edges_point_to_later_writes() {
        let cands = enumerate_candidates(&sb_program());
        for c in &cands {
            for (r, w) in c.fr_edges() {
                let read = c.event(r);
                let write = c.event(w);
                assert!(read.is_read() && write.is_write());
                assert_eq!(read.addr, write.addr);
            }
        }
    }

    #[test]
    fn ppo_excludes_w_to_r() {
        let cands = enumerate_candidates(&sb_program());
        let c = &cands[0];
        let ppo = c.ppo_graph();
        // thread 0: W(x) then R(y); the W→R pair must NOT be in ppo
        let w0 = c
            .events()
            .iter()
            .find(|e| e.tid == Some(ThreadId(0)) && e.is_write())
            .unwrap()
            .id;
        let r0 = c
            .events()
            .iter()
            .find(|e| e.tid == Some(ThreadId(0)) && e.is_read())
            .unwrap()
            .id;
        assert!(!ppo.has_edge(w0.index(), r0.index()));
    }

    #[test]
    fn fence_inserts_bar_edges() {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = ProgramBuilder::new();
        b.thread().write(x, 1).fence().read(y);
        let p = b.build();
        let cands = enumerate_candidates(&p);
        let c = &cands[0];
        let bar = c.bar_graph();
        let w = c
            .events()
            .iter()
            .find(|e| !e.is_init() && e.is_write())
            .unwrap()
            .id;
        let r = c.events().iter().find(|e| e.is_read()).unwrap().id;
        assert!(
            bar.has_edge(w.index(), r.index()),
            "fence must order W before R"
        );
    }

    #[test]
    fn poloc_relates_same_location_only() {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = ProgramBuilder::new();
        b.thread().write(x, 1).write(y, 1).read(x);
        let p = b.build();
        let c = &enumerate_candidates(&p)[0];
        let poloc = c.poloc_graph();
        let wx = c
            .events()
            .iter()
            .find(|e| !e.is_init() && e.is_write() && e.addr == Some(x))
            .unwrap()
            .id;
        let wy = c
            .events()
            .iter()
            .find(|e| !e.is_init() && e.is_write() && e.addr == Some(y))
            .unwrap()
            .id;
        let rx = c.events().iter().find(|e| e.is_read()).unwrap().id;
        assert!(poloc.has_edge(wx.index(), rx.index()));
        assert!(!poloc.has_edge(wy.index(), rx.index()));
    }

    #[test]
    fn permutations_count() {
        let ids: Vec<EventId> = (0..4).map(EventId).collect();
        assert_eq!(permutations(&ids).len(), 24);
        assert_eq!(permutations(&[]).len(), 1);
    }

    #[test]
    fn pretty_is_nonempty() {
        let c = &enumerate_candidates(&sb_program())[0];
        let s = c.pretty();
        assert!(s.contains("rf:"));
        assert!(s.contains("ws["));
    }
}
