//! Candidate executions: events plus existentially-quantified `rf` and `ws`
//! (paper §2.1), with the derived relations `fr`, `rfe`, `com`, `ppo`, `bar`.
//!
//! Candidate executions are *produced* by the streaming search engine in
//! [`crate::search`]; [`enumerate_candidates`] is kept as a compatibility
//! wrapper that materializes every candidate (valid or not) into a `Vec`.
//! Validity of a candidate is decided separately by
//! [`crate::validity::check_validity`].

use crate::event::{Event, EventId, EventKind, RmwHalf, RmwId, RmwLink};
use crate::graph::DiGraph;
use crate::program::{Instr, Program};
use rmw_types::{Addr, ThreadId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-program context shared by every candidate execution of one search:
/// the event list and derived orderings that do not depend on the `rf`/`ws`
/// assignment. Shared via [`Arc`] so cloning a candidate is cheap.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct ExecCtx {
    /// All events, indexed by [`EventId`].
    pub(crate) events: Vec<Event>,
    /// Reads in `(thread, po)` order — the canonical outcome order, computed
    /// once per program instead of re-sorting in every `read_values` call.
    pub(crate) read_order: Vec<EventId>,
}

impl ExecCtx {
    /// Builds the shared context for a program's event list.
    pub(crate) fn new(events: Vec<Event>) -> Arc<Self> {
        let mut reads: Vec<&Event> = events.iter().filter(|e| e.is_read()).collect();
        reads.sort_by_key(|e| (e.tid, e.po_index));
        let read_order = reads.iter().map(|e| e.id).collect();
        Arc::new(ExecCtx { events, read_order })
    }
}

/// A candidate execution: events with a concrete `rf` and `ws` assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateExecution {
    ctx: Arc<ExecCtx>,
    /// For each read event id: the write event it reads from.
    rf: BTreeMap<EventId, EventId>,
    /// Per location: the write serialization, initial write first.
    ws: BTreeMap<Addr, Vec<EventId>>,
    /// Resolved value of every memory event (reads: value read; writes:
    /// value stored).
    values: Vec<Value>,
}

impl CandidateExecution {
    /// Assembles a candidate from a search's shared context and one concrete
    /// `rf`/`ws` assignment with its resolved values.
    pub(crate) fn assemble(
        ctx: Arc<ExecCtx>,
        rf: BTreeMap<EventId, EventId>,
        ws: BTreeMap<Addr, Vec<EventId>>,
        values: Vec<Value>,
    ) -> Self {
        CandidateExecution {
            ctx,
            rf,
            ws,
            values,
        }
    }

    /// All events, indexed by [`EventId`].
    pub fn events(&self) -> &[Event] {
        &self.ctx.events
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.ctx.events[id.index()]
    }

    /// The write each read reads from.
    pub fn rf(&self) -> &BTreeMap<EventId, EventId> {
        &self.rf
    }

    /// The write serialization per location (initial write first).
    pub fn ws(&self) -> &BTreeMap<Addr, Vec<EventId>> {
        &self.ws
    }

    /// The resolved value of a memory event (reads: value obtained; writes:
    /// value stored). Fences have value 0.
    pub fn value_of(&self, id: EventId) -> Value {
        self.values[id.index()]
    }

    /// Values of all reads in `(thread, po)` order — the canonical outcome
    /// vector of the execution (RMW reads included). The order is computed
    /// once per program (in the shared execution context), so this is a
    /// plain indexed gather instead of a sort per call.
    pub fn read_values(&self) -> Vec<Value> {
        self.ctx
            .read_order
            .iter()
            .map(|&r| self.value_of(r))
            .collect()
    }

    /// Final memory value per location — the last write in `ws` — as
    /// `(addr, value)` pairs sorted by address (the `ws` map iterates in
    /// address order already, so the sort is free).
    pub fn final_memory(&self) -> Vec<(Addr, Value)> {
        self.ws
            .iter()
            .map(|(&a, order)| {
                let last = *order.last().expect("ws contains at least the init write");
                (a, self.value_of(last))
            })
            .collect()
    }

    /// `fr`: each read is before every write (to the same location) that is
    /// `ws`-after the write it read from.
    pub fn fr_edges(&self) -> Vec<(EventId, EventId)> {
        let mut fr = Vec::new();
        for (&r, &w) in &self.rf {
            let addr = self.event(r).addr.expect("read has address");
            let order = &self.ws[&addr];
            let pos = order
                .iter()
                .position(|&x| x == w)
                .expect("rf source is in ws");
            for &later in &order[pos + 1..] {
                fr.push((r, later));
            }
        }
        fr
    }

    /// `rfe`: the external sub-relation of `rf` (different threads; reads
    /// from the initial writes count as external).
    pub fn rfe_edges(&self) -> Vec<(EventId, EventId)> {
        self.rf
            .iter()
            .filter(|(&r, &w)| {
                let (er, ew) = (self.event(r), self.event(w));
                ew.is_init() || er.tid != ew.tid
            })
            .map(|(&r, &w)| (w, r))
            .collect()
    }

    /// `rfi`: the internal sub-relation of `rf` (same thread). Not part of
    /// `ghb` — TSO lets a read forward from its own buffered store before
    /// that store commits — but it *is* part of `uniproc`: without it a
    /// read could source its own po-**later** write (reading from the
    /// future), which no per-location-coherent machine permits.
    pub fn rfi_edges(&self) -> Vec<(EventId, EventId)> {
        self.rf
            .iter()
            .filter(|(&r, &w)| {
                let (er, ew) = (self.event(r), self.event(w));
                !ew.is_init() && er.tid == ew.tid
            })
            .map(|(&r, &w)| (w, r))
            .collect()
    }

    /// `ws` as edges (transitively reduced: consecutive pairs suffice for
    /// cycle detection; we emit the full order for clarity).
    pub fn ws_edges(&self) -> Vec<(EventId, EventId)> {
        let mut edges = Vec::new();
        for order in self.ws.values() {
            for i in 0..order.len() {
                for j in i + 1..order.len() {
                    edges.push((order[i], order[j]));
                }
            }
        }
        edges
    }

    /// `com = ws ∪ rfe ∪ fr` as a graph over events.
    pub fn com_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.events().len());
        for (u, v) in self
            .ws_edges()
            .into_iter()
            .chain(self.rfe_edges())
            .chain(self.fr_edges())
        {
            g.add_edge(u.index(), v.index());
        }
        g
    }

    /// `ppo`: same-thread program-order pairs of memory events, except W→R
    /// (TSO lets reads bypass buffered writes).
    pub fn ppo_graph(&self) -> DiGraph {
        ppo_graph_of(self.events())
    }

    /// `bar`: memory operations separated by a fence in program order.
    pub fn bar_graph(&self) -> DiGraph {
        bar_graph_of(self.events())
    }

    /// `po-loc`: same-thread, same-location program-order pairs of memory
    /// events — the per-location order `uniproc` compares `com` against.
    pub fn poloc_graph(&self) -> DiGraph {
        poloc_graph_of(self.events())
    }

    /// All RMW instances: `(rmw_id, Ra, Wa, link)`.
    pub fn rmws(&self) -> Vec<(RmwId, EventId, EventId, RmwLink)> {
        rmws_of(self.events())
    }

    /// Renders the execution for debugging: events, rf, ws.
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in self.events() {
            let _ = writeln!(s, "{} = {}  [v={}]", e.id, e.label(), self.value_of(e.id));
        }
        for (&r, &w) in &self.rf {
            let _ = writeln!(s, "rf: {} -> {}", w, r);
        }
        for (a, order) in &self.ws {
            let names: Vec<String> = order.iter().map(ToString::to_string).collect();
            let _ = writeln!(s, "ws[{}]: {}", a.name(), names.join(" -> "));
        }
        s
    }
}

/// `ppo` over a bare event list: same-thread program-order pairs of memory
/// events, except W→R (TSO lets reads bypass buffered writes). Depends only
/// on the events, not on `rf`/`ws`, so the search engine computes it once.
pub(crate) fn ppo_graph_of(events: &[Event]) -> DiGraph {
    let mut g = DiGraph::new(events.len());
    for (u, v) in same_thread_mem_pairs(events) {
        let (eu, ev) = (&events[u.index()], &events[v.index()]);
        let w_to_r = eu.is_write() && ev.is_read();
        if !w_to_r {
            g.add_edge(u.index(), v.index());
        }
    }
    g
}

/// `bar` over a bare event list: memory operations separated by a fence in
/// program order.
pub(crate) fn bar_graph_of(events: &[Event]) -> DiGraph {
    let mut g = DiGraph::new(events.len());
    let mut by_thread: BTreeMap<ThreadId, Vec<&Event>> = BTreeMap::new();
    for e in events {
        if let Some(t) = e.tid {
            by_thread.entry(t).or_default().push(e);
        }
    }
    for evs in by_thread.values_mut() {
        evs.sort_by_key(|e| e.po_index);
        for (i, f) in evs.iter().enumerate() {
            if f.kind != EventKind::Fence {
                continue;
            }
            for before in &evs[..i] {
                if !before.is_mem() {
                    continue;
                }
                for after in &evs[i + 1..] {
                    if after.is_mem() {
                        g.add_edge(before.id.index(), after.id.index());
                    }
                }
            }
        }
    }
    g
}

/// `po-loc` over a bare event list: same-thread, same-location pairs.
pub(crate) fn poloc_graph_of(events: &[Event]) -> DiGraph {
    let mut g = DiGraph::new(events.len());
    for (u, v) in same_thread_mem_pairs(events) {
        if events[u.index()].addr == events[v.index()].addr {
            g.add_edge(u.index(), v.index());
        }
    }
    g
}

/// All RMW instances of an event list: `(rmw_id, Ra, Wa, link)`.
pub(crate) fn rmws_of(events: &[Event]) -> Vec<(RmwId, EventId, EventId, RmwLink)> {
    type Halves = (Option<EventId>, Option<EventId>, Option<RmwLink>);
    let mut by_id: BTreeMap<RmwId, Halves> = BTreeMap::new();
    for e in events {
        if let Some(link) = e.rmw {
            let slot = by_id.entry(link.rmw_id).or_default();
            match link.half {
                RmwHalf::Read => slot.0 = Some(e.id),
                RmwHalf::Write => slot.1 = Some(e.id),
            }
            slot.2 = Some(link);
        }
    }
    by_id
        .into_iter()
        .map(|(id, (r, w, l))| {
            (
                id,
                r.expect("RMW has read half"),
                w.expect("RMW has write half"),
                l.expect("RMW has link"),
            )
        })
        .collect()
}

/// Same-thread ordered pairs of *memory* events (skipping fences),
/// `u` po-before `v`.
fn same_thread_mem_pairs(events: &[Event]) -> Vec<(EventId, EventId)> {
    let mut by_thread: BTreeMap<ThreadId, Vec<&Event>> = BTreeMap::new();
    for e in events {
        if e.is_mem() {
            if let Some(t) = e.tid {
                by_thread.entry(t).or_default().push(e);
            }
        }
    }
    let mut pairs = Vec::new();
    for evs in by_thread.values_mut() {
        evs.sort_by_key(|e| e.po_index);
        for i in 0..evs.len() {
            for j in i + 1..evs.len() {
                pairs.push((evs[i].id, evs[j].id));
            }
        }
    }
    pairs
}

/// Builds the event list of a program: initial writes first, then each
/// thread's events in program order (RMWs expand to read-then-write).
pub(crate) fn build_events(program: &Program) -> Vec<Event> {
    let mut events = Vec::new();
    let mut next_rmw = 0usize;
    // Initial writes, one per touched address, value 0.
    for addr in program.addresses() {
        events.push(Event {
            id: EventId(events.len()),
            tid: None,
            po_index: 0,
            kind: EventKind::Write,
            addr: Some(addr),
            rmw: None,
            write_value: Some(0),
        });
    }
    for (tid, instrs) in program.iter() {
        let mut po = 0usize;
        for &instr in instrs {
            match instr {
                Instr::Read(addr) => {
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Read,
                        addr: Some(addr),
                        rmw: None,
                        write_value: None,
                    });
                    po += 1;
                }
                Instr::Write(addr, v) => {
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Write,
                        addr: Some(addr),
                        rmw: None,
                        write_value: Some(v),
                    });
                    po += 1;
                }
                Instr::Rmw {
                    addr,
                    kind,
                    atomicity,
                } => {
                    let rmw_id = RmwId(next_rmw);
                    next_rmw += 1;
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Read,
                        addr: Some(addr),
                        rmw: Some(RmwLink {
                            rmw_id,
                            half: RmwHalf::Read,
                            kind,
                            atomicity,
                        }),
                        write_value: None,
                    });
                    po += 1;
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Write,
                        addr: Some(addr),
                        rmw: Some(RmwLink {
                            rmw_id,
                            half: RmwHalf::Write,
                            kind,
                            atomicity,
                        }),
                        write_value: None,
                    });
                    po += 1;
                }
                Instr::Fence => {
                    events.push(Event {
                        id: EventId(events.len()),
                        tid: Some(tid),
                        po_index: po,
                        kind: EventKind::Fence,
                        addr: None,
                        rmw: None,
                        write_value: None,
                    });
                    po += 1;
                }
            }
        }
    }
    events
}

/// Resolves the value of every event given an `rf` assignment, or `None`
/// when the assignment is circular (an RMW's value depending on itself
/// through `rf` without a fixed point — such candidates are discarded; they
/// are also rejected by the acyclicity check).
pub(crate) fn resolve_values(
    events: &[Event],
    rf: &BTreeMap<EventId, EventId>,
) -> Option<Vec<Value>> {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Unvisited,
        InProgress,
        Done,
    }
    let n = events.len();
    let mut values = vec![0u64; n];
    let mut state = vec![St::Unvisited; n];

    // Pair up RMW halves so the write half can find its read half.
    let mut rmw_read_of_write: BTreeMap<usize, usize> = BTreeMap::new();
    {
        let mut reads: BTreeMap<RmwId, usize> = BTreeMap::new();
        for e in events {
            if let Some(l) = e.rmw {
                if l.half == RmwHalf::Read {
                    reads.insert(l.rmw_id, e.id.index());
                }
            }
        }
        for e in events {
            if let Some(l) = e.rmw {
                if l.half == RmwHalf::Write {
                    rmw_read_of_write.insert(e.id.index(), reads[&l.rmw_id]);
                }
            }
        }
    }

    fn eval(
        i: usize,
        events: &[Event],
        rf: &BTreeMap<EventId, EventId>,
        rmw_read_of_write: &BTreeMap<usize, usize>,
        values: &mut [Value],
        state: &mut [St],
    ) -> Option<Value> {
        match state[i] {
            St::Done => return Some(values[i]),
            St::InProgress => return None, // circular dependency
            St::Unvisited => {}
        }
        state[i] = St::InProgress;
        let e = &events[i];
        let v = match e.kind {
            EventKind::Fence => 0,
            EventKind::Read => {
                let src = rf.get(&e.id).expect("every read has an rf source");
                eval(src.index(), events, rf, rmw_read_of_write, values, state)?
            }
            EventKind::Write => match (e.write_value, e.rmw) {
                (Some(c), _) => c,
                (None, Some(link)) => {
                    let ra = rmw_read_of_write[&i];
                    let read_v = eval(ra, events, rf, rmw_read_of_write, values, state)?;
                    link.kind.apply(read_v)
                }
                (None, None) => unreachable!("plain write without value"),
            },
        };
        values[i] = v;
        state[i] = St::Done;
        Some(v)
    }

    for i in 0..n {
        eval(i, events, rf, &rmw_read_of_write, &mut values, &mut state)?;
    }
    Some(values)
}

/// Enumerates every candidate execution of `program`: all `rf` choices ×
/// all `ws` linearizations. Candidates with circular value dependencies are
/// dropped (they can never be valid).
///
/// This is a compatibility wrapper over the streaming engine in
/// [`crate::search`], with pruning disabled — it materializes the complete
/// candidate set (factorial in events per location) into a `Vec`. Prefer
/// [`crate::search::for_each_valid_execution`] anywhere the valid
/// executions are all that matters; litmus tests (≤ ~12 events) are the
/// intended scale here.
pub fn enumerate_candidates(program: &Program) -> Vec<CandidateExecution> {
    let mut out = Vec::new();
    crate::search::for_each_candidate(program, |exec| {
        out.push(exec.clone());
        std::ops::ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use rmw_types::{Atomicity, RmwKind};

    fn sb_program() -> Program {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = ProgramBuilder::new();
        b.thread().write(x, 1).read(y);
        b.thread().write(y, 1).read(x);
        b.build()
    }

    #[test]
    fn events_include_init_writes() {
        let p = sb_program();
        let evs = build_events(&p);
        let inits: Vec<&Event> = evs.iter().filter(|e| e.is_init()).collect();
        assert_eq!(inits.len(), 2);
        assert!(inits.iter().all(|e| e.write_value == Some(0)));
        assert_eq!(evs.len(), 2 + 4);
    }

    #[test]
    fn rmw_expands_to_two_linked_events() {
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::TestAndSet, Atomicity::Type2);
        let p = b.build();
        let evs = build_events(&p);
        let halves: Vec<&Event> = evs.iter().filter(|e| e.rmw.is_some()).collect();
        assert_eq!(halves.len(), 2);
        assert_eq!(halves[0].kind, EventKind::Read);
        assert_eq!(halves[1].kind, EventKind::Write);
        assert_eq!(halves[0].rmw.unwrap().rmw_id, halves[1].rmw.unwrap().rmw_id);
        assert!(halves[0].po_index < halves[1].po_index);
    }

    #[test]
    fn sb_candidate_count() {
        // SB: 2 reads × 2 candidate sources each (init or the other thread's
        // write... plus own-thread write of same addr? reads are of the
        // *other* location, so sources = init + 1 write) = 2 each; ws: each
        // location has 1 non-init write → 1 permutation. Total 4 candidates.
        let cands = enumerate_candidates(&sb_program());
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn read_values_follow_rf() {
        let cands = enumerate_candidates(&sb_program());
        // Some candidate has both reads from init (0,0)
        assert!(cands.iter().any(|c| c.read_values() == vec![0, 0]));
        // and some candidate has both reads seeing 1
        assert!(cands.iter().any(|c| c.read_values() == vec![1, 1]));
    }

    #[test]
    fn rmw_value_resolution_chains() {
        // Two FAA(1) on x: if the second reads from the first's write, it
        // must see 1 and write 2.
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        let p = b.build();
        let cands = enumerate_candidates(&p);
        let chained: Vec<&CandidateExecution> = cands
            .iter()
            .filter(|c| c.read_values().contains(&1))
            .collect();
        assert!(!chained.is_empty());
        for c in chained {
            let mem = c.final_memory();
            let (_, x_final) = mem.iter().find(|&&(a, _)| a == Addr(0)).expect("x written");
            assert!(*x_final == 2 || *x_final == 1);
        }
    }

    #[test]
    fn circular_rf_between_rmws_is_dropped() {
        // RMW1 reads from RMW2's write and vice versa: circular value
        // dependency, dropped during enumeration.
        let mut b = ProgramBuilder::new();
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        b.thread()
            .rmw(Addr(0), RmwKind::FetchAndAdd(1), Atomicity::Type1);
        let p = b.build();
        let cands = enumerate_candidates(&p);
        // each RMW read has 2 candidate sources (init, other's Wa); the
        // (other, other) choice is circular and dropped → 3 rf choices
        // survive; ws has 2 writes → 2 permutations each.
        assert_eq!(cands.len(), 3 * 2);
    }

    #[test]
    fn fr_edges_point_to_later_writes() {
        let cands = enumerate_candidates(&sb_program());
        for c in &cands {
            for (r, w) in c.fr_edges() {
                let read = c.event(r);
                let write = c.event(w);
                assert!(read.is_read() && write.is_write());
                assert_eq!(read.addr, write.addr);
            }
        }
    }

    #[test]
    fn ppo_excludes_w_to_r() {
        let cands = enumerate_candidates(&sb_program());
        let c = &cands[0];
        let ppo = c.ppo_graph();
        // thread 0: W(x) then R(y); the W→R pair must NOT be in ppo
        let w0 = c
            .events()
            .iter()
            .find(|e| e.tid == Some(ThreadId(0)) && e.is_write())
            .unwrap()
            .id;
        let r0 = c
            .events()
            .iter()
            .find(|e| e.tid == Some(ThreadId(0)) && e.is_read())
            .unwrap()
            .id;
        assert!(!ppo.has_edge(w0.index(), r0.index()));
    }

    #[test]
    fn fence_inserts_bar_edges() {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = ProgramBuilder::new();
        b.thread().write(x, 1).fence().read(y);
        let p = b.build();
        let cands = enumerate_candidates(&p);
        let c = &cands[0];
        let bar = c.bar_graph();
        let w = c
            .events()
            .iter()
            .find(|e| !e.is_init() && e.is_write())
            .unwrap()
            .id;
        let r = c.events().iter().find(|e| e.is_read()).unwrap().id;
        assert!(
            bar.has_edge(w.index(), r.index()),
            "fence must order W before R"
        );
    }

    #[test]
    fn poloc_relates_same_location_only() {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = ProgramBuilder::new();
        b.thread().write(x, 1).write(y, 1).read(x);
        let p = b.build();
        let c = &enumerate_candidates(&p)[0];
        let poloc = c.poloc_graph();
        let wx = c
            .events()
            .iter()
            .find(|e| !e.is_init() && e.is_write() && e.addr == Some(x))
            .unwrap()
            .id;
        let wy = c
            .events()
            .iter()
            .find(|e| !e.is_init() && e.is_write() && e.addr == Some(y))
            .unwrap()
            .id;
        let rx = c.events().iter().find(|e| e.is_read()).unwrap().id;
        assert!(poloc.has_edge(wx.index(), rx.index()));
        assert!(!poloc.has_edge(wy.index(), rx.index()));
    }

    #[test]
    fn read_order_cached_in_ctx() {
        // The (tid, po) read order is computed once per program; candidates
        // sharing a context must agree on it and match a fresh sort.
        let cands = enumerate_candidates(&sb_program());
        let c = &cands[0];
        let mut expect: Vec<&Event> = c.events().iter().filter(|e| e.is_read()).collect();
        expect.sort_by_key(|e| (e.tid, e.po_index));
        let expect: Vec<Value> = expect.iter().map(|e| c.value_of(e.id)).collect();
        assert_eq!(c.read_values(), expect);
    }

    #[test]
    fn pretty_is_nonempty() {
        let c = &enumerate_candidates(&sb_program())[0];
        let s = c.pretty();
        assert!(s.contains("rf:"));
        assert!(s.contains("ws["));
    }
}
