//! Events of a candidate execution (paper §2.1–2.2).
//!
//! Memory reads, writes and barriers, annotated with thread, address and
//! value. The two halves of an RMW are a read event and a write event to the
//! same address, linked by an [`RmwId`], with the read `po`-before the write.

use core::fmt;
use rmw_types::{Addr, Atomicity, RmwKind, ThreadId, Value};

/// Dense index of an event within a [`CandidateExecution`].
///
/// [`CandidateExecution`]: crate::execution::CandidateExecution
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub usize);

impl EventId {
    /// Dense index for array access.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier linking the two halves of one RMW instruction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RmwId(pub usize);

/// Which half of an RMW an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwHalf {
    /// The read `Ra`.
    Read,
    /// The write `Wa`.
    Write,
}

/// The kind of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A memory read (possibly the read half of an RMW).
    Read,
    /// A memory write (possibly the write half of an RMW).
    Write,
    /// A memory barrier. Fences carry no address or value; they induce
    /// `bar` edges and do not otherwise appear in `ghb`.
    Fence,
}

/// One event of a candidate execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// This event's id.
    pub id: EventId,
    /// Issuing thread; `None` for the implicit initial writes.
    pub tid: Option<ThreadId>,
    /// Position in the issuing thread's program order (initial writes: 0).
    pub po_index: usize,
    /// Read / write / fence.
    pub kind: EventKind,
    /// Accessed address (`None` for fences).
    pub addr: Option<Addr>,
    /// RMW linkage, if this event is a half of an RMW.
    pub rmw: Option<RmwLink>,
    /// For plain writes: the stored constant. RMW write values and all read
    /// values are derived from `rf` per candidate, not stored here.
    pub write_value: Option<Value>,
}

/// RMW linkage carried by both halves of an RMW event pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmwLink {
    /// Which RMW instruction instance this is.
    pub rmw_id: RmwId,
    /// Which half this event is.
    pub half: RmwHalf,
    /// The operation computing the written value from the read value.
    pub kind: RmwKind,
    /// The atomicity definition this RMW uses (paper §2.2).
    pub atomicity: Atomicity,
}

impl Event {
    /// Whether this is any kind of read (plain or RMW half).
    pub fn is_read(&self) -> bool {
        self.kind == EventKind::Read
    }

    /// Whether this is any kind of write (plain, initial, or RMW half).
    pub fn is_write(&self) -> bool {
        self.kind == EventKind::Write
    }

    /// Whether this is one of the implicit initial writes.
    pub fn is_init(&self) -> bool {
        self.tid.is_none()
    }

    /// Whether this is a memory access (not a fence).
    pub fn is_mem(&self) -> bool {
        self.kind != EventKind::Fence
    }

    /// Short display like `P0:W(x)` or `init:W(y)`.
    pub fn label(&self) -> String {
        let who = match self.tid {
            Some(t) => t.to_string(),
            None => "init".to_owned(),
        };
        let what = match (self.kind, self.rmw) {
            (EventKind::Fence, _) => "F".to_owned(),
            (EventKind::Read, Some(_)) => format!("Ra({})", self.addr.expect("read has addr")),
            (EventKind::Read, None) => format!("R({})", self.addr.expect("read has addr")),
            (EventKind::Write, Some(_)) => format!("Wa({})", self.addr.expect("write has addr")),
            (EventKind::Write, None) => format!("W({})", self.addr.expect("write has addr")),
        };
        format!("{who}:{what}")
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(kind: EventKind, tid: Option<usize>, rmw: Option<RmwLink>) -> Event {
        Event {
            id: EventId(0),
            tid: tid.map(ThreadId),
            po_index: 0,
            kind,
            addr: if kind == EventKind::Fence {
                None
            } else {
                Some(Addr(0))
            },
            rmw,
            write_value: None,
        }
    }

    #[test]
    fn predicates() {
        let r = mk(EventKind::Read, Some(0), None);
        assert!(r.is_read() && !r.is_write() && r.is_mem() && !r.is_init());
        let w = mk(EventKind::Write, None, None);
        assert!(w.is_write() && w.is_init());
        let f = mk(EventKind::Fence, Some(1), None);
        assert!(!f.is_mem());
    }

    #[test]
    fn labels() {
        let link = RmwLink {
            rmw_id: RmwId(0),
            half: RmwHalf::Read,
            kind: RmwKind::TestAndSet,
            atomicity: Atomicity::Type2,
        };
        assert_eq!(mk(EventKind::Read, Some(0), Some(link)).label(), "P0:Ra(x)");
        assert_eq!(mk(EventKind::Read, Some(0), None).label(), "P0:R(x)");
        assert_eq!(mk(EventKind::Write, None, None).label(), "init:W(x)");
        assert_eq!(mk(EventKind::Fence, Some(2), None).label(), "P2:F");
        assert_eq!(EventId(5).to_string(), "e5");
    }
}
