//! Cross-test prefix-certificate sharing: re-deriving a family member's
//! outcome set from a sibling's pruned search instead of searching again.
//!
//! The verdict cache ([`crate::cache`]) collapses *identical* canonical
//! programs, but a generated family still pays one full search per
//! distinct member — and the harness's differential sweep rewrites every
//! RMW test under all three atomicity types, tripling the searches for
//! programs whose **decision trees are identical**: atomicity influences
//! validity only through the leaf-level `ato` disjunctions
//! (`validity::solve_ato`); the `ppo`/`bar`/`po-loc`/dep graphs,
//! and therefore every `ws`/`rf` decision, prune, and complete leaf, do
//! not depend on it.
//!
//! A **prefix certificate** captures the reusable part of one search: the
//! full decision path of every complete leaf (in sequential DFS order)
//! plus the decision counters (`nodes`/`pruned`/`complete`) of the pruned
//! search that found them. It is keyed by the **atomicity-masked
//! canonical key** (`canon::masked_key`): equal masked keys mean
//! "same program up to per-RMW atomicity", which is exactly the condition
//! under which the decision tree — and hence the certificate — transfers.
//!
//! On a hit, the subtree walk is skipped entirely: each recorded leaf is
//! replayed through `search::run_prefix` (a full-depth path goes
//! straight to the leaf — zero decision nodes), and the leaf-level `ato`
//! disjunctions are solved fresh *for the querying program's atomicity*.
//! The replayed stats are bit-identical to what a sequential search of
//! the querying program would report (`nodes`/`pruned` attributed from
//! the certificate, `complete`/`valid` produced by the replay,
//! `tasks = workers = 1`); the decision nodes skipped are tallied in
//! [`counters`] as `nodes_saved`, not hidden in the stats.
//!
//! Certificates can outlive the process through a [`CertificateStore`]
//! (the harness's record file implements it beside the verdict store), so
//! a warm campaign skips even the first-per-family search.

use crate::canon::Canonical;
use crate::event::EventId;
use crate::outcome::Outcome;
use crate::search::{self, Prefix, SearchStats};
use rmw_types::fasthash::{FastHashMap, FastHasher};
use std::collections::BTreeSet;
use std::hash::Hasher as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Hard cap on leaves per certificate. A search with more complete leaves
/// than this is not certified (storing and replaying the paths would
/// rival the search itself); the query still answers, it just records
/// nothing.
const MAX_CERT_LEAVES: usize = 1 << 16;

/// One memoized pruned search, in the canonical frame of its masked key.
struct Certificate {
    /// Full decision path of every complete leaf, in sequential DFS order.
    leaves: Vec<Prefix>,
    nodes: u64,
    pruned: u64,
    complete: u64,
}

fn certs() -> &'static Mutex<FastHashMap<Vec<u64>, Arc<Certificate>>> {
    static CERTS: OnceLock<Mutex<FastHashMap<Vec<u64>, Arc<Certificate>>>> = OnceLock::new();
    CERTS.get_or_init(Mutex::default)
}

static QUERIES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static STORE_HITS: AtomicU64 = AtomicU64::new(0);
static STORED: AtomicU64 = AtomicU64::new(0);
static NODES_SAVED: AtomicU64 = AtomicU64::new(0);
static REPLAYED_LEAVES: AtomicU64 = AtomicU64::new(0);

/// Portable exchange form of a certificate, used by [`CertificateStore`]
/// implementations. Leaves are `(ws placements, rf sources)` as raw event
/// indices in the canonical program's event numbering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertData {
    /// Complete-leaf decision paths in sequential DFS order.
    pub leaves: Vec<(Vec<u64>, Vec<u64>)>,
    /// Decision nodes of the search that produced the certificate.
    pub nodes: u64,
    /// Branches pruned by that search.
    pub pruned: u64,
    /// Complete assignments it reached (equals `leaves.len()`).
    pub complete: u64,
}

/// A persistent certificate backend, mirroring
/// [`VerdictStore`](crate::cache::VerdictStore) one tier down: keys are
/// the **atomicity-masked** canonical serialization, values transfer
/// between any programs sharing that masked key. Implementations must be
/// internally synchronized and must swallow their own failures —
/// persistence is an optimization, never a correctness dependency.
pub trait CertificateStore: Send + Sync {
    /// Returns the persisted certificate for `masked_key`, if any.
    fn load_cert(&self, masked_key: &[u64]) -> Option<CertData>;

    /// Persists a freshly recorded certificate. `fingerprint` hashes the
    /// masked key (an index hint; the collision-proof identity is the
    /// key itself).
    fn save_cert(&self, masked_key: &[u64], fingerprint: u64, cert: &CertData);
}

fn store_slot() -> &'static RwLock<Option<Arc<dyn CertificateStore>>> {
    static STORE: OnceLock<RwLock<Option<Arc<dyn CertificateStore>>>> = OnceLock::new();
    STORE.get_or_init(|| RwLock::new(None))
}

/// Installs the process-wide persistent certificate store (replacing any
/// previous one).
pub fn set_store(store: Arc<dyn CertificateStore>) {
    *store_slot().write().expect("certificate store lock") = Some(store);
}

/// Uninstalls the persistent certificate store, returning it.
pub fn take_store() -> Option<Arc<dyn CertificateStore>> {
    store_slot().write().expect("certificate store lock").take()
}

fn current_store() -> Option<Arc<dyn CertificateStore>> {
    store_slot().read().expect("certificate store lock").clone()
}

/// Cumulative certificate-layer counters, exposed in the harness report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixCounters {
    /// Certificate-tier queries (one per verdict-cache miss that reached
    /// this layer).
    pub queries: u64,
    /// Queries answered by replaying a certificate instead of searching.
    pub hits: u64,
    /// Hits whose certificate came from the persistent store rather than
    /// process memory.
    pub store_hits: u64,
    /// Fresh certificates recorded (memory, plus the store when one is
    /// installed).
    pub stored: u64,
    /// Decision nodes *not* re-explored thanks to replays: the sum of the
    /// attributed `nodes` of every hit.
    pub nodes_saved: u64,
    /// Complete leaves replayed across all hits.
    pub replayed_leaves: u64,
    /// Certificates currently held in memory.
    pub entries: u64,
}

/// Snapshot of the process-wide certificate counters.
pub fn counters() -> PrefixCounters {
    PrefixCounters {
        queries: QUERIES.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        store_hits: STORE_HITS.load(Ordering::Relaxed),
        stored: STORED.load(Ordering::Relaxed),
        nodes_saved: NODES_SAVED.load(Ordering::Relaxed),
        replayed_leaves: REPLAYED_LEAVES.load(Ordering::Relaxed),
        entries: certs().lock().expect("certificate cache lock").len() as u64,
    }
}

/// Empties the in-memory certificate cache and zeroes the counters. A
/// registered [`CertificateStore`] stays installed, like the verdict
/// store under [`crate::cache::clear`].
pub fn clear() {
    certs().lock().expect("certificate cache lock").clear();
    QUERIES.store(0, Ordering::Relaxed);
    HITS.store(0, Ordering::Relaxed);
    STORE_HITS.store(0, Ordering::Relaxed);
    STORED.store(0, Ordering::Relaxed);
    NODES_SAVED.store(0, Ordering::Relaxed);
    REPLAYED_LEAVES.store(0, Ordering::Relaxed);
}

fn fingerprint_of(key: &[u64]) -> u64 {
    let mut hasher = FastHasher::default();
    for &word in key {
        hasher.write_u64(word);
    }
    hasher.finish()
}

fn to_data(cert: &Certificate) -> CertData {
    CertData {
        leaves: cert
            .leaves
            .iter()
            .map(|p| {
                (
                    p.ws.iter().map(|e| e.0 as u64).collect(),
                    p.rf.iter().map(|e| e.0 as u64).collect(),
                )
            })
            .collect(),
        nodes: cert.nodes,
        pruned: cert.pruned,
        complete: cert.complete,
    }
}

fn from_data(data: CertData) -> Certificate {
    Certificate {
        leaves: data
            .leaves
            .into_iter()
            .map(|(ws, rf)| Prefix {
                ws: ws.into_iter().map(|e| EventId(e as usize)).collect(),
                rf: rf.into_iter().map(|e| EventId(e as usize)).collect(),
            })
            .collect(),
        nodes: data.nodes,
        pruned: data.pruned,
        complete: data.complete,
    }
}

/// True when `cert` structurally fits `sc`'s program: every leaf names
/// exactly the program's write placements and read choices, with event
/// ids in range. Rejects (as a miss) a stale or foreign store entry
/// instead of replaying garbage.
fn fits(cert: &Certificate, sc: &search::SearchCtx) -> bool {
    let (writes, reads) = sc.decision_shape();
    let bound = sc.max_event_id();
    cert.complete == cert.leaves.len() as u64
        && cert.leaves.iter().all(|leaf| {
            leaf.ws.len() == writes
                && leaf.rf.len() == reads
                && leaf.ws.iter().chain(&leaf.rf).all(|e| e.index() < bound)
        })
}

/// The certificate tier's answer to an outcome-set query.
pub(crate) struct PrefixAnswer {
    /// Allowed outcomes in **canonical** coordinates.
    pub outcomes: BTreeSet<Outcome>,
    /// Bit-identical to a sequential search of the queried program.
    pub stats: SearchStats,
    /// True when a certificate replay (not a fresh search) answered.
    pub prefix_hit: bool,
    /// True when a fresh search ran and the adaptive engine fanned out.
    pub split: bool,
}

/// Answers an outcome-set query for a canonical program through the
/// certificate tier: replay a matching certificate if one exists, else
/// run the recording adaptive search and certify the result. Called by
/// [`crate::cache`] on verdict-cache misses.
pub(crate) fn query(canon: &Canonical, workers: usize) -> PrefixAnswer {
    QUERIES.fetch_add(1, Ordering::Relaxed);
    let masked = canon.masked_key();

    // Memory tier, then the persistent store.
    let mut cert: Option<Arc<Certificate>> = certs()
        .lock()
        .expect("certificate cache lock")
        .get(&masked)
        .cloned();
    let mut from_store = false;
    if cert.is_none() {
        if let Some(store) = current_store() {
            if let Some(data) = store.load_cert(&masked) {
                let loaded = Arc::new(from_data(data));
                certs()
                    .lock()
                    .expect("certificate cache lock")
                    .entry(masked.clone())
                    .or_insert_with(|| Arc::clone(&loaded));
                from_store = true;
                cert = Some(loaded);
            }
        }
    }

    if let Some(cert) = cert {
        let sc = search::build_ctx(canon.program());
        if fits(&cert, &sc) {
            HITS.fetch_add(1, Ordering::Relaxed);
            if from_store {
                STORE_HITS.fetch_add(1, Ordering::Relaxed);
            }
            NODES_SAVED.fetch_add(cert.nodes, Ordering::Relaxed);
            REPLAYED_LEAVES.fetch_add(cert.leaves.len() as u64, Ordering::Relaxed);
            let mut outcomes = BTreeSet::new();
            let mut stats = SearchStats::default();
            for leaf in &cert.leaves {
                stats.absorb(&search::run_prefix(
                    &sc,
                    leaf,
                    &mut |exec| {
                        outcomes.insert(Outcome::of_execution(exec));
                        std::ops::ControlFlow::Continue(())
                    },
                    None,
                ));
            }
            debug_assert_eq!(stats.complete, cert.complete);
            // Attribute the skipped decision work so the stats equal a
            // sequential search's; the savings are visible in `counters`.
            stats.nodes = cert.nodes;
            stats.pruned = cert.pruned;
            stats.complete = cert.complete;
            stats.tasks = 1;
            stats.workers = 1;
            stats.stopped_early = false;
            stats.budget_exhausted = false;
            return PrefixAnswer {
                outcomes,
                stats,
                prefix_hit: true,
                split: false,
            };
        }
        // A store entry that does not fit the program is treated as a
        // miss (and left in place for whichever program it does fit).
    }

    // Fresh search, recording the leaves for the certificate. The
    // `stopped_early` gate below also covers budget exhaustion (which
    // always sets it), so a truncated search never certifies its
    // incomplete leaf set.
    let (outcomes, stats, leaves) =
        crate::par::allowed_outcomes_recording(canon.program(), workers);
    let split = stats.tasks > 1;
    if !stats.stopped_early && leaves.len() <= MAX_CERT_LEAVES {
        let fresh = Arc::new(Certificate {
            leaves,
            nodes: stats.nodes,
            pruned: stats.pruned,
            complete: stats.complete,
        });
        let inserted = {
            let mut map = certs().lock().expect("certificate cache lock");
            match map.entry(masked.clone()) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(Arc::clone(&fresh));
                    true
                }
                std::collections::hash_map::Entry::Occupied(_) => false,
            }
        };
        if inserted {
            STORED.fetch_add(1, Ordering::Relaxed);
            if let Some(store) = current_store() {
                store.save_cert(&masked, fingerprint_of(&masked), &to_data(&fresh));
            }
        }
    }
    PrefixAnswer {
        outcomes,
        stats,
        prefix_hit: false,
        split,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::allowed_outcomes;
    use crate::program::ProgramBuilder;
    use crate::search::for_each_valid_execution;
    use rmw_types::{Addr, Atomicity, RmwKind};
    use std::ops::ControlFlow;

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    // NB: the certificate cache and counters are process-wide; tests use
    // programs made unique by written values and compare deltas.

    fn rmw_program(tag: u64, a: Atomicity) -> crate::program::Program {
        let mut b = ProgramBuilder::new();
        b.thread().rmw(X, RmwKind::FetchAndAdd(tag), a).read(Y);
        b.thread().write(Y, tag).read(X);
        b.build()
    }

    #[test]
    fn replay_answers_atomicity_siblings_with_sequential_fidelity() {
        let tag = 9101;
        let first = rmw_program(tag, Atomicity::Type1);
        let canon1 = first.canonicalize();
        let miss = query(&canon1, 1);
        assert!(!miss.prefix_hit, "unique program must record, not replay");
        assert_eq!(miss.outcomes, allowed_outcomes(canon1.program()));

        for a in [Atomicity::Type2, Atomicity::Type3] {
            let sibling = rmw_program(tag, a);
            let canon = sibling.canonicalize();
            let before = counters();
            let hit = query(&canon, 1);
            let after = counters();
            assert!(hit.prefix_hit, "{a:?} shares the masked key");
            assert!(after.hits > before.hits);
            assert!(after.nodes_saved > before.nodes_saved);
            // The replay is indistinguishable from a sequential search.
            let seq = for_each_valid_execution(canon.program(), |_| ControlFlow::Continue(()));
            assert_eq!(hit.stats, seq, "{a:?}");
            assert_eq!(hit.outcomes, allowed_outcomes(canon.program()), "{a:?}");
        }
    }

    #[test]
    fn cert_data_round_trips() {
        let cert = Certificate {
            leaves: vec![Prefix {
                ws: vec![EventId(3), EventId(1)],
                rf: vec![EventId(0)],
            }],
            nodes: 17,
            pruned: 4,
            complete: 1,
        };
        let data = to_data(&cert);
        assert_eq!(data.leaves, vec![(vec![3, 1], vec![0])]);
        let back = from_data(data);
        assert_eq!(back.leaves, cert.leaves);
        assert_eq!(
            (back.nodes, back.pruned, back.complete),
            (cert.nodes, cert.pruned, cert.complete)
        );
    }

    #[test]
    fn unfitting_certificates_are_rejected_not_replayed() {
        let p = rmw_program(9201, Atomicity::Type2);
        let sc = search::build_ctx(p.canonicalize().program());
        let bogus = Certificate {
            leaves: vec![Prefix {
                ws: vec![EventId(usize::MAX)],
                rf: vec![],
            }],
            nodes: 1,
            pruned: 0,
            complete: 1,
        };
        assert!(!fits(&bogus, &sc));
        let empty = Certificate {
            leaves: Vec::new(),
            nodes: 0,
            pruned: 0,
            complete: 5, // inconsistent with zero leaves
        };
        assert!(!fits(&empty, &sc));
    }

    #[test]
    fn a_persistent_store_serves_certificates_across_cache_clears() {
        #[derive(Default)]
        struct FakeStore {
            entries: Mutex<FastHashMap<Vec<u64>, CertData>>,
            saves: AtomicU64,
        }
        impl CertificateStore for FakeStore {
            fn load_cert(&self, masked_key: &[u64]) -> Option<CertData> {
                self.entries.lock().unwrap().get(masked_key).cloned()
            }
            fn save_cert(&self, masked_key: &[u64], _fingerprint: u64, cert: &CertData) {
                self.saves.fetch_add(1, Ordering::Relaxed);
                self.entries
                    .lock()
                    .unwrap()
                    .insert(masked_key.to_vec(), cert.clone());
            }
        }

        let store = Arc::new(FakeStore::default());
        set_store(Arc::<FakeStore>::clone(&store) as Arc<dyn CertificateStore>);
        let p = rmw_program(9301, Atomicity::Type1);
        let canon = p.canonicalize();
        let masked = canon.masked_key();
        let _ = query(&canon, 1);
        assert!(store.saves.load(Ordering::Relaxed) >= 1);
        assert!(store.entries.lock().unwrap().contains_key(&masked));

        // Simulate a restart: drop the memory tier, keep the store.
        certs().lock().unwrap().remove(&masked);
        let before = counters();
        let again = query(&canon, 1);
        let after = counters();
        assert!(again.prefix_hit, "store-loaded certificate must replay");
        assert!(after.store_hits > before.store_hits);
        assert_eq!(again.outcomes, allowed_outcomes(canon.program()));
        let _ = take_store();
    }
}
