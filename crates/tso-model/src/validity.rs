//! Validity of candidate executions (paper §2.1–2.2).
//!
//! A candidate is valid iff:
//!
//! 1. **uniproc**: `com` is consistent with the per-thread order of
//!    operations to the same location (`com ∪ po-loc` acyclic);
//! 2. there exists a choice of *atomicity-induced* edges making
//!    `com ∪ ppo ∪ bar ∪ ato` acyclic. Each RMW with read `Ra`, write `Wa`
//!    and atomicity `τ` contributes, for every event `M` whose shape `τ`
//!    forbids between `Ra` and `Wa` in `ghb`, the disjunction
//!    `M →ghb Ra  ∨  Wa →ghb M`.
//!
//! The checker performs a backtracking search over the disjunctions with
//! incremental cycle detection; on success it extracts a [`Witness`] — a
//! concrete `ghb` linearization demonstrating validity.

use crate::event::{Event, EventId};
use crate::execution::{rmws_of, CandidateExecution};
use crate::graph::DiGraph;

/// Result of checking one candidate execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The candidate is valid; a witness `ghb` order is attached.
    Valid(Witness),
    /// `com ∪ po-loc` is cyclic.
    UniprocViolation,
    /// No choice of atomicity-induced edges yields an acyclic union.
    Cyclic,
}

impl Validity {
    /// True for [`Validity::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid(_))
    }
}

/// A witness for a valid execution: a concrete global-happens-before order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Memory events in `ghb` order (fences excluded).
    pub ghb: Vec<EventId>,
    /// The atomicity-induced edges the search committed to.
    pub ato_edges: Vec<(EventId, EventId)>,
}

impl Witness {
    /// Position of each event in the `ghb` order, or `None` if absent
    /// (e.g. fences).
    pub fn position(&self, e: EventId) -> Option<usize> {
        self.ghb.iter().position(|&x| x == e)
    }

    /// True iff `a` is ordered before `b` in this witness.
    ///
    /// # Panics
    ///
    /// Panics if either event is not part of the `ghb` order.
    pub fn before(&self, a: EventId, b: EventId) -> bool {
        let pa = self.position(a).expect("event in ghb");
        let pb = self.position(b).expect("event in ghb");
        pa < pb
    }
}

/// One atomicity disjunction: `m →ghb ra  ∨  wa →ghb m`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Disjunct {
    m: EventId,
    ra: EventId,
    wa: EventId,
}

/// Collects the atomicity disjunctions of an event list. These depend only
/// on the events (RMW shapes and atomicity types), not on `rf`/`ws`, so the
/// search engine computes them once per program.
pub(crate) fn atomicity_disjuncts(events: &[Event]) -> Vec<Disjunct> {
    let mut disjuncts = Vec::new();
    for (_, ra, wa, link) in rmws_of(events) {
        let ra_addr = events[ra.index()].addr;
        for e in events {
            if !e.is_mem() || e.id == ra || e.id == wa {
                continue;
            }
            let same_addr = e.addr == ra_addr;
            if link.atomicity.forbids_between(e.is_write(), same_addr) {
                disjuncts.push(Disjunct { m: e.id, ra, wa });
            }
        }
    }
    disjuncts
}

/// Checks the validity of a candidate execution.
pub fn check_validity(exec: &CandidateExecution) -> Validity {
    // uniproc: com ∪ po-loc acyclic. `com_graph` carries only `rfe` (the
    // `ghb` view of `rf`); uniproc additionally needs `rfi`, or a read
    // could source its own po-later write.
    let mut uni = exec.com_graph();
    uni.union_with(&exec.poloc_graph());
    for (w, r) in exec.rfi_edges() {
        uni.add_edge(w.index(), r.index());
    }
    if !uni.is_acyclic() {
        return Validity::UniprocViolation;
    }

    // Base ghb constraint graph.
    let mut base = exec.com_graph();
    base.union_with(&exec.ppo_graph());
    base.union_with(&exec.bar_graph());

    let disjuncts = atomicity_disjuncts(exec.events());
    solve_ato(exec, base, &disjuncts)
}

/// Solves the atomicity disjunctions over a prebuilt `com ∪ ppo ∪ bar` base
/// graph, producing a [`Witness`] on success. The `uniproc` condition must
/// already have been established by the caller.
pub(crate) fn solve_ato(
    exec: &CandidateExecution,
    mut base: DiGraph,
    disjuncts: &[Disjunct],
) -> Validity {
    let mut ato = Vec::new();
    match solve(&mut base, disjuncts, 0, &mut ato) {
        Some(graph) => {
            let order = graph.topo_order().expect("solver returns acyclic graph");
            let ghb: Vec<EventId> = order
                .into_iter()
                .map(EventId)
                .filter(|&id| exec.event(id).is_mem())
                .collect();
            Validity::Valid(Witness {
                ghb,
                ato_edges: ato,
            })
        }
        None => Validity::Cyclic,
    }
}

/// Backtracking over disjunctions. Returns the final acyclic graph on
/// success; `ato` accumulates the committed edges.
fn solve(
    graph: &mut DiGraph,
    disjuncts: &[Disjunct],
    idx: usize,
    ato: &mut Vec<(EventId, EventId)>,
) -> Option<DiGraph> {
    if !graph.is_acyclic() {
        return None;
    }
    let Some(d) = disjuncts.get(idx) else {
        return Some(graph.clone());
    };
    // Option A: M → Ra.
    for (u, v) in [(d.m, d.ra), (d.wa, d.m)] {
        let already = graph.has_edge(u.index(), v.index());
        if !already {
            graph.add_edge(u.index(), v.index());
        }
        ato.push((u, v));
        if let Some(solved) = solve(graph, disjuncts, idx + 1, ato) {
            return Some(solved);
        }
        ato.pop();
        if !already {
            graph.remove_edge(u.index(), v.index());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::enumerate_candidates;
    use crate::program::ProgramBuilder;
    use rmw_types::{Addr, Atomicity, RmwKind};

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    #[test]
    fn sb_allows_0_0_under_tso() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        let valid_00 = enumerate_candidates(&p)
            .into_iter()
            .filter(|c| c.read_values() == vec![0, 0])
            .any(|c| check_validity(&c).is_valid());
        assert!(valid_00, "TSO must allow SB's 0/0 outcome");
    }

    #[test]
    fn sb_with_fences_forbids_0_0() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).fence().read(Y);
        b.thread().write(Y, 1).fence().read(X);
        let p = b.build();
        let valid_00 = enumerate_candidates(&p)
            .into_iter()
            .filter(|c| c.read_values() == vec![0, 0])
            .any(|c| check_validity(&c).is_valid());
        assert!(!valid_00, "mfence restores SC for SB");
    }

    #[test]
    fn uniproc_rejects_reading_own_overwritten_write() {
        // Thread writes 1 then 2 to x, then reads x: may only see 2.
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(X, 2).read(X);
        let p = b.build();
        let mut saw_valid_2 = false;
        for c in enumerate_candidates(&p) {
            let v = check_validity(&c);
            let read = c.read_values()[0];
            if read == 2 {
                saw_valid_2 |= v.is_valid();
            } else {
                assert!(!v.is_valid(), "uniproc forbids reading {read}");
            }
        }
        assert!(saw_valid_2, "must allow reading the latest write");
    }

    #[test]
    fn mp_is_forbidden_on_tso() {
        // Message passing: W x=1; W y=1 || R y; R x — r(y)=1 ∧ r(x)=0 is
        // forbidden under TSO (stores are ordered, reads are ordered).
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(Y, 1);
        b.thread().read(Y).read(X);
        let p = b.build();
        let bad = enumerate_candidates(&p)
            .into_iter()
            .filter(|c| c.read_values() == vec![1, 0])
            .any(|c| check_validity(&c).is_valid());
        assert!(!bad, "TSO forbids MP's 1/0 outcome");
    }

    #[test]
    fn witness_orders_respect_committed_edges() {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).read(Y);
        b.thread().write(Y, 1).read(X);
        let p = b.build();
        for c in enumerate_candidates(&p) {
            if let Validity::Valid(w) = check_validity(&c) {
                for (u, v) in &w.ato_edges {
                    assert!(w.before(*u, *v), "ato edge not respected by witness");
                }
                // com edges respected too
                for (u, v) in c
                    .ws_edges()
                    .into_iter()
                    .chain(c.rfe_edges())
                    .chain(c.fr_edges())
                {
                    assert!(w.before(u, v), "com edge not respected by witness");
                }
            }
        }
    }

    #[test]
    fn type1_rmw_acts_as_barrier_in_sb() {
        // SB with a type-1 RMW (to a third location) between W and R on both
        // threads forbids 0/0 (paper Fig. 5 analog, RMWs as barriers).
        let z1 = Addr(2);
        let z2 = Addr(3);
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, 1)
            .rmw(z1, RmwKind::TestAndSet, Atomicity::Type1)
            .read(Y);
        b.thread()
            .write(Y, 1)
            .rmw(z2, RmwKind::TestAndSet, Atomicity::Type1)
            .read(X);
        let p = b.build();
        let bad = enumerate_candidates(&p)
            .into_iter()
            .filter(|c| {
                // reads in (thread, po) order: [Ra(z1), R(y), Ra(z2), R(x)]
                let rv = c.read_values();
                rv[1] == 0 && rv[3] == 0
            })
            .any(|c| check_validity(&c).is_valid());
        assert!(!bad, "type-1 RMWs used as barriers forbid SB 0/0");
    }

    #[test]
    fn type2_rmw_does_not_act_as_barrier_in_sb() {
        // Same shape with type-2 RMWs to *different* addresses: 0/0 allowed
        // (paper §2.4, "RMWs as barriers (different addresses)").
        let z1 = Addr(2);
        let z2 = Addr(3);
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(X, 1)
            .rmw(z1, RmwKind::TestAndSet, Atomicity::Type2)
            .read(Y);
        b.thread()
            .write(Y, 1)
            .rmw(z2, RmwKind::TestAndSet, Atomicity::Type2)
            .read(X);
        let p = b.build();
        let bad = enumerate_candidates(&p)
            .into_iter()
            .filter(|c| {
                let rv = c.read_values();
                rv[1] == 0 && rv[3] == 0
            })
            .any(|c| check_validity(&c).is_valid());
        assert!(bad, "type-2 RMWs to different addresses are NOT barriers");
    }
}
