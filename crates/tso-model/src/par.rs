//! Root-split parallel search: the engine of [`crate::search`] fanned out
//! over the shared `exec-pool` workers.
//!
//! The sequential engine explores one decision tree — `ws` placements,
//! then `rf` choices, pruning doomed branches. Its first few levels
//! partition everything below into *independent* subtrees, so the parallel
//! engine:
//!
//! 1. expands those levels sequentially (`search::split_prefixes`) into viable
//!    decision prefixes, in exactly the order the sequential DFS visits
//!    the corresponding subtrees (for `ws`-trivial programs the split
//!    extends into the `rf` levels, so reads-heavy litmus shapes
//!    parallelize too);
//! 2. fans the prefixes out as tasks on an [`exec_pool`] worker pool
//!    (stable task indexing — results come back in subtree order no
//!    matter how workers interleave);
//! 3. merges deterministically: per-task accumulators are combined in
//!    task order, and per-task [`SearchStats`] are summed onto the split
//!    stats, which reproduces the sequential engine's decision counters
//!    *bit-for-bit at any worker count*.
//!
//! Early exit ([`outcome_allowed_par`]) uses a shared [`AtomicBool`]: the
//! task that finds a witness raises it, every other task aborts at its
//! next decision node, and the pool drains unstarted tasks without
//! running them.
//!
//! The sequential engine remains the reference implementation;
//! `tests/par_equiv.rs` asserts both yield identical execution sequences,
//! outcome sets, verdicts, and decision stats over the full litmus
//! corpora and random programs at 1, 2, and 8 workers.

use crate::execution::CandidateExecution;
use crate::outcome::Outcome;
use crate::program::Program;
use crate::search::{self, for_each_valid_execution, SearchStats};
use rmw_types::fasthash::FastHashSet;
use rmw_types::Value;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};

/// Subtree tasks to aim for per worker: enough oversplit that one heavy
/// subtree does not serialize the pool, little enough that split overhead
/// stays negligible.
const TASKS_PER_WORKER: usize = 4;

/// The workhorse: folds every valid execution of `program` into per-task
/// accumulators on `workers` threads. `make` builds one accumulator per
/// subtree task; `fold` is called with each valid execution, in sequential
/// DFS order *within* a task; returning [`ControlFlow::Break`] stops the
/// whole search (cooperatively, across all workers).
///
/// Returns the accumulators **in deterministic subtree order** plus the
/// merged stats. With no early exit, the stats' decision counters equal
/// the sequential engine's at any worker count; `tasks`/`workers` report
/// the parallel plumbing. `workers` is clamped by
/// [`exec_pool::effective_workers`] (nested pools run sequentially), and
/// `workers <= 1` falls through to the sequential engine with a single
/// accumulator.
pub fn fold_valid_executions_par<T, A, F>(
    program: &Program,
    workers: usize,
    make: A,
    fold: F,
) -> (Vec<T>, SearchStats)
where
    T: Send,
    A: Fn() -> T + Sync,
    F: Fn(&mut T, &CandidateExecution) -> ControlFlow<()> + Sync,
{
    let workers = exec_pool::effective_workers(workers);
    if workers <= 1 {
        let mut acc = make();
        let stats = for_each_valid_execution(program, |exec| fold(&mut acc, exec));
        return (vec![acc], stats);
    }

    let sc = search::build_ctx(program);
    let (prefixes, mut stats) = search::split_prefixes(&sc, workers * TASKS_PER_WORKER);
    let stop = AtomicBool::new(false);
    let results = exec_pool::run_indexed(workers, prefixes.len(), &stop, |_worker, i| {
        let mut acc = make();
        let mut visitor = |exec: &CandidateExecution| match fold(&mut acc, exec) {
            ControlFlow::Continue(()) => ControlFlow::Continue(()),
            ControlFlow::Break(()) => {
                stop.store(true, Ordering::Relaxed);
                ControlFlow::Break(())
            }
        };
        let task_stats = search::run_prefix(&sc, &prefixes[i], &mut visitor, Some(&stop));
        (acc, task_stats)
    });

    let mut accs = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Some((acc, task_stats)) => {
                stats.absorb(&task_stats);
                accs.push(acc);
            }
            // Drained without running: the stop flag fired first.
            None => stats.stopped_early = true,
        }
    }
    stats.tasks = prefixes.len() as u64;
    // Report what the pool could actually use: a split that yields fewer
    // subtrees than workers leaves the surplus threads idle (or runs
    // inline when there is a single task).
    stats.workers = workers.min(prefixes.len().max(1)) as u64;
    (accs, stats)
}

/// Parallel [`allowed_outcomes`](crate::outcome::allowed_outcomes): the
/// same outcome set, computed on `workers` threads. Per-task hash sets
/// are unioned in stable task order into the final `BTreeSet` (sorted
/// once, at the edge).
pub fn allowed_outcomes_par(program: &Program, workers: usize) -> BTreeSet<Outcome> {
    allowed_outcomes_par_with_stats(program, workers).0
}

/// [`allowed_outcomes_par`] plus the merged [`SearchStats`].
pub fn allowed_outcomes_par_with_stats(
    program: &Program,
    workers: usize,
) -> (BTreeSet<Outcome>, SearchStats) {
    let (sets, stats) = fold_valid_executions_par(
        program,
        workers,
        FastHashSet::<Outcome>::default,
        |set, exec| {
            set.insert(Outcome::of_execution(exec));
            ControlFlow::Continue(())
        },
    );
    let mut out = BTreeSet::new();
    for set in sets {
        out.extend(set);
    }
    (out, stats)
}

/// Parallel [`valid_executions`](crate::search::valid_executions): because
/// tasks are indexed in subtree (sequential DFS) order and each task
/// yields in DFS order, the concatenation reproduces the sequential
/// engine's yield *sequence* exactly, not just its set.
pub fn valid_executions_par(program: &Program, workers: usize) -> Vec<CandidateExecution> {
    let (chunks, _) = fold_valid_executions_par(program, workers, Vec::new, |out, exec| {
        out.push(exec.clone());
        ControlFlow::Continue(())
    });
    chunks.into_iter().flatten().collect()
}

/// Parallel [`outcome_allowed`](crate::outcome::outcome_allowed): true iff
/// some valid execution's read-value vector satisfies `pred`. The first
/// witness raises the shared stop flag and the remaining subtrees abort —
/// the verdict is deterministic (a witness exists or it does not), only
/// the amount of work skipped varies with scheduling.
pub fn outcome_allowed_par(
    program: &Program,
    workers: usize,
    pred: impl Fn(&[Value]) -> bool + Sync,
) -> bool {
    let (founds, _) = fold_valid_executions_par(
        program,
        workers,
        || false,
        |found, exec| {
            if pred(&exec.read_values()) {
                *found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    founds.into_iter().any(|f| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::allowed_outcomes;
    use crate::program::ProgramBuilder;
    use crate::search::valid_executions;
    use rmw_types::{Addr, Atomicity, RmwKind};

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(X, 2).read(Y);
        b.thread()
            .rmw(Y, RmwKind::FetchAndAdd(1), Atomicity::Type2)
            .read(X);
        b.thread().write(Y, 5).fence().read(X);
        b.build()
    }

    #[test]
    fn outcome_sets_match_sequential_at_every_worker_count() {
        let p = mixed_program();
        let seq = allowed_outcomes(&p);
        for workers in [1, 2, 8] {
            let (par, stats) = allowed_outcomes_par_with_stats(&p, workers);
            assert_eq!(par, seq, "workers={workers}");
            assert!(stats.valid >= par.len() as u64);
        }
    }

    #[test]
    fn decision_stats_are_worker_count_independent() {
        let p = mixed_program();
        let seq = for_each_valid_execution(&p, |_| ControlFlow::Continue(()));
        for workers in [2, 3, 8] {
            let (_, stats) = allowed_outcomes_par_with_stats(&p, workers);
            assert_eq!(stats.nodes, seq.nodes, "workers={workers}");
            assert_eq!(stats.pruned, seq.pruned, "workers={workers}");
            assert_eq!(stats.complete, seq.complete, "workers={workers}");
            assert_eq!(stats.valid, seq.valid, "workers={workers}");
            assert!(!stats.stopped_early);
            // Reported workers are what the task count could occupy.
            assert!(stats.workers >= 1 && stats.workers <= workers as u64);
            assert_eq!(stats.workers, (workers as u64).min(stats.tasks.max(1)));
            assert!(stats.tasks >= 1);
        }
    }

    #[test]
    fn execution_sequence_is_reproduced_not_just_the_set() {
        let p = mixed_program();
        let seq: Vec<Vec<u64>> = valid_executions(&p)
            .iter()
            .map(CandidateExecution::read_values)
            .collect();
        for workers in [2, 8] {
            let par: Vec<Vec<u64>> = valid_executions_par(&p, workers)
                .iter()
                .map(CandidateExecution::read_values)
                .collect();
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn early_exit_verdicts_match_sequential() {
        let p = mixed_program();
        let outs = allowed_outcomes(&p);
        for workers in [1, 2, 8] {
            for o in &outs {
                let target = o.read_values();
                assert!(
                    outcome_allowed_par(&p, workers, |rv| rv == target),
                    "workers={workers}: {target:?} must be allowed"
                );
            }
            assert!(!outcome_allowed_par(&p, workers, |rv| rv
                .iter()
                .all(|&v| v == 99)));
        }
    }

    #[test]
    fn empty_and_read_free_programs_work_in_parallel() {
        let empty = Program::new();
        assert_eq!(allowed_outcomes_par(&empty, 8), allowed_outcomes(&empty));

        let mut b = ProgramBuilder::new();
        b.thread().write(X, 7);
        let p = b.build();
        assert_eq!(allowed_outcomes_par(&p, 8), allowed_outcomes(&p));
        assert!(outcome_allowed_par(&p, 8, |rv| rv.is_empty()));
    }
}
