//! Root-split parallel search: the engine of [`crate::search`] fanned out
//! over the shared `exec-pool` workers.
//!
//! The sequential engine explores one decision tree — `ws` placements,
//! then `rf` choices, pruning doomed branches. Its first few levels
//! partition everything below into *independent* subtrees, so the parallel
//! engine:
//!
//! 1. expands those levels sequentially (`search::split_prefixes`) into viable
//!    decision prefixes, in exactly the order the sequential DFS visits
//!    the corresponding subtrees (for `ws`-trivial programs the split
//!    extends into the `rf` levels, so reads-heavy litmus shapes
//!    parallelize too);
//! 2. fans the prefixes out as tasks on an [`exec_pool`] worker pool
//!    (stable task indexing — results come back in subtree order no
//!    matter how workers interleave);
//! 3. merges deterministically: per-task accumulators are combined in
//!    task order, and per-task [`SearchStats`] are summed onto the split
//!    stats, which reproduces the sequential engine's decision counters
//!    *bit-for-bit at any worker count*.
//!
//! Early exit ([`outcome_allowed_par`]) uses a shared [`AtomicBool`]: the
//! task that finds a witness raises it, every other task aborts at its
//! next decision node, and the pool drains unstarted tasks without
//! running them.
//!
//! # Adaptive policy
//!
//! Fanning out is not free: the split phase, per-task base-graph clones,
//! and thread handoff cost a fixed overhead that small subtrees never
//! amortize — the seed's BENCH_model.json showed 0.23–0.97× *slowdowns*
//! on every small shape. The public entry points are therefore
//! *adaptive*: they predict the sequential cost from
//! `SearchCtx::estimate_nodes` (the unpruned decision-tree size) divided
//! by a nodes-per-µs rate calibrated once per process
//! (`estimated_nodes_per_us`), stay fully sequential below
//! `MIN_SPLIT_EST_US` (and always on single-hardware-thread hosts,
//! where fan-out can only lose), and above it pick a split target so
//! each prefix task carries at least `MIN_TASK_EST_US` of predicted
//! work. The
//! sequential fallback reports `tasks = workers = 1`; the decision
//! counters are engine-independent either way, so results and stats stay
//! bit-identical to the sequential engine. The always-split engine
//! remains available as [`fold_valid_executions_split`] for equivalence
//! tests and scaling benches.
//!
//! The sequential engine remains the reference implementation;
//! `tests/par_equiv.rs` asserts both yield identical execution sequences,
//! outcome sets, verdicts, and decision stats over the full litmus
//! corpora and random programs at 1, 2, and 8 workers.

use crate::execution::CandidateExecution;
use crate::outcome::Outcome;
use crate::program::{Program, ProgramBuilder};
use crate::search::{self, for_each_valid_execution, Prefix, SearchCtx, SearchStats};
use rmw_types::fasthash::FastHashSet;
use rmw_types::{Addr, Value};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Subtree tasks to aim for per worker: enough oversplit that one heavy
/// subtree does not serialize the pool, little enough that split overhead
/// stays negligible.
const TASKS_PER_WORKER: usize = 4;

/// Predicted sequential microseconds below which the adaptive engine
/// refuses to fan out. Split/replay overhead is on the order of tens to a
/// few hundred µs; requiring ~20 ms of predicted work keeps the worst
/// case (the estimate overshooting a heavily pruned shape) well under the
/// 10% regression budget, while every shape that actually benefits from
/// parallelism predicts far above this floor.
const MIN_SPLIT_EST_US: f64 = 20_000.0;

/// Predicted microseconds of subtree work per task once the engine does
/// fan out: the split depth is capped so no task falls below this, which
/// keeps per-task replay overhead in the low single digits percent.
const MIN_TASK_EST_US: f64 = 1_000.0;

/// A mid-size Dekker-like shape (2 threads × 3 write/read rounds) used to
/// calibrate the node rate: deep enough that one sequential run takes on
/// the order of a millisecond, small enough that the one-time calibration
/// is negligible.
fn calibration_program() -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..2u64 {
        let mine = Addr(i);
        let other = Addr((i + 1) % 2);
        let mut t = b.thread();
        for k in 1..=3u64 {
            t.write(mine, k).read(other);
        }
    }
    b.build()
}

/// *Estimated* decision nodes searched per microsecond, calibrated once
/// per process by timing the sequential engine on
/// [`calibration_program`] and dividing its `estimate_nodes` (not its
/// real node count) by the elapsed time. Using the estimate on both
/// sides makes the units cancel: `predicted_us(P) =
/// estimate_nodes(P) / rate` is exact for the calibration shape and
/// biased safely for others — shapes shallower than the calibration
/// shape overestimate the rate's applicability *downward* (they stay
/// sequential; they are small anyway), deeper shapes upward (they split;
/// they are large anyway). The best of three runs is kept, so transient
/// scheduler noise can only make the engine *more* reluctant to split.
fn estimated_nodes_per_us() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        let p = calibration_program();
        let sc = search::build_ctx(&p);
        let est = sc.estimate_nodes() as f64;
        let mut best = 0.0f64;
        for _ in 0..3 {
            let t0 = Instant::now();
            let mut sink = |_: &CandidateExecution| ControlFlow::Continue(());
            let _ = search::run_ctx(&sc, &mut sink, None);
            let us = t0.elapsed().as_secs_f64() * 1e6;
            best = best.max(est / us.max(1.0));
        }
        best.max(1.0)
    })
}

/// Predicted sequential search cost of `sc`'s program in microseconds —
/// the quantity the adaptive split decision thresholds on.
pub(crate) fn predicted_us(sc: &SearchCtx) -> f64 {
    sc.estimate_nodes() as f64 / estimated_nodes_per_us()
}

/// Worker count the *adaptive* engines plan with: `requested` clamped by
/// [`exec_pool::effective_workers`] and by the host's available
/// parallelism. On a single-hardware-thread host splitting can only lose
/// (every task still runs serially, plus fan-out overhead), so the
/// adaptive policy treats such hosts as `workers = 1` and stays
/// sequential no matter what was requested. The forced split engine
/// ([`fold_valid_executions_split`]) deliberately does *not* apply this
/// cap — equivalence tests need the split path exercised everywhere.
fn adaptive_workers(requested: usize) -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    let hw = *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    exec_pool::effective_workers(requested).min(hw)
}

/// Split target for a shape predicted to cost `est_us`: capped both by
/// worker appetite and by the per-task work floor.
fn split_target(workers: usize, est_us: f64) -> usize {
    let cap = (est_us / MIN_TASK_EST_US) as usize;
    (workers * TASKS_PER_WORKER).min(cap.max(2))
}

/// The workhorse: folds every valid execution of `program` into per-task
/// accumulators on `workers` threads. `make` builds one accumulator per
/// subtree task; `fold` is called with each valid execution, in sequential
/// DFS order *within* a task; returning [`ControlFlow::Break`] stops the
/// whole search (cooperatively, across all workers).
///
/// Returns the accumulators **in deterministic subtree order** plus the
/// merged stats. With no early exit, the stats' decision counters equal
/// the sequential engine's at any worker count; `tasks`/`workers` report
/// the parallel plumbing. `workers` is clamped by
/// [`exec_pool::effective_workers`] (nested pools run sequentially), and
/// `workers <= 1` falls through to the sequential engine with a single
/// accumulator.
pub fn fold_valid_executions_par<T, A, F>(
    program: &Program,
    workers: usize,
    make: A,
    fold: F,
) -> (Vec<T>, SearchStats)
where
    T: Send,
    A: Fn() -> T + Sync,
    F: Fn(&mut T, &CandidateExecution) -> ControlFlow<()> + Sync,
{
    let workers = adaptive_workers(workers);
    if workers <= 1 {
        let mut acc = make();
        let stats = for_each_valid_execution(program, |exec| fold(&mut acc, exec));
        return (vec![acc], stats);
    }

    let sc = search::build_ctx(program);
    let est_us = predicted_us(&sc);
    if est_us < MIN_SPLIT_EST_US {
        // Too small to amortize fan-out: run sequentially on the calling
        // thread (same context, same stats, `tasks = workers = 1`).
        let mut acc = make();
        let stats = search::run_ctx(&sc, &mut |exec| fold(&mut acc, exec), None);
        return (vec![acc], stats);
    }
    split_from_ctx(&sc, workers, split_target(workers, est_us), &make, &fold)
}

/// The always-split engine: fans out over `workers` regardless of shape
/// size, exactly as [`fold_valid_executions_par`] did before the adaptive
/// policy. Kept public for the `par_equiv` equivalence suite and the
/// `model_scaling` bench, which need the split path exercised on shapes
/// the adaptive policy would run sequentially. `workers <= 1` still falls
/// through to the sequential engine.
pub fn fold_valid_executions_split<T, A, F>(
    program: &Program,
    workers: usize,
    make: A,
    fold: F,
) -> (Vec<T>, SearchStats)
where
    T: Send,
    A: Fn() -> T + Sync,
    F: Fn(&mut T, &CandidateExecution) -> ControlFlow<()> + Sync,
{
    let workers = exec_pool::effective_workers(workers);
    if workers <= 1 {
        let mut acc = make();
        let stats = for_each_valid_execution(program, |exec| fold(&mut acc, exec));
        return (vec![acc], stats);
    }
    let sc = search::build_ctx(program);
    split_from_ctx(&sc, workers, workers * TASKS_PER_WORKER, &make, &fold)
}

/// The shared split-and-merge body behind both fold entry points.
fn split_from_ctx<T, A, F>(
    sc: &SearchCtx,
    workers: usize,
    target: usize,
    make: &A,
    fold: &F,
) -> (Vec<T>, SearchStats)
where
    T: Send,
    A: Fn() -> T + Sync,
    F: Fn(&mut T, &CandidateExecution) -> ControlFlow<()> + Sync,
{
    let (prefixes, mut stats) = search::split_prefixes(sc, target);
    let stop = AtomicBool::new(false);
    let results = exec_pool::run_indexed(workers, prefixes.len(), &stop, |_worker, i| {
        let mut acc = make();
        let mut visitor = |exec: &CandidateExecution| match fold(&mut acc, exec) {
            ControlFlow::Continue(()) => ControlFlow::Continue(()),
            ControlFlow::Break(()) => {
                stop.store(true, Ordering::Relaxed);
                ControlFlow::Break(())
            }
        };
        let task_stats = search::run_prefix(sc, &prefixes[i], &mut visitor, Some(&stop));
        (acc, task_stats)
    });

    let mut accs = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Some((acc, task_stats)) => {
                stats.absorb(&task_stats);
                accs.push(acc);
            }
            // Drained without running: the stop flag fired first.
            None => stats.stopped_early = true,
        }
    }
    stats.tasks = prefixes.len() as u64;
    // Report what the pool could actually use: a split that yields fewer
    // subtrees than workers leaves the surplus threads idle (or runs
    // inline when there is a single task).
    stats.workers = workers.min(prefixes.len().max(1)) as u64;
    (accs, stats)
}

/// Parallel [`allowed_outcomes`](crate::outcome::allowed_outcomes): the
/// same outcome set, computed on `workers` threads. Per-task hash sets
/// are unioned in stable task order into the final `BTreeSet` (sorted
/// once, at the edge).
pub fn allowed_outcomes_par(program: &Program, workers: usize) -> BTreeSet<Outcome> {
    allowed_outcomes_par_with_stats(program, workers).0
}

/// [`allowed_outcomes_par`] plus the merged [`SearchStats`].
pub fn allowed_outcomes_par_with_stats(
    program: &Program,
    workers: usize,
) -> (BTreeSet<Outcome>, SearchStats) {
    let (sets, stats) = fold_valid_executions_par(
        program,
        workers,
        FastHashSet::<Outcome>::default,
        |set, exec| {
            set.insert(Outcome::of_execution(exec));
            ControlFlow::Continue(())
        },
    );
    let mut out = BTreeSet::new();
    for set in sets {
        out.extend(set);
    }
    (out, stats)
}

/// [`allowed_outcomes_par`] that additionally records the decision path
/// of every complete leaf, in sequential DFS order — the capture side of
/// prefix certificates ([`crate::prefix`]). The adaptive policy applies:
/// small shapes record on the sequential engine; large shapes split, and
/// the per-task leaf logs concatenated in task order reproduce the
/// sequential DFS leaf order exactly (the same argument that makes
/// [`valid_executions_par`] order-exact).
pub(crate) fn allowed_outcomes_recording(
    program: &Program,
    workers: usize,
) -> (BTreeSet<Outcome>, SearchStats, Vec<Prefix>) {
    let workers = adaptive_workers(workers);
    let sc = search::build_ctx(program);
    let est_us = predicted_us(&sc);
    // One shared budget accounting for the whole query, across every
    // subtree task (`None` when no limiting budget is installed — the
    // common case, where the engine below is bit-identical to pre-budget
    // behavior). The calibration inside `predicted_us` above runs through
    // the un-budgeted `run_ctx`, so a tight budget cannot skew the rate.
    let budget = crate::budget::begin_query();
    if workers <= 1 || est_us < MIN_SPLIT_EST_US {
        let mut set = FastHashSet::<Outcome>::default();
        let mut leaves = Vec::new();
        let stats = search::run_ctx_budgeted(
            &sc,
            &mut |exec| {
                set.insert(Outcome::of_execution(exec));
                ControlFlow::Continue(())
            },
            Some(&mut leaves),
            budget.as_deref(),
        );
        let mut out = BTreeSet::new();
        out.extend(set);
        return (out, stats, leaves);
    }

    let (prefixes, mut stats) = search::split_prefixes(&sc, split_target(workers, est_us));
    let stop = AtomicBool::new(false);
    let results = exec_pool::run_indexed(workers, prefixes.len(), &stop, |_worker, i| {
        let mut set = FastHashSet::<Outcome>::default();
        let mut leaves = Vec::new();
        let mut visitor = |exec: &CandidateExecution| {
            set.insert(Outcome::of_execution(exec));
            ControlFlow::Continue(())
        };
        // Budget exhaustion is signalled through the shared `QueryBudget`
        // (not the pool stop flag), so every task still runs — each
        // aborts at its own next decision node and reports its stats.
        let task_stats = search::run_prefix_with(
            &sc,
            &prefixes[i],
            &mut visitor,
            Some(&stop),
            Some(&mut leaves),
            budget.as_deref(),
        );
        (set, leaves, task_stats)
    });

    let mut out = BTreeSet::new();
    let mut leaves = Vec::new();
    for result in results {
        // No early exit here, so the stop flag never fires and every task
        // runs to completion.
        let (set, task_leaves, task_stats) = result.expect("recording search never stops early");
        stats.absorb(&task_stats);
        out.extend(set);
        leaves.extend(task_leaves);
    }
    stats.tasks = prefixes.len() as u64;
    stats.workers = workers.min(prefixes.len().max(1)) as u64;
    (out, stats, leaves)
}

/// Parallel [`valid_executions`](crate::search::valid_executions): because
/// tasks are indexed in subtree (sequential DFS) order and each task
/// yields in DFS order, the concatenation reproduces the sequential
/// engine's yield *sequence* exactly, not just its set.
pub fn valid_executions_par(program: &Program, workers: usize) -> Vec<CandidateExecution> {
    let (chunks, _) = fold_valid_executions_par(program, workers, Vec::new, |out, exec| {
        out.push(exec.clone());
        ControlFlow::Continue(())
    });
    chunks.into_iter().flatten().collect()
}

/// Parallel [`outcome_allowed`](crate::outcome::outcome_allowed): true iff
/// some valid execution's read-value vector satisfies `pred`. The first
/// witness raises the shared stop flag and the remaining subtrees abort —
/// the verdict is deterministic (a witness exists or it does not), only
/// the amount of work skipped varies with scheduling.
pub fn outcome_allowed_par(
    program: &Program,
    workers: usize,
    pred: impl Fn(&[Value]) -> bool + Sync,
) -> bool {
    let (founds, _) = fold_valid_executions_par(
        program,
        workers,
        || false,
        |found, exec| {
            if pred(&exec.read_values()) {
                *found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    founds.into_iter().any(|f| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::allowed_outcomes;
    use crate::program::ProgramBuilder;
    use crate::search::valid_executions;
    use rmw_types::{Addr, Atomicity, RmwKind};

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.thread().write(X, 1).write(X, 2).read(Y);
        b.thread()
            .rmw(Y, RmwKind::FetchAndAdd(1), Atomicity::Type2)
            .read(X);
        b.thread().write(Y, 5).fence().read(X);
        b.build()
    }

    #[test]
    fn outcome_sets_match_sequential_at_every_worker_count() {
        let p = mixed_program();
        let seq = allowed_outcomes(&p);
        for workers in [1, 2, 8] {
            let (par, stats) = allowed_outcomes_par_with_stats(&p, workers);
            assert_eq!(par, seq, "workers={workers}");
            assert!(stats.valid >= par.len() as u64);
        }
    }

    #[test]
    fn decision_stats_are_worker_count_independent() {
        let p = mixed_program();
        let seq = for_each_valid_execution(&p, |_| ControlFlow::Continue(()));
        for workers in [2, 3, 8] {
            let (_, stats) = allowed_outcomes_par_with_stats(&p, workers);
            assert_eq!(stats.nodes, seq.nodes, "workers={workers}");
            assert_eq!(stats.pruned, seq.pruned, "workers={workers}");
            assert_eq!(stats.complete, seq.complete, "workers={workers}");
            assert_eq!(stats.valid, seq.valid, "workers={workers}");
            assert!(!stats.stopped_early);
            // Reported workers are what the task count could occupy.
            assert!(stats.workers >= 1 && stats.workers <= workers as u64);
            assert_eq!(stats.workers, (workers as u64).min(stats.tasks.max(1)));
            assert!(stats.tasks >= 1);
        }
    }

    #[test]
    fn execution_sequence_is_reproduced_not_just_the_set() {
        let p = mixed_program();
        let seq: Vec<Vec<u64>> = valid_executions(&p)
            .iter()
            .map(CandidateExecution::read_values)
            .collect();
        for workers in [2, 8] {
            let par: Vec<Vec<u64>> = valid_executions_par(&p, workers)
                .iter()
                .map(CandidateExecution::read_values)
                .collect();
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn early_exit_verdicts_match_sequential() {
        let p = mixed_program();
        let outs = allowed_outcomes(&p);
        for workers in [1, 2, 8] {
            for o in &outs {
                let target = o.read_values();
                assert!(
                    outcome_allowed_par(&p, workers, |rv| rv == target),
                    "workers={workers}: {target:?} must be allowed"
                );
            }
            assert!(!outcome_allowed_par(&p, workers, |rv| rv
                .iter()
                .all(|&v| v == 99)));
        }
    }

    #[test]
    fn adaptive_runs_small_shapes_sequentially() {
        // mixed_program predicts far below the split floor, so even a
        // generous worker budget must stay on the calling thread.
        let p = mixed_program();
        let (_, stats) = allowed_outcomes_par_with_stats(&p, 8);
        assert_eq!((stats.tasks, stats.workers), (1, 1));
    }

    #[test]
    fn forced_split_matches_sequential_on_small_shapes() {
        // The always-split engine keeps the split path testable on shapes
        // the adaptive policy runs sequentially.
        let p = mixed_program();
        let seq = allowed_outcomes(&p);
        for workers in [2, 8] {
            let (sets, stats) = fold_valid_executions_split(
                &p,
                workers,
                FastHashSet::<Outcome>::default,
                |set, exec| {
                    set.insert(Outcome::of_execution(exec));
                    ControlFlow::Continue(())
                },
            );
            let mut par = BTreeSet::new();
            for set in sets {
                par.extend(set);
            }
            assert_eq!(par, seq, "workers={workers}");
            assert!(stats.tasks > 1, "forced split must fan out");
        }
    }

    #[test]
    fn recording_search_matches_plain_search() {
        let p = mixed_program();
        let plain = allowed_outcomes(&p);
        let seq_stats = for_each_valid_execution(&p, |_| ControlFlow::Continue(()));
        for workers in [1, 2, 8] {
            let (outs, stats, leaves) = allowed_outcomes_recording(&p, workers);
            assert_eq!(outs, plain, "workers={workers}");
            assert_eq!(stats.nodes, seq_stats.nodes, "workers={workers}");
            assert_eq!(stats.complete, seq_stats.complete, "workers={workers}");
            assert_eq!(
                leaves.len() as u64,
                stats.complete,
                "one recorded leaf per complete assignment"
            );
        }
    }

    #[test]
    fn empty_and_read_free_programs_work_in_parallel() {
        let empty = Program::new();
        assert_eq!(allowed_outcomes_par(&empty, 8), allowed_outcomes(&empty));

        let mut b = ProgramBuilder::new();
        b.thread().write(X, 7);
        let p = b.build();
        assert_eq!(allowed_outcomes_par(&p, 8), allowed_outcomes(&p));
        assert!(outcome_allowed_par(&p, 8, |rv| rv.is_empty()));
    }
}
