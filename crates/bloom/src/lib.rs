//! Bloom filter used to maintain the *addr-list* of unique RMW addresses
//! (paper §3.2).
//!
//! The paper keeps, per processor, a small Bloom filter holding every cache
//! line address that has been the target of an RMW on any processor. Before
//! a type-2/type-3 RMW may retire with pending writes in the write buffer,
//! the pending writes are checked against the filter: a hit (which may be a
//! false positive) forces a conservative write-buffer drain, preserving the
//! deadlock-safety property. A Bloom filter has **no false negatives**, which
//! is what makes the scheme sound; false positives only cost performance.
//!
//! The paper's configuration is a **128-byte filter with 3 hash functions**;
//! [`BloomFilter::paper_config`] builds exactly that.
//!
//! # Example
//!
//! ```
//! use bloom::BloomFilter;
//!
//! let mut f = BloomFilter::paper_config();
//! assert!(!f.maybe_contains(0xdead_beef));
//! f.insert(0xdead_beef);
//! assert!(f.maybe_contains(0xdead_beef)); // never a false negative
//! f.reset();
//! assert!(f.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

/// A fixed-size Bloom filter over `u64` keys with `k` independent hashes.
///
/// Bits are stored in a boxed `u64` word array, allocated lazily on the
/// first insert — the timing simulator instantiates one filter per core
/// per machine, and most of them never see an RMW. An unallocated filter
/// behaves exactly like an all-zero one. Hashing is a seeded
/// SplitMix64-style mixer, which is deterministic across runs — important
/// because the simulator must be reproducible.
#[derive(Clone, PartialEq, Eq)]
pub struct BloomFilter {
    /// Empty until the first insert; `num_words` long afterwards.
    words: Box<[u64]>,
    num_bits: usize,
    num_hashes: u32,
    insertions: u64,
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("num_bits", &self.num_bits)
            .field("num_hashes", &self.num_hashes)
            .field("insertions", &self.insertions)
            .field("ones", &self.count_ones())
            .finish()
    }
}

impl BloomFilter {
    /// Creates a filter with `size_bytes` of bit storage and `num_hashes`
    /// hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` or `num_hashes` is zero.
    pub fn new(size_bytes: usize, num_hashes: u32) -> Self {
        assert!(size_bytes > 0, "bloom filter size must be nonzero");
        assert!(num_hashes > 0, "bloom filter must use at least one hash");
        BloomFilter {
            words: Box::new([]),
            num_bits: size_bytes * 8,
            num_hashes,
            insertions: 0,
        }
    }

    /// The configuration evaluated in the paper: 128 bytes, 3 hash functions.
    pub fn paper_config() -> Self {
        BloomFilter::new(128, 3)
    }

    /// Number of bits of storage.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Number of keys inserted since construction or the last [`reset`].
    ///
    /// The hardware uses this as the *reset threshold counter*: when it
    /// exceeds a configured bound the filters of all processors are reset
    /// (paper §3.2, "False Positives").
    ///
    /// [`reset`]: BloomFilter::reset
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// True if no key has ever been inserted (all bits clear).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts `key`, returning `true` if the filter *changed* (i.e. the key
    /// was not already reported present). The paper broadcasts the RMW
    /// address exactly when this returns `true`.
    pub fn insert(&mut self, key: u64) -> bool {
        if self.words.is_empty() {
            self.words = vec![0u64; (self.num_bits / 8).div_ceil(8)].into_boxed_slice();
        }
        let mut changed = false;
        for i in 0..self.num_hashes {
            let bit = self.bit_index(key, i);
            let (w, b) = (bit / 64, bit % 64);
            let mask = 1u64 << b;
            if self.words[w] & mask == 0 {
                self.words[w] |= mask;
                changed = true;
            }
        }
        self.insertions += 1;
        changed
    }

    /// Membership query. `false` means *definitely absent*; `true` means
    /// *possibly present* (may be a false positive, never a false negative).
    pub fn maybe_contains(&self, key: u64) -> bool {
        if self.words.is_empty() {
            return false;
        }
        (0..self.num_hashes).all(|i| {
            let bit = self.bit_index(key, i);
            self.words[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Clears all bits and the insertion counter. Models the coordinated
    /// filter reset (all processors quiesce in-flight RMWs first).
    /// Releases the lazily-allocated storage, so a reset filter compares
    /// equal to a freshly constructed one.
    pub fn reset(&mut self) {
        self.words = Box::new([]);
        self.insertions = 0;
    }

    /// Merges another filter's bits into this one (bitwise OR). Used when a
    /// processor joins or when reconstructing a filter from broadcasts.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different configurations.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(
            (self.num_bits, self.num_hashes),
            (other.num_bits, other.num_hashes),
            "cannot union bloom filters of different configurations"
        );
        if !other.words.is_empty() {
            if self.words.is_empty() {
                self.words = other.words.clone();
            } else {
                for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
                    *a |= *b;
                }
            }
        }
        self.insertions += other.insertions;
    }

    /// Number of set bits — used by tests and the ablation bench to track
    /// saturation.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Theoretical false-positive probability after `n` distinct insertions:
    /// `(1 - e^{-k n / m})^k`. Used by the ablation bench to pick a reset
    /// threshold.
    pub fn theoretical_fpp(&self, n: u64) -> f64 {
        let k = f64::from(self.num_hashes);
        let m = self.num_bits as f64;
        (1.0 - (-k * n as f64 / m).exp()).powf(k)
    }

    /// Occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        f64::from(self.count_ones()) / self.num_bits as f64
    }

    fn bit_index(&self, key: u64, hash_index: u32) -> usize {
        (mix64(
            key ^ SEEDS[hash_index as usize % SEEDS.len()]
                .wrapping_add(u64::from(hash_index).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ) % self.num_bits as u64) as usize
    }
}

/// Per-hash seeds (arbitrary odd constants).
const SEEDS: [u64; 8] = [
    0x243F_6A88_85A3_08D3,
    0x1319_8A2E_0370_7344,
    0xA409_3822_299F_31D0,
    0x082E_FA98_EC4E_6C89,
    0x4528_21E6_38D0_1377,
    0xBE54_66CF_34E9_0C6C,
    0xC0AC_29B7_C97C_50DD,
    0x3F84_D5B5_B547_0917,
];

/// SplitMix64 finalizer: a strong deterministic 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_dimensions() {
        let f = BloomFilter::paper_config();
        assert_eq!(f.num_bits(), 128 * 8);
        assert_eq!(f.num_hashes(), 3);
        assert!(f.is_empty());
    }

    #[test]
    fn insert_then_query() {
        let mut f = BloomFilter::paper_config();
        assert!(!f.maybe_contains(42));
        assert!(f.insert(42), "first insert changes the filter");
        assert!(f.maybe_contains(42));
        assert!(!f.insert(42), "re-insert does not change the filter");
        assert_eq!(f.insertions(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = BloomFilter::paper_config();
        for k in 0..100 {
            f.insert(k);
        }
        assert!(!f.is_empty());
        f.reset();
        assert!(f.is_empty());
        assert_eq!(f.insertions(), 0);
        assert_eq!(f.count_ones(), 0);
        for k in 0..100 {
            assert!(
                !f.maybe_contains(k),
                "after reset, {k} is definitely absent"
            );
        }
    }

    #[test]
    fn no_false_negatives_dense() {
        let mut f = BloomFilter::new(64, 3);
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            assert!(f.maybe_contains(k), "false negative for {k:#x}");
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_paper_scale() {
        // Paper: ~1% of dynamic RMWs are to unique addresses, so filters hold
        // few entries. With 50 entries in a 1024-bit, 3-hash filter the FPP
        // should be tiny.
        let mut f = BloomFilter::paper_config();
        for k in 0..50u64 {
            f.insert(mix64(k));
        }
        let mut fp = 0usize;
        let probes = 10_000;
        for k in 0..probes as u64 {
            if f.maybe_contains(mix64(k + 1_000_000)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.02, "false positive rate too high: {rate}");
        // and consistent with theory within a loose factor
        let theory = f.theoretical_fpp(50);
        assert!(
            rate < theory * 10.0 + 0.01,
            "rate {rate} vs theory {theory}"
        );
    }

    #[test]
    fn union_behaves_like_inserting_both_sets() {
        let mut a = BloomFilter::new(128, 3);
        let mut b = BloomFilter::new(128, 3);
        a.insert(1);
        a.insert(2);
        b.insert(3);
        a.union_with(&b);
        for k in [1, 2, 3] {
            assert!(a.maybe_contains(k));
        }
        assert_eq!(a.insertions(), 3);
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn union_rejects_mismatched_configs() {
        let mut a = BloomFilter::new(128, 3);
        let b = BloomFilter::new(64, 3);
        a.union_with(&b);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        let _ = BloomFilter::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn zero_hashes_rejected() {
        let _ = BloomFilter::new(16, 0);
    }

    #[test]
    fn theoretical_fpp_monotone_in_n() {
        let f = BloomFilter::paper_config();
        let mut last = 0.0;
        for n in [0, 10, 100, 1000, 10_000] {
            let p = f.theoretical_fpp(n);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last, "fpp must grow with insertions");
            last = p;
        }
    }

    #[test]
    fn occupancy_grows_then_saturates() {
        let mut f = BloomFilter::new(16, 3); // tiny, saturates fast
        assert_eq!(f.occupancy(), 0.0);
        for k in 0..10_000u64 {
            f.insert(mix64(k));
        }
        assert!(f.occupancy() > 0.99, "tiny filter should saturate");
        // saturated filter reports everything present
        assert!(f.maybe_contains(987654321));
    }

    #[test]
    fn debug_is_nonempty() {
        let f = BloomFilter::paper_config();
        assert!(!format!("{f:?}").is_empty());
    }
}
