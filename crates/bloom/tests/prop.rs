//! Property-based tests for the Bloom filter: the soundness of the paper's
//! deadlock-avoidance scheme rests on "no false negatives".

use bloom::BloomFilter;
use proptest::prelude::*;

proptest! {
    /// Every inserted key is reported present, for arbitrary key sets and
    /// filter configurations.
    #[test]
    fn no_false_negatives(
        keys in proptest::collection::vec(any::<u64>(), 0..200),
        size_bytes in 1usize..256,
        num_hashes in 1u32..6,
    ) {
        let mut f = BloomFilter::new(size_bytes, num_hashes);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.maybe_contains(k));
        }
    }

    /// Reset restores the pristine state: definite absence of everything.
    #[test]
    fn reset_is_complete(keys in proptest::collection::vec(any::<u64>(), 1..100)) {
        let mut f = BloomFilter::paper_config();
        let fresh = BloomFilter::paper_config();
        for &k in &keys {
            f.insert(k);
        }
        f.reset();
        prop_assert_eq!(&f, &fresh);
        prop_assert!(f.is_empty());
    }

    /// Union over-approximates both operands.
    #[test]
    fn union_superset(
        ka in proptest::collection::vec(any::<u64>(), 0..50),
        kb in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut a = BloomFilter::paper_config();
        let mut b = BloomFilter::paper_config();
        for &k in &ka { a.insert(k); }
        for &k in &kb { b.insert(k); }
        let mut u = a.clone();
        u.union_with(&b);
        for &k in ka.iter().chain(kb.iter()) {
            prop_assert!(u.maybe_contains(k));
        }
    }

    /// A query result of `false` is authoritative: inserting then querying a
    /// *different* key either misses (fine) or hits (false positive, fine),
    /// but a miss implies the key was truly never inserted.
    #[test]
    fn insert_reports_change_consistently(keys in proptest::collection::vec(any::<u64>(), 1..100)) {
        let mut f = BloomFilter::paper_config();
        for &k in &keys {
            let was_present = f.maybe_contains(k);
            let changed = f.insert(k);
            // If the filter already claimed presence, inserting cannot change it.
            if was_present {
                prop_assert!(!changed);
            }
            prop_assert!(f.maybe_contains(k));
        }
    }

    /// Insertion counter tracks the number of insert calls exactly.
    #[test]
    fn insertion_counter(n in 0u64..500) {
        let mut f = BloomFilter::paper_config();
        for k in 0..n {
            f.insert(k);
        }
        prop_assert_eq!(f.insertions(), n);
    }
}
