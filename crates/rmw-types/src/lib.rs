//! Shared vocabulary types for the *Fast RMWs for TSO* reproduction.
//!
//! This crate defines the basic identifiers (threads, addresses, values),
//! the three RMW atomicity definitions from the paper (§2.2), the RMW
//! operation kinds found on TSO architectures, and small descriptors for
//! memory operations shared by the axiomatic model ([`tso-model`]) and the
//! timing simulator ([`tso-sim`]).
//!
//! # Example
//!
//! ```
//! use rmw_types::{Atomicity, RmwKind};
//!
//! // Existing x86/SPARC RMWs are type-1 (strict); the paper proposes
//! // type-2 and type-3.
//! assert!(Atomicity::Type1.is_stricter_than(Atomicity::Type2));
//! assert!(Atomicity::Type2.is_stricter_than(Atomicity::Type3));
//! assert!(RmwKind::CompareAndSwap { expected: 0, new: 1 }.is_conditional());
//! ```
//!
//! [`tso-model`]: https://example.org/fast-rmw-tso
//! [`tso-sim`]: https://example.org/fast-rmw-tso

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

/// Identifier of a hardware thread / processor.
///
/// The paper's simulator uses a 32-core CMP; thread ids are small dense
/// integers used to index per-processor structures.
///
/// ```
/// use rmw_types::ThreadId;
/// let t = ThreadId(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(format!("{t}"), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// Returns the dense index of this thread, for indexing per-CPU arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(i: usize) -> Self {
        ThreadId(i)
    }
}

/// A memory address (location).
///
/// Litmus tests conventionally use `x`, `y`, `z`; the simulator uses byte
/// addresses. Both are represented as a `u64`. [`Addr::name`] renders small
/// addresses with the conventional litmus letters.
///
/// ```
/// use rmw_types::Addr;
/// assert_eq!(Addr(0).name(), "x");
/// assert_eq!(Addr(1).name(), "y");
/// assert_eq!(Addr(26).name(), "loc26");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Conventional litmus names: `x`, `y`, `z`, `a`, `b`, ... for the first
    /// few addresses, `locN` beyond.
    pub fn name(self) -> String {
        const NAMES: [&str; 6] = ["x", "y", "z", "a", "b", "c"];
        match NAMES.get(self.0 as usize) {
            Some(n) => (*n).to_owned(),
            None => format!("loc{}", self.0),
        }
    }

    /// The cache line containing this address, for a given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero or not a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> CacheLine {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a nonzero power of two, got {line_size}"
        );
        CacheLine(self.0 & !(line_size - 1))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl From<u64> for Addr {
    fn from(a: u64) -> Self {
        Addr(a)
    }
}

/// A cache-line-aligned address, produced by [`Addr::line`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheLine(pub u64);

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line@{:#x}", self.0)
    }
}

/// A memory value. Litmus tests use small integers; `0` is the conventional
/// initial value of every location.
pub type Value = u64;

/// The three RMW atomicity definitions of the paper (§2.2).
///
/// Let `Ra`/`Wa` be the read/write halves of an RMW to address `x`, and
/// `ghb` the global memory order. The definitions forbid the following
/// events from appearing *between* `Ra` and `Wa` in `ghb`:
///
/// * [`Type1`](Atomicity::Type1): **writes to any address** (strict; what
///   x86 `lock`-prefixed instructions and SPARC RMWs implement today).
/// * [`Type2`](Atomicity::Type2): reads and writes **to the same address**.
/// * [`Type3`](Atomicity::Type3): writes **to the same address** only.
///
/// Every definition still suffices for consensus (Herlihy); they differ in
/// the *orderings they induce* (paper §2.3–2.5) and hence in which
/// synchronization idioms they support (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atomicity {
    /// Strict atomicity: no write to *any* address between `Ra` and `Wa`.
    Type1,
    /// No read or write to the *same* address between `Ra` and `Wa`.
    Type2,
    /// No write to the *same* address between `Ra` and `Wa`.
    Type3,
}

impl Atomicity {
    /// All three atomicity types, in decreasing strictness.
    pub const ALL: [Atomicity; 3] = [Atomicity::Type1, Atomicity::Type2, Atomicity::Type3];

    /// Whether `self` is strictly stronger than `other` (forbids a superset
    /// of interleavings).
    ///
    /// ```
    /// use rmw_types::Atomicity;
    /// assert!(Atomicity::Type1.is_stricter_than(Atomicity::Type3));
    /// assert!(!Atomicity::Type3.is_stricter_than(Atomicity::Type3));
    /// ```
    pub fn is_stricter_than(self, other: Atomicity) -> bool {
        self.rank() < other.rank()
    }

    /// Whether an event with the given shape is forbidden between `Ra(x)`
    /// and `Wa(x)` under this atomicity definition.
    ///
    /// `is_write` describes the intervening event; `same_addr` says whether
    /// it addresses the RMW's own location.
    ///
    /// ```
    /// use rmw_types::Atomicity;
    /// // A write to a different address is only forbidden under type-1.
    /// assert!(Atomicity::Type1.forbids_between(true, false));
    /// assert!(!Atomicity::Type2.forbids_between(true, false));
    /// // A same-address read is forbidden under type-2 but not type-3.
    /// assert!(Atomicity::Type2.forbids_between(false, true));
    /// assert!(!Atomicity::Type3.forbids_between(false, true));
    /// ```
    pub fn forbids_between(self, is_write: bool, same_addr: bool) -> bool {
        match self {
            Atomicity::Type1 => is_write,
            Atomicity::Type2 => same_addr,
            Atomicity::Type3 => is_write && same_addr,
        }
    }

    fn rank(self) -> u8 {
        match self {
            Atomicity::Type1 => 0,
            Atomicity::Type2 => 1,
            Atomicity::Type3 => 2,
        }
    }
}

impl fmt::Display for Atomicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Atomicity::Type1 => "type-1",
            Atomicity::Type2 => "type-2",
            Atomicity::Type3 => "type-3",
        };
        f.write_str(s)
    }
}

/// The read-modify-write operation kinds commonly provided by TSO
/// architectures (paper §1): test-and-set, fetch-and-add, compare-and-swap,
/// and atomic exchange (x86 `xchg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwKind {
    /// `test-and-set`: write 1, return the old value.
    TestAndSet,
    /// `fetch-and-add(k)`: add `k`, return the old value. `xadd(0)` is used
    /// by the C/C++11 SC-atomic-read mapping (paper Table 4).
    FetchAndAdd(Value),
    /// `compare-and-swap(expected, new)`: write `new` only if the old value
    /// equals `expected`; always returns the old value.
    CompareAndSwap {
        /// Value the location must hold for the swap to happen.
        expected: Value,
        /// Value stored on success.
        new: Value,
    },
    /// `exchange(new)`: unconditionally write `new`, return the old value.
    /// x86 `lock xchg` is used by the SC-atomic-write mapping (Table 4).
    Exchange(Value),
}

impl RmwKind {
    /// Applies the modify function to `old`, returning the value the write
    /// half stores. For a failed CAS this is `old` itself (the write still
    /// occurs in the model, writing back the old value, which keeps the
    /// read/write pair uniform; hardware may elide it).
    ///
    /// ```
    /// use rmw_types::RmwKind;
    /// assert_eq!(RmwKind::TestAndSet.apply(0), 1);
    /// assert_eq!(RmwKind::FetchAndAdd(5).apply(37), 42);
    /// assert_eq!(RmwKind::CompareAndSwap { expected: 1, new: 9 }.apply(1), 9);
    /// assert_eq!(RmwKind::CompareAndSwap { expected: 1, new: 9 }.apply(2), 2);
    /// assert_eq!(RmwKind::Exchange(7).apply(3), 7);
    /// ```
    pub fn apply(self, old: Value) -> Value {
        match self {
            RmwKind::TestAndSet => 1,
            RmwKind::FetchAndAdd(k) => old.wrapping_add(k),
            RmwKind::CompareAndSwap { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
            RmwKind::Exchange(new) => new,
        }
    }

    /// Whether the write half depends on a comparison (CAS) rather than
    /// being unconditional.
    pub fn is_conditional(self) -> bool {
        matches!(self, RmwKind::CompareAndSwap { .. })
    }
}

impl fmt::Display for RmwKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmwKind::TestAndSet => write!(f, "TAS"),
            RmwKind::FetchAndAdd(k) => write!(f, "FAA({k})"),
            RmwKind::CompareAndSwap { expected, new } => write!(f, "CAS({expected},{new})"),
            RmwKind::Exchange(new) => write!(f, "XCHG({new})"),
        }
    }
}

/// Access kind of a memory operation, as seen by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
    /// The (indivisible) read-modify-write pair.
    Rmw,
    /// A full memory barrier (x86 `mfence`); orders everything across it.
    Fence,
}

impl AccessKind {
    /// Whether the access reads memory (reads and RMWs do).
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Rmw)
    }

    /// Whether the access writes memory (writes and RMWs do).
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Rmw)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
            AccessKind::Rmw => "RMW",
            AccessKind::Fence => "F",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_display_and_index() {
        let t = ThreadId(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "P7");
        assert_eq!(ThreadId::from(2), ThreadId(2));
    }

    #[test]
    fn addr_names_follow_litmus_convention() {
        assert_eq!(Addr(0).to_string(), "x");
        assert_eq!(Addr(1).to_string(), "y");
        assert_eq!(Addr(2).to_string(), "z");
        assert_eq!(Addr(3).to_string(), "a");
        assert_eq!(Addr(100).to_string(), "loc100");
    }

    #[test]
    fn addr_line_masks_low_bits() {
        assert_eq!(Addr(0x1234).line(64), CacheLine(0x1200));
        assert_eq!(Addr(0x123F).line(64), CacheLine(0x1200));
        assert_eq!(Addr(0x1240).line(64), CacheLine(0x1240));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_line_rejects_non_power_of_two() {
        let _ = Addr(0).line(48);
    }

    #[test]
    fn atomicity_strictness_is_total_and_irreflexive() {
        use Atomicity::*;
        assert!(Type1.is_stricter_than(Type2));
        assert!(Type1.is_stricter_than(Type3));
        assert!(Type2.is_stricter_than(Type3));
        for a in Atomicity::ALL {
            assert!(!a.is_stricter_than(a));
        }
    }

    #[test]
    fn forbids_between_matches_paper_definitions() {
        use Atomicity::*;
        // (is_write, same_addr) -> forbidden?
        let cases = [
            // different-address read: nobody forbids
            (false, false, [false, false, false]),
            // different-address write: only type-1
            (true, false, [true, false, false]),
            // same-address read: type-1 does NOT forbid reads; type-2 does
            (false, true, [false, true, false]),
            // same-address write: all three forbid
            (true, true, [true, true, true]),
        ];
        for (w, same, expect) in cases {
            assert_eq!(
                Type1.forbids_between(w, same),
                expect[0],
                "type1 {w} {same}"
            );
            assert_eq!(
                Type2.forbids_between(w, same),
                expect[1],
                "type2 {w} {same}"
            );
            assert_eq!(
                Type3.forbids_between(w, same),
                expect[2],
                "type3 {w} {same}"
            );
        }
    }

    #[test]
    fn type1_forbids_same_addr_reads_not() {
        // Careful corner: type-1 forbids *writes* of any address but allows
        // reads between Ra and Wa per the paper's definition.
        assert!(!Atomicity::Type1.forbids_between(false, true));
        assert!(!Atomicity::Type1.forbids_between(false, false));
    }

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwKind::TestAndSet.apply(0), 1);
        assert_eq!(RmwKind::TestAndSet.apply(1), 1);
        assert_eq!(RmwKind::FetchAndAdd(0).apply(9), 9);
        assert_eq!(RmwKind::FetchAndAdd(1).apply(u64::MAX), 0, "wrapping add");
        assert_eq!(RmwKind::Exchange(4).apply(0), 4);
        let cas = RmwKind::CompareAndSwap {
            expected: 3,
            new: 5,
        };
        assert_eq!(cas.apply(3), 5);
        assert_eq!(cas.apply(4), 4);
        assert!(cas.is_conditional());
        assert!(!RmwKind::TestAndSet.is_conditional());
    }

    #[test]
    fn access_kind_read_write_predicates() {
        assert!(AccessKind::Read.reads() && !AccessKind::Read.writes());
        assert!(!AccessKind::Write.reads() && AccessKind::Write.writes());
        assert!(AccessKind::Rmw.reads() && AccessKind::Rmw.writes());
        assert!(!AccessKind::Fence.reads() && !AccessKind::Fence.writes());
    }

    #[test]
    fn displays_are_nonempty() {
        for a in Atomicity::ALL {
            assert!(!a.to_string().is_empty());
        }
        for k in [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::Rmw,
            AccessKind::Fence,
        ] {
            assert!(!k.to_string().is_empty());
        }
        assert_eq!(RmwKind::FetchAndAdd(0).to_string(), "FAA(0)");
        assert_eq!(
            RmwKind::CompareAndSwap {
                expected: 0,
                new: 1
            }
            .to_string(),
            "CAS(0,1)"
        );
    }
}

/// A fast, deterministic hasher for the simulator's hot maps.
///
/// The timing simulator performs several hash-map operations per coherence
/// transaction over small integer keys ([`Addr`], [`CacheLine`]); the
/// standard library's DoS-resistant SipHash dominates those lookups.
/// This multiplicative mixer (Fibonacci hashing with an avalanche finish)
/// is ~an order of magnitude cheaper, deterministic across runs (a
/// simulator requirement), and used only for trusted, non-adversarial
/// keys.
pub mod fasthash {
    use core::hash::{BuildHasherDefault, Hasher};
    use std::collections::{HashMap, HashSet};

    /// Multiplicative hasher over the written words.
    #[derive(Debug, Default, Clone)]
    pub struct FastHasher(u64);

    const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

    impl Hasher for FastHasher {
        fn finish(&self) -> u64 {
            // Avalanche so HashMap's low-bit masking sees high-entropy bits.
            let mut z = self.0;
            z ^= z >> 32;
            z = z.wrapping_mul(0xD6E8_FEB8_6659_FD93);
            z ^ (z >> 32)
        }

        fn write(&mut self, bytes: &[u8]) {
            for chunk in bytes.chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                self.write_u64(u64::from_le_bytes(buf));
            }
        }

        fn write_u64(&mut self, n: u64) {
            self.0 = (self.0 ^ n).wrapping_mul(SEED);
        }

        fn write_usize(&mut self, n: usize) {
            self.write_u64(n as u64);
        }
    }

    /// `BuildHasher` for [`FastHasher`].
    pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

    /// A `HashMap` keyed with [`FastHasher`].
    pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

    /// A `HashSet` keyed with [`FastHasher`].
    pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

    #[cfg(test)]
    mod tests {
        use super::*;
        use core::hash::BuildHasher;

        #[test]
        fn deterministic_and_spread() {
            let b = FastBuildHasher::default();
            let h = |k: u64| b.hash_one(k);
            assert_eq!(h(42), h(42), "hashing must be deterministic");
            // Adjacent cache-line keys (multiples of 64) must not collide
            // in the low bits HashMap actually uses.
            let low: std::collections::HashSet<u64> =
                (0..1024u64).map(|i| h(i * 64) & 0xFFF).collect();
            // ~906 distinct expected for 1024 balls in 4096 bins; far more
            // than the ~16 a low-bit-degenerate hash would produce.
            assert!(low.len() > 800, "low-bit spread too poor: {}", low.len());
        }

        #[test]
        fn maps_and_sets_work() {
            let mut m: FastHashMap<u64, u32> = FastHashMap::default();
            m.insert(7, 1);
            assert_eq!(m.get(&7), Some(&1));
            let mut s: FastHashSet<u64> = FastHashSet::default();
            assert!(s.insert(9));
            assert!(s.contains(&9));
        }
    }
}
