//! Differential invariant suite for the synchronization zoo.
//!
//! Every kernel runs under all three RMW atomicities and both step
//! engines; each run must pass the kernel's correctness invariant
//! (mutual exclusion / reader-writer exclusion / channel FIFO /
//! refcount balance), and the two engines must agree on the *entire*
//! observable result — the zoo's control flow, futexes and spin loops
//! exercise scheduler paths the straight-line corpus never reaches.

use rmw_types::Atomicity;
use tso_sim::{Machine, SimConfig, SimResult, StepMode};
use workloads::zoo::ZooKernel;

fn run(mut cfg: SimConfig, mode: StepMode, k: ZooKernel, n: usize, iters: u64) -> SimResult {
    cfg.step_mode = mode;
    Machine::new(cfg, k.traces(n, iters)).run()
}

fn assert_equal(k: ZooKernel, a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.stats, b.stats, "{k} {label}: aggregate stats diverge");
    assert_eq!(
        a.per_core, b.per_core,
        "{k} {label}: per-core stats diverge"
    );
    assert_eq!(a.reads, b.reads, "{k} {label}: read values diverge");
    assert_eq!(a.memory, b.memory, "{k} {label}: final memory diverges");
    assert_eq!(a.net, b.net, "{k} {label}: net traffic diverges");
    assert_eq!(a.deadlocked, b.deadlocked, "{k} {label}");
    assert_eq!(a.truncated, b.truncated, "{k} {label}");
}

/// The full small-machine matrix: 12 kernels × 3 atomicities × 2 engines,
/// every run invariant-checked and the engine pair compared exactly.
#[test]
fn small_machine_all_kernels_all_atomicities_both_engines() {
    let (n, iters) = (4, 5);
    for k in ZooKernel::ALL {
        for atomicity in Atomicity::ALL {
            let mut cfg = SimConfig::small(n);
            cfg.rmw_atomicity = atomicity;
            let ev = run(cfg, StepMode::EventDriven, k, n, iters);
            k.check(&ev, n, iters)
                .unwrap_or_else(|e| panic!("{k} {atomicity} event-driven: {e}"));
            let ls = run(cfg, StepMode::Lockstep, k, n, iters);
            k.check(&ls, n, iters)
                .unwrap_or_else(|e| panic!("{k} {atomicity} lockstep: {e}"));
            assert_equal(k, &ev, &ls, &format!("{atomicity}"));
        }
    }
}

/// Paper-scale (Table 2, 32 cores) invariants under the fast engine for
/// every atomicity — the "Table 3 at scale" semantic claim: atomicity
/// choice changes timing, never outcomes.
#[test]
fn table2_all_kernels_all_atomicities_event_driven() {
    let cfg0 = SimConfig::paper_table2();
    let n = cfg0.num_cores();
    let iters = 3;
    for k in ZooKernel::ALL {
        let mut outcomes = Vec::new();
        for atomicity in Atomicity::ALL {
            let mut cfg = cfg0;
            cfg.rmw_atomicity = atomicity;
            let r = run(cfg, StepMode::EventDriven, k, n, iters);
            k.check(&r, n, iters)
                .unwrap_or_else(|e| panic!("{k} {atomicity} @32 cores: {e}"));
            outcomes.push((r.memory.clone(), r.reads.clone()));
        }
        // Same kernel, different atomicity: identical *semantic* outcome.
        // (Read values may differ only where timing-dependent — lock
        // observation order — so compare final memory, which every
        // kernel's protocol fully determines.)
        for w in outcomes.windows(2) {
            assert_eq!(
                w[0].0, w[1].0,
                "{k}: final memory differs between atomicities"
            );
        }
    }
}

/// Paper-scale lockstep equivalence: the reference engine is too slow for
/// the full matrix in debug builds, so each kernel rotates through one
/// atomicity (all three covered every run across the kernel list).
#[test]
fn table2_lockstep_equivalence_rotating_atomicity() {
    let cfg0 = SimConfig::paper_table2();
    let n = cfg0.num_cores();
    let iters = 2;
    for (i, k) in ZooKernel::ALL.into_iter().enumerate() {
        let atomicity = Atomicity::ALL[i % Atomicity::ALL.len()];
        let mut cfg = cfg0;
        cfg.rmw_atomicity = atomicity;
        let ev = run(cfg, StepMode::EventDriven, k, n, iters);
        let ls = run(cfg, StepMode::Lockstep, k, n, iters);
        k.check(&ev, n, iters)
            .unwrap_or_else(|e| panic!("{k} {atomicity}: {e}"));
        assert_equal(k, &ev, &ls, &format!("{atomicity} @32 cores"));
    }
}

/// Contention stats are populated where the kernel's structure demands
/// them: spinners spin, sleepers sleep and hand off.
#[test]
fn contention_stats_match_kernel_structure() {
    let (n, iters) = (4, 6);
    for k in ZooKernel::ALL {
        let cfg = SimConfig::small(n);
        let r = run(cfg, StepMode::EventDriven, k, n, iters);
        k.check(&r, n, iters).unwrap_or_else(|e| panic!("{k}: {e}"));
        if k.uses_futex() {
            // The adaptive mutex may legitimately resolve all contention
            // inside its spin budget on a small machine.
            if k != ZooKernel::FutexMutexSpin {
                assert!(
                    r.stats.futex_waits + r.stats.futex_immediate + r.stats.futex_wakes > 0,
                    "{k}: futex kernel never used the futex"
                );
            }
            assert_eq!(
                r.stats.futex_waits, r.stats.futex_wakeups,
                "{k}: sleeper left behind"
            );
            if r.stats.futex_wakeups > 0 {
                assert!(
                    r.stats.blocked_cycles > 0,
                    "{k}: woken sleepers must have slept"
                );
            }
        } else {
            assert_eq!(r.stats.futex_waits, 0, "{k}: spin kernel slept");
            assert_eq!(r.stats.blocked_cycles, 0, "{k}");
        }
        if r.stats.handoffs > 0 {
            assert!(
                r.stats.wake_to_acquire_cycles >= r.stats.handoffs,
                "{k}: handoff faster than one cycle"
            );
        }
    }
}

/// A deliberately broken mutex (plain store instead of an RMW acquire)
/// must FAIL the mutual-exclusion check — proves the invariant detects
/// violations rather than vacuously passing.
#[test]
fn broken_lock_is_detected() {
    use tso_sim::{Op, Trace};
    let n = 4;
    let iters = 20;
    let counter = workloads::layout::shared(0);
    let traces: Vec<Trace> = (0..n)
        .map(|c| {
            let mut ops = Vec::new();
            ops.push(Op::Compute(1 + c as u32));
            for _ in 0..iters {
                // "Critical section" with no lock at all.
                ops.push(Op::ReadTo(0, counter));
                ops.push(Op::AddImm(0, 1));
                ops.push(Op::WriteFrom(counter, 0));
                ops.push(Op::Compute(3));
            }
            Trace::new(ops)
        })
        .collect();
    let r = Machine::new(SimConfig::small(n), traces).run();
    let got = r.memory.get(&counter).copied().unwrap_or(0);
    assert!(
        got < n as u64 * iters,
        "unlocked racing increments must lose updates (got {got})"
    );
}
