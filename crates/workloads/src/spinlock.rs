//! Test-and-set spin-lock kernel — the lock-based benchmarks (SPLASH-2
//! `radiosity`/`raytrace`, PARSEC `fluidanimate`/`dedup`).
//!
//! These programs use RMWs almost exclusively inside `lock`/`unlock`
//! primitives (paper §4.1). Each synchronization unit is:
//!
//! ```text
//!   W … W            pending writes from the preceding computation
//!   RMW(lock)        test-and-set acquire
//!   R/W …            critical section over shared data
//!   W(lock, 0)       release
//!   R/W/compute …    parallel phase (density filler)
//! ```
//!
//! The lock pool is shared across cores and sized from Table 3's "% Unique
//! RMWs", so address reuse (and hence the Bloom-filter broadcast rate)
//! matches the paper.

use crate::fill::TraceBuilder;
use crate::layout;
use crate::profile::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmw_types::RmwKind;
use tso_sim::{Op, Trace};

/// Generates one trace per core.
pub fn generate(p: &Profile, num_cores: usize, memops_per_core: usize, seed: u64) -> Vec<Trace> {
    let expected_rmws = (memops_per_core * num_cores) / p.memops_per_rmw().max(1);
    // Floor the pool at a couple of locks per core: real lock-based codes
    // have at least per-structure locks, and a single-lock convoy is not
    // the regime the paper measures. At paper scale the computed pool
    // dominates the floor.
    let pool = p.rmw_pool_size(expected_rmws.max(1)).max(2 * num_cores) as u64;

    (0..num_cores)
        .map(|core| {
            let mut rng = StdRng::seed_from_u64(seed ^ (core as u64).wrapping_mul(0x9E37_79B9));
            let mut b = TraceBuilder::new(core);
            // Desynchronize cores so lock acquisitions don't arrive in
            // lockstep.
            b.push(Op::Compute(rng.gen_range(1..400)));
            while b.memops < memops_per_core {
                // Pending writes from the preceding computation phase: these
                // sit in the write buffer when the lock RMW executes — the
                // knob behind the type-1 drain cost.
                for _ in 0..p.writes_before_rmw {
                    // Recently-touched shared lines: on-chip but often owned
                    // elsewhere, so completing them costs an invalidation
                    // round-trip (not a 300-cycle cold fetch).
                    let a = layout::shared(rng.gen_range(0..256.min(p.shared_lines)));
                    b.push(Op::Write(a, rng.gen_range(1..100)));
                }
                // Acquire.
                let lock = layout::sync_var(rng.gen_range(0..pool));
                b.push(Op::Rmw(lock, RmwKind::TestAndSet));
                // Critical section: a handful of shared accesses.
                for _ in 0..rng.gen_range(2..6) {
                    let a = layout::shared(rng.gen_range(0..p.shared_lines));
                    if rng.gen_bool(0.5) {
                        b.push(Op::Read(a));
                    } else {
                        b.push(Op::Write(a, rng.gen_range(1..100)));
                    }
                }
                // Release.
                b.push(Op::Write(lock, 0));
                // Parallel phase.
                b.fill_to_density(p, &mut rng);
            }
            b.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn lock_release_follows_acquire() {
        let p = Benchmark::Radiosity.profile();
        let traces = generate(&p, 2, 1_000, 5);
        for t in &traces {
            let mut held: Option<rmw_types::Addr> = None;
            for op in t.ops() {
                match *op {
                    Op::Rmw(a, _) => {
                        assert!(held.is_none(), "acquire while holding a lock");
                        held = Some(a);
                    }
                    Op::Write(a, 0) if Some(a) == held => held = None,
                    _ => {}
                }
            }
            assert!(held.is_none(), "trace ends with a held lock");
        }
    }

    #[test]
    fn uniqueness_tracks_table3_pool() {
        let p = Benchmark::Dedup.profile(); // 3.31% unique
        let traces = generate(&p, 4, 10_000, 9);
        let mut addrs = std::collections::BTreeSet::new();
        let mut rmws = 0usize;
        for t in &traces {
            for op in t.ops() {
                if let Op::Rmw(a, _) = op {
                    addrs.insert(*a);
                    rmws += 1;
                }
            }
        }
        let pct = 100.0 * addrs.len() as f64 / rmws as f64;
        assert!(
            (pct - p.pct_unique_rmws).abs() < 2.0,
            "unique% {pct:.2} vs Table 3 {:.2}",
            p.pct_unique_rmws
        );
    }

    #[test]
    fn pending_writes_precede_each_rmw() {
        let p = Benchmark::Raytrace.profile();
        let t = &generate(&p, 1, 2_000, 11)[0];
        let ops = t.ops();
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Op::Rmw(..)) && i >= p.writes_before_rmw {
                let writes_before = ops[i - p.writes_before_rmw..i]
                    .iter()
                    .filter(|o| matches!(o, Op::Write(..)))
                    .count();
                assert_eq!(writes_before, p.writes_before_rmw);
            }
        }
    }
}
