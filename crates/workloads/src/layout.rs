//! Address-space layout shared by the workload generators.
//!
//! Regions are cache-line-aligned and disjoint so that the simulator's
//! line-granularity coherence behaves sensibly: synchronization variables
//! never false-share with data.

use rmw_types::Addr;

/// Cache line size assumed by the generators (matches `SimConfig` default).
pub const LINE: u64 = 64;

/// Base of the lock/synchronization-variable region.
const SYNC_BASE: u64 = 0x0010_0000;
/// Base of the shared-data region.
const SHARED_BASE: u64 = 0x0100_0000;
/// Base of the per-core private region.
const PRIVATE_BASE: u64 = 0x1000_0000;
/// Bytes of private region per core.
const PRIVATE_STRIDE: u64 = 0x0010_0000;

/// The `i`-th synchronization variable (lock word, deque `top`, STM version
/// lock, ...), one per cache line.
pub fn sync_var(i: u64) -> Addr {
    Addr(SYNC_BASE + i * LINE)
}

/// The `i`-th shared-data line.
pub fn shared(i: u64) -> Addr {
    Addr(SHARED_BASE + i * LINE)
}

/// The `i`-th private line of `core`.
pub fn private(core: usize, i: u64) -> Addr {
    Addr(PRIVATE_BASE + core as u64 * PRIVATE_STRIDE + i * LINE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_line_aligned() {
        let a = sync_var(100);
        let b = shared(100);
        let c = private(0, 100);
        let d = private(1, 0);
        for x in [a, b, c, d] {
            assert_eq!(x.0 % LINE, 0);
        }
        assert!(a.0 < SHARED_BASE);
        assert!(b.0 < PRIVATE_BASE);
        assert!(c.0 < d.0, "core 0 private below core 1 private");
    }

    #[test]
    fn distinct_indices_distinct_lines() {
        assert_ne!(sync_var(0).line(LINE), sync_var(1).line(LINE));
        assert_ne!(shared(0).line(LINE), shared(1).line(LINE));
        assert_ne!(private(2, 0).line(LINE), private(3, 0).line(LINE));
    }
}
