//! Reference-counting stress: the `Arc` clone/read/drop idiom.
//!
//! Core 0 initializes the payload and opens a futex start gate; every
//! core then repeatedly clones (FAA +1), reads the payload (recorded),
//! and drops (FAA −1). A completion counter elects the last core out,
//! which poisons the payload — exactly the "drop the contents when the
//! strong count hits zero" shape. The invariant: every recorded read saw
//! the live payload, the refcount balances to zero, and the poison store
//! landed last.

use super::asm::Asm;
use super::{MAGIC, NEG_1, R0, R1, R2};
use crate::layout::{shared, sync_var};
use rmw_types::{Addr, RmwKind, Value};
use tso_sim::{Cond, Op, SimResult, Src, Trace};

const DEAD: Value = 0xDEAD;
/// Hold time between clone and drop.
const HOLD: u32 = 12;

fn go() -> Addr {
    sync_var(0)
}
fn count() -> Addr {
    sync_var(1)
}
fn done() -> Addr {
    sync_var(2)
}
fn data() -> Addr {
    shared(0)
}

pub(crate) fn traces(n: usize, iters: u64) -> Vec<Trace> {
    (0..n)
        .map(|c| {
            let mut a = Asm::new();
            if c == 0 {
                // Init payload, then open the start gate. The wake's
                // buffer drain commits both stores before any waiter runs.
                a.op(Op::Write(data(), MAGIC));
                a.op(Op::Write(go(), 1));
                a.op(Op::FutexWake(go(), u32::MAX));
            } else {
                let open = a.fresh();
                let wait = a.here();
                a.op(Op::ReadTo(R0, go()));
                a.branch(Cond::Ne, R0, Src::Imm(0), open);
                a.op(Op::FutexWait(go(), Src::Imm(0)));
                a.jump(wait);
                a.bind(open);
            }
            for _ in 0..iters {
                a.op(Op::RmwTo(R1, count(), RmwKind::FetchAndAdd(1)));
                a.op(Op::Read(data()));
                a.op(Op::Compute(HOLD));
                a.op(Op::RmwTo(R1, count(), RmwKind::FetchAndAdd(NEG_1)));
                a.op(Op::Compute(5 + c as u32 % 4));
            }
            // Last core out poisons the payload.
            let end = a.fresh();
            a.op(Op::RmwTo(R2, done(), RmwKind::FetchAndAdd(1)));
            a.branch(Cond::Ne, R2, Src::Imm(n as u64 - 1), end);
            a.op(Op::Write(data(), DEAD));
            a.bind(end);
            a.finish()
        })
        .collect()
}

pub(crate) fn check(r: &SimResult, n: usize, iters: u64) -> Result<(), String> {
    for c in 0..n {
        if r.reads[c].len() != iters as usize {
            return Err(format!(
                "core {c}: {} payload reads, want {iters}",
                r.reads[c].len()
            ));
        }
        if let Some(v) = r.reads[c].iter().find(|&&v| v != MAGIC) {
            return Err(format!(
                "core {c} observed {v:#x} — payload freed while referenced"
            ));
        }
    }
    let rc = r.memory.get(&count()).copied().unwrap_or(u64::MAX);
    if rc != 0 {
        return Err(format!("refcount {rc} at exit, want 0"));
    }
    if r.memory.get(&data()).copied() != Some(DEAD) {
        return Err("payload was never dropped".into());
    }
    Ok(())
}
