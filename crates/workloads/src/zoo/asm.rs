//! A tiny two-pass assembler for the zoo kernels.
//!
//! Kernels are written against fresh [`Label`]s (forward references
//! allowed); [`Asm::finish`] patches every `Jump`/`Branch` target and
//! panics on an unbound label, so a malformed kernel fails at
//! construction, not as a silent wild branch in the simulator.

use tso_sim::{Cond, Op, Reg, Src, Trace};

/// An opaque jump target. Create with [`Asm::fresh`], place with
/// [`Asm::bind`] (or both at once with [`Asm::here`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Label(usize);

/// Builder for one core's [`Trace`].
#[derive(Debug, Default)]
pub(crate) struct Asm {
    ops: Vec<Op>,
    bound: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    pub fn new() -> Self {
        Asm::default()
    }

    /// Allocates an unbound label.
    pub fn fresh(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Binds `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.bound[l.0].is_none(), "label bound twice");
        self.bound[l.0] = Some(self.ops.len() as u32);
    }

    /// Allocates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.fresh();
        self.bind(l);
        l
    }

    /// Appends a raw op.
    pub fn op(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends an unconditional jump to `l`.
    pub fn jump(&mut self, l: Label) {
        self.fixups.push((self.ops.len(), l));
        self.ops.push(Op::Jump(u32::MAX));
    }

    /// Appends a conditional branch to `l`.
    pub fn branch(&mut self, cond: Cond, lhs: Reg, rhs: Src, l: Label) {
        self.fixups.push((self.ops.len(), l));
        self.ops.push(Op::Branch {
            cond,
            lhs,
            rhs,
            target: u32::MAX,
        });
    }

    /// Resolves all fixups and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Trace {
        for &(at, l) in &self.fixups {
            let target = self.bound[l.0].expect("unbound label in kernel");
            match &mut self.ops[at] {
                Op::Jump(t) | Op::Branch { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-branch op {other:?}"),
            }
        }
        Trace::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let end = a.fresh();
        let top = a.here();
        a.op(Op::Compute(1));
        a.branch(Cond::Eq, 0, Src::Imm(0), end);
        a.jump(top);
        a.bind(end);
        a.op(Op::Compute(2));
        let t = a.finish();
        assert_eq!(
            t.ops()[1],
            Op::Branch {
                cond: Cond::Eq,
                lhs: 0,
                rhs: Src::Imm(0),
                target: 3
            }
        );
        assert_eq!(t.ops()[2], Op::Jump(0));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.fresh();
        a.jump(l);
        a.finish();
    }
}
