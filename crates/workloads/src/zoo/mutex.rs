//! Mutual-exclusion kernels: test-and-set spin lock, ticket lock, and
//! three futex mutexes (2-state, 3-state, spin-then-sleep).
//!
//! Every kernel guards the same critical section: a deliberately
//! **non-atomic** read-modify-write of a shared counter
//! (`ReadTo; AddImm; WriteFrom`). Any mutual-exclusion violation — by the
//! lock algorithm or by the simulator's RMW atomicity — loses updates, so
//! the invariant is simply `counter == cores × iters` at the end.

use super::asm::Asm;
use super::{BACKOFF, CS_WORK, R0, R1, R2};
use crate::layout::{shared, sync_var};
use rmw_types::{Addr, RmwKind, Value};
use tso_sim::{Cond, Op, SimResult, Src, Trace};

fn lock_word() -> Addr {
    sync_var(0)
}

fn counter() -> Addr {
    shared(0)
}

/// The guarded critical section: `counter += 1`, non-atomically.
fn cs_increment(a: &mut Asm) {
    a.op(Op::ReadTo(R1, counter()));
    a.op(Op::AddImm(R1, 1));
    a.op(Op::WriteFrom(counter(), R1));
    a.op(Op::Compute(CS_WORK));
}

/// Per-core arrival stagger + inter-iteration pause (deterministic).
fn stagger(a: &mut Asm, core: usize) {
    a.op(Op::Compute(1 + 3 * core as u32));
}

fn pause(a: &mut Asm, core: usize) {
    a.op(Op::Compute(5 + (core as u32 % 3)));
}

/// Test-and-test-and-set spin lock with per-core backoff. The read-only
/// inner spin matters in the simulator for the same reason it does on
/// hardware: a pure TAS loop keeps the lock's line RMW-locked nearly
/// continuously, starving the holder's release store (symmetric spinners
/// settle into a deterministic resonance and the run livelocks).
pub(crate) fn spin_mutex(n: usize, iters: u64) -> Vec<Trace> {
    (0..n)
        .map(|c| {
            let mut a = Asm::new();
            stagger(&mut a, c);
            for _ in 0..iters {
                let enter = a.fresh();
                let take = a.fresh();
                let head = a.here();
                a.op(Op::ReadTo(R0, lock_word()));
                a.branch(Cond::Eq, R0, Src::Imm(0), take);
                a.op(Op::Compute(BACKOFF + 5 * c as u32 % 13));
                a.jump(head);
                a.bind(take);
                a.op(Op::RmwTo(R0, lock_word(), RmwKind::TestAndSet));
                a.branch(Cond::Eq, R0, Src::Imm(0), enter);
                a.op(Op::Compute(BACKOFF + 7 * c as u32 % 17));
                a.jump(head);
                a.bind(enter);
                cs_increment(&mut a);
                a.op(Op::Write(lock_word(), 0));
                pause(&mut a, c);
            }
            a.finish()
        })
        .collect()
}

/// Ticket lock: FIFO-fair, acquire = FAA ticket + spin on `serving`.
pub(crate) fn ticket_mutex(n: usize, iters: u64) -> Vec<Trace> {
    let next = sync_var(0);
    let serving = sync_var(1);
    (0..n)
        .map(|c| {
            let mut a = Asm::new();
            stagger(&mut a, c);
            for _ in 0..iters {
                a.op(Op::RmwTo(R0, next, RmwKind::FetchAndAdd(1)));
                let enter = a.fresh();
                let head = a.here();
                a.op(Op::ReadTo(R1, serving));
                a.branch(Cond::Eq, R1, Src::Reg(R0), enter);
                a.op(Op::Compute(BACKOFF));
                a.jump(head);
                a.bind(enter);
                cs_increment(&mut a);
                a.op(Op::RmwTo(R2, serving, RmwKind::FetchAndAdd(1)));
                pause(&mut a, c);
            }
            a.finish()
        })
        .collect()
}

/// 2-state futex mutex: `xchg(1)` to acquire, sleep while the word is 1;
/// unlock stores 0 and always wakes one waiter.
pub(crate) fn futex_mutex(n: usize, iters: u64) -> Vec<Trace> {
    (0..n)
        .map(|c| {
            let mut a = Asm::new();
            stagger(&mut a, c);
            for _ in 0..iters {
                let enter = a.fresh();
                let head = a.here();
                a.op(Op::RmwTo(R0, lock_word(), RmwKind::Exchange(1)));
                a.branch(Cond::Eq, R0, Src::Imm(0), enter);
                a.op(Op::FutexWait(lock_word(), Src::Imm(1)));
                a.jump(head);
                a.bind(enter);
                cs_increment(&mut a);
                a.op(Op::Write(lock_word(), 0));
                a.op(Op::FutexWake(lock_word(), 1));
                pause(&mut a, c);
            }
            a.finish()
        })
        .collect()
}

/// Drepper 3-state lock path: CAS(0→1) fast path, `xchg(2)` marks
/// contention, sleep while 2. Shared with [`super::channel`]'s condvar.
pub(crate) fn lock3(a: &mut Asm, lock: Addr) {
    let enter = a.fresh();
    a.op(Op::RmwTo(
        R0,
        lock,
        RmwKind::CompareAndSwap {
            expected: 0,
            new: 1,
        },
    ));
    a.branch(Cond::Eq, R0, Src::Imm(0), enter);
    let slow = a.here();
    a.op(Op::RmwTo(R0, lock, RmwKind::Exchange(2)));
    a.branch(Cond::Eq, R0, Src::Imm(0), enter);
    a.op(Op::FutexWait(lock, Src::Imm(2)));
    a.jump(slow);
    a.bind(enter);
}

/// 3-state unlock: `xchg(0)`; wake one waiter only if the lock was
/// contended (old value 2).
pub(crate) fn unlock3(a: &mut Asm, lock: Addr) {
    let done = a.fresh();
    a.op(Op::RmwTo(R1, lock, RmwKind::Exchange(0)));
    a.branch(Cond::Eq, R1, Src::Imm(1), done);
    a.op(Op::FutexWake(lock, 1));
    a.bind(done);
}

/// 3-state futex mutex (no userspace spinning beyond the single CAS).
pub(crate) fn futex_mutex3(n: usize, iters: u64) -> Vec<Trace> {
    (0..n)
        .map(|c| {
            let mut a = Asm::new();
            stagger(&mut a, c);
            for _ in 0..iters {
                lock3(&mut a, lock_word());
                cs_increment(&mut a);
                unlock3(&mut a, lock_word());
                pause(&mut a, c);
            }
            a.finish()
        })
        .collect()
}

/// CAS spin budget of the spin-then-sleep mutex.
const SPIN_BUDGET: Value = 24;

/// Adaptive mutex: bounded CAS spin, then the 3-state sleeping slow path.
pub(crate) fn futex_mutex_spin(n: usize, iters: u64) -> Vec<Trace> {
    (0..n)
        .map(|c| {
            let mut a = Asm::new();
            stagger(&mut a, c);
            for _ in 0..iters {
                let enter = a.fresh();
                a.op(Op::MovImm(R1, 0));
                let spin = a.here();
                a.op(Op::RmwTo(
                    R0,
                    lock_word(),
                    RmwKind::CompareAndSwap {
                        expected: 0,
                        new: 1,
                    },
                ));
                a.branch(Cond::Eq, R0, Src::Imm(0), enter);
                a.op(Op::AddImm(R1, 1));
                a.op(Op::Compute(BACKOFF));
                a.branch(Cond::Lt, R1, Src::Imm(SPIN_BUDGET), spin);
                let slow = a.here();
                a.op(Op::RmwTo(R0, lock_word(), RmwKind::Exchange(2)));
                a.branch(Cond::Eq, R0, Src::Imm(0), enter);
                a.op(Op::FutexWait(lock_word(), Src::Imm(2)));
                a.jump(slow);
                a.bind(enter);
                cs_increment(&mut a);
                unlock3(&mut a, lock_word());
                pause(&mut a, c);
            }
            a.finish()
        })
        .collect()
}

/// The shared mutex invariant: no lost counter updates, no recorded reads.
pub(crate) fn check_mutex(r: &SimResult, n: usize, iters: u64) -> Result<(), String> {
    let want = n as u64 * iters;
    let got = r.memory.get(&counter()).copied().unwrap_or(0);
    if got != want {
        return Err(format!(
            "mutual exclusion violated: counter {got}, want {want} ({} updates lost)",
            want - got.min(want)
        ));
    }
    if r.reads.iter().any(|v| !v.is_empty()) {
        return Err("mutex kernels record no reads".into());
    }
    Ok(())
}
