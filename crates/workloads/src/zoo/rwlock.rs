//! Reader-writer lock kernels over one state word: reader count in the
//! low bits, the writer claim in bit 32.
//!
//! Core 0 is the writer; every other core is a reader. The writer keeps
//! the pair `(data_a, data_b)` equal — it stores the iteration number to
//! both, with simulated work in between — so the invariant is: every
//! reader-recorded `(a, b)` pair is equal (reader-writer exclusion), and
//! the final pair equals the writer's iteration count.
//!
//! Reader release must be an RMW (`FAA(-1)`), never a plain store: a
//! concurrent reader's transient `FAA(+1)`-then-undo would be clobbered.
//! Same for the writer's `FAA(-W)` release.

use super::asm::Asm;
use super::{BACKOFF, NEG_1, R0, R1, R2};
use crate::layout::{shared, sync_var};
use rmw_types::{Addr, RmwKind, Value};
use tso_sim::{Cond, Op, SimResult, Src, Trace};

/// The writer claim bit, far above any plausible reader count.
pub(crate) const W: Value = 1 << 32;
const NEG_W: Value = W.wrapping_neg();
/// Writer hold time (cycles) between the two data stores.
const HOLD: u32 = 30;

fn state() -> Addr {
    sync_var(0)
}
fn wq() -> Addr {
    sync_var(1)
}
fn data_a() -> Addr {
    shared(0)
}
fn data_b() -> Addr {
    shared(1)
}

/// Which lock variant a trace set implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Variant {
    /// Spinning readers and writer.
    Spin,
    /// Futex-sleeping readers and writer (register-expected waits on the
    /// state word itself).
    Futex,
    /// Spinning with writer preference: readers stand back while the
    /// `wq` waiting-writers count is nonzero.
    WriterPref,
}

/// The writer's protected section: `data_a = data_b = j + 1`.
fn write_section(a: &mut Asm, j: u64) {
    a.op(Op::Write(data_a(), j + 1));
    a.op(Op::Compute(HOLD));
    a.op(Op::Write(data_b(), j + 1));
}

/// The reader's protected section: record both halves of the pair.
fn read_section(a: &mut Asm) {
    a.op(Op::Read(data_a()));
    a.op(Op::Read(data_b()));
}

fn writer(variant: Variant, iters: u64) -> Trace {
    let mut a = Asm::new();
    for j in 0..iters {
        if variant == Variant::WriterPref {
            a.op(Op::RmwTo(R1, wq(), RmwKind::FetchAndAdd(1)));
        }
        let wgot = a.fresh();
        let wacq = a.here();
        a.op(Op::RmwTo(
            R0,
            state(),
            RmwKind::CompareAndSwap {
                expected: 0,
                new: W,
            },
        ));
        a.branch(Cond::Eq, R0, Src::Imm(0), wgot);
        match variant {
            Variant::Spin | Variant::WriterPref => {
                a.op(Op::Compute(BACKOFF));
                a.jump(wacq);
            }
            Variant::Futex => {
                a.op(Op::ReadTo(R0, state()));
                a.branch(Cond::Eq, R0, Src::Imm(0), wacq);
                a.op(Op::FutexWait(state(), Src::Reg(R0)));
                a.jump(wacq);
            }
        }
        a.bind(wgot);
        if variant == Variant::WriterPref {
            a.op(Op::RmwTo(R1, wq(), RmwKind::FetchAndAdd(NEG_1)));
        }
        write_section(&mut a, j);
        a.op(Op::RmwTo(R2, state(), RmwKind::FetchAndAdd(NEG_W)));
        if variant == Variant::Futex {
            a.op(Op::FutexWake(state(), u32::MAX));
        }
        a.op(Op::Compute(40));
    }
    a.finish()
}

fn reader(variant: Variant, core: usize, iters: u64) -> Trace {
    let mut a = Asm::new();
    a.op(Op::Compute(1 + 2 * core as u32));
    for _ in 0..iters {
        let rgot = a.fresh();
        let racq = a.here();
        match variant {
            Variant::Spin | Variant::Futex => {
                a.op(Op::RmwTo(R0, state(), RmwKind::FetchAndAdd(1)));
                a.branch(Cond::Lt, R0, Src::Imm(W), rgot);
                a.op(Op::RmwTo(R1, state(), RmwKind::FetchAndAdd(NEG_1)));
                if variant == Variant::Spin {
                    let rwait = a.here();
                    a.op(Op::ReadTo(R0, state()));
                    a.branch(Cond::Lt, R0, Src::Imm(W), racq);
                    a.op(Op::Compute(BACKOFF + 3 * core as u32));
                    a.jump(rwait);
                } else {
                    a.op(Op::ReadTo(R0, state()));
                    a.branch(Cond::Lt, R0, Src::Imm(W), racq);
                    a.op(Op::FutexWait(state(), Src::Reg(R0)));
                    a.jump(racq);
                }
            }
            Variant::WriterPref => {
                // Stand back while writers are queued, then try. The
                // backoff must differ per core: with one shared constant
                // the 31 deterministic readers phase-lock into a cycle
                // where `state` is never exactly 0 at any of the writer's
                // CAS instants, and the run livelocks (observed under
                // type-3, whose uniform RMW cost aligns the resonance).
                let rtry = a.fresh();
                a.op(Op::ReadTo(R0, wq()));
                a.branch(Cond::Eq, R0, Src::Imm(0), rtry);
                let rback = a.here();
                a.op(Op::Compute(BACKOFF + 3 * core as u32));
                a.jump(racq);
                a.bind(rtry);
                a.op(Op::RmwTo(R0, state(), RmwKind::FetchAndAdd(1)));
                a.branch(Cond::Lt, R0, Src::Imm(W), rgot);
                a.op(Op::RmwTo(R1, state(), RmwKind::FetchAndAdd(NEG_1)));
                a.jump(rback);
            }
        }
        a.bind(rgot);
        read_section(&mut a);
        a.op(Op::RmwTo(R1, state(), RmwKind::FetchAndAdd(NEG_1)));
        if variant == Variant::Futex {
            // Last reader out wakes a possibly sleeping writer.
            let skip = a.fresh();
            a.branch(Cond::Ne, R1, Src::Imm(1), skip);
            a.op(Op::FutexWake(state(), u32::MAX));
            a.bind(skip);
        }
        a.op(Op::Compute(10 + core as u32 % 5));
    }
    a.finish()
}

/// Builds the trace set: core 0 writes `iters` times, cores 1..n read
/// `iters` times each.
pub(crate) fn traces(variant: Variant, n: usize, iters: u64) -> Vec<Trace> {
    assert!(n >= 2, "rwlock kernels need a writer and a reader");
    (0..n)
        .map(|c| {
            if c == 0 {
                writer(variant, iters)
            } else {
                reader(variant, c, iters)
            }
        })
        .collect()
}

/// Reader-writer exclusion invariant (see module docs).
pub(crate) fn check(r: &SimResult, n: usize, iters: u64) -> Result<(), String> {
    for c in 1..n {
        let reads = &r.reads[c];
        if reads.len() != 2 * iters as usize {
            return Err(format!(
                "reader {c}: {} recorded reads, want {}",
                reads.len(),
                2 * iters
            ));
        }
        for (i, pair) in reads.chunks(2).enumerate() {
            if pair[0] != pair[1] {
                return Err(format!(
                    "reader {c} iteration {i}: torn pair ({}, {}) — writer ran during a read section",
                    pair[0], pair[1]
                ));
            }
            if pair[0] > iters {
                return Err(format!("reader {c}: impossible value {}", pair[0]));
            }
        }
    }
    let a = r.memory.get(&data_a()).copied().unwrap_or(0);
    let b = r.memory.get(&data_b()).copied().unwrap_or(0);
    if a != iters || b != iters {
        return Err(format!("final pair ({a}, {b}), want ({iters}, {iters})"));
    }
    let s = r.memory.get(&state()).copied().unwrap_or(0);
    if s != 0 {
        return Err(format!("lock state {s} not released"));
    }
    Ok(())
}
