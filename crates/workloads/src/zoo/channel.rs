//! Channel/condition-variable kernels: a mutex+condvar mailbox, a
//! lock-free SPSC ring, and a blocking one-shot channel.

use super::asm::Asm;
use super::mutex::{lock3, unlock3};
use super::{BACKOFF, MAGIC, NEG_1, R0, R1, R2, R3};
use crate::layout::{shared, sync_var};
use rmw_types::{Addr, RmwKind};
use tso_sim::{Cond, Op, SimResult, Src, Trace};

// ---------------------------------------------------------------- condvar

fn cv_mutex() -> Addr {
    sync_var(0)
}
fn cv_seq() -> Addr {
    sync_var(1)
}
fn cv_count() -> Addr {
    shared(0)
}

/// Mutex + condition variable: core 0 produces `(n-1) × iters` items into
/// a counter guarded by a 3-state futex mutex, bumping a sequence word and
/// `notify_all`-ing after each; cores 1..n each consume `iters` items with
/// the canonical re-check-the-predicate wait loop (read `seq` under the
/// lock, unlock, `FutexWait(seq, observed)`, relock, recheck).
///
/// Both the increment and the decrement of the item counter are
/// non-atomic register sequences, so the invariant `count == 0` at the end
/// proves the mutex held across every producer *and* consumer touch.
pub(crate) fn condvar(n: usize, iters: u64) -> Vec<Trace> {
    assert!(n >= 2, "condvar needs a producer and a consumer");
    let mut traces = Vec::with_capacity(n);
    // Producer.
    let mut a = Asm::new();
    for _ in 0..(n as u64 - 1) * iters {
        lock3(&mut a, cv_mutex());
        a.op(Op::ReadTo(R1, cv_count()));
        a.op(Op::AddImm(R1, 1));
        a.op(Op::WriteFrom(cv_count(), R1));
        unlock3(&mut a, cv_mutex());
        a.op(Op::RmwTo(R3, cv_seq(), RmwKind::FetchAndAdd(1)));
        a.op(Op::FutexWake(cv_seq(), u32::MAX));
        a.op(Op::Compute(15));
    }
    traces.push(a.finish());
    // Consumers.
    for c in 1..n {
        let mut a = Asm::new();
        a.op(Op::Compute(1 + 2 * c as u32));
        for _ in 0..iters {
            lock3(&mut a, cv_mutex());
            let consume = a.fresh();
            let check = a.here();
            a.op(Op::ReadTo(R1, cv_count()));
            a.branch(Cond::Ne, R1, Src::Imm(0), consume);
            // cv_wait(seq, mutex): capture the generation under the lock,
            // release, sleep unless the generation already moved, retake.
            a.op(Op::ReadTo(R2, cv_seq()));
            unlock3(&mut a, cv_mutex());
            a.op(Op::FutexWait(cv_seq(), Src::Reg(R2)));
            lock3(&mut a, cv_mutex());
            a.jump(check);
            a.bind(consume);
            a.op(Op::AddImm(R1, NEG_1));
            a.op(Op::WriteFrom(cv_count(), R1));
            unlock3(&mut a, cv_mutex());
            a.op(Op::Compute(10 + c as u32 % 4));
        }
        traces.push(a.finish());
    }
    traces
}

pub(crate) fn check_condvar(r: &SimResult, _n: usize, _iters: u64) -> Result<(), String> {
    let count = r.memory.get(&cv_count()).copied().unwrap_or(u64::MAX);
    if count != 0 {
        return Err(format!("mailbox count {count} at exit, want 0"));
    }
    if r.stats.futex_wakes == 0 {
        return Err("condvar never notified".into());
    }
    Ok(())
}

// -------------------------------------------------------------- spsc ring

/// Ring capacity (slots per pair).
const CAP: u64 = 4;

fn spsc_head(pair: usize) -> Addr {
    sync_var(2 * pair as u64)
}
fn spsc_tail(pair: usize) -> Addr {
    sync_var(2 * pair as u64 + 1)
}
fn spsc_slot(pair: usize, j: u64) -> Addr {
    shared(pair as u64 * CAP + j % CAP)
}

/// Lock-free single-producer single-consumer ring buffer, one
/// producer/consumer pair per two cores (an odd trailing core idles).
///
/// Pure TSO message passing — no RMWs at all: the producer publishes
/// `slot` before `tail` and the consumer's FIFO order falls out of the
/// write buffer's in-order commit. The consumer *records* every payload
/// read, so the invariant is exact: `reads == [MAGIC, MAGIC+1, ...]`.
pub(crate) fn spsc_ring(n: usize, iters: u64) -> Vec<Trace> {
    assert!(n >= 2, "spsc needs a producer and a consumer");
    (0..n)
        .map(|c| {
            let pair = c / 2;
            if c % 2 == 0 && c + 1 < n {
                // Producer: wait for space, publish slot then tail.
                let mut a = Asm::new();
                for j in 0..iters {
                    if j >= CAP {
                        let ok = a.fresh();
                        let wait = a.here();
                        a.op(Op::ReadTo(R0, spsc_head(pair)));
                        a.branch(Cond::Ge, R0, Src::Imm(j + 1 - CAP), ok);
                        a.op(Op::Compute(BACKOFF));
                        a.jump(wait);
                        a.bind(ok);
                    }
                    a.op(Op::Write(spsc_slot(pair, j), MAGIC + j));
                    a.op(Op::Write(spsc_tail(pair), j + 1));
                }
                a.finish()
            } else if c % 2 == 1 {
                // Consumer: wait for data, record payload, retire slot.
                let mut a = Asm::new();
                for j in 0..iters {
                    let ok = a.fresh();
                    let wait = a.here();
                    a.op(Op::ReadTo(R0, spsc_tail(pair)));
                    a.branch(Cond::Ge, R0, Src::Imm(j + 1), ok);
                    a.op(Op::Compute(BACKOFF));
                    a.jump(wait);
                    a.bind(ok);
                    a.op(Op::Read(spsc_slot(pair, j)));
                    a.op(Op::Write(spsc_head(pair), j + 1));
                }
                a.finish()
            } else {
                Trace::default() // odd core out
            }
        })
        .collect()
}

pub(crate) fn check_spsc(r: &SimResult, n: usize, iters: u64) -> Result<(), String> {
    let expect: Vec<u64> = (0..iters).map(|j| MAGIC + j).collect();
    for c in (1..n).step_by(2) {
        if r.reads[c] != expect {
            return Err(format!(
                "consumer {c}: FIFO order broken, got {:?}",
                &r.reads[c][..r.reads[c].len().min(8)]
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- oneshot

fn oneshot_ready(pair: usize, j: u64, iters: u64) -> Addr {
    sync_var(pair as u64 * iters + j)
}
fn oneshot_data(pair: usize, j: u64, iters: u64) -> Addr {
    shared(pair as u64 * iters + j)
}

/// Blocking one-shot channel, a fresh one per iteration per pair: the
/// sender stores the payload, stores `ready = 1`, and wakes; the receiver
/// checks `ready` once and futex-sleeps on it if unset. The wake-side
/// buffer drain guarantees the receiver's post-wake payload read sees the
/// sender's store — the no-lost-wakeup property end to end.
pub(crate) fn oneshot(n: usize, iters: u64) -> Vec<Trace> {
    assert!(n >= 2, "oneshot needs a sender and a receiver");
    (0..n)
        .map(|c| {
            let pair = c / 2;
            if c % 2 == 0 && c + 1 < n {
                let mut a = Asm::new();
                for j in 0..iters {
                    a.op(Op::Compute(20 + 7 * (j as u32 % 5)));
                    a.op(Op::Write(oneshot_data(pair, j, iters), MAGIC + j));
                    a.op(Op::Write(oneshot_ready(pair, j, iters), 1));
                    a.op(Op::FutexWake(oneshot_ready(pair, j, iters), u32::MAX));
                }
                a.finish()
            } else if c % 2 == 1 {
                let mut a = Asm::new();
                for j in 0..iters {
                    let got = a.fresh();
                    let wait = a.here();
                    a.op(Op::ReadTo(R0, oneshot_ready(pair, j, iters)));
                    a.branch(Cond::Ne, R0, Src::Imm(0), got);
                    a.op(Op::FutexWait(oneshot_ready(pair, j, iters), Src::Imm(0)));
                    a.jump(wait);
                    a.bind(got);
                    a.op(Op::Read(oneshot_data(pair, j, iters)));
                }
                a.finish()
            } else {
                Trace::default()
            }
        })
        .collect()
}

pub(crate) fn check_oneshot(r: &SimResult, n: usize, iters: u64) -> Result<(), String> {
    let expect: Vec<u64> = (0..iters).map(|j| MAGIC + j).collect();
    for c in (1..n).step_by(2) {
        if r.reads[c] != expect {
            return Err(format!(
                "receiver {c}: payload mismatch, got {:?}",
                &r.reads[c][..r.reads[c].len().min(8)]
            ));
        }
    }
    if r.stats.futex_wakeups > r.stats.futex_waits {
        return Err("more wakeups than sleeps".into());
    }
    Ok(())
}
