//! The synchronization-algorithm zoo: real lock/channel kernels written
//! in the simulator's control-flow ISA (registers, branches, futex), each
//! with a machine-checkable correctness invariant.
//!
//! Unlike the statistical Table 3 generators (which reproduce workload
//! *characteristics*), every zoo kernel is an actual algorithm — a
//! test-and-set lock, a ticket lock, three futex mutexes, three
//! reader-writer locks, a condition-variable mailbox, an SPSC ring, a
//! blocking one-shot channel, and an `Arc` refcount stress — whose
//! outcome is **verifiable**: lost counter updates expose a mutual
//! exclusion failure, torn read pairs expose a reader-writer failure,
//! out-of-order payloads expose a channel FIFO failure. Running the same
//! kernel under the paper's three RMW atomicities is therefore a
//! semantics test, not just a timing comparison: Table 3's claim is that
//! types 2/3 change *when* RMWs cost, never *what* they compute.
//!
//! ```
//! use workloads::zoo::ZooKernel;
//! use tso_sim::{Machine, SimConfig};
//!
//! let cfg = SimConfig::small(4);
//! let r = Machine::new(cfg, ZooKernel::SpinMutex.traces(4, 5)).run();
//! ZooKernel::SpinMutex.check(&r, 4, 5).expect("mutual exclusion holds");
//! ```

mod arc;
mod asm;
mod channel;
mod mutex;
mod rwlock;

use rmw_types::Value;
use tso_sim::{Reg, SimResult, Trace};

pub(crate) const R0: Reg = 0;
pub(crate) const R1: Reg = 1;
pub(crate) const R2: Reg = 2;
pub(crate) const R3: Reg = 3;
/// Payload marker value.
pub(crate) const MAGIC: Value = 0x5EED_0000;
/// Spin backoff (cycles of `Compute` per retry).
pub(crate) const BACKOFF: u32 = 16;
/// Critical-section work.
pub(crate) const CS_WORK: u32 = 20;
/// Wrapping −1 for `FetchAndAdd`/`AddImm`.
pub(crate) const NEG_1: Value = u64::MAX;

/// One zoo kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooKernel {
    /// Test-and-set spin lock with fixed backoff.
    SpinMutex,
    /// FIFO ticket lock (FAA ticket, spin on `serving`).
    TicketMutex,
    /// 2-state futex mutex (`xchg(1)`, sleep on 1, unlock always wakes).
    FutexMutex,
    /// Drepper 3-state futex mutex (0 free / 1 locked / 2 contended).
    FutexMutex3,
    /// Adaptive mutex: bounded CAS spin, then the 3-state sleep path.
    FutexMutexSpin,
    /// Reader-writer lock, spinning readers and writer.
    RwlockSpin,
    /// Reader-writer lock, futex-sleeping readers and writer.
    RwlockFutex,
    /// Reader-writer lock with writer preference (readers stand back
    /// while writers queue).
    RwlockWpref,
    /// Mutex + condition variable guarding a produced/consumed counter.
    Condvar,
    /// Lock-free SPSC ring buffer (pure TSO message passing, no RMWs).
    SpscRing,
    /// Blocking one-shot channel (store payload, store ready, wake).
    Oneshot,
    /// `Arc` clone/read/drop refcount stress with last-one-out poison.
    ArcStress,
}

impl ZooKernel {
    /// All kernels, in presentation order.
    pub const ALL: [ZooKernel; 12] = [
        ZooKernel::SpinMutex,
        ZooKernel::TicketMutex,
        ZooKernel::FutexMutex,
        ZooKernel::FutexMutex3,
        ZooKernel::FutexMutexSpin,
        ZooKernel::RwlockSpin,
        ZooKernel::RwlockFutex,
        ZooKernel::RwlockWpref,
        ZooKernel::Condvar,
        ZooKernel::SpscRing,
        ZooKernel::Oneshot,
        ZooKernel::ArcStress,
    ];

    /// Stable display/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            ZooKernel::SpinMutex => "spin_mutex",
            ZooKernel::TicketMutex => "ticket_mutex",
            ZooKernel::FutexMutex => "futex_mutex",
            ZooKernel::FutexMutex3 => "futex_mutex3",
            ZooKernel::FutexMutexSpin => "futex_mutex_spin",
            ZooKernel::RwlockSpin => "rwlock_spin",
            ZooKernel::RwlockFutex => "rwlock_futex",
            ZooKernel::RwlockWpref => "rwlock_wpref",
            ZooKernel::Condvar => "condvar",
            ZooKernel::SpscRing => "spsc_ring",
            ZooKernel::Oneshot => "oneshot",
            ZooKernel::ArcStress => "arc_stress",
        }
    }

    /// True if the kernel blocks in the futex rather than (only) spinning.
    pub fn uses_futex(self) -> bool {
        matches!(
            self,
            ZooKernel::FutexMutex
                | ZooKernel::FutexMutex3
                | ZooKernel::FutexMutexSpin
                | ZooKernel::RwlockFutex
                | ZooKernel::Condvar
                | ZooKernel::Oneshot
                | ZooKernel::ArcStress
        )
    }

    /// Builds the per-core traces for `n` cores, `iters` iterations per
    /// participant.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (every kernel is a multi-core protocol).
    pub fn traces(self, n: usize, iters: u64) -> Vec<Trace> {
        assert!(n >= 2, "zoo kernels need at least two cores");
        match self {
            ZooKernel::SpinMutex => mutex::spin_mutex(n, iters),
            ZooKernel::TicketMutex => mutex::ticket_mutex(n, iters),
            ZooKernel::FutexMutex => mutex::futex_mutex(n, iters),
            ZooKernel::FutexMutex3 => mutex::futex_mutex3(n, iters),
            ZooKernel::FutexMutexSpin => mutex::futex_mutex_spin(n, iters),
            ZooKernel::RwlockSpin => rwlock::traces(rwlock::Variant::Spin, n, iters),
            ZooKernel::RwlockFutex => rwlock::traces(rwlock::Variant::Futex, n, iters),
            ZooKernel::RwlockWpref => rwlock::traces(rwlock::Variant::WriterPref, n, iters),
            ZooKernel::Condvar => channel::condvar(n, iters),
            ZooKernel::SpscRing => channel::spsc_ring(n, iters),
            ZooKernel::Oneshot => channel::oneshot(n, iters),
            ZooKernel::ArcStress => arc::traces(n, iters),
        }
    }

    /// Verifies the kernel's correctness invariant on a finished run
    /// (plus the universal ones: the run neither deadlocked nor hit the
    /// cycle ceiling).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check(self, r: &SimResult, n: usize, iters: u64) -> Result<(), String> {
        if r.deadlocked {
            return Err("run deadlocked".into());
        }
        if r.truncated {
            return Err("run hit the cycle ceiling".into());
        }
        match self {
            ZooKernel::SpinMutex
            | ZooKernel::TicketMutex
            | ZooKernel::FutexMutex
            | ZooKernel::FutexMutex3
            | ZooKernel::FutexMutexSpin => mutex::check_mutex(r, n, iters),
            ZooKernel::RwlockSpin | ZooKernel::RwlockFutex | ZooKernel::RwlockWpref => {
                rwlock::check(r, n, iters)
            }
            ZooKernel::Condvar => channel::check_condvar(r, n, iters),
            ZooKernel::SpscRing => channel::check_spsc(r, n, iters),
            ZooKernel::Oneshot => channel::check_oneshot(r, n, iters),
            ZooKernel::ArcStress => arc::check(r, n, iters),
        }
    }
}

impl core::fmt::Display for ZooKernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tso_sim::{Machine, SimConfig};

    #[test]
    fn every_kernel_passes_its_invariant_on_the_small_machine() {
        for k in ZooKernel::ALL {
            let cfg = SimConfig::small(4);
            let r = Machine::new(cfg, k.traces(4, 4)).run();
            k.check(&r, 4, 4).unwrap_or_else(|e| panic!("{k}: {e}"));
        }
    }

    #[test]
    fn futex_kernels_actually_sleep_under_contention() {
        for k in [
            ZooKernel::FutexMutex,
            ZooKernel::FutexMutex3,
            ZooKernel::Oneshot,
        ] {
            let cfg = SimConfig::small(4);
            let r = Machine::new(cfg, k.traces(4, 6)).run();
            k.check(&r, 4, 6).unwrap_or_else(|e| panic!("{k}: {e}"));
            assert!(k.uses_futex());
            assert!(
                r.stats.futex_waits + r.stats.futex_immediate > 0,
                "{k}: futex path never taken"
            );
            assert_eq!(
                r.stats.futex_waits, r.stats.futex_wakeups,
                "{k}: a sleeper was never woken"
            );
        }
    }

    #[test]
    fn spin_kernels_account_their_spinning() {
        let cfg = SimConfig::small(4);
        let r = Machine::new(cfg, ZooKernel::SpinMutex.traces(4, 6)).run();
        assert!(
            r.stats.spin_retries > 0,
            "4 cores on one TAS lock must spin"
        );
        assert!(r.stats.spin_cycles > 0);
        assert_eq!(r.stats.futex_waits, 0, "spin lock never sleeps");
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = ZooKernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ZooKernel::ALL.len());
        assert_eq!(ZooKernel::SpinMutex.to_string(), "spin_mutex");
    }
}
