//! Chase–Lev work-stealing deque driving a parallel spanning-tree
//! traversal — the paper's `wsq-mst` benchmark (Bader–Cong algorithm over a
//! work-stealing queue), in both C/C++11 compilations:
//!
//! * **`wr` (write-replacement)**: the `take` path's SC-atomic write of
//!   `bottom` compiles to `lock xchg` — the RMW executes *before* the
//!   task's result writes, so few writes are pending at RMW time;
//! * **`rr` (read-replacement)**: the SC-atomic read of `top` compiles to
//!   `lock xadd(0)` — the plain `bottom` write and the task's writes are
//!   *already buffered* when the RMW executes, which is why the paper
//!   measures a higher per-RMW drain cost for `wsq-mst_rr`.
//!
//! The generator *logically executes* the algorithm — per-core deques, a
//! random graph, round-robin scheduling with stealing — and records each
//! core's memory operations, so the trace has the real structure: `take`s
//! hitting the owner's own `top`/`bottom`, `steal`s hitting remote ones,
//! and one claim CAS per graph node (the source of the benchmark's high
//! RMW-address uniqueness, Table 3: 3.80 %).

use crate::fill::TraceBuilder;
use crate::layout;
use crate::profile::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmw_types::RmwKind;
use std::collections::VecDeque;
use tso_sim::{Op, Trace};

/// Sync-region layout: per-core `top` then per-core `bottom`, then the
/// node-claim words.
fn top_of(core: usize) -> rmw_types::Addr {
    layout::sync_var(core as u64 * 2)
}
fn bottom_of(core: usize) -> rmw_types::Addr {
    layout::sync_var(core as u64 * 2 + 1)
}
fn claim_of(node: u64, pool: u64, num_cores: usize) -> rmw_types::Addr {
    layout::sync_var(num_cores as u64 * 2 + (node % pool))
}

/// Generates one trace per core by logically running the work-stealing
/// traversal until every core has at least `memops_per_core` memory ops.
pub fn generate(
    p: &Profile,
    num_cores: usize,
    memops_per_core: usize,
    replace_reads: bool,
    seed: u64,
) -> Vec<Trace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let expected_rmws = (memops_per_core * num_cores) / p.memops_per_rmw().max(1);
    let claim_pool = p
        .rmw_pool_size(expected_rmws.max(1))
        .saturating_sub(num_cores * 2)
        .max(1) as u64;

    let mut builders: Vec<TraceBuilder> = (0..num_cores)
        .map(|c| {
            let mut b = TraceBuilder::new(c);
            // Desynchronize cores.
            b.push(Op::Compute(1 + (c as u32) * 97));
            b
        })
        .collect();
    let mut fill_rngs: Vec<StdRng> = (0..num_cores)
        .map(|c| StdRng::seed_from_u64(seed ^ 0xF1F1 ^ (c as u64) << 7))
        .collect();
    let mut deques: Vec<VecDeque<u64>> = vec![VecDeque::new(); num_cores];

    // A fresh random graph component, re-seeded whenever work runs dry.
    let mut next_node: u64 = 0;
    fn spawn_component(
        next_node: &mut u64,
        deques: &mut [VecDeque<u64>],
        rng: &mut StdRng,
        num_cores: usize,
    ) {
        let root = *next_node;
        *next_node += 1;
        deques[rng.gen_range(0..num_cores)].push_back(root);
    }
    spawn_component(&mut next_node, &mut deques, &mut rng, num_cores);

    while builders.iter().any(|b| b.memops < memops_per_core) {
        if deques.iter().all(VecDeque::is_empty) {
            spawn_component(&mut next_node, &mut deques, &mut rng, num_cores);
        }
        for core in 0..num_cores {
            let b = &mut builders[core];
            if b.memops >= memops_per_core {
                continue;
            }
            // Obtain a task: take from our deque, or steal.
            let node = if let Some(n) = deques[core].pop_back() {
                emit_take(b, core, replace_reads, p);
                Some(n)
            } else {
                let victim = (0..num_cores)
                    .map(|i| (core + 1 + i) % num_cores)
                    .find(|&v| !deques[v].is_empty());
                match victim {
                    Some(v) => {
                        let n = deques[v].pop_front().expect("victim nonempty");
                        emit_steal(b, v);
                        Some(n)
                    }
                    None => None,
                }
            };
            let Some(node) = node else { continue };

            // Process the node: read its adjacency and claim each neighbor
            // (CAS) first, then push the claimed ones — pushes (which write
            // `bottom`) come last, and the following task work gives the
            // write buffer time to retire them before the next take.
            b.push(Op::Read(layout::shared(node % p.shared_lines)));
            let degree = rng.gen_range(1..4);
            let mut claimed = Vec::with_capacity(degree);
            for _ in 0..degree {
                let neighbor = next_node;
                next_node += 1;
                // Claim CAS: one RMW per node — the uniqueness driver.
                b.push(Op::Rmw(
                    claim_of(neighbor, claim_pool, num_cores),
                    RmwKind::CompareAndSwap {
                        expected: 0,
                        new: 1,
                    },
                ));
                claimed.push(neighbor);
            }
            for neighbor in claimed {
                // Record the spanning-tree parent and push the task.
                b.push(Op::Write(
                    layout::shared(neighbor % p.shared_lines),
                    node + 1,
                ));
                deques[core].push_back(neighbor);
                b.push(Op::Write(bottom_of(core), deques[core].len() as u64));
            }
            b.fill_to_density(p, &mut fill_rngs[core]);
        }
    }

    builders.into_iter().map(TraceBuilder::build).collect()
}

/// Owner-side `take`: the Dekker-style `bottom`-write / `top`-read pair,
/// compiled per the chosen mapping.
fn emit_take(b: &mut TraceBuilder, core: usize, replace_reads: bool, p: &Profile) {
    if replace_reads {
        // rr: plain write of bottom (buffered!), task-result writes also
        // pending, then lock xadd(0) on top.
        b.push(Op::Write(bottom_of(core), 0));
        for i in 0..p.writes_before_rmw.saturating_sub(1) {
            b.push(Op::Write(layout::private(core, 64 + i as u64), 1));
        }
        b.push(Op::Rmw(top_of(core), RmwKind::FetchAndAdd(0)));
    } else {
        // wr: lock xchg on bottom, then a plain read of top.
        for i in 0..p.writes_before_rmw.saturating_sub(1) {
            b.push(Op::Write(layout::private(core, 64 + i as u64), 1));
        }
        b.push(Op::Rmw(bottom_of(core), RmwKind::Exchange(0)));
        b.push(Op::Read(top_of(core)));
    }
}

/// Thief-side `steal`: read both indices, then CAS the victim's `top`
/// (a CAS in both compilations).
fn emit_steal(b: &mut TraceBuilder, victim: usize) {
    b.push(Op::Read(top_of(victim)));
    b.push(Op::Read(bottom_of(victim)));
    b.push(Op::Rmw(
        top_of(victim),
        RmwKind::CompareAndSwap {
            expected: 0,
            new: 1,
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn rr_buffers_bottom_write_before_top_rmw() {
        let p = Benchmark::WsqMstRr.profile();
        let t = &generate(&p, 2, 2_000, true, 4)[0];
        let ops = t.ops();
        // Find a take: W(bottom) ... RMW(top) with only writes in between.
        let bottom = bottom_of(0);
        let top = top_of(0);
        let mut found = false;
        for (i, op) in ops.iter().enumerate() {
            if *op == Op::Write(bottom, 0) {
                let rmw_pos = ops[i..]
                    .iter()
                    .position(|o| matches!(o, Op::Rmw(a, _) if *a == top));
                if let Some(j) = rmw_pos {
                    found = true;
                    assert!(
                        ops[i..i + j].iter().all(|o| matches!(o, Op::Write(..))),
                        "rr take must have only pending writes before the RMW"
                    );
                    break;
                }
            }
        }
        assert!(found, "no take found in rr trace");
    }

    #[test]
    fn wr_rmws_bottom_instead_of_top() {
        let p = Benchmark::WsqMstWr.profile();
        let t = &generate(&p, 2, 2_000, false, 4)[0];
        let bottom_rmws = t
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Rmw(a, RmwKind::Exchange(_)) if *a == bottom_of(0)))
            .count();
        assert!(bottom_rmws > 0, "wr takes must xchg bottom");
        // top of own deque is only plainly read on the take path
        let own_top_rmws = t
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Rmw(a, RmwKind::FetchAndAdd(0)) if *a == top_of(0)))
            .count();
        assert_eq!(own_top_rmws, 0);
    }

    #[test]
    fn steals_target_remote_deques() {
        let p = Benchmark::WsqMstWr.profile();
        let traces = generate(&p, 4, 1_500, false, 12);
        let mut steal_cas = 0usize;
        for (c, t) in traces.iter().enumerate() {
            for op in t.ops() {
                if let Op::Rmw(a, RmwKind::CompareAndSwap { .. }) = op {
                    // CAS on a *top* variable that is not our own = steal.
                    for v in 0..4 {
                        if *a == top_of(v) && v != c {
                            steal_cas += 1;
                        }
                    }
                }
            }
        }
        assert!(steal_cas > 0, "some stealing must occur");
    }

    #[test]
    fn claim_cas_per_node_drives_uniqueness() {
        let p = Benchmark::WsqMstRr.profile();
        let traces = generate(&p, 4, 8_000, true, 2);
        let mut addrs = std::collections::BTreeSet::new();
        let mut rmws = 0usize;
        for t in &traces {
            for op in t.ops() {
                if let Op::Rmw(a, _) = op {
                    addrs.insert(*a);
                    rmws += 1;
                }
            }
        }
        let pct = 100.0 * addrs.len() as f64 / rmws as f64;
        assert!(
            (pct - p.pct_unique_rmws).abs() < 2.5,
            "unique% {pct:.2} vs Table 3 {:.2}",
            p.pct_unique_rmws
        );
    }
}
