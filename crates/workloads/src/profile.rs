//! The paper's Table 3 as data: per-benchmark trace characteristics.

use crate::Benchmark;

/// The synchronization idiom a benchmark uses — selects the kernel that
/// generates its traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Idiom {
    /// Test-and-set lock / unlock around critical sections (SPLASH-2,
    /// PARSEC).
    Lock,
    /// TL2-style transactions: per-location version locks acquired by RMW
    /// at commit (STAMP).
    Stm,
    /// Chase–Lev work-stealing deque with Dekker-style `take`/`steal`
    /// synchronization (wsq-mst). `replace_reads` selects the C/C++11
    /// read-replacement (`rr`) vs write-replacement (`wr`) compilation.
    WorkStealing {
        /// `true` = `wsq-mst_rr`, `false` = `wsq-mst_wr`.
        replace_reads: bool,
    },
}

/// One row of Table 3, plus generator knobs derived from the paper's
/// description of each benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// Table 3: "Ratio of RMWs per 1000 memops".
    pub rmws_per_1000_memops: f64,
    /// Table 3: "% Unique RMWs" (distinct addresses / dynamic RMWs).
    pub pct_unique_rmws: f64,
    /// The synchronization idiom.
    pub idiom: Idiom,
    /// Average plain writes sitting in the write buffer when an RMW
    /// executes — the write-buffer-pressure knob (drives the drain cost of
    /// type-1 RMWs; the paper's Fig. 11a write-buffer component).
    pub writes_before_rmw: usize,
    /// Number of distinct shared-data lines touched (sharing degree; more
    /// sharing ⇒ more invalidation traffic at RMWs).
    pub shared_lines: u64,
    /// Fraction of plain accesses that go to shared (vs. private) data.
    pub shared_fraction: f64,
}

/// The Table 3 rows. RMW density and uniqueness are the paper's measured
/// values; the remaining knobs follow the paper's qualitative description
/// (lock-based codes mostly touch private data; `bayes` has long
/// transactions; `wsq-mst_rr` queues more writes per RMW than `_wr`).
pub fn table3_profiles() -> Vec<Profile> {
    vec![
        Profile {
            benchmark: Benchmark::Radiosity,
            rmws_per_1000_memops: 15.56,
            pct_unique_rmws: 0.28,
            idiom: Idiom::Lock,
            writes_before_rmw: 3,
            shared_lines: 512,
            shared_fraction: 0.3,
        },
        Profile {
            benchmark: Benchmark::Raytrace,
            rmws_per_1000_memops: 13.83,
            pct_unique_rmws: 0.02,
            idiom: Idiom::Lock,
            writes_before_rmw: 2,
            shared_lines: 256,
            shared_fraction: 0.2,
        },
        Profile {
            benchmark: Benchmark::Fluidanimate,
            rmws_per_1000_memops: 17.43,
            pct_unique_rmws: 0.46,
            idiom: Idiom::Lock,
            writes_before_rmw: 3,
            shared_lines: 1024,
            shared_fraction: 0.35,
        },
        Profile {
            benchmark: Benchmark::Dedup,
            rmws_per_1000_memops: 8.10,
            pct_unique_rmws: 3.31,
            idiom: Idiom::Lock,
            writes_before_rmw: 4,
            shared_lines: 2048,
            shared_fraction: 0.4,
        },
        Profile {
            benchmark: Benchmark::Bayes,
            rmws_per_1000_memops: 34.15,
            pct_unique_rmws: 0.91,
            idiom: Idiom::Stm,
            writes_before_rmw: 4,
            shared_lines: 1024,
            shared_fraction: 0.5,
        },
        Profile {
            benchmark: Benchmark::Genome,
            rmws_per_1000_memops: 6.19,
            pct_unique_rmws: 0.64,
            idiom: Idiom::Stm,
            writes_before_rmw: 3,
            shared_lines: 1024,
            shared_fraction: 0.5,
        },
        Profile {
            benchmark: Benchmark::WsqMstWr,
            rmws_per_1000_memops: 23.41,
            pct_unique_rmws: 3.80,
            idiom: Idiom::WorkStealing {
                replace_reads: false,
            },
            writes_before_rmw: 2,
            shared_lines: 4096,
            shared_fraction: 0.6,
        },
        Profile {
            benchmark: Benchmark::WsqMstRr,
            rmws_per_1000_memops: 23.41,
            pct_unique_rmws: 3.80,
            idiom: Idiom::WorkStealing {
                replace_reads: true,
            },
            writes_before_rmw: 5,
            shared_lines: 4096,
            shared_fraction: 0.6,
        },
    ]
}

impl Profile {
    /// Memory operations per RMW implied by the density.
    pub fn memops_per_rmw(&self) -> usize {
        (1000.0 / self.rmws_per_1000_memops).round() as usize
    }

    /// Size of the RMW-address pool needed so that `pct_unique_rmws`
    /// holds at the given dynamic RMW count.
    pub fn rmw_pool_size(&self, total_rmws: usize) -> usize {
        ((self.pct_unique_rmws / 100.0) * total_rmws as f64)
            .round()
            .max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_benchmarks_present() {
        let ps = table3_profiles();
        assert_eq!(ps.len(), 8);
        for b in Benchmark::ALL {
            assert!(ps.iter().any(|p| p.benchmark == b), "{b} missing");
        }
    }

    #[test]
    fn table3_values_match_paper() {
        let p = Benchmark::Bayes.profile();
        assert!((p.rmws_per_1000_memops - 34.15).abs() < 1e-9);
        assert!((p.pct_unique_rmws - 0.91).abs() < 1e-9);
        let p = Benchmark::Raytrace.profile();
        assert!((p.rmws_per_1000_memops - 13.83).abs() < 1e-9);
        assert!((p.pct_unique_rmws - 0.02).abs() < 1e-9);
    }

    #[test]
    fn derived_quantities() {
        let p = Benchmark::Genome.profile();
        assert_eq!(p.memops_per_rmw(), 162); // 1000 / 6.19 ≈ 161.6
        assert_eq!(p.rmw_pool_size(10_000), 64); // 0.64% of 10k
        assert_eq!(p.rmw_pool_size(1), 1, "pool never empty");
    }

    #[test]
    fn rr_variant_queues_more_writes_than_wr() {
        // The paper: "with read replacement, there are more entries in the
        // write-buffer per-RMW, which increases draining cost".
        let rr = Benchmark::WsqMstRr.profile();
        let wr = Benchmark::WsqMstWr.profile();
        assert!(rr.writes_before_rmw > wr.writes_before_rmw);
    }
}
