//! Density-steering filler used by all kernels: pads traces with plain
//! accesses so the global RMW density converges to the Table 3 target.

use crate::layout;
use crate::profile::Profile;
use rand::rngs::StdRng;
use rand::Rng;
use rmw_types::Value;
use tso_sim::Op;

/// Tracks per-core generation state while a kernel builds a trace.
#[derive(Debug)]
pub(crate) struct TraceBuilder {
    pub core: usize,
    pub ops: Vec<Op>,
    pub memops: usize,
    pub rmws: usize,
}

impl TraceBuilder {
    pub fn new(core: usize) -> Self {
        TraceBuilder {
            core,
            ops: Vec::new(),
            memops: 0,
            rmws: 0,
        }
    }

    pub fn push(&mut self, op: Op) {
        if op.is_mem() {
            self.memops += 1;
        }
        if matches!(op, Op::Rmw(..)) {
            self.rmws += 1;
        }
        self.ops.push(op);
    }

    /// Appends plain reads/writes (≈2:1) until the running density reaches
    /// `memops_per_rmw` memops per RMW, mixing shared and private data per
    /// the profile. Accesses have strong temporal locality (real programs
    /// mostly hit their caches): ~85 % go to a small hot set.
    pub fn fill_to_density(&mut self, p: &Profile, rng: &mut StdRng) {
        let target = self.rmws * p.memops_per_rmw();
        while self.memops < target {
            let shared = rng.gen_bool(p.shared_fraction);
            let hot = rng.gen_bool(0.85);
            let addr = if shared {
                if hot {
                    // Hot shared data has core affinity (partitioned work),
                    // so it mostly stays in M state locally.
                    let window = 16.min(p.shared_lines);
                    let base = (self.core as u64 * window) % p.shared_lines;
                    layout::shared(base + rng.gen_range(0..window.min(p.shared_lines - base)))
                } else {
                    layout::shared(rng.gen_range(0..p.shared_lines))
                }
            } else {
                let range = if hot { 8 } else { 256 };
                layout::private(self.core, rng.gen_range(0..range))
            };
            if rng.gen_ratio(1, 3) {
                self.push(Op::Write(addr, rng.gen_range(1..100) as Value));
            } else {
                self.push(Op::Read(addr));
            }
            // Sprinkle compute so memory ops don't saturate the machine.
            if rng.gen_ratio(1, 4) {
                self.push(Op::Compute(rng.gen_range(1..8)));
            }
        }
    }

    pub fn build(self) -> tso_sim::Trace {
        tso_sim::Trace::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use rand::SeedableRng;
    use rmw_types::Addr;

    #[test]
    fn filler_converges_to_density() {
        let p = Benchmark::Raytrace.profile();
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = TraceBuilder::new(0);
        for i in 0..10 {
            b.push(Op::Rmw(Addr(i * 64), rmw_types::RmwKind::TestAndSet));
            b.fill_to_density(&p, &mut rng);
        }
        let per_rmw = b.memops as f64 / b.rmws as f64;
        let target = p.memops_per_rmw() as f64;
        assert!(
            (per_rmw - target).abs() / target < 0.05,
            "per-rmw {per_rmw:.1} vs target {target:.1}"
        );
    }
}
