//! TL2-style software-transactional-memory kernel — the STAMP benchmarks
//! (`bayes`, `genome`), which "use RMWs for locking writes in transactions
//! and to commit transactions" (paper §4.1).
//!
//! Each transaction follows TL2's commit protocol (Dice/Shalev/Shavit):
//!
//! ```text
//!   R …                      read set (validated against version clock)
//!   RMW(vlock_i) per w-entry acquire per-location version locks
//!   RMW(global_clock)        fetch-and-add the global version clock
//!   W …                      write back the write set
//!   W(vlock_i, 0) …          release version locks (store new version)
//! ```
//!
//! The global clock is a single hot RMW address, which is why STAMP codes
//! have *low* RMW-address uniqueness despite many RMWs (Table 3).

use crate::fill::TraceBuilder;
use crate::layout;
use crate::profile::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmw_types::RmwKind;
use tso_sim::{Op, Trace};

/// Index of the global version clock in the sync region.
const GLOBAL_CLOCK: u64 = 0;
/// Version locks start after the global clock.
const VLOCK_BASE: u64 = 1;

/// Generates one trace per core.
pub fn generate(p: &Profile, num_cores: usize, memops_per_core: usize, seed: u64) -> Vec<Trace> {
    let expected_rmws = (memops_per_core * num_cores) / p.memops_per_rmw().max(1);
    // The pool covers the version locks; the global clock is always hot.
    // Floor at one lock per core so small runs don't degenerate into a
    // single-version-lock convoy.
    let pool = p
        .rmw_pool_size(expected_rmws.max(1))
        .saturating_sub(1)
        .max(num_cores) as u64;

    (0..num_cores)
        .map(|core| {
            let mut rng = StdRng::seed_from_u64(seed ^ (core as u64).wrapping_mul(0xC0FF_EE11));
            let mut b = TraceBuilder::new(core);
            // Desynchronize cores so commits don't arrive in lockstep.
            b.push(Op::Compute(rng.gen_range(1..400)));
            while b.memops < memops_per_core {
                let write_set: Vec<u64> = (0..rng.gen_range(1..4))
                    .map(|_| rng.gen_range(0..pool))
                    .collect();
                // Read phase: sample the read set (shared data).
                for _ in 0..rng.gen_range(4..12) {
                    b.push(Op::Read(layout::shared(rng.gen_range(0..p.shared_lines))));
                }
                // The previous transaction's write-backs (shared, possibly
                // cached elsewhere → invalidations) are still in the write
                // buffer when the commit-time RMWs execute: this is the
                // "write in the write-buffer which needs to send out
                // invalidation requests" the paper blames for drain cost.
                for _ in 0..p.writes_before_rmw {
                    // Recently-touched shared lines: on-chip but often owned
                    // elsewhere, so completing them costs an invalidation
                    // round-trip (not a 300-cycle cold fetch).
                    let a = layout::shared(rng.gen_range(0..256.min(p.shared_lines)));
                    b.push(Op::Write(a, rng.gen_range(1..100)));
                }
                // Commit: acquire version locks.
                for &v in &write_set {
                    b.push(Op::Rmw(
                        layout::sync_var(VLOCK_BASE + v),
                        RmwKind::TestAndSet,
                    ));
                }
                // Advance the global version clock.
                b.push(Op::Rmw(
                    layout::sync_var(GLOBAL_CLOCK),
                    RmwKind::FetchAndAdd(1),
                ));
                // Write back and release (release stores the new version).
                for &v in &write_set {
                    b.push(Op::Write(
                        layout::shared(v % p.shared_lines),
                        rng.gen_range(1..100),
                    ));
                    b.push(Op::Write(layout::sync_var(VLOCK_BASE + v), 0));
                }
                b.fill_to_density(p, &mut rng);
            }
            b.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn every_transaction_touches_the_global_clock() {
        let p = Benchmark::Bayes.profile();
        let t = &generate(&p, 1, 3_000, 3)[0];
        let clock = layout::sync_var(GLOBAL_CLOCK);
        let clock_rmws = t
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Rmw(a, RmwKind::FetchAndAdd(1)) if *a == clock))
            .count();
        assert!(clock_rmws > 0);
        // Every FAA on the clock is preceded by at least one TAS (vlock).
        let tas = t
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Rmw(_, RmwKind::TestAndSet)))
            .count();
        assert!(tas >= clock_rmws);
    }

    #[test]
    fn genome_has_longer_transactions_than_bayes() {
        // Paper: genome's low RMW impact comes from "a lot more operations
        // per transaction" — i.e. lower density, more filler per commit.
        let bayes = Benchmark::Bayes.profile();
        let genome = Benchmark::Genome.profile();
        assert!(genome.memops_per_rmw() > bayes.memops_per_rmw());
        let tb = &generate(&bayes, 1, 5_000, 1)[0];
        let tg = &generate(&genome, 1, 5_000, 1)[0];
        let db = tb.rmws() as f64 / tb.mem_ops() as f64;
        let dg = tg.rmws() as f64 / tg.mem_ops() as f64;
        assert!(db > dg, "bayes denser in RMWs than genome");
    }

    #[test]
    fn vlocks_are_released_after_commit() {
        let p = Benchmark::Genome.profile();
        let t = &generate(&p, 2, 2_000, 8)[1];
        let mut held: std::collections::BTreeSet<rmw_types::Addr> = Default::default();
        for op in t.ops() {
            match *op {
                Op::Rmw(a, RmwKind::TestAndSet) => {
                    held.insert(a);
                }
                Op::Write(a, 0) => {
                    held.remove(&a);
                }
                _ => {}
            }
        }
        assert!(held.is_empty(), "unreleased version locks: {held:?}");
    }
}
