//! Benchmark substitutes for the paper's evaluation programs (§4, Table 3).
//!
//! The paper measures SPLASH-2 (`radiosity`, `raytrace`), PARSEC
//! (`fluidanimate`, `dedup`), STAMP (`bayes`, `genome`) and a lock-free
//! work-stealing spanning-tree program (`wsq-mst`, plus its C/C++11
//! read-replacement `wsq-mst_rr` and write-replacement `wsq-mst_wr`
//! variants). We cannot ship those programs, but the paper's results are
//! driven by a small set of measured per-benchmark characteristics —
//! RMW density, RMW-address uniqueness, write-buffer pressure at RMWs, and
//! the synchronization idiom — all reported in Table 3. This crate
//! regenerates instruction traces with exactly those characteristics:
//!
//! * [`profile`] — the Table 3 rows as data, and a generic trace generator
//!   parameterized by them;
//! * [`spinlock`] — a test-and-set lock kernel (the lock-based suite);
//! * [`tl2`] — a TL2-style software-transactional-memory kernel (STAMP);
//! * [`chase_lev`] — a Chase–Lev work-stealing deque driving a parallel
//!   graph traversal (wsq-mst), with the `rr`/`wr` C/C++11 variants.
//!
//! All generation is deterministic given a seed.
//!
//! ```
//! use workloads::{benchmark, Benchmark};
//!
//! let traces = benchmark(Benchmark::Radiosity, 4, 2_000, 42);
//! assert_eq!(traces.len(), 4);
//! assert!(traces.iter().all(|t| t.rmws() > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase_lev;
mod fill;
pub mod layout;
pub mod profile;
pub mod spinlock;
pub mod tl2;
pub mod zoo;

pub use profile::{table3_profiles, Idiom, Profile};

use tso_sim::Trace;

/// The evaluated benchmarks (Table 3 rows; `wsq-mst` appears in its two
/// C/C++11 variants as in Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPLASH-2 radiosity (lock-based, `room` input).
    Radiosity,
    /// SPLASH-2 raytrace (lock-based, `car` input).
    Raytrace,
    /// PARSEC fluidanimate (lock-based, `simmedium`).
    Fluidanimate,
    /// PARSEC dedup (lock-based, `simmedium`).
    Dedup,
    /// STAMP bayes (TL2 transactions).
    Bayes,
    /// STAMP genome (TL2 transactions).
    Genome,
    /// Lock-free work-stealing spanning tree, SC-atomic-*writes* replaced
    /// by RMWs (`wsq-mst_wr`).
    WsqMstWr,
    /// Lock-free work-stealing spanning tree, SC-atomic-*reads* replaced
    /// by RMWs (`wsq-mst_rr`).
    WsqMstRr,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Radiosity,
        Benchmark::Raytrace,
        Benchmark::Fluidanimate,
        Benchmark::Dedup,
        Benchmark::Bayes,
        Benchmark::Genome,
        Benchmark::WsqMstWr,
        Benchmark::WsqMstRr,
    ];

    /// The display name used in the paper's tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Radiosity => "radiosity",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Dedup => "dedup",
            Benchmark::Bayes => "bayes",
            Benchmark::Genome => "genome",
            Benchmark::WsqMstWr => "wsq-mst_wr",
            Benchmark::WsqMstRr => "wsq-mst_rr",
        }
    }

    /// The Table 3 profile for this benchmark.
    pub fn profile(self) -> Profile {
        table3_profiles()
            .into_iter()
            .find(|p| p.benchmark == self)
            .expect("every benchmark has a profile")
    }
}

impl core::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates per-core traces for `bench` with roughly `memops_per_core`
/// memory operations each. Deterministic in `seed`.
pub fn benchmark(
    bench: Benchmark,
    num_cores: usize,
    memops_per_core: usize,
    seed: u64,
) -> Vec<Trace> {
    let p = bench.profile();
    match p.idiom {
        Idiom::Lock => spinlock::generate(&p, num_cores, memops_per_core, seed),
        Idiom::Stm => tl2::generate(&p, num_cores, memops_per_core, seed),
        Idiom::WorkStealing { replace_reads } => {
            chase_lev::generate(&p, num_cores, memops_per_core, replace_reads, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_generates_nonempty_traces() {
        for b in Benchmark::ALL {
            let traces = benchmark(b, 4, 1_000, 1);
            assert_eq!(traces.len(), 4, "{b}");
            for t in &traces {
                assert!(t.mem_ops() > 100, "{b}: trace too small");
                assert!(t.rmws() > 0, "{b}: no RMWs generated");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for b in [Benchmark::Radiosity, Benchmark::Bayes, Benchmark::WsqMstRr] {
            let a = benchmark(b, 2, 500, 7);
            let c = benchmark(b, 2, 500, 7);
            assert_eq!(a, c, "{b}");
        }
        let a = benchmark(Benchmark::Radiosity, 2, 500, 7);
        let d = benchmark(Benchmark::Radiosity, 2, 500, 8);
        assert_ne!(a, d, "different seeds differ");
    }

    #[test]
    fn rmw_density_tracks_table3() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let traces = benchmark(b, 4, 5_000, 3);
            let (mut rmws, mut memops) = (0usize, 0usize);
            for t in &traces {
                rmws += t.rmws();
                memops += t.mem_ops();
            }
            let density = 1000.0 * rmws as f64 / memops as f64;
            let target = p.rmws_per_1000_memops;
            assert!(
                (density - target).abs() / target < 0.35,
                "{b}: density {density:.2} vs Table 3 {target:.2}"
            );
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Benchmark::WsqMstRr.to_string(), "wsq-mst_rr");
        assert_eq!(Benchmark::Radiosity.to_string(), "radiosity");
    }
}
