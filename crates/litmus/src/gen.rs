//! Generated litmus families: the classic shapes scaled by thread count,
//! Dekker round variants across the three RMW atomicities, and a seeded
//! stream of random well-formed programs.
//!
//! Together with the hand-written [`classic`](crate::classic) and
//! [`paper`](crate::paper) corpora these grow the test suite from ~30 to
//! 500+ programs, in the spirit of the diy/litmus7 generator families the
//! memory-model community uses to stress real models. The `harness` crate
//! runs the whole corpus differentially (axiomatic model vs. the timing
//! simulator) in parallel.
//!
//! Expectation provenance: the scaled classic families carry their
//! *textbook* TSO verdicts (each is the standard cycle/ordering argument,
//! independent of thread count — see the per-family docs). The Dekker round
//! variants and random programs carry **model-derived** verdicts
//! ([`Expect`] computed by the streaming search at generation time): for
//! those, `Litmus::check` is a regression pin, while the differential
//! harness provides the independent oracle.

use crate::{Expect, Litmus, Target};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmw_types::{Addr, Atomicity, RmwKind, Value};
use tso_model::{allowed_outcomes_cached, Instr, Program, ProgramBuilder};

/// Default seed for [`generated_corpus`] (and the `litmus_run` CLI).
pub const DEFAULT_SEED: u64 = 0xFA57_2013;

/// Default number of random tests in [`generated_corpus`]: chosen so the
/// full corpus (hand-written + families + random) stays comfortably above
/// 500 tests.
pub const DEFAULT_RANDOM_COUNT: usize = 460;

fn x(i: usize) -> Addr {
    Addr(i as u64)
}

/// Computes the model's verdict for a target — used for families whose
/// expectation is not a textbook result.
///
/// Runs on the memoized outcome-set cache: the full set this derivation
/// proves is exactly what `Litmus::check` and the differential harness
/// consult later for the same program, so verdict derivation at
/// generation time doubles as cache warm-up instead of duplicated work.
fn expect_from_model(program: &Program, target: &Target) -> Expect {
    let cached = allowed_outcomes_cached(program);
    if cached
        .outcomes
        .iter()
        .any(|o| target.matches(&o.read_values()))
    {
        Expect::Allowed
    } else {
        Expect::Forbidden
    }
}

/// SB ring over `n` threads: thread `i` runs `W x_i=1; R x_{i+1 mod n}`.
/// All reads 0 is **allowed** — every store can sit in its write buffer
/// past every read, for any `n` (the signature TSO relaxation).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn sb_ring(n: usize) -> Litmus {
    assert!(n >= 2, "SB ring needs at least 2 threads");
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        b.thread().write(x(i), 1).read(x((i + 1) % n));
    }
    Litmus {
        name: format!("sb-ring-n{n}"),
        description: format!("{n}-thread store-buffering ring: all reads 0 allowed"),
        program: b.build(),
        target: Target((0..n).map(|i| (i, 0)).collect()),
        expect: Expect::Allowed,
    }
}

/// Message-passing chain over `n` threads: a producer writes the data then
/// flag 1; relay `i` reads flag `i` and writes flag `i+1`; the consumer
/// reads the last flag then the data. Seeing every flag set but stale data
/// is **forbidden** — W→W and R→R stay ordered on TSO, so the `rf`/`fr`
/// chain from data to the last read is acyclic only if the data read sees 1.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn mp_chain(n: usize) -> Litmus {
    assert!(n >= 2, "MP chain needs at least 2 threads");
    let data = x(0);
    let flag = |i: usize| x(i); // flags 1..n-1
    let mut b = ProgramBuilder::new();
    b.thread().write(data, 1).write(flag(1), 1);
    for i in 1..n - 1 {
        b.thread().read(flag(i)).write(flag(i + 1), 1);
    }
    b.thread().read(flag(n - 1)).read(data);
    // Reads in (thread, po) order: one per relay (indices 0..n-2), then the
    // consumer's flag read (n-2) and data read (n-1).
    let mut constraints: Vec<(usize, Value)> = (0..n - 1).map(|i| (i, 1)).collect();
    constraints.push((n - 1, 0));
    Litmus {
        name: format!("mp-chain-n{n}"),
        description: format!("{n}-thread message-passing chain: stale data after flags forbidden"),
        program: b.build(),
        target: Target(constraints),
        expect: Expect::Forbidden,
    }
}

/// Load-buffering ring over `n` threads: thread `i` runs
/// `R x_i; W x_{i+1 mod n}=1`. All reads 1 is **forbidden** — R→W is
/// preserved on TSO, so the `rf` edges close a `ppo ∪ rf` cycle.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn lb_ring(n: usize) -> Litmus {
    assert!(n >= 2, "LB ring needs at least 2 threads");
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        b.thread().read(x(i)).write(x((i + 1) % n), 1);
    }
    Litmus {
        name: format!("lb-ring-n{n}"),
        description: format!("{n}-thread load-buffering ring: all reads 1 forbidden"),
        program: b.build(),
        target: Target((0..n).map(|i| (i, 1)).collect()),
        expect: Expect::Forbidden,
    }
}

/// IRIW with `readers` observer threads over two independent writers. The
/// first two readers scan `(x, y)` in opposite orders; disagreement on the
/// write order is **forbidden** (TSO is multi-copy atomic and reads stay
/// ordered). Extra readers alternate orders and are unconstrained — they
/// scale the candidate space, not the verdict.
///
/// # Panics
///
/// Panics if `readers < 2`.
pub fn iriw(readers: usize) -> Litmus {
    assert!(readers >= 2, "IRIW needs at least 2 readers");
    let mut b = ProgramBuilder::new();
    b.thread().write(x(0), 1);
    b.thread().write(x(1), 1);
    for j in 0..readers {
        let (first, second) = if j % 2 == 0 { (0, 1) } else { (1, 0) };
        b.thread().read(x(first)).read(x(second));
    }
    Litmus {
        name: format!("iriw-r{readers}"),
        description: format!(
            "IRIW with {readers} readers: disagreeing on the write order is forbidden"
        ),
        program: b.build(),
        // Reader 0 sees x=1 then y=0; reader 1 sees y=1 then x=0.
        target: Target(vec![(0, 1), (1, 0), (2, 1), (3, 0)]),
        expect: Expect::Forbidden,
    }
}

/// 2+2W ring over `n` threads: thread `i` runs
/// `W x_i=1; W x_{i+1}=2; R x_{i+1}`. Every thread reading 1 (its
/// neighbour's first store serialized after its own second store) is
/// **forbidden**: the implied `ws` edges plus the preserved W→W order form
/// a cycle around the ring.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn two_two_w_ring(n: usize) -> Litmus {
    assert!(n >= 2, "2+2W ring needs at least 2 threads");
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        let next = (i + 1) % n;
        b.thread().write(x(i), 1).write(x(next), 2).read(x(next));
    }
    Litmus {
        name: format!("2+2w-ring-n{n}"),
        description: format!("{n}-thread 2+2W ring: cyclic write serialization forbidden"),
        program: b.build(),
        target: Target((0..n).map(|i| (i, 1)).collect()),
        expect: Expect::Forbidden,
    }
}

/// Which Dekker idiom a generated round variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DekkerFlavor {
    /// Reads replaced by `FAA(0)` RMWs (the paper's Fig. 4 idiom).
    ReadReplacement,
    /// Writes replaced by `TAS` RMWs (the paper's Fig. 3 idiom).
    WriteReplacement,
}

/// `n`-thread, `rounds`-round Dekker ring in the given RMW idiom, all RMWs
/// at `atomicity`. The target is the mutual-exclusion failure — every
/// synchronizing read missing its neighbour's writes. The expectation is
/// **model-derived** (the paper's Table 1 pins only the 2-thread, 1-round
/// shapes, which [`crate::paper`] covers).
///
/// # Panics
///
/// Panics if `n < 2` or `rounds < 1`.
pub fn dekker_rounds(
    n: usize,
    rounds: usize,
    atomicity: Atomicity,
    flavor: DekkerFlavor,
) -> Litmus {
    let (program, target) = dekker_rounds_parts(n, rounds, atomicity, flavor);
    let expect = expect_from_model(&program, &target);
    let tag = match flavor {
        DekkerFlavor::ReadReplacement => "rr",
        DekkerFlavor::WriteReplacement => "wr",
    };
    Litmus {
        name: format!("dekker-gen-{tag}-n{n}-r{rounds} {atomicity}"),
        description: format!(
            "generated Dekker ring ({n} threads, {rounds} rounds, {flavor:?}); model-derived verdict"
        ),
        program,
        target,
        expect,
    }
}

/// The program and target of [`dekker_rounds`] without the model-derived
/// expectation — the cheap half the campaign stream uses so shard
/// partitioning never pays a model query for out-of-shard drafts.
///
/// # Panics
///
/// Panics if `n < 2` or `rounds < 1`.
pub fn dekker_rounds_parts(
    n: usize,
    rounds: usize,
    atomicity: Atomicity,
    flavor: DekkerFlavor,
) -> (Program, Target) {
    assert!(n >= 2 && rounds >= 1, "need >= 2 threads and >= 1 round");
    let mut b = ProgramBuilder::new();
    let mut constraints: Vec<(usize, Value)> = Vec::new();
    let mut read_idx = 0usize;
    for i in 0..n {
        let mine = x(i);
        let other = x((i + 1) % n);
        let mut t = b.thread();
        for k in 1..=rounds {
            match flavor {
                DekkerFlavor::ReadReplacement => {
                    t.write(mine, k as Value)
                        .rmw(other, RmwKind::FetchAndAdd(0), atomicity);
                    constraints.push((read_idx, 0)); // the RMW read
                    read_idx += 1;
                }
                DekkerFlavor::WriteReplacement => {
                    t.rmw(mine, RmwKind::TestAndSet, atomicity).read(other);
                    read_idx += 1; // the RMW read is unconstrained
                    constraints.push((read_idx, 0)); // the plain read
                    read_idx += 1;
                }
            }
        }
    }
    (b.build(), Target(constraints))
}

// ---------------------------------------------------------------------------
// Zoo kernel idioms
// ---------------------------------------------------------------------------

/// A synchronization idiom from the `workloads::zoo` kernels, distilled to
/// a straight-line litmus shape (the model has no branches, so each shape
/// pins the *ordering* claim the kernel's control flow relies on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZooIdiom {
    /// TAS-lock handoff: acquirer after a release must see the CS data.
    SpinHandoff,
    /// Ticket-lock handoff: seeing `serving == my ticket` implies the
    /// previous holder's CS writes are visible.
    TicketHandoff,
    /// Drepper 3-state mutex unlock (`xchg 0`): an acquirer whose `xchg`
    /// observes the release must see the CS data.
    Mutex3Unlock,
    /// RW-lock entry race: a reader whose FAA observes the writer's held
    /// lock may still miss the writer's buffered data store (why readers
    /// must undo and wait).
    RwlockEnter,
    /// One-shot publish, read-replacement check: an `FAA(0)` on the ready
    /// flag that returns 1 implies the payload is visible.
    OneshotPublish,
    /// SPSC ring index lag: producer and consumer may each miss the
    /// other's latest index store (both sit in write buffers). No RMWs.
    SpscIndexLag,
    /// Arc drop race: a plain check-then-poison lets a live reference
    /// observe the poison (why real drops need stronger ordering).
    ArcDropRace,
}

impl ZooIdiom {
    /// All idioms, in presentation order.
    pub const ALL: [ZooIdiom; 7] = [
        ZooIdiom::SpinHandoff,
        ZooIdiom::TicketHandoff,
        ZooIdiom::Mutex3Unlock,
        ZooIdiom::RwlockEnter,
        ZooIdiom::OneshotPublish,
        ZooIdiom::SpscIndexLag,
        ZooIdiom::ArcDropRace,
    ];

    /// True if the shape contains RMWs (and so the atomicity parameter
    /// changes the program).
    pub fn uses_rmws(self) -> bool {
        self != ZooIdiom::SpscIndexLag
    }

    fn tag(self) -> &'static str {
        match self {
            ZooIdiom::SpinHandoff => "spin-handoff",
            ZooIdiom::TicketHandoff => "ticket-handoff",
            ZooIdiom::Mutex3Unlock => "mutex3-unlock",
            ZooIdiom::RwlockEnter => "rwlock-enter",
            ZooIdiom::OneshotPublish => "oneshot-publish",
            ZooIdiom::SpscIndexLag => "spsc-index-lag",
            ZooIdiom::ArcDropRace => "arc-drop-race",
        }
    }
}

/// Builds the litmus shape for one zoo idiom with every RMW at
/// `atomicity`. All verdicts are **model-derived**: the point of the
/// family is to pin what the axiomatic model says about the kernels'
/// load-bearing orderings, per atomicity, and feed the same shapes
/// through the formatter and differential harness.
pub fn zoo_idiom(idiom: ZooIdiom, atomicity: Atomicity) -> Litmus {
    let a = atomicity;
    let (lock, data, aux) = (x(0), x(1), x(2));
    let mut b = ProgramBuilder::new();
    let (target, description) = match idiom {
        ZooIdiom::SpinHandoff => {
            // T0 acquires (TAS reads 0), writes data, releases (w lock 0);
            // T1's TAS also reads 0 — serialized after the release — yet
            // sees stale data.
            b.thread()
                .rmw(lock, RmwKind::TestAndSet, a)
                .write(data, 1)
                .write(lock, 0);
            b.thread().rmw(lock, RmwKind::TestAndSet, a).read(data);
            (
                Target(vec![(0, 0), (1, 0), (2, 0)]),
                "TAS handoff: second acquirer sees stale critical-section data",
            )
        }
        ZooIdiom::TicketHandoff => {
            // aux = next-ticket counter, lock = serving counter.
            b.thread()
                .rmw(aux, RmwKind::FetchAndAdd(1), a)
                .read(lock)
                .write(data, 1)
                .rmw(lock, RmwKind::FetchAndAdd(1), a);
            b.thread()
                .rmw(aux, RmwKind::FetchAndAdd(1), a)
                .read(lock)
                .read(data);
            (
                // T0 drew ticket 0 and saw its turn; T1 drew ticket 1, saw
                // serving advance to 1, but reads stale data.
                Target(vec![(0, 0), (1, 0), (3, 1), (4, 1), (5, 0)]),
                "ticket handoff: serving==ticket yet stale critical-section data",
            )
        }
        ZooIdiom::Mutex3Unlock => {
            b.thread()
                .rmw(lock, RmwKind::Exchange(1), a)
                .write(data, 1)
                .rmw(lock, RmwKind::Exchange(0), a);
            b.thread().rmw(lock, RmwKind::Exchange(2), a).read(data);
            (
                // T0: clean acquire (read 0) and uncontended release
                // (read 1); T1's xchg read 0 — i.e. after the release,
                // since before T0's acquire it would make T0 read 2 —
                // yet stale data.
                Target(vec![(0, 0), (1, 1), (2, 0), (3, 0)]),
                "3-state unlock: contended acquire after release sees stale data",
            )
        }
        ZooIdiom::RwlockEnter => {
            // Writer CAS-acquires then writes under the lock; a reader's
            // FAA observes the held lock (reads 8).
            b.thread()
                .rmw(
                    lock,
                    RmwKind::CompareAndSwap {
                        expected: 0,
                        new: 8,
                    },
                    a,
                )
                .write(data, 1);
            b.thread().rmw(lock, RmwKind::FetchAndAdd(1), a).read(data);
            (
                // Reader entered after the writer held the lock but the
                // writer's data store is still buffered.
                Target(vec![(0, 0), (1, 8), (2, 0)]),
                "rwlock entry: reader sees writer-held lock but not its data",
            )
        }
        ZooIdiom::OneshotPublish => {
            b.thread().write(data, 42).write(lock, 1);
            b.thread().rmw(lock, RmwKind::FetchAndAdd(0), a).read(data);
            (
                Target(vec![(0, 1), (1, 0)]),
                "one-shot publish: ready flag read by RMW yet payload missing",
            )
        }
        ZooIdiom::SpscIndexLag => {
            // lock = tail, aux = head, data = the slot.
            b.thread().read(aux).write(data, 7).write(lock, 1);
            b.thread().read(lock).read(data).write(aux, 1);
            (
                // Producer already saw head=1 while the consumer still saw
                // tail=0 — both index stores buffered past the reads.
                Target(vec![(0, 1), (1, 0)]),
                "SPSC indices: producer and consumer each miss the other's index store",
            )
        }
        ZooIdiom::ArcDropRace => {
            // aux = strong count; T1 checks the count (FAA 0) and poisons.
            b.thread().rmw(aux, RmwKind::FetchAndAdd(1), a).read(data);
            b.thread()
                .rmw(aux, RmwKind::FetchAndAdd(0), a)
                .write(data, 13);
            (
                // The observer saw zero references, yet the clone-holding
                // thread reads the poison.
                Target(vec![(1, 13), (2, 0)]),
                "Arc drop: zero-refcount observer poisons while a reference reads it",
            )
        }
    };
    let program = b.build();
    let expect = expect_from_model(&program, &target);
    let name = if idiom.uses_rmws() {
        format!("zoo-{} {atomicity}", idiom.tag())
    } else {
        format!("zoo-{}", idiom.tag())
    };
    Litmus {
        name,
        description: format!("{description}; model-derived verdict"),
        program,
        target,
        expect,
    }
}

// ---------------------------------------------------------------------------
// Seeded random programs
// ---------------------------------------------------------------------------

/// Upper bound on the estimated `rf × ws` candidate space of a random
/// program. Programs above it are rejected and redrawn: one unlucky draw
/// (say, seven writes racing on one location) would otherwise dominate the
/// whole corpus's checking time, in the model *and* in the differential
/// harness's exhaustive `allowed_outcomes` pass.
const MAX_CANDIDATE_ESTIMATE: f64 = 10_000.0;

/// Estimated size of the `rf × ws` candidate space: per location
/// `(#writes)!` serializations, and per read `#same-location writes + 1`
/// `rf` sources (the `+1` is the initial write).
fn candidate_estimate(p: &Program) -> f64 {
    let mut writes_at: std::collections::BTreeMap<Addr, u64> = std::collections::BTreeMap::new();
    let mut reads: Vec<Addr> = Vec::new();
    for (_, instrs) in p.iter() {
        for i in instrs {
            match *i {
                Instr::Write(a, _) => *writes_at.entry(a).or_default() += 1,
                Instr::Read(a) => reads.push(a),
                Instr::Rmw { addr, .. } => {
                    *writes_at.entry(addr).or_default() += 1;
                    reads.push(addr);
                }
                Instr::Fence => {}
            }
        }
    }
    let ws: f64 = writes_at
        .values()
        .map(|&n| (1..=n).product::<u64>() as f64)
        .product();
    let rf: f64 = reads
        .iter()
        .map(|a| (writes_at.get(a).copied().unwrap_or(0) + 1) as f64)
        .product();
    ws * rf
}

/// The dimensions a random program is drawn from. The corpus default
/// ([`RandomSpace::default`]) matches the original PR 3 generator; the
/// campaign stream uses the larger [`RandomSpace::CAMPAIGN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSpace {
    /// Threads are drawn from `2..=max_threads`.
    pub max_threads: usize,
    /// Instructions per thread are drawn from `1..=max_instrs`.
    pub max_instrs: usize,
    /// Addresses are drawn from `0..locations`.
    pub locations: u64,
    /// Written values are drawn from `1..=max_value`.
    pub max_value: Value,
}

impl Default for RandomSpace {
    fn default() -> Self {
        RandomSpace {
            max_threads: 3,
            max_instrs: 4,
            locations: 4,
            max_value: 3,
        }
    }
}

impl RandomSpace {
    /// The bigger space the campaign stream draws from: up to 4 threads ×
    /// 5 instructions over 5 locations. The candidate-estimate rejection
    /// cap still bounds per-test checking cost, so the bigger space means
    /// more *shapes*, not unboundedly heavier tests.
    pub const CAMPAIGN: RandomSpace = RandomSpace {
        max_threads: 4,
        max_instrs: 5,
        locations: 5,
        max_value: 4,
    };
}

/// Generates one random well-formed program from the default
/// [`RandomSpace`]: 2–3 threads, 1–4 instructions each, over 4 locations,
/// with all RMW kinds and atomicities represented. Draws whose estimated
/// candidate space exceeds an internal cap (`MAX_CANDIDATE_ESTIMATE`) are
/// rejected and redrawn, bounding per-test checking cost.
pub fn random_program(rng: &mut StdRng) -> Program {
    random_program_in(rng, &RandomSpace::default())
}

/// [`random_program`] over an explicit [`RandomSpace`].
pub fn random_program_in(rng: &mut StdRng, space: &RandomSpace) -> Program {
    loop {
        let p = draw_program(rng, space);
        if candidate_estimate(&p) <= MAX_CANDIDATE_ESTIMATE {
            return p;
        }
    }
}

fn draw_program(rng: &mut StdRng, space: &RandomSpace) -> Program {
    let kinds = [
        RmwKind::TestAndSet,
        RmwKind::FetchAndAdd(1),
        RmwKind::FetchAndAdd(0),
        RmwKind::Exchange(2),
        RmwKind::CompareAndSwap {
            expected: 0,
            new: 1,
        },
        RmwKind::CompareAndSwap {
            expected: 1,
            new: 2,
        },
    ];
    let n_threads = rng.gen_range(2usize..space.max_threads + 1);
    let mut b = ProgramBuilder::new();
    for _ in 0..n_threads {
        let len = rng.gen_range(1usize..space.max_instrs + 1);
        let mut t = b.thread();
        for _ in 0..len {
            let a = Addr(rng.gen_range(0u64..space.locations));
            match rng.gen_range(0u32..100) {
                0..=29 => t.read(a),
                30..=59 => t.write(a, rng.gen_range(1u64..space.max_value + 1)),
                60..=84 => t.rmw(
                    a,
                    kinds[rng.gen_range(0usize..kinds.len())],
                    Atomicity::ALL[rng.gen_range(0usize..3)],
                ),
                _ => t.fence(),
            };
        }
    }
    b.build()
}

/// Generates one random litmus test: a [`random_program`] with a random
/// target over its reads and a model-derived expectation.
pub fn random_litmus(rng: &mut StdRng, index: usize) -> Litmus {
    let program = random_program(rng);
    let num_reads = program.num_reads();
    let target = if num_reads == 0 {
        Target(Vec::new())
    } else {
        let count = rng.gen_range(1usize..2.min(num_reads) + 1);
        let mut indices: Vec<usize> = Vec::new();
        while indices.len() < count {
            let i = rng.gen_range(0usize..num_reads);
            if !indices.contains(&i) {
                indices.push(i);
            }
        }
        indices.sort_unstable();
        Target(
            indices
                .into_iter()
                .map(|i| (i, rng.gen_range(0u64..4)))
                .collect(),
        )
    };
    let expect = expect_from_model(&program, &target);
    Litmus {
        name: format!("rand-{index:03}"),
        description: "seeded random program; model-derived verdict".into(),
        program,
        target,
        expect,
    }
}

/// The generated corpus: every scaled classic family, the Dekker round
/// variants across all three atomicities, and `random_count` seeded random
/// tests. Deterministic in `(seed, random_count)`.
pub fn generated_corpus(seed: u64, random_count: usize) -> Vec<Litmus> {
    let mut tests = Vec::new();
    for n in 2..=7 {
        tests.push(sb_ring(n));
        tests.push(mp_chain(n));
        tests.push(lb_ring(n));
        tests.push(two_two_w_ring(n));
    }
    for readers in 2..=5 {
        tests.push(iriw(readers));
    }
    for &(n, rounds) in &[(2, 1), (2, 2), (3, 1)] {
        for atomicity in Atomicity::ALL {
            tests.push(dekker_rounds(
                n,
                rounds,
                atomicity,
                DekkerFlavor::ReadReplacement,
            ));
            tests.push(dekker_rounds(
                n,
                rounds,
                atomicity,
                DekkerFlavor::WriteReplacement,
            ));
        }
    }
    for idiom in ZooIdiom::ALL {
        if idiom.uses_rmws() {
            for atomicity in Atomicity::ALL {
                tests.push(zoo_idiom(idiom, atomicity));
            }
        } else {
            tests.push(zoo_idiom(idiom, Atomicity::Type1));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..random_count {
        tests.push(random_litmus(&mut rng, i));
    }
    tests
}

// ---------------------------------------------------------------------------
// Campaign stream
// ---------------------------------------------------------------------------

/// A campaign test whose model verdict may still be pending.
///
/// The campaign driver shards tests by canonical fingerprint *before*
/// running them, so drafting must be cheap: a draft carries the program
/// and target but defers the model-derived expectation until
/// [`finish`](CampaignDraft::finish) — which only in-shard tests ever
/// call. Drafts from families with textbook verdicts (the scaled rings)
/// arrive with `expect` already `Some`, also without a model query.
#[derive(Debug, Clone)]
pub struct CampaignDraft {
    /// Unique name, prefixed `camp-{index:07}-`.
    pub name: String,
    /// One-line provenance description.
    pub description: String,
    /// The program.
    pub program: Program,
    /// The interesting outcome.
    pub target: Target,
    /// The expected verdict, when known without a model query.
    pub expect: Option<Expect>,
}

impl CampaignDraft {
    /// The program's canonical fingerprint — the campaign's shard key and
    /// the verdict store's record key prefix. Cheap relative to a model
    /// search (no search, no canonical program rebuild).
    pub fn fingerprint(&self) -> u64 {
        self.program.canonical_fingerprint()
    }

    /// Resolves the draft into a runnable [`Litmus`], deriving the
    /// expectation from the model if it was deferred. This is the step
    /// that may pay a model search (or hit the memo cache / verdict
    /// store), so the campaign driver calls it from worker threads, for
    /// in-shard tests only.
    pub fn finish(self) -> Litmus {
        let expect = match self.expect {
            Some(e) => e,
            None => expect_from_model(&self.program, &self.target),
        };
        Litmus {
            name: self.name,
            description: self.description,
            program: self.program,
            target: self.target,
            expect,
        }
    }
}

/// SplitMix64-style finalizer mixing a campaign seed with a test index
/// into an independent per-test RNG seed. Random-access: draft `i` never
/// depends on drafts `0..i`, which is what makes sharding and resume cuts
/// exact.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The mutation/splice base pool: every hand-written test (classic +
/// paper corpora). Built once per process.
fn base_pool() -> &'static [Litmus] {
    use std::sync::OnceLock;
    static POOL: OnceLock<Vec<Litmus>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut pool = crate::classic::all();
        pool.extend(crate::paper::all());
        pool
    })
}

/// Draws a random target over the program's reads (up to two constrained
/// reads, values in `0..max_value+1`). Empty program ⇒ empty target.
fn draw_target(rng: &mut StdRng, program: &Program, max_value: Value) -> Target {
    let num_reads = program.num_reads();
    if num_reads == 0 {
        return Target(Vec::new());
    }
    let count = rng.gen_range(1usize..2.min(num_reads) + 1);
    let mut indices: Vec<usize> = Vec::new();
    while indices.len() < count {
        let i = rng.gen_range(0usize..num_reads);
        if !indices.contains(&i) {
            indices.push(i);
        }
    }
    indices.sort_unstable();
    Target(
        indices
            .into_iter()
            .map(|i| (i, rng.gen_range(0u64..max_value + 1)))
            .collect(),
    )
}

/// One structural mutation of a base program. Returns the mutated threads
/// and a tag naming the mutation (for the draft description).
fn mutate_program(rng: &mut StdRng, base: &Program) -> (Program, &'static str) {
    let mut threads: Vec<Vec<Instr>> = base.iter().map(|(_, t)| t.to_vec()).collect();
    let tid = rng.gen_range(0usize..threads.len());
    let tag = match rng.gen_range(0u32..6) {
        0 => {
            // Cycle the atomicity of one RMW (if the chosen thread has any).
            let rmws: Vec<usize> = threads[tid]
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::Rmw { .. }))
                .map(|(k, _)| k)
                .collect();
            if !rmws.is_empty() {
                let k = rmws[rng.gen_range(0usize..rmws.len())];
                if let Instr::Rmw { atomicity, .. } = &mut threads[tid][k] {
                    *atomicity = match *atomicity {
                        Atomicity::Type1 => Atomicity::Type2,
                        Atomicity::Type2 => Atomicity::Type3,
                        Atomicity::Type3 => Atomicity::Type1,
                    };
                }
            }
            "flip-atomicity"
        }
        1 => {
            // Tweak one written value.
            let writes: Vec<usize> = threads[tid]
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::Write(..)))
                .map(|(k, _)| k)
                .collect();
            if !writes.is_empty() {
                let k = writes[rng.gen_range(0usize..writes.len())];
                if let Instr::Write(_, v) = &mut threads[tid][k] {
                    *v = rng.gen_range(1u64..5);
                }
            }
            "tweak-value"
        }
        2 => {
            // Insert a fence at a random point.
            let pos = rng.gen_range(0usize..threads[tid].len() + 1);
            threads[tid].insert(pos, Instr::Fence);
            "insert-fence"
        }
        3 => {
            // Swap two adjacent instructions.
            if threads[tid].len() >= 2 {
                let k = rng.gen_range(0usize..threads[tid].len() - 1);
                threads[tid].swap(k, k + 1);
            }
            "swap-adjacent"
        }
        4 => {
            // Strengthen one plain read into a read-replacement FAA(0).
            let reads: Vec<usize> = threads[tid]
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::Read(_)))
                .map(|(k, _)| k)
                .collect();
            if !reads.is_empty() {
                let k = reads[rng.gen_range(0usize..reads.len())];
                if let Instr::Read(a) = threads[tid][k] {
                    threads[tid][k] = Instr::Rmw {
                        addr: a,
                        kind: RmwKind::FetchAndAdd(0),
                        atomicity: Atomicity::ALL[rng.gen_range(0usize..3)],
                    };
                }
            }
            "read-to-faa"
        }
        _ => {
            // Strengthen one plain write into a write-replacement xchg.
            let writes: Vec<usize> = threads[tid]
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::Write(..)))
                .map(|(k, _)| k)
                .collect();
            if !writes.is_empty() {
                let k = writes[rng.gen_range(0usize..writes.len())];
                if let Instr::Write(a, v) = threads[tid][k] {
                    threads[tid][k] = Instr::Rmw {
                        addr: a,
                        kind: RmwKind::Exchange(v),
                        atomicity: Atomicity::ALL[rng.gen_range(0usize..3)],
                    };
                }
            }
            "write-to-xchg"
        }
    };
    let mut p = Program::new();
    for t in threads {
        p.add_thread(t);
    }
    (p, tag)
}

/// Draft candidate before the candidate-estimate gate is applied.
fn campaign_candidate(rng: &mut StdRng, index: u64) -> CampaignDraft {
    let pick = rng.gen_range(0u32..100);
    if pick < 35 {
        // Bigger random space than the corpus default.
        let program = random_program_in(rng, &RandomSpace::CAMPAIGN);
        let target = draw_target(rng, &program, RandomSpace::CAMPAIGN.max_value);
        CampaignDraft {
            name: format!("camp-{index:07}-rand"),
            description: "campaign random program (big space); model-derived verdict".into(),
            program,
            target,
            expect: None,
        }
    } else if pick < 55 {
        // Scaled families past the corpus defaults. The rings carry their
        // textbook verdicts (no model query); the Dekker variants defer.
        match rng.gen_range(0u32..6) {
            0 => {
                let n = rng.gen_range(2usize..9);
                let l = sb_ring(n);
                family_draft(index, l)
            }
            1 => {
                let n = rng.gen_range(2usize..9);
                family_draft(index, mp_chain(n))
            }
            2 => {
                let n = rng.gen_range(2usize..9);
                family_draft(index, lb_ring(n))
            }
            3 => {
                let n = rng.gen_range(2usize..8);
                family_draft(index, two_two_w_ring(n))
            }
            4 => {
                let readers = rng.gen_range(2usize..7);
                family_draft(index, iriw(readers))
            }
            _ => {
                let n = rng.gen_range(2usize..4);
                let rounds = rng.gen_range(1usize..4);
                let atomicity = Atomicity::ALL[rng.gen_range(0usize..3)];
                let flavor = if rng.gen_range(0u32..2) == 0 {
                    DekkerFlavor::ReadReplacement
                } else {
                    DekkerFlavor::WriteReplacement
                };
                let (program, target) = dekker_rounds_parts(n, rounds, atomicity, flavor);
                CampaignDraft {
                    name: format!("camp-{index:07}-dekker-n{n}-r{rounds}"),
                    description: format!(
                        "campaign Dekker ring ({n} threads, {rounds} rounds, {flavor:?}, \
                         {atomicity}); model-derived verdict"
                    ),
                    program,
                    target,
                    expect: None,
                }
            }
        }
    } else if pick < 78 {
        // One structural mutation of a hand-written base test.
        let pool = base_pool();
        let base = &pool[rng.gen_range(0usize..pool.len())];
        let (program, tag) = mutate_program(rng, &base.program);
        // Reuse the base target when its read indices survived the
        // mutation; otherwise redraw over the mutated program's reads.
        let target = if base.target.0.iter().all(|&(i, _)| i < program.num_reads())
            && !base.target.0.is_empty()
        {
            base.target.clone()
        } else {
            draw_target(rng, &program, 3)
        };
        CampaignDraft {
            name: format!("camp-{index:07}-mut-{tag}"),
            description: format!(
                "campaign mutation ({tag}) of {:?}; model-derived verdict",
                base.name
            ),
            program,
            target,
            expect: None,
        }
    } else {
        // Thread-splice cross-product of two hand-written base tests.
        let pool = base_pool();
        let a = &pool[rng.gen_range(0usize..pool.len())];
        let b = &pool[rng.gen_range(0usize..pool.len())];
        let mut threads: Vec<Vec<Instr>> = Vec::new();
        for (_, t) in a.program.iter() {
            threads.push(t.to_vec());
        }
        for (_, t) in b.program.iter() {
            if threads.len() >= 4 {
                break;
            }
            threads.push(t.to_vec());
        }
        threads.truncate(4);
        let mut program = Program::new();
        for t in threads {
            program.add_thread(t);
        }
        let target = draw_target(rng, &program, 3);
        CampaignDraft {
            name: format!("camp-{index:07}-splice"),
            description: format!(
                "campaign splice of {:?} × {:?} threads; model-derived verdict",
                a.name, b.name
            ),
            program,
            target,
            expect: None,
        }
    }
}

/// Wraps a family [`Litmus`] (textbook verdict already attached) as a
/// campaign draft under the campaign naming scheme.
fn family_draft(index: u64, l: Litmus) -> CampaignDraft {
    CampaignDraft {
        name: format!("camp-{index:07}-fam-{}", l.name),
        description: l.description,
        program: l.program,
        target: l.target,
        expect: Some(l.expect),
    }
}

/// Draft number `index` of the campaign stream for `seed`.
///
/// Deterministic and **random-access**: the draft depends only on
/// `(seed, index)`, never on earlier drafts, so any shard of the index
/// space can be generated independently and a resumed run regenerates
/// exactly the drafts it skipped. The stream mixes four sources —
/// ~35% big-space random programs, ~20% scaled families beyond the
/// corpus defaults, ~23% structural mutations of the hand-written
/// corpora, ~22% thread-splices of two hand-written tests. Drafts whose
/// estimated candidate space exceeds the generator cap are redrawn (and
/// after a few tries fall back to a default-space random program), so
/// per-test checking cost stays bounded.
///
/// No draft pays a model query: verdicts are either textbook
/// (`expect: Some`) or deferred to [`CampaignDraft::finish`].
pub fn campaign_draft(seed: u64, index: u64) -> CampaignDraft {
    let mut rng = StdRng::seed_from_u64(mix(seed, index));
    for _ in 0..8 {
        let draft = campaign_candidate(&mut rng, index);
        if candidate_estimate(&draft.program) <= MAX_CANDIDATE_ESTIMATE {
            return draft;
        }
    }
    // Fallback: the default random space always passes the gate quickly.
    let program = random_program(&mut rng);
    let target = draw_target(&mut rng, &program, 3);
    CampaignDraft {
        name: format!("camp-{index:07}-rand"),
        description: "campaign random program (fallback space); model-derived verdict".into(),
        program,
        target,
        expect: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_all;

    #[test]
    fn family_verdicts_match_the_model() {
        // The textbook expectations baked into the scaled families must
        // agree with the model on every instance — this is the guard that
        // keeps a scaling bug from silently shipping a wrong verdict.
        let mut families: Vec<Litmus> = Vec::new();
        for n in 2..=5 {
            families.extend([sb_ring(n), mp_chain(n), lb_ring(n), two_two_w_ring(n)]);
        }
        families.push(iriw(2));
        families.push(iriw(3));
        let failures = run_all(&families);
        assert!(
            failures.is_empty(),
            "family verdict mismatches: {:?}",
            failures.iter().map(|f| f.report()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dekker_rounds_matches_table1_on_the_paper_shapes() {
        // The (n=2, rounds=1) instances are exactly the paper's Fig. 3/4
        // shapes, so the model-derived verdicts must reproduce Table 1.
        for a in Atomicity::ALL {
            let rr = dekker_rounds(2, 1, a, DekkerFlavor::ReadReplacement);
            assert_eq!(
                rr.expect,
                Expect::Forbidden,
                "read replacement works for {a}"
            );
            let wr = dekker_rounds(2, 1, a, DekkerFlavor::WriteReplacement);
            let expected = if a == Atomicity::Type3 {
                Expect::Allowed // §2.5: type-3 write replacement fails
            } else {
                Expect::Forbidden
            };
            assert_eq!(wr.expect, expected, "write replacement under {a}");
        }
    }

    #[test]
    fn zoo_idioms_pin_the_kernels_load_bearing_orderings() {
        // The handoff/publish shapes are the orderings the zoo kernels'
        // correctness rests on: under every atomicity the model must
        // forbid a post-release acquirer from missing critical-section
        // data, and the `Litmus::check` pin must be self-consistent.
        for idiom in ZooIdiom::ALL {
            for atomicity in Atomicity::ALL {
                let t = zoo_idiom(idiom, atomicity);
                assert!(t.check().passed, "{} must pass its own pin", t.name);
                let reads = t.program.num_reads();
                for &(idx, _) in &t.target.0 {
                    assert!(idx < reads, "{}: r{idx} out of {reads}", t.name);
                }
            }
            let forbidden = matches!(
                idiom,
                ZooIdiom::SpinHandoff
                    | ZooIdiom::TicketHandoff
                    | ZooIdiom::Mutex3Unlock
                    | ZooIdiom::OneshotPublish
            );
            if forbidden {
                for atomicity in Atomicity::ALL {
                    assert_eq!(
                        zoo_idiom(idiom, atomicity).expect,
                        Expect::Forbidden,
                        "{idiom:?} handoff must be forbidden under {atomicity}"
                    );
                }
            }
        }
        // The two deliberately racy shapes are allowed: the rwlock reader
        // can miss the writer's buffered store (hence the undo-and-wait
        // protocol), and both SPSC index stores can lag (hence the ring
        // tolerates stale indices).
        assert_eq!(
            zoo_idiom(ZooIdiom::RwlockEnter, Atomicity::Type1).expect,
            Expect::Allowed
        );
        assert_eq!(
            zoo_idiom(ZooIdiom::SpscIndexLag, Atomicity::Type1).expect,
            Expect::Allowed
        );
    }

    #[test]
    fn corpus_is_large_deterministic_and_uniquely_named() {
        // Generate with a reduced random tail (model-deriving 460 verdicts
        // is a release-mode job — the harness does it); the full-size
        // arithmetic is checked from the family count.
        let corpus = generated_corpus(DEFAULT_SEED, 40);
        let families = corpus.len() - 40;
        let hand_written = crate::classic::all().len() + crate::paper::all().len();
        assert!(
            families + DEFAULT_RANDOM_COUNT + hand_written >= 500,
            "full corpus must stay >= 500 tests, got {families} + {DEFAULT_RANDOM_COUNT} + {hand_written}"
        );
        let mut names: Vec<&str> = corpus.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        let total = names.len();
        names.dedup();
        assert_eq!(total, names.len(), "duplicate test names");
        // Determinism: same seed, same corpus prefix.
        let again = generated_corpus(DEFAULT_SEED, 25);
        assert_eq!(again[..], corpus[..again.len()]);
    }

    #[test]
    fn random_targets_index_real_reads() {
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..50 {
            let t = random_litmus(&mut rng, i);
            let reads = t.program.num_reads();
            for &(idx, _) in &t.target.0 {
                assert!(idx < reads, "{}: r{idx} out of {reads}", t.name);
            }
            // The model-derived verdict is self-consistent by construction.
            assert!(t.check().passed, "{} must pass its own pin", t.name);
        }
    }

    #[test]
    fn campaign_drafts_are_deterministic_and_random_access() {
        // The same (seed, index) must yield byte-identical drafts no
        // matter what was generated before — this is the property the
        // sharded/resumable campaign driver rests on.
        for index in [0u64, 1, 17, 999, 123_456] {
            let a = campaign_draft(42, index);
            let b = campaign_draft(42, index);
            assert_eq!(a.name, b.name);
            assert_eq!(a.program, b.program);
            assert_eq!(a.target, b.target);
            assert_eq!(a.expect, b.expect);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
        // Different seeds decorrelate the stream.
        let names_42: Vec<String> = (0..20).map(|i| campaign_draft(42, i).name).collect();
        let names_43: Vec<String> = (0..20).map(|i| campaign_draft(43, i).name).collect();
        assert_ne!(names_42, names_43);
    }

    #[test]
    fn campaign_drafts_are_well_formed_and_uniquely_named() {
        let mut names = std::collections::BTreeSet::new();
        for index in 0..200u64 {
            let d = campaign_draft(7, index);
            assert!(names.insert(d.name.clone()), "duplicate name {}", d.name);
            assert!(d.name.starts_with(&format!("camp-{index:07}-")));
            let reads = d.program.num_reads();
            for &(idx, _) in &d.target.0 {
                assert!(idx < reads, "{}: r{idx} out of {reads}", d.name);
            }
            assert!(
                candidate_estimate(&d.program) <= MAX_CANDIDATE_ESTIMATE,
                "{} exceeds the candidate cap",
                d.name
            );
            assert!(d.program.num_threads() >= 2, "{} single-threaded", d.name);
        }
    }

    #[test]
    fn finished_campaign_drafts_pass_their_own_pin() {
        // finish() derives deferred verdicts from the model, so the
        // resulting Litmus must be self-consistent; family drafts carry
        // textbook verdicts that must also agree with the model.
        for index in 0..12u64 {
            let t = campaign_draft(11, index).finish();
            assert!(t.check().passed, "{} must pass its own pin", t.name);
        }
    }

    #[test]
    fn campaign_fingerprint_matches_full_canonicalization() {
        for index in 0..30u64 {
            let d = campaign_draft(3, index);
            let full = d.program.canonicalize();
            assert_eq!(
                d.fingerprint(),
                full.fingerprint(),
                "{}: fast fingerprint drifted from canonical form",
                d.name
            );
        }
    }
}
