//! Litmus-test corpus for the *Fast RMWs for TSO* reproduction.
//!
//! A [`Litmus`] bundles a [`Program`], a *target outcome* (a conjunction of
//! `read#i == v` constraints over the program's read events), and an
//! [`Expect`]ation of whether the TSO model allows that outcome. The
//! [`Litmus::check`] method runs the axiomatic model and compares.
//!
//! Two corpora are provided:
//!
//! * [`classic`] — the standard TSO tests (SB, MP, LB, IRIW, R, 2+2W, ...)
//!   used to validate the base model against the known TSO verdicts;
//! * [`paper`] — every Dekker scenario of the paper (Figures 1, 3, 4, 5, 8)
//!   plus the write-deadlock shape of Figure 10, each parameterized by the
//!   RMW [`Atomicity`], with the expectations of the paper's Table 1.
//!
//! ```
//! use litmus::classic;
//!
//! let sb = classic::sb();
//! assert!(sb.check().passed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rmw_types::{Atomicity, Value};
use tso_model::{
    allowed_outcomes_cached, find_execution, CandidateExecution, Program, SearchStats,
};

pub mod classic;
pub mod fmt;
pub mod gen;
pub mod paper;

/// Whether the target outcome should be allowed or forbidden by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Some valid execution exhibits the target outcome.
    Allowed,
    /// No valid execution exhibits the target outcome.
    Forbidden,
}

impl core::fmt::Display for Expect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Expect::Allowed => "allowed",
            Expect::Forbidden => "forbidden",
        })
    }
}

/// A conjunction of constraints `read #index == value` over the program's
/// reads in `(thread, po)` order (RMW reads included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target(pub Vec<(usize, Value)>);

impl Target {
    /// True iff `reads` satisfies every constraint.
    ///
    /// # Panics
    ///
    /// Panics if a constraint index is out of bounds for `reads`.
    pub fn matches(&self, reads: &[Value]) -> bool {
        self.0.iter().all(|&(i, v)| reads[i] == v)
    }
}

impl core::fmt::Display for Target {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|(i, v)| format!("r{i}={v}")).collect();
        f.write_str(&parts.join(" ∧ "))
    }
}

/// A named litmus test with its expected verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Litmus {
    /// Short name, e.g. `"SB"` or `"dekker-wr type-2"`.
    pub name: String,
    /// One-line description of what the test demonstrates.
    pub description: String,
    /// The program.
    pub program: Program,
    /// The interesting outcome.
    pub target: Target,
    /// Whether the model should allow the target.
    pub expect: Expect,
}

/// Result of checking one litmus test against the model.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// The test name.
    pub name: String,
    /// What the model said: was the target outcome observed among valid
    /// executions?
    pub observed_allowed: bool,
    /// What was expected.
    pub expect: Expect,
    /// `observed == expected`.
    pub passed: bool,
    /// When the target outcome was observed, the valid execution exhibiting
    /// it — `rf`, `ws`, and resolved read values. `None` exactly when
    /// `observed_allowed` is false (non-observation has no single-execution
    /// witness). In particular, a **failed** `Forbidden` expectation always
    /// carries the counterexample execution.
    pub witness: Option<CandidateExecution>,
    /// Stats of the model search behind this verdict. On a cache hit the
    /// numbers are *attributed* — the search ran once, when the program's
    /// canonical class was first proven.
    pub model_stats: SearchStats,
    /// True when the verdict was served from the memoized outcome-set
    /// cache (no model search ran for this call).
    pub cache_hit: bool,
    /// True when the verdict-cache miss was answered by replaying a
    /// prefix certificate from an atomicity sibling instead of searching
    /// (`tso_model::prefix`). Always false on a cache hit.
    pub prefix_hit: bool,
    /// True when the search behind this verdict fanned out across pool
    /// workers (the adaptive engine chose to split). Always false on a
    /// cache or prefix hit.
    pub split: bool,
    /// True when the verdict is *inconclusive*: the model search hit an
    /// installed [`tso_model::SearchBudget`] and the target outcome was
    /// not among the (sound but possibly incomplete) outcomes it did
    /// prove. An unknown check reports `passed: true` — a truncated
    /// search can make verdicts go missing, never wrong. When the target
    /// *was* observed the verdict is conclusive even under a budget
    /// (every yielded execution is genuinely valid), so `unknown` stays
    /// false and a failed `Forbidden` expectation still fails.
    pub unknown: bool,
}

impl CheckResult {
    /// Human-readable verdict, including the witness execution (its `rf`,
    /// `ws`, and read values) whenever the target outcome was observed.
    pub fn report(&self) -> String {
        let mut s = format!(
            "{}: expected {}, model observed allowed={} — {}",
            self.name,
            self.expect,
            self.observed_allowed,
            if self.passed { "pass" } else { "FAIL" }
        );
        if let Some(w) = &self.witness {
            s.push_str(&format!(
                "\nwitness execution (reads = {:?}):\n{}",
                w.read_values(),
                w.pretty()
            ));
        }
        s
    }
}

impl Litmus {
    /// Runs the axiomatic model and compares against the expectation.
    ///
    /// The verdict rides on the **memoized** outcome-set cache
    /// ([`allowed_outcomes_cached`]): the program is canonicalized under
    /// thread- and address-renaming, its full allowed-outcome set is
    /// proven once per equivalence class (on the parallel root-split
    /// search when cores are available), and the target is tested against
    /// that set. Checking the same program again — or any of its permuted
    /// siblings, or its `with_atomicity` rewrites when it has no RMWs —
    /// costs a lookup, not a search. When the target is observed, a
    /// concrete witness execution is recovered with an early-exit
    /// [`find_execution`] and kept as [`CheckResult::witness`].
    pub fn check(&self) -> CheckResult {
        let cached = allowed_outcomes_cached(&self.program);
        let observed_allowed = cached
            .outcomes
            .iter()
            .any(|o| self.target.matches(&o.read_values()));
        let witness = if observed_allowed {
            Some(
                find_execution(&self.program, |reads| self.target.matches(reads))
                    .expect("an observed outcome has a witness execution"),
            )
        } else {
            None
        };
        // Budget-truncated outcome sets are sound subsets: observation is
        // conclusive, non-observation is not (see `CheckResult::unknown`).
        let unknown = cached.unknown && !observed_allowed;
        let passed = unknown
            || match self.expect {
                Expect::Allowed => observed_allowed,
                Expect::Forbidden => !observed_allowed,
            };
        CheckResult {
            name: self.name.clone(),
            observed_allowed,
            expect: self.expect,
            passed,
            witness,
            model_stats: cached.stats,
            cache_hit: cached.hit,
            prefix_hit: cached.prefix_hit,
            split: cached.split,
            unknown,
        }
    }
}

/// Runs every test and returns the failures (empty = all passed).
pub fn run_all(tests: &[Litmus]) -> Vec<CheckResult> {
    tests
        .iter()
        .map(Litmus::check)
        .filter(|r| !r.passed)
        .collect()
}

/// One row of the paper's Table 1: which idioms work with which atomicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Which atomicity definition this row describes.
    pub atomicity: Atomicity,
    /// Dekker's with reads replaced by RMWs works?
    pub dekker_reads: bool,
    /// Dekker's with writes replaced by RMWs works?
    pub dekker_writes: bool,
    /// Dekker's with RMWs as barriers (different addresses) works?
    pub rmws_as_barriers: bool,
}

/// Recomputes the hardware-idiom columns of the paper's Table 1 from the
/// model (the C/C++11 columns live in the `cc11` crate).
///
/// An idiom "works" when the bad outcome (mutual exclusion failure) is
/// *forbidden* by the model.
pub fn table1() -> Vec<Table1Row> {
    Atomicity::ALL
        .iter()
        .map(|&a| Table1Row {
            atomicity: a,
            dekker_reads: !observed(paper::dekker_read_replacement(a)),
            dekker_writes: !observed(paper::dekker_write_replacement(a)),
            rmws_as_barriers: !observed(paper::dekker_rmw_barriers_diff_addr(a)),
        })
        .collect()
}

fn observed(l: Litmus) -> bool {
    allowed_outcomes_cached(&l.program)
        .outcomes
        .iter()
        .any(|o| l.target.matches(&o.read_values()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_matching() {
        let t = Target(vec![(0, 1), (2, 0)]);
        assert!(t.matches(&[1, 9, 0]));
        assert!(!t.matches(&[0, 9, 0]));
        assert_eq!(t.to_string(), "r0=1 ∧ r2=0");
    }

    #[test]
    fn expect_display() {
        assert_eq!(Expect::Allowed.to_string(), "allowed");
        assert_eq!(Expect::Forbidden.to_string(), "forbidden");
    }

    #[test]
    fn run_all_reports_only_failures() {
        let ok = classic::sb();
        let failures = run_all(&[ok]);
        assert!(failures.is_empty());
    }

    #[test]
    fn check_attaches_a_witness_exactly_when_observed() {
        // Allowed + observed: SB carries a witness matching the target.
        let sb = classic::sb();
        let r = sb.check();
        assert!(r.passed && r.observed_allowed);
        let w = r
            .witness
            .as_ref()
            .expect("observed outcome must carry a witness");
        assert!(sb.target.matches(&w.read_values()));
        assert!(r.report().contains("witness execution"));
        assert!(r.report().contains("rf:"), "witness report shows rf edges");

        // Forbidden + not observed: no witness, report has no execution.
        let mp = classic::mp();
        let r = mp.check();
        assert!(r.passed && !r.observed_allowed);
        assert!(r.witness.is_none());
        assert!(!r.report().contains("witness execution"));

        // A *failing* Forbidden expectation carries the counterexample.
        let mut broken = classic::sb();
        broken.expect = Expect::Forbidden;
        let r = broken.check();
        assert!(!r.passed);
        let w = r
            .witness
            .as_ref()
            .expect("failure against Forbidden has a counterexample");
        assert_eq!(w.read_values(), vec![0, 0]);
        assert!(r.report().contains("FAIL"));
    }

    #[test]
    fn table1_matches_paper() {
        // Paper Table 1 (hardware idiom columns):
        //            reads-replaced  writes-replaced  barriers(diff addr)
        // type-1:        ✓                ✓                 ✓
        // type-2:        ✓                ✓                 ✗
        // type-3:        ✓                ✗                 ✗
        let rows = table1();
        assert_eq!(rows.len(), 3);
        let t1 = &rows[0];
        assert!(t1.dekker_reads && t1.dekker_writes && t1.rmws_as_barriers);
        let t2 = &rows[1];
        assert!(t2.dekker_reads && t2.dekker_writes && !t2.rmws_as_barriers);
        let t3 = &rows[2];
        assert!(t3.dekker_reads && !t3.dekker_writes && !t3.rmws_as_barriers);
    }
}
