//! Every Dekker scenario of the paper, parameterized by RMW atomicity.
//!
//! The mutual-exclusion failure in Dekker's algorithm is "both threads'
//! final reads see 0" — each test's target encodes that failure, and the
//! expectation follows the paper's Table 1:
//!
//! | scenario                      | type-1 | type-2 | type-3 |
//! |-------------------------------|--------|--------|--------|
//! | reads replaced by RMWs (Fig 4)| works  | works  | works  |
//! | writes replaced (Fig 3)       | works  | works  | fails  |
//! | RMWs as barriers, diff addrs (Fig 5) | works | fails | fails |
//! | RMWs as barriers, same addr (Fig 8)  | works | works | works |
//!
//! "works" = failure outcome forbidden by the model.
//!
//! Figure 10's write-deadlock program is the *same shape* as Fig. 4: the
//! model forbids the both-reads-0 outcome, so a correct implementation must
//! resolve the situation without deadlock — which is what the Bloom-filter
//! mechanism of §3.2 (crate `tso-sim`) provides.

use crate::{Expect, Litmus, Target};
use rmw_types::{Addr, Atomicity, RmwKind};
use tso_model::ProgramBuilder;

const X: Addr = Addr(0);
const Y: Addr = Addr(1);
const Z1: Addr = Addr(2);
const Z2: Addr = Addr(3);

fn expect_works(works: bool) -> Expect {
    if works {
        Expect::Forbidden
    } else {
        Expect::Allowed
    }
}

/// Fig. 4: Dekker's with the *reads* replaced by RMWs:
/// `W x=1; RMW(y) || W y=1; RMW(x)`; failure = both RMW reads see 0.
/// Works for all three atomicity types.
pub fn dekker_read_replacement(atomicity: Atomicity) -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread()
        .write(X, 1)
        .rmw(Y, RmwKind::FetchAndAdd(0), atomicity);
    b.thread()
        .write(Y, 1)
        .rmw(X, RmwKind::FetchAndAdd(0), atomicity);
    Litmus {
        name: format!("dekker-reads-replaced {atomicity}"),
        description: "paper Fig. 4: reads of Dekker's replaced by RMWs".into(),
        program: b.build(),
        target: Target(vec![(0, 0), (1, 0)]),
        expect: expect_works(true),
    }
}

/// Fig. 3: Dekker's with the *writes* replaced by RMWs:
/// `RMW(x); R y || RMW(y); R x`; failure = both plain reads see 0.
/// Works for type-1 and type-2; **fails for type-3** (§2.5).
pub fn dekker_write_replacement(atomicity: Atomicity) -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().rmw(X, RmwKind::TestAndSet, atomicity).read(Y);
    b.thread().rmw(Y, RmwKind::TestAndSet, atomicity).read(X);
    // reads in (thread, po) order: Ra(x)=0, R(y)=1, Ra(y)=2, R(x)=3
    Litmus {
        name: format!("dekker-writes-replaced {atomicity}"),
        description: "paper Fig. 3: writes of Dekker's replaced by RMWs".into(),
        program: b.build(),
        target: Target(vec![(1, 0), (3, 0)]),
        expect: expect_works(atomicity != Atomicity::Type3),
    }
}

/// Fig. 5: RMWs inserted as *barriers* between write and read, accessing
/// **different** addresses `z1`/`z2`. Works only for type-1.
pub fn dekker_rmw_barriers_diff_addr(atomicity: Atomicity) -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread()
        .write(X, 1)
        .rmw(Z1, RmwKind::TestAndSet, atomicity)
        .read(Y);
    b.thread()
        .write(Y, 1)
        .rmw(Z2, RmwKind::TestAndSet, atomicity)
        .read(X);
    // reads: Ra(z1)=0, R(y)=1, Ra(z2)=2, R(x)=3
    Litmus {
        name: format!("dekker-rmw-barriers-diff {atomicity}"),
        description: "paper Fig. 5: RMWs to different addresses used as barriers".into(),
        program: b.build(),
        target: Target(vec![(1, 0), (3, 0)]),
        expect: expect_works(atomicity == Atomicity::Type1),
    }
}

/// Fig. 8: RMWs as barriers accessing the **same** address `z` — forcing
/// the RMWs to synchronize restores correctness for all three types.
pub fn dekker_rmw_barriers_same_addr(atomicity: Atomicity) -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread()
        .write(X, 1)
        .rmw(Z1, RmwKind::FetchAndAdd(1), atomicity)
        .read(Y);
    b.thread()
        .write(Y, 1)
        .rmw(Z1, RmwKind::FetchAndAdd(1), atomicity)
        .read(X);
    Litmus {
        name: format!("dekker-rmw-barriers-same {atomicity}"),
        description: "paper Fig. 8: RMWs to the same address used as barriers".into(),
        program: b.build(),
        target: Target(vec![(1, 0), (3, 0)]),
        expect: expect_works(true),
    }
}

/// Fig. 1(b): plain Dekker's entry (= SB). The failure is allowed without
/// help — this is why Dekker's needs barriers or RMWs on TSO.
pub fn dekker_plain() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).read(Y);
    b.thread().write(Y, 1).read(X);
    Litmus {
        name: "dekker-plain".into(),
        description: "paper Fig. 1(b): unsynchronized Dekker's entry fails on TSO".into(),
        program: b.build(),
        target: Target(vec![(0, 0), (1, 0)]),
        expect: Expect::Allowed,
    }
}

/// Fig. 10: the write-deadlock shape — identical program to Fig. 4. The
/// model forbids the both-reads-0 outcome; §3.2's Bloom filter lets the
/// implementation comply without deadlocking.
pub fn fig10_write_deadlock(atomicity: Atomicity) -> Litmus {
    let mut l = dekker_read_replacement(atomicity);
    l.name = format!("fig10-write-deadlock {atomicity}");
    l.description =
        "paper Fig. 10: cross-locked RMWs; outcome forbidden, implementation must not deadlock"
            .into();
    l
}

/// Fig. 1(d)/1(e) read/write hybrid: one thread replaces its read, the
/// other its write. Works for type-1/type-2 (both sides appear strongly
/// ordered to the synchronizing op); for type-3 the write-replaced side is
/// unprotected, so it fails.
pub fn dekker_hybrid(atomicity: Atomicity) -> Litmus {
    let mut b = ProgramBuilder::new();
    // thread 0: write replaced
    b.thread().rmw(X, RmwKind::TestAndSet, atomicity).read(Y);
    // thread 1: read replaced
    b.thread()
        .write(Y, 1)
        .rmw(X, RmwKind::FetchAndAdd(0), atomicity);
    // reads: Ra(x)=0, R(y)=1, Ra(x)'=2
    // Failure: thread 0 misses thread 1's write (r1 = 0) and thread 1's RMW
    // read misses thread 0's RMW write (r2 = 0).
    Litmus {
        name: format!("dekker-hybrid {atomicity}"),
        description: "one side write-replaced, other side read-replaced, same flag".into(),
        program: b.build(),
        target: Target(vec![(1, 0), (2, 0)]),
        expect: expect_works(true),
    }
}

/// The complete paper corpus across all atomicity types.
pub fn all() -> Vec<Litmus> {
    let mut tests = vec![dekker_plain()];
    for a in Atomicity::ALL {
        tests.push(dekker_read_replacement(a));
        tests.push(dekker_write_replacement(a));
        tests.push(dekker_rmw_barriers_diff_addr(a));
        tests.push(dekker_rmw_barriers_same_addr(a));
        tests.push(fig10_write_deadlock(a));
        tests.push(dekker_hybrid(a));
    }
    tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_all;

    #[test]
    fn every_paper_test_matches_table1() {
        let failures = run_all(&all());
        assert!(
            failures.is_empty(),
            "paper litmus failures: {:?}",
            failures
                .iter()
                .map(|f| format!(
                    "{} (expected {}, observed allowed={})",
                    f.name, f.expect, f.observed_allowed
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn type3_write_replacement_counterexample_exists() {
        // The distinguishing result: type-3 write replacement admits the
        // mutual-exclusion failure (paper §2.5).
        let l = dekker_write_replacement(Atomicity::Type3);
        let r = l.check();
        assert!(r.passed);
        assert!(r.observed_allowed, "failure outcome must be observable");
    }

    #[test]
    fn type2_differs_from_type1_only_on_barrier_idiom() {
        type Mk = fn(Atomicity) -> Litmus;
        let cases: [(Mk, bool); 4] = [
            (dekker_read_replacement, true),
            (dekker_write_replacement, true),
            (dekker_rmw_barriers_same_addr, true),
            (dekker_rmw_barriers_diff_addr, false),
        ];
        for (mk, same) in cases {
            let e1 = mk(Atomicity::Type1).expect;
            let e2 = mk(Atomicity::Type2).expect;
            if same {
                assert_eq!(e1, e2);
            } else {
                assert_ne!(e1, e2);
            }
        }
    }
}
