//! The classic TSO litmus tests, with their textbook verdicts.
//!
//! These validate the base model (paper §2.1) before any RMW extension:
//! TSO allows store-buffering reordering (W→R) and nothing else; it is
//! multi-copy atomic.

use crate::{Expect, Litmus, Target};
use rmw_types::Addr;
use tso_model::ProgramBuilder;

const X: Addr = Addr(0);
const Y: Addr = Addr(1);

/// SB (store buffering): `W x=1; R y || W y=1; R x`.
/// `r(y)=0 ∧ r(x)=0` is **allowed** — the signature TSO relaxation.
pub fn sb() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).read(Y);
    b.thread().write(Y, 1).read(X);
    Litmus {
        name: "SB".into(),
        description: "store buffering: both reads may see 0 on TSO".into(),
        program: b.build(),
        target: Target(vec![(0, 0), (1, 0)]),
        expect: Expect::Allowed,
    }
}

/// SB with fences between write and read on both threads: 0/0 **forbidden**.
pub fn sb_fences() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).fence().read(Y);
    b.thread().write(Y, 1).fence().read(X);
    Litmus {
        name: "SB+mfences".into(),
        description: "store buffering with fences: SC restored".into(),
        program: b.build(),
        target: Target(vec![(0, 0), (1, 0)]),
        expect: Expect::Forbidden,
    }
}

/// MP (message passing): `W x=1; W y=1 || R y; R x`.
/// `r(y)=1 ∧ r(x)=0` is **forbidden** on TSO (stores and loads stay ordered).
pub fn mp() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).write(Y, 1);
    b.thread().read(Y).read(X);
    Litmus {
        name: "MP".into(),
        description: "message passing: stale data after flag is forbidden".into(),
        program: b.build(),
        target: Target(vec![(0, 1), (1, 0)]),
        expect: Expect::Forbidden,
    }
}

/// LB (load buffering): `R x; W y=1 || R y; W x=1`.
/// `r(x)=1 ∧ r(y)=1` is **forbidden** on TSO (loads don't pass loads).
pub fn lb() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().read(X).write(Y, 1);
    b.thread().read(Y).write(X, 1);
    Litmus {
        name: "LB".into(),
        description: "load buffering: both loads seeing the other's store is forbidden".into(),
        program: b.build(),
        target: Target(vec![(0, 1), (1, 1)]),
        expect: Expect::Forbidden,
    }
}

/// R: `W x=1; W y=1 || W y=2; R x`. Outcome `y=1 final ∧ r(x)=0` is
/// forbidden on TSO. We phrase it through the read plus final memory via a
/// read of y on a third... simplified: target `r(x)=0` with `ws: y: 2 then 1`
/// is not directly expressible as a read target, so we use the variant with
/// an observer read of y.
pub fn r_variant() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).write(Y, 1);
    b.thread().write(Y, 2).read(Y).read(X);
    // If thread 1's read of y sees 1 (its own write 2 overwritten by W y=1
    // serialized before... actually: r(y)=1 means W y=1 is ws-after W y=2),
    // then r(x)=0 is forbidden: W x=1 precedes W y=1 in ppo.
    Litmus {
        name: "R+po".into(),
        description: "write serialization into y orders the writer's earlier store".into(),
        program: b.build(),
        target: Target(vec![(0, 1), (1, 0)]),
        expect: Expect::Forbidden,
    }
}

/// 2+2W: `W x=1; W y=2 || W y=1; W x=2` with observers is heavyweight; the
/// standard forbidden shape on TSO is a `ws` cycle, tested via final memory
/// in the model's unit tests. Here we provide the read-based variant:
/// each thread reads the other's first location last.
pub fn two_plus_two_w() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).write(Y, 2).read(Y);
    b.thread().write(Y, 1).write(X, 2).read(X);
    // r0(y)=1 requires W y=1 ws-after W y=2; r1(x)=1 requires W x=1 ws-after
    // W x=2. Combined with ppo W→W both ways this is a ghb cycle: forbidden.
    Litmus {
        name: "2+2W+reads".into(),
        description: "cyclic write serialization across two locations is forbidden".into(),
        program: b.build(),
        target: Target(vec![(0, 1), (1, 1)]),
        expect: Expect::Forbidden,
    }
}

/// IRIW (independent reads of independent writes): writers `W x=1` and
/// `W y=1`; two readers disagree on the order. Forbidden on TSO
/// (multi-copy atomicity) *when reads are ordered*, which they are on TSO.
pub fn iriw() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1);
    b.thread().write(Y, 1);
    b.thread().read(X).read(Y);
    b.thread().read(Y).read(X);
    Litmus {
        name: "IRIW".into(),
        description: "readers must agree on the order of independent writes".into(),
        program: b.build(),
        target: Target(vec![(0, 1), (1, 0), (2, 1), (3, 0)]),
        expect: Expect::Forbidden,
    }
}

/// SB with only one fence: 0/0 still **allowed** (one unfenced W→R pair
/// suffices to reorder).
pub fn sb_one_fence() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).fence().read(Y);
    b.thread().write(Y, 1).read(X);
    Litmus {
        name: "SB+mfence-one-side".into(),
        description: "a single fence does not forbid SB's relaxed outcome".into(),
        program: b.build(),
        target: Target(vec![(0, 0), (1, 0)]),
        expect: Expect::Allowed,
    }
}

/// CoRR: same-location read-read coherence. A thread reading `x` twice must
/// not see the new value then the old one.
pub fn corr() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1);
    b.thread().read(X).read(X);
    Litmus {
        name: "CoRR".into(),
        description: "same-location reads cannot go backwards in coherence".into(),
        program: b.build(),
        target: Target(vec![(0, 1), (1, 0)]),
        expect: Expect::Forbidden,
    }
}

/// CoWR: a thread that wrote `x` and reads it without intervening writes
/// must not see an older value... but *can* see its own buffered write
/// early. Reading a foreign value that is coherence-older than its own
/// write is forbidden.
pub fn cowr() -> Litmus {
    let mut b = ProgramBuilder::new();
    b.thread().write(X, 1).read(X);
    b.thread().write(X, 2);
    Litmus {
        name: "CoWR".into(),
        description:
            "a writer's read of the same location cannot see values older than its own write".into(),
        program: b.build(),
        target: Target(vec![(0, 0)]),
        expect: Expect::Forbidden,
    }
}

/// The full classic corpus.
pub fn all() -> Vec<Litmus> {
    vec![
        sb(),
        sb_fences(),
        sb_one_fence(),
        mp(),
        lb(),
        r_variant(),
        two_plus_two_w(),
        iriw(),
        corr(),
        cowr(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_classic_test_passes() {
        for t in all() {
            let r = t.check();
            assert!(
                r.passed,
                "{}: expected {}, model observed allowed={}",
                r.name, r.expect, r.observed_allowed
            );
        }
    }

    #[test]
    fn corpus_has_distinct_names() {
        let tests = all();
        let mut names: Vec<&str> = tests.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
