//! A diy/litmus7-inspired text format for litmus tests, with a
//! pretty-printer and parser that are exact inverses of each other.
//!
//! The format is line-oriented:
//!
//! ```text
//! litmus "SB"
//! desc "store buffering: both reads may see 0 on TSO"
//! thread P0:
//!   w x 1
//!   r y
//! thread P1:
//!   w y 1
//!   r x
//! exists r0=0 /\ r1=0
//! expect allowed
//! ```
//!
//! * `litmus "NAME"` / `desc "TEXT"` — quoted strings with `\"`, `\\`,
//!   `\n`, `\r`, and `\t` escapes;
//! * `thread Pk:` — threads must appear as `P0, P1, ...` in order, each
//!   followed by one two-space-indented instruction per line:
//!   `r <loc>`, `w <loc> <val>`, `rmw <loc> <kind> <atomicity>`, `fence`.
//!   Locations use the conventional litmus names (`x y z a b c`, `locN`
//!   beyond); RMW kinds are spelled as their [`RmwKind`] display form
//!   (`TAS`, `FAA(k)`, `CAS(e,n)`, `XCHG(v)`); atomicities are `type-1`,
//!   `type-2`, `type-3`;
//! * `exists` — the target outcome, a conjunction `rI=V /\ rJ=W /\ ...`
//!   over global read indices in `(thread, po)` order (RMW reads
//!   included), or the literal `true` for the empty conjunction;
//! * `expect allowed` / `expect forbidden` — the verdict.
//!
//! **Round-trip guarantees** (enforced by tests over the whole classic and
//! paper corpora, and property-tested over generated corpora):
//! `parse(print(t)) == t` for every test `t`, and `print(parse(s)) == s`
//! for every string `s` the printer emits — i.e. printed tests survive a
//! parse byte-for-byte.
//!
//! [`RmwKind`]: rmw_types::RmwKind

use crate::{Expect, Litmus, Target};
use rmw_types::{Addr, Atomicity, RmwKind, Value};
use tso_model::{Instr, Program};

/// A parse failure, with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the parsed string.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape(s: &str) -> String {
    // Newline/CR/tab must be escaped too: the format is line-oriented, so a
    // raw control character in a name would split the quoted header across
    // lines and break the parse∘print identity.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str, line: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                other => return err(line, format!("bad escape: \\{other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Renders an address with the conventional litmus location names.
fn loc(a: Addr) -> String {
    a.name()
}

fn instr_line(i: Instr) -> String {
    match i {
        Instr::Read(a) => format!("  r {}", loc(a)),
        Instr::Write(a, v) => format!("  w {} {v}", loc(a)),
        Instr::Rmw {
            addr,
            kind,
            atomicity,
        } => format!("  rmw {} {kind} {atomicity}", loc(addr)),
        Instr::Fence => "  fence".to_owned(),
    }
}

/// Pretty-prints one litmus test in the text format. The output always ends
/// with a newline and never contains blank lines, so tests can be
/// concatenated with one blank separator line (see [`print_corpus`]).
pub fn print(l: &Litmus) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "litmus \"{}\"", escape(&l.name));
    let _ = writeln!(s, "desc \"{}\"", escape(&l.description));
    for (tid, instrs) in l.program.iter() {
        let _ = writeln!(s, "thread {tid}:");
        for &i in instrs {
            let _ = writeln!(s, "{}", instr_line(i));
        }
    }
    let target = if l.target.0.is_empty() {
        "true".to_owned()
    } else {
        l.target
            .0
            .iter()
            .map(|(i, v)| format!("r{i}={v}"))
            .collect::<Vec<_>>()
            .join(" /\\ ")
    };
    let _ = writeln!(s, "exists {target}");
    let _ = writeln!(s, "expect {}", l.expect);
    s
}

/// Prints a corpus as blank-line-separated tests.
pub fn print_corpus(tests: &[Litmus]) -> String {
    tests.iter().map(print).collect::<Vec<_>>().join("\n")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_loc(tok: &str, line: usize) -> Result<Addr, ParseError> {
    const NAMES: [&str; 6] = ["x", "y", "z", "a", "b", "c"];
    if let Some(i) = NAMES.iter().position(|&n| n == tok) {
        return Ok(Addr(i as u64));
    }
    if let Some(n) = tok.strip_prefix("loc") {
        if let Ok(v) = n.parse::<u64>() {
            return Ok(Addr(v));
        }
    }
    err(line, format!("unknown location {tok:?}"))
}

fn parse_value(tok: &str, line: usize) -> Result<Value, ParseError> {
    tok.parse::<Value>().map_err(|_| ParseError {
        line,
        msg: format!("bad value {tok:?}"),
    })
}

fn parse_rmw_kind(tok: &str, line: usize) -> Result<RmwKind, ParseError> {
    if tok == "TAS" {
        return Ok(RmwKind::TestAndSet);
    }
    let args_of = |prefix: &str| -> Option<&str> {
        tok.strip_prefix(prefix)?
            .strip_prefix('(')?
            .strip_suffix(')')
    };
    if let Some(a) = args_of("FAA") {
        return Ok(RmwKind::FetchAndAdd(parse_value(a, line)?));
    }
    if let Some(a) = args_of("XCHG") {
        return Ok(RmwKind::Exchange(parse_value(a, line)?));
    }
    if let Some(a) = args_of("CAS") {
        if let Some((e, n)) = a.split_once(',') {
            return Ok(RmwKind::CompareAndSwap {
                expected: parse_value(e, line)?,
                new: parse_value(n, line)?,
            });
        }
    }
    err(line, format!("unknown RMW kind {tok:?}"))
}

fn parse_atomicity(tok: &str, line: usize) -> Result<Atomicity, ParseError> {
    match tok {
        "type-1" => Ok(Atomicity::Type1),
        "type-2" => Ok(Atomicity::Type2),
        "type-3" => Ok(Atomicity::Type3),
        _ => err(line, format!("unknown atomicity {tok:?}")),
    }
}

fn parse_instr(body: &str, line: usize) -> Result<Instr, ParseError> {
    let toks: Vec<&str> = body.split_whitespace().collect();
    match toks.as_slice() {
        ["r", l] => Ok(Instr::Read(parse_loc(l, line)?)),
        ["w", l, v] => Ok(Instr::Write(parse_loc(l, line)?, parse_value(v, line)?)),
        ["rmw", l, k, a] => Ok(Instr::Rmw {
            addr: parse_loc(l, line)?,
            kind: parse_rmw_kind(k, line)?,
            atomicity: parse_atomicity(a, line)?,
        }),
        ["fence"] => Ok(Instr::Fence),
        _ => err(line, format!("unparseable instruction {body:?}")),
    }
}

/// Parses a `"..."` string (the whole remainder of a header line).
fn parse_quoted(rest: &str, line: usize) -> Result<String, ParseError> {
    let inner = rest
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or(ParseError {
            line,
            msg: format!("expected a quoted string, got {rest:?}"),
        })?;
    // Reject an interior unescaped quote (e.g. `"a" trailing "b"`).
    let mut prev_backslash = false;
    for c in inner.chars() {
        if c == '"' && !prev_backslash {
            return err(line, "unescaped quote inside string");
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    unescape(inner, line)
}

fn parse_target(rest: &str, line: usize) -> Result<Target, ParseError> {
    if rest == "true" {
        return Ok(Target(Vec::new()));
    }
    let mut constraints = Vec::new();
    for part in rest.split(" /\\ ") {
        let Some((idx, val)) = part.split_once('=') else {
            return err(line, format!("bad constraint {part:?}"));
        };
        let Some(idx) = idx.strip_prefix('r') else {
            return err(line, format!("constraint must start with r: {part:?}"));
        };
        let idx: usize = idx.parse().map_err(|_| ParseError {
            line,
            msg: format!("bad read index in {part:?}"),
        })?;
        constraints.push((idx, parse_value(val, line)?));
    }
    Ok(Target(constraints))
}

/// Parses one litmus test. Leading/trailing blank lines are ignored;
/// everything else must follow the grammar in the module docs.
pub fn parse(input: &str) -> Result<Litmus, ParseError> {
    let mut name = None;
    let mut desc = None;
    let mut threads: Vec<Vec<Instr>> = Vec::new();
    let mut target = None;
    let mut expect = None;

    for (ln, raw) in input.lines().enumerate() {
        let line = ln + 1;
        if raw.trim().is_empty() {
            continue;
        }
        if let Some(body) = raw.strip_prefix("  ") {
            let Some(current) = threads.last_mut() else {
                return err(line, "instruction before any thread header");
            };
            if target.is_some() {
                return err(line, "instruction after the exists clause");
            }
            current.push(parse_instr(body, line)?);
        } else if let Some(rest) = raw.strip_prefix("litmus ") {
            if name.replace(parse_quoted(rest, line)?).is_some() {
                return err(line, "duplicate litmus header");
            }
        } else if let Some(rest) = raw.strip_prefix("desc ") {
            if desc.replace(parse_quoted(rest, line)?).is_some() {
                return err(line, "duplicate desc header");
            }
        } else if let Some(rest) = raw.strip_prefix("thread ") {
            let Some(id) = rest.strip_suffix(':') else {
                return err(line, "thread header must end with ':'");
            };
            let expected = format!("P{}", threads.len());
            if id != expected {
                return err(line, format!("expected thread {expected}, got {id}"));
            }
            threads.push(Vec::new());
        } else if let Some(rest) = raw.strip_prefix("exists ") {
            if target.replace(parse_target(rest, line)?).is_some() {
                return err(line, "duplicate exists clause");
            }
        } else if let Some(rest) = raw.strip_prefix("expect ") {
            let e = match rest {
                "allowed" => Expect::Allowed,
                "forbidden" => Expect::Forbidden,
                _ => {
                    return err(
                        line,
                        format!("expect must be allowed|forbidden, got {rest:?}"),
                    )
                }
            };
            if expect.replace(e).is_some() {
                return err(line, "duplicate expect clause");
            }
        } else {
            return err(line, format!("unrecognized line {raw:?}"));
        }
    }

    let last = input.lines().count();
    let Some(name) = name else {
        return err(last, "missing litmus header");
    };
    let Some(target) = target else {
        return err(last, "missing exists clause");
    };
    let Some(expect) = expect else {
        return err(last, "missing expect clause");
    };
    let mut program = Program::new();
    for t in threads {
        program.add_thread(t);
    }
    let num_reads = program.num_reads();
    if let Some(&(idx, _)) = target.0.iter().find(|&&(i, _)| i >= num_reads) {
        return err(
            last,
            format!("exists references read r{idx}, but the program has {num_reads} reads"),
        );
    }
    Ok(Litmus {
        name,
        description: desc.unwrap_or_default(),
        program,
        target,
        expect,
    })
}

/// Parses a blank-line-separated corpus (the inverse of [`print_corpus`]).
/// Tests are delimited by their `litmus` header lines.
pub fn parse_corpus(input: &str) -> Result<Vec<Litmus>, ParseError> {
    let mut blocks: Vec<(usize, String)> = Vec::new();
    for (ln, raw) in input.lines().enumerate() {
        if raw.starts_with("litmus ") {
            blocks.push((ln, String::new()));
        }
        if let Some((_, block)) = blocks.last_mut() {
            block.push_str(raw);
            block.push('\n');
        } else if !raw.trim().is_empty() {
            return err(ln + 1, "content before the first litmus header");
        }
    }
    blocks
        .into_iter()
        .map(|(offset, block)| {
            parse(&block).map_err(|e| ParseError {
                line: e.line + offset,
                msg: e.msg,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classic, paper};

    fn round_trip(t: &Litmus) {
        let printed = print(t);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", t.name));
        assert_eq!(&reparsed, t, "structural round trip for {}", t.name);
        assert_eq!(
            print(&reparsed),
            printed,
            "byte-for-byte round trip for {}",
            t.name
        );
    }

    #[test]
    fn classic_corpus_round_trips() {
        for t in classic::all() {
            round_trip(&t);
        }
    }

    #[test]
    fn paper_corpus_round_trips() {
        for t in paper::all() {
            round_trip(&t);
        }
    }

    #[test]
    fn generated_families_round_trip() {
        // Every generated family instance — including the zoo idiom
        // shapes, whose names carry an atomicity suffix and whose targets
        // span RMW reads — must survive print∘parse byte-for-byte. The
        // random tail is a small sample (the families are the point; the
        // random generator's output is structurally covered by them).
        for t in crate::gen::generated_corpus(crate::gen::DEFAULT_SEED, 8) {
            round_trip(&t);
        }
    }

    #[test]
    fn corpus_printing_round_trips() {
        let tests: Vec<Litmus> = classic::all().into_iter().chain(paper::all()).collect();
        let printed = print_corpus(&tests);
        let reparsed = parse_corpus(&printed).expect("corpus parses");
        assert_eq!(reparsed, tests);
        assert_eq!(print_corpus(&reparsed), printed);
    }

    #[test]
    fn printed_sb_matches_the_documented_grammar() {
        let s = print(&classic::sb());
        let expect = "litmus \"SB\"\n\
             desc \"store buffering: both reads may see 0 on TSO\"\n\
             thread P0:\n  w x 1\n  r y\n\
             thread P1:\n  w y 1\n  r x\n\
             exists r0=0 /\\ r1=0\n\
             expect allowed\n";
        assert_eq!(s, expect);
    }

    #[test]
    fn all_instruction_forms_round_trip() {
        let src = "litmus \"kinds\"\n\
             desc \"every instruction and RMW kind\"\n\
             thread P0:\n  w x 1\n  fence\n  r y\n\
             thread P1:\n  rmw x TAS type-1\n  rmw y FAA(2) type-2\n\
             thread P2:\n  rmw z CAS(0,5) type-3\n  rmw loc9 XCHG(7) type-1\n\
             exists r2=1\n\
             expect forbidden\n";
        let t = parse(src).expect("parses");
        assert_eq!(print(&t), src);
        assert_eq!(t.program.num_threads(), 3);
        assert_eq!(t.program.num_reads(), 5);
    }

    #[test]
    fn empty_target_prints_as_true() {
        let src =
            "litmus \"noreads\"\ndesc \"\"\nthread P0:\n  w x 1\nexists true\nexpect allowed\n";
        let t = parse(src).expect("parses");
        assert!(t.target.0.is_empty());
        assert_eq!(print(&t), src);
    }

    #[test]
    fn names_with_quotes_and_backslashes_round_trip() {
        let mut t = classic::sb();
        t.name = "odd \"name\" with \\ in it".into();
        t.description = String::new();
        round_trip(&t);
    }

    #[test]
    fn names_with_control_characters_round_trip() {
        // A raw newline in a name must not split the quoted header line.
        let mut t = classic::sb();
        t.name = "multi\nline\tname\r".into();
        t.description = "desc with\nnewline".into();
        let printed = print(&t);
        assert!(
            printed.lines().next().unwrap().ends_with('"'),
            "header stays on one line: {printed:?}"
        );
        round_trip(&t);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: [(&str, usize, &str); 6] = [
            ("litmus \"a\"\nbogus line\n", 2, "unrecognized"),
            ("litmus \"a\"\n  r x\n", 2, "before any thread"),
            ("litmus \"a\"\nthread P1:\n", 2, "expected thread P0"),
            ("litmus \"a\"\nexists r0=zebra\n", 2, "bad value"),
            (
                "litmus \"a\"\nthread P0:\n  rmw x TAS type-9\n",
                3,
                "unknown atomicity",
            ),
            (
                "litmus \"a\"\nthread P0:\n  r x\nexists r5=0\nexpect allowed\n",
                5,
                "references read r5",
            ),
        ];
        for (src, line, needle) in cases {
            let e = parse(src).expect_err(src);
            assert_eq!(e.line, line, "{src:?} -> {e}");
            assert!(e.to_string().contains(needle), "{src:?} -> {e}");
        }
    }

    #[test]
    fn missing_sections_are_rejected() {
        assert!(parse("desc \"x\"\nexists true\nexpect allowed\n").is_err());
        assert!(parse("litmus \"a\"\nexpect allowed\n").is_err());
        assert!(parse("litmus \"a\"\nexists true\n").is_err());
    }
}
