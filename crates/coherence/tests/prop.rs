//! Property tests: the MOESI invariants hold under arbitrary access
//! sequences, including lock/unlock interleavings.

use coherence::{CoherenceConfig, CoherenceSystem, Denied, LockKind};
use proptest::prelude::*;
use rmw_types::CacheLine;

#[derive(Debug, Clone)]
enum Op {
    Read(usize, u64),
    Write(usize, u64),
    LockLocal(usize, u64),
    LockDir(usize, u64),
    Unlock(usize, u64),
}

fn arb_op(cores: usize, lines: u64) -> impl Strategy<Value = Op> {
    let c = 0..cores;
    let l = 0..lines;
    prop_oneof![
        (c.clone(), l.clone()).prop_map(|(c, l)| Op::Read(c, l)),
        (c.clone(), l.clone()).prop_map(|(c, l)| Op::Write(c, l)),
        (c.clone(), l.clone()).prop_map(|(c, l)| Op::LockLocal(c, l)),
        (c.clone(), l.clone()).prop_map(|(c, l)| Op::LockDir(c, l)),
        (c, l).prop_map(|(c, l)| Op::Unlock(c, l)),
    ]
}

fn line(i: u64) -> CacheLine {
    CacheLine(i * 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-writer / single-owner invariants survive arbitrary op mixes.
    /// Locks are only taken when the precondition holds (as the simulator
    /// guarantees), and every access either succeeds or is denied by a
    /// lock — never corrupts state.
    #[test]
    fn invariants_hold_under_random_traffic(
        ops in proptest::collection::vec(arb_op(4, 3), 1..200),
    ) {
        let mut sys = CoherenceSystem::new(CoherenceConfig::small(4));
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                Op::Read(c, l) => { let _ = sys.read(c, line(l), now); }
                Op::Write(c, l) => { let _ = sys.write(c, line(l), now); }
                Op::LockLocal(c, l) => {
                    // acquire permission first, as the simulator does
                    if sys.lock_of(line(l)).is_none() && sys.write(c, line(l), now).is_ok() {
                        sys.lock(c, line(l), LockKind::Local).unwrap();
                    }
                }
                Op::LockDir(c, l) => {
                    if sys.lock_of(line(l)).is_none() && sys.read(c, line(l), now).is_ok() {
                        sys.lock(c, line(l), LockKind::Directory).unwrap();
                    }
                }
                Op::Unlock(c, l) => {
                    if sys.lock_of(line(l)).map(|k| k.holder) == Some(c) {
                        sys.unlock(c, line(l));
                    }
                }
            }
            prop_assert!(sys.check_invariants().is_ok(), "{:?}", sys.check_invariants());
        }
    }

    /// Latency is monotone in time: an access issued later never completes
    /// earlier (the model is memoryless in `now`).
    #[test]
    fn completion_monotone_in_issue_time(
        core in 0usize..4,
        l in 0u64..3,
        t1 in 0u64..1000,
        dt in 1u64..1000,
    ) {
        let base = {
            let mut s = CoherenceSystem::new(CoherenceConfig::small(4));
            s.read(core, line(l), t1).unwrap().done_at - t1
        };
        let later = {
            let mut s = CoherenceSystem::new(CoherenceConfig::small(4));
            s.read(core, line(l), t1 + dt).unwrap().done_at - (t1 + dt)
        };
        prop_assert_eq!(base, later);
    }

    /// A denied access leaves all per-line states unchanged.
    #[test]
    fn denial_is_side_effect_free(
        reader in 0usize..4,
        intruder in 0usize..4,
        l in 0u64..2,
    ) {
        prop_assume!(reader != intruder);
        let mut s = CoherenceSystem::new(CoherenceConfig::small(4));
        s.write(reader, line(l), 0).unwrap();
        s.lock(reader, line(l), LockKind::Local).unwrap();
        let before: Vec<_> = (0..4).map(|c| s.state_of(c, line(l))).collect();
        let r = s.write(intruder, line(l), 10);
        prop_assert_eq!(r, Err(Denied::LockedBy(reader)));
        let after: Vec<_> = (0..4).map(|c| s.state_of(c, line(l))).collect();
        prop_assert_eq!(before, after);
    }
}
