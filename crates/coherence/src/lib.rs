//! MOESI distributed-directory coherence over the mesh, with the line
//! locking mechanisms of the paper's RMW implementations (§3.1–3.3).
//!
//! The model is *transaction-level*: each access resolves immediately into
//! a protocol outcome (hit / forward / memory fetch / upgrade) whose
//! **latency** is composed from L1/L2/memory access times and mesh
//! traversals, and whose **state transitions** are applied atomically. This
//! preserves exactly the timing structure the paper's claims rest on —
//! write-buffer drains cost serialized coherence transactions, RMW reads to
//! shared lines cost invalidation round-trips, and type-3's directory
//! locking avoids those invalidations — without simulating individual
//! protocol races (which GEM5 does but the paper does not measure).
//!
//! Two lock flavors (paper §3.2–3.3):
//!
//! * [`LockKind::Local`] — the line is locked in the holder's L1 after
//!   acquiring read/write permission (type-1/2 RMWs, and type-3 when the
//!   holder already owns the line). All other cores' coherence requests to
//!   the line are **denied** until unlock.
//! * [`LockKind::Directory`] — the line is locked at its home directory in
//!   shared state (type-3 RMWs): other cores may keep *reading* their S
//!   copies (type-3 atomicity permits reads between `Ra` and `Wa`), but any
//!   request that needs the directory (misses, upgrades, other RMWs) is
//!   denied.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use interconnect::{Cycle, Mesh, MeshConfig};
use rmw_types::fasthash::FastHashMap;
use rmw_types::CacheLine;

/// Per-core MOESI state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineState {
    /// Modified: sole valid copy, dirty.
    M,
    /// Owned: dirty, shared with S copies; this core supplies data.
    O,
    /// Exclusive: sole valid copy, clean.
    E,
    /// Shared: clean copy, possibly many.
    S,
    /// Invalid.
    #[default]
    I,
}

impl LineState {
    /// Valid (readable) states.
    pub fn is_valid(self) -> bool {
        self != LineState::I
    }

    /// States granting write permission without a coherence transaction.
    pub fn is_writable(self) -> bool {
        matches!(self, LineState::M | LineState::E)
    }

    /// States that make this core the designated data supplier.
    pub fn is_owner(self) -> bool {
        matches!(self, LineState::M | LineState::O | LineState::E)
    }
}

/// Which locking protocol holds a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Locked in the holder's L1 (holder has exclusive permission).
    Local,
    /// Locked at the home directory (holder has read permission; other
    /// S copies remain readable).
    Directory,
}

/// An active line lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineLock {
    /// The locking core.
    pub holder: usize,
    /// The protocol flavor.
    pub kind: LockKind,
}

/// Why an access could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Denied {
    /// The line is locked by another core's in-flight RMW; retry after it
    /// unlocks. Carries the holder for deadlock diagnosis.
    LockedBy(usize),
}

/// Timing/protocol outcome of a successful access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the access completes.
    pub done_at: Cycle,
    /// True if serviced entirely by the local L1.
    pub hit: bool,
    /// Number of invalidations sent to other cores.
    pub invalidations: usize,
    /// True if the line had to come from memory (cold miss).
    pub from_memory: bool,
}

/// Latency and geometry parameters (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceConfig {
    /// Number of cores (= L2 banks = directory slices).
    pub num_cores: usize,
    /// L1 access latency (paper: 2 cycles).
    pub l1_latency: Cycle,
    /// L2 bank access latency (paper: 6 cycles).
    pub l2_latency: Cycle,
    /// Main-memory latency (paper: 300 cycles).
    pub memory_latency: Cycle,
    /// The NoC the protocol messages travel on.
    pub mesh: MeshConfig,
}

impl CoherenceConfig {
    /// The paper's Table 2 configuration.
    pub fn paper_table2() -> Self {
        CoherenceConfig {
            num_cores: 32,
            l1_latency: 2,
            l2_latency: 6,
            memory_latency: 300,
            mesh: MeshConfig::paper_32(),
        }
    }

    /// A small 4-core configuration for tests.
    pub fn small(num_cores: usize) -> Self {
        CoherenceConfig {
            num_cores,
            l1_latency: 2,
            l2_latency: 6,
            memory_latency: 50,
            mesh: MeshConfig {
                width: num_cores.max(1),
                height: 1,
                link_latency: 1,
                router_latency: 4,
            },
        }
    }
}

/// Aggregate protocol statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoherenceStats {
    /// L1 hits.
    pub hits: u64,
    /// L1 misses (any cause).
    pub misses: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Cache-to-cache forwards.
    pub forwards: u64,
    /// Cold fetches from memory.
    pub memory_fetches: u64,
    /// Requests denied because the target line was locked.
    pub lock_denials: u64,
}

#[derive(Debug, Clone)]
struct Line {
    /// The unique M/O/E core and its state, if any. MOESI permits at most
    /// one owner per line, so storing it explicitly (instead of a
    /// `num_cores`-wide state slab) keeps per-line memory flat as the
    /// machine scales to 128/256 cores.
    owner: Option<(u32, LineState)>,
    /// Cores holding plain `S` copies, sorted ascending and disjoint from
    /// `owner`. Every other core is implicitly `I`. Write invalidation
    /// walks this set — O(sharers), not O(num_cores).
    sharers: Vec<u32>,
    lock: Option<LineLock>,
    /// Whether the line has ever been brought on-chip (false ⇒ next access
    /// pays the memory latency).
    on_chip: bool,
}

impl Line {
    fn new() -> Self {
        Line {
            owner: None,
            sharers: Vec::new(),
            lock: None,
            on_chip: false,
        }
    }

    fn state_of(&self, core: usize) -> LineState {
        match self.owner {
            Some((c, s)) if c as usize == core => s,
            _ if self.sharers.binary_search(&(core as u32)).is_ok() => LineState::S,
            _ => LineState::I,
        }
    }

    fn add_sharer(&mut self, core: usize) {
        if let Err(at) = self.sharers.binary_search(&(core as u32)) {
            self.sharers.insert(at, core as u32);
        }
    }

    /// Cores other than `core` holding a valid copy.
    fn other_valid(&self, core: usize) -> impl Iterator<Item = usize> + '_ {
        self.owner
            .iter()
            .map(|&(c, _)| c as usize)
            .chain(self.sharers.iter().map(|&c| c as usize))
            .filter(move |&c| c != core)
    }
}

/// Whether `core`'s prospective access is denied by `lock`.
/// `needs_coherence` is true when the access cannot be satisfied from
/// the local L1 (miss or upgrade) and so must consult the directory.
fn denied_by_lock(lock: Option<LineLock>, core: usize, needs_coherence: bool) -> Option<usize> {
    let lock = lock?;
    if lock.holder == core {
        return None;
    }
    match lock.kind {
        // A local lock implies the holder holds the sole valid copy, so
        // any other core's access needs coherence and is denied.
        LockKind::Local => Some(lock.holder),
        // A directory lock only blocks requests that reach the
        // directory; local S-state reads proceed.
        LockKind::Directory => needs_coherence.then_some(lock.holder),
    }
}

/// The coherence system: per-line MOESI state, a home directory slice per
/// core, and the lock table.
#[derive(Debug, Clone)]
pub struct CoherenceSystem {
    config: CoherenceConfig,
    mesh: Mesh,
    lines: FastHashMap<CacheLine, Line>,
    stats: CoherenceStats,
}

impl CoherenceSystem {
    /// Creates a system with all lines invalid everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds the mesh size.
    pub fn new(config: CoherenceConfig) -> Self {
        assert!(config.num_cores > 0, "need at least one core");
        assert!(
            config.num_cores <= config.mesh.num_nodes(),
            "more cores than mesh nodes"
        );
        CoherenceSystem {
            config,
            mesh: Mesh::new(config.mesh),
            lines: FastHashMap::default(),
            stats: CoherenceStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CoherenceConfig {
        self.config
    }

    /// Protocol statistics so far.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// The home node (directory slice / L2 bank) of a line: address
    /// interleaved across cores.
    pub fn home_of(&self, line: CacheLine) -> usize {
        ((line.0 >> 6) % self.config.num_cores as u64) as usize
    }

    /// Time for a coherence request from `core` to *reach* the line's home
    /// directory (L1 lookup + mesh traversal). The simulator uses this to
    /// model requests in flight: a request is checked against line locks
    /// when it **arrives**, not when it is sent — which is what makes the
    /// Fig. 10 write-deadlock physically possible.
    pub fn request_latency(&self, core: usize, line: CacheLine) -> Cycle {
        self.config.l1_latency + self.mesh.latency(core, self.home_of(line))
    }

    /// Current MOESI state of `line` in `core`'s L1.
    pub fn state_of(&self, core: usize, line: CacheLine) -> LineState {
        self.lines
            .get(&line)
            .map_or(LineState::I, |l| l.state_of(core))
    }

    /// The lock on `line`, if any.
    pub fn lock_of(&self, line: CacheLine) -> Option<LineLock> {
        self.lines.get(&line).and_then(|l| l.lock)
    }

    /// The line's record, creating it on first touch.
    fn line_mut(&mut self, line: CacheLine) -> &mut Line {
        self.lines.entry(line).or_insert_with(Line::new)
    }

    /// Non-mutating probe: the core whose lock would deny a [`read`] by
    /// `core` right now, if any.
    ///
    /// A blocked requester polls this (free of protocol side effects)
    /// instead of re-issuing the transaction every cycle; the event-driven
    /// simulator re-probes only when the lock holder makes progress — a
    /// denial thus costs one scheduled retry wakeup, not a transaction per
    /// cycle.
    ///
    /// [`read`]: CoherenceSystem::read
    pub fn read_denied_by(&self, core: usize, line: CacheLine) -> Option<usize> {
        let l = self.lines.get(&line)?;
        denied_by_lock(l.lock, core, !l.state_of(core).is_valid())
    }

    /// Non-mutating probe: the core whose lock would deny a [`write`] by
    /// `core` right now, if any. See [`read_denied_by`] for the retry
    /// discipline.
    ///
    /// [`write`]: CoherenceSystem::write
    /// [`read_denied_by`]: CoherenceSystem::read_denied_by
    pub fn write_denied_by(&self, core: usize, line: CacheLine) -> Option<usize> {
        let l = self.lines.get(&line)?;
        denied_by_lock(l.lock, core, !l.state_of(core).is_writable())
    }

    /// Non-mutating probe: the core whose lock would deny `core` an RMW
    /// acquisition (permission transaction **plus** [`lock`]) on `line`.
    /// Any foreign lock denies: even when a directory lock would let the
    /// permission *read* through, the subsequent `lock` call fails.
    ///
    /// [`lock`]: CoherenceSystem::lock
    pub fn acquire_denied_by(&self, core: usize, line: CacheLine) -> Option<usize> {
        self.lock_of(line)
            .and_then(|l| (l.holder != core).then_some(l.holder))
    }

    /// A load by `core` at time `now`.
    ///
    /// # Errors
    ///
    /// [`Denied::LockedBy`] if the line is locked by another core and the
    /// access needs a coherence transaction.
    pub fn read(&mut self, core: usize, line: CacheLine, now: Cycle) -> Result<Access, Denied> {
        // One map probe serves the whole transaction: denial check, hit
        // path, and miss path all work off the same line record — this is
        // the simulator's hottest function after `Core::tick` itself.
        let l = self.lines.entry(line).or_insert_with(Line::new);
        let state = l.state_of(core);
        if let Some(holder) = denied_by_lock(l.lock, core, !state.is_valid()) {
            self.stats.lock_denials += 1;
            return Err(Denied::LockedBy(holder));
        }
        if state.is_valid() {
            self.stats.hits += 1;
            return Ok(Access {
                done_at: now + self.config.l1_latency,
                hit: true,
                invalidations: 0,
                from_memory: false,
            });
        }
        self.stats.misses += 1;
        let home = ((line.0 >> 6) % self.config.num_cores as u64) as usize;
        let mut t =
            now + self.config.l1_latency + self.mesh.latency(core, home) + self.config.l2_latency;
        let mut from_memory = false;

        if let Some((oc, _)) = l.owner {
            // forward: home → owner → requester
            let owner_core = oc as usize;
            t += self.mesh.latency(home, owner_core)
                + self.config.l1_latency
                + self.mesh.latency(owner_core, core);
            self.stats.forwards += 1;
        } else {
            if !l.on_chip {
                t += self.config.memory_latency;
                from_memory = true;
                self.stats.memory_fetches += 1;
            }
            t += self.mesh.latency(home, core);
        }

        // State transitions.
        l.on_chip = true;
        let any_other_valid = l.other_valid(core).next().is_some();
        // Owner downgrades: M→O, E→S (joins the sharer set), O stays O.
        if let Some((oc, s)) = l.owner {
            match s {
                LineState::M => l.owner = Some((oc, LineState::O)),
                LineState::E => {
                    l.owner = None;
                    l.add_sharer(oc as usize);
                }
                _ => {}
            }
        }
        if any_other_valid {
            l.add_sharer(core);
        } else {
            l.owner = Some((core as u32, LineState::E));
        }
        Ok(Access {
            done_at: t,
            hit: false,
            invalidations: 0,
            from_memory,
        })
    }

    /// A store (or read-exclusive) by `core` at time `now`: on completion
    /// the core holds the line in `M`, everyone else in `I`.
    ///
    /// # Errors
    ///
    /// [`Denied::LockedBy`] if the line is locked by another core.
    pub fn write(&mut self, core: usize, line: CacheLine, now: Cycle) -> Result<Access, Denied> {
        // Single map probe, as in `read`.
        let l = self.lines.entry(line).or_insert_with(Line::new);
        let state = l.state_of(core);
        if let Some(holder) = denied_by_lock(l.lock, core, !state.is_writable()) {
            self.stats.lock_denials += 1;
            return Err(Denied::LockedBy(holder));
        }
        if state.is_writable() {
            self.stats.hits += 1;
            l.owner = Some((core as u32, LineState::M));
            return Ok(Access {
                done_at: now + self.config.l1_latency,
                hit: true,
                invalidations: 0,
                from_memory: false,
            });
        }
        self.stats.misses += 1;
        let home = ((line.0 >> 6) % self.config.num_cores as u64) as usize;
        let mut t =
            now + self.config.l1_latency + self.mesh.latency(core, home) + self.config.l2_latency;
        let mut from_memory = false;

        // Data supply if we don't have a valid copy at all.
        if state == LineState::I {
            if let Some((oc, _)) = l.owner {
                let owner_core = oc as usize;
                t += self.mesh.latency(home, owner_core)
                    + self.config.l1_latency
                    + self.mesh.latency(owner_core, core);
                self.stats.forwards += 1;
            } else if !l.on_chip {
                t += self.config.memory_latency + self.mesh.latency(home, core);
                from_memory = true;
                self.stats.memory_fetches += 1;
            } else {
                t += self.mesh.latency(home, core);
            }
        }

        // Invalidate every other valid copy; acks return to the requester
        // in parallel — latest ack dominates. The sharded line walks only
        // the owner + sharer set — O(sharers), independent of machine
        // width, on the hot write path.
        let mut inv_done = t;
        let mut invalidations = 0usize;
        for c in l.other_valid(core) {
            let ack = t
                + self.mesh.latency(home, c)
                + self.config.l1_latency
                + self.mesh.latency(c, core);
            inv_done = inv_done.max(ack);
            invalidations += 1;
        }
        self.stats.invalidations += invalidations as u64;

        l.on_chip = true;
        l.sharers.clear();
        l.owner = Some((core as u32, LineState::M));
        Ok(Access {
            done_at: inv_done,
            hit: false,
            invalidations,
            from_memory,
        })
    }

    /// Locks a line. For [`LockKind::Local`] the holder must have write
    /// permission (acquired via [`write`]); for [`LockKind::Directory`] the
    /// holder must hold the line in a valid state (acquired via [`read`]).
    ///
    /// # Errors
    ///
    /// [`Denied::LockedBy`] if another core already holds a lock.
    ///
    /// # Panics
    ///
    /// Panics if the permission precondition is violated (an internal
    /// simulator bug, not a program behaviour).
    ///
    /// [`write`]: CoherenceSystem::write
    /// [`read`]: CoherenceSystem::read
    pub fn lock(&mut self, core: usize, line: CacheLine, kind: LockKind) -> Result<(), Denied> {
        if let Some(l) = self.lock_of(line) {
            if l.holder != core {
                self.stats.lock_denials += 1;
                return Err(Denied::LockedBy(l.holder));
            }
        }
        let state = self.state_of(core, line);
        match kind {
            LockKind::Local => assert!(
                state.is_writable(),
                "local lock requires M/E permission, have {state:?}"
            ),
            LockKind::Directory => assert!(
                state.is_valid(),
                "directory lock requires a valid copy, have {state:?}"
            ),
        }
        self.line_mut(line).lock = Some(LineLock { holder: core, kind });
        Ok(())
    }

    /// Releases `core`'s lock on `line`.
    ///
    /// # Panics
    ///
    /// Panics if `core` does not hold the lock (internal bug).
    pub fn unlock(&mut self, core: usize, line: CacheLine) {
        let l = self.line_mut(line);
        match l.lock {
            Some(LineLock { holder, .. }) if holder == core => l.lock = None,
            other => panic!("core {core} unlocking {line} it does not hold: {other:?}"),
        }
    }

    /// The core currently designated to supply data (M/O/E), if any.
    pub fn owner_of(&self, line: CacheLine) -> Option<usize> {
        self.lines.get(&line)?.owner.map(|(c, _)| c as usize)
    }

    /// Invariant check used by tests: the sharded representation is
    /// internally consistent (owner holds an owner state and is absent
    /// from the sorted, deduplicated sharer set), and an `M`/`E` owner
    /// coexists with no other valid copy.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (line, l) in &self.lines {
            if let Some((oc, s)) = l.owner {
                if !s.is_owner() {
                    return Err(format!("{line}: owner core {oc} in non-owner state {s:?}"));
                }
                if (oc as usize) >= self.config.num_cores {
                    return Err(format!("{line}: owner core {oc} out of range"));
                }
                if l.sharers.binary_search(&oc).is_ok() {
                    return Err(format!("{line}: owner core {oc} also in sharer set"));
                }
                if s.is_writable() && !l.sharers.is_empty() {
                    return Err(format!(
                        "{line}: core {oc} exclusive but {:?} hold valid copies",
                        l.sharers
                    ));
                }
            }
            if !l.sharers.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("{line}: sharer set not sorted: {:?}", l.sharers));
            }
            if let Some(&c) = l
                .sharers
                .iter()
                .find(|&&c| c as usize >= self.config.num_cores)
            {
                return Err(format!("{line}: sharer core {c} out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: CacheLine = CacheLine(0x40);
    const L2: CacheLine = CacheLine(0x80);

    fn sys() -> CoherenceSystem {
        CoherenceSystem::new(CoherenceConfig::small(4))
    }

    #[test]
    fn cold_read_pays_memory_and_becomes_exclusive() {
        let mut s = sys();
        let a = s.read(0, L, 0).unwrap();
        assert!(!a.hit);
        assert!(a.from_memory);
        assert_eq!(s.state_of(0, L), LineState::E);
        assert!(a.done_at >= s.config().memory_latency);
        // second read is a pure L1 hit
        let b = s.read(0, L, a.done_at).unwrap();
        assert!(b.hit);
        assert_eq!(b.done_at, a.done_at + s.config().l1_latency);
    }

    #[test]
    fn second_reader_gets_shared_via_forward() {
        let mut s = sys();
        s.read(0, L, 0).unwrap(); // core 0: E
        let a = s.read(1, L, 100).unwrap();
        assert!(!a.hit);
        assert!(!a.from_memory, "data forwarded, not fetched");
        assert_eq!(s.state_of(0, L), LineState::S, "E downgrades to S");
        assert_eq!(s.state_of(1, L), LineState::S);
        assert_eq!(s.stats().forwards, 1);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut s = sys();
        s.read(0, L, 0).unwrap();
        s.read(1, L, 100).unwrap();
        s.read(2, L, 200).unwrap();
        let a = s.write(3, L, 300).unwrap();
        assert_eq!(a.invalidations, 3);
        assert_eq!(s.state_of(3, L), LineState::M);
        for c in 0..3 {
            assert_eq!(s.state_of(c, L), LineState::I);
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn silent_e_to_m_upgrade() {
        let mut s = sys();
        s.read(0, L, 0).unwrap(); // E
        let a = s.write(0, L, 100).unwrap();
        assert!(a.hit, "E→M is a hit");
        assert_eq!(s.state_of(0, L), LineState::M);
    }

    #[test]
    fn dirty_owner_downgrades_to_o_on_foreign_read() {
        let mut s = sys();
        s.write(0, L, 0).unwrap(); // M
        s.read(1, L, 100).unwrap();
        assert_eq!(s.state_of(0, L), LineState::O, "M→O on snoop read (MOESI)");
        assert_eq!(s.state_of(1, L), LineState::S);
        s.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_from_shared_costs_invalidations_not_data() {
        let mut s = sys();
        s.write(0, L, 0).unwrap();
        s.read(1, L, 100).unwrap(); // 0: O, 1: S
        let a = s.write(1, L, 200).unwrap();
        assert!(!a.hit);
        assert!(!a.from_memory);
        assert_eq!(a.invalidations, 1); // invalidate core 0
        assert_eq!(s.state_of(1, L), LineState::M);
        assert_eq!(s.state_of(0, L), LineState::I);
    }

    #[test]
    fn local_lock_denies_all_foreign_access() {
        let mut s = sys();
        s.write(0, L, 0).unwrap();
        s.lock(0, L, LockKind::Local).unwrap();
        assert_eq!(s.read(1, L, 10), Err(Denied::LockedBy(0)));
        assert_eq!(s.write(2, L, 10), Err(Denied::LockedBy(0)));
        // the holder itself is unaffected
        assert!(s.read(0, L, 10).is_ok());
        assert!(s.write(0, L, 10).is_ok());
        s.unlock(0, L);
        assert!(s.read(1, L, 20).is_ok());
        assert!(s.stats().lock_denials >= 2);
    }

    #[test]
    fn directory_lock_allows_shared_reads_but_denies_coherence() {
        let mut s = sys();
        s.read(0, L, 0).unwrap();
        s.read(1, L, 50).unwrap(); // both S
        s.lock(0, L, LockKind::Directory).unwrap();
        // core 1 still reads its S copy — type-3 permits reads between Ra/Wa
        assert!(s.read(1, L, 100).is_ok());
        // but a write (upgrade) or a miss by core 2 is denied
        assert_eq!(s.write(1, L, 100), Err(Denied::LockedBy(0)));
        assert_eq!(s.read(2, L, 100), Err(Denied::LockedBy(0)));
        s.unlock(0, L);
        assert!(s.write(1, L, 200).is_ok());
    }

    #[test]
    fn denial_probes_match_the_transactions_without_side_effects() {
        let mut s = sys();
        s.write(0, L, 0).unwrap();
        s.lock(0, L, LockKind::Local).unwrap();
        let denials_before = s.stats().lock_denials;
        // Local lock: everything foreign is denied; the holder is not.
        assert_eq!(s.read_denied_by(1, L), Some(0));
        assert_eq!(s.write_denied_by(1, L), Some(0));
        assert_eq!(s.acquire_denied_by(1, L), Some(0));
        assert_eq!(s.read_denied_by(0, L), None);
        assert_eq!(s.acquire_denied_by(0, L), None);
        assert_eq!(
            s.stats().lock_denials,
            denials_before,
            "probes must not mutate protocol statistics"
        );
        s.unlock(0, L);
        assert_eq!(s.read_denied_by(1, L), None);
        assert_eq!(s.acquire_denied_by(1, L), None);
    }

    #[test]
    fn directory_lock_probe_allows_shared_reads_but_denies_acquire() {
        let mut s = sys();
        s.read(0, L, 0).unwrap();
        s.read(1, L, 50).unwrap(); // both S
        s.lock(0, L, LockKind::Directory).unwrap();
        // core 1 holds a valid S copy: its read sails through the probe …
        assert_eq!(s.read_denied_by(1, L), None);
        // … but an upgrade, a miss by core 2, or a competing RMW does not.
        assert_eq!(s.write_denied_by(1, L), Some(0));
        assert_eq!(s.read_denied_by(2, L), Some(0));
        assert_eq!(s.acquire_denied_by(1, L), Some(0));
    }

    #[test]
    fn second_lock_attempt_denied() {
        let mut s = sys();
        s.write(0, L, 0).unwrap();
        s.lock(0, L, LockKind::Local).unwrap();
        // core 1 cannot even acquire permission, but test the lock API too:
        // pretend it had a stale valid state — lock() itself must refuse.
        assert_eq!(s.lock(1, L, LockKind::Directory), Err(Denied::LockedBy(0)));
    }

    #[test]
    #[should_panic(expected = "requires M/E")]
    fn local_lock_requires_write_permission() {
        let mut s = sys();
        s.read(0, L, 0).unwrap();
        s.read(1, L, 10).unwrap(); // downgrades 0 to S
        s.lock(0, L, LockKind::Local).unwrap();
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn unlock_requires_holding() {
        let mut s = sys();
        s.write(0, L, 0).unwrap();
        s.lock(0, L, LockKind::Local).unwrap();
        s.unlock(1, L);
    }

    #[test]
    fn distinct_lines_are_independent() {
        let mut s = sys();
        s.write(0, L, 0).unwrap();
        s.lock(0, L, LockKind::Local).unwrap();
        assert!(s.write(1, L2, 10).is_ok(), "other lines unaffected by lock");
        s.check_invariants().unwrap();
    }

    #[test]
    fn home_distribution_covers_all_cores() {
        let s = sys();
        let homes: std::collections::BTreeSet<usize> =
            (0..64u64).map(|i| s.home_of(CacheLine(i * 64))).collect();
        assert_eq!(homes.len(), 4, "interleaving reaches every slice");
    }

    #[test]
    fn sharded_lines_scale_to_wide_machines() {
        // 256 cores: per-line state is owner + sharer set, so a line read
        // by a handful of cores costs memory proportional to the sharers,
        // and a write invalidates exactly that handful.
        let mut s = CoherenceSystem::new(CoherenceConfig {
            num_cores: 256,
            mesh: MeshConfig {
                width: 16,
                height: 16,
                link_latency: 1,
                router_latency: 4,
            },
            ..CoherenceConfig::small(4)
        });
        let readers = [0usize, 17, 99, 200, 255];
        for (i, &c) in readers.iter().enumerate() {
            s.read(c, L, i as Cycle * 100).unwrap();
        }
        for &c in &readers {
            assert_eq!(s.state_of(c, L), LineState::S);
        }
        assert_eq!(s.state_of(1, L), LineState::I);
        s.check_invariants().unwrap();
        let a = s.write(42, L, 10_000).unwrap();
        assert_eq!(a.invalidations, readers.len());
        assert_eq!(s.state_of(42, L), LineState::M);
        assert_eq!(s.owner_of(L), Some(42));
        for &c in &readers {
            assert_eq!(s.state_of(c, L), LineState::I);
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn read_to_shared_line_cheaper_than_write() {
        // The type-3 advantage: acquiring read permission on a widely
        // shared line costs no invalidations; acquiring write permission
        // pays the full invalidation round-trip.
        let mut s = sys();
        s.read(0, L, 0).unwrap();
        s.read(1, L, 100).unwrap();
        s.read(2, L, 200).unwrap();
        let mut s_read = s.clone();
        let read = s_read.read(3, L, 1000).unwrap();
        let write = s.write(3, L, 1000).unwrap();
        assert!(read.done_at - 1000 < write.done_at - 1000);
        assert_eq!(read.invalidations, 0);
        assert_eq!(write.invalidations, 3);
    }
}
