//! The three C/C++11 → x86-TSO compilation mappings of the paper's Table 4.
//!
//! | operation    | read-write-mapping | read-mapping   | write-mapping |
//! |--------------|--------------------|----------------|---------------|
//! | non-SC read  | `mov`              | `mov`          | `mov`         |
//! | SC read      | `lock xadd(0)`     | `lock xadd(0)` | `mov`         |
//! | non-SC write | `mov`              | `mov`          | `mov`         |
//! | SC write     | `lock xchg`        | `mov`          | `lock xchg`   |
//!
//! [`compile`] lowers a [`CcProgram`] to a [`tso_model::Program`], with the
//! RMWs given a chosen [`Atomicity`]. It also returns a [`ReadProjection`]
//! that maps TSO-level read outcomes back to source-level read outcomes
//! (the `lock xchg` of an SC write introduces a read event that does not
//! exist in the source program).

use crate::ast::{CcInstr, CcProgram, MemOrder};
use rmw_types::{Atomicity, RmwKind, Value};
use tso_model::{Instr, Program};

/// Which of the Table 4 mappings to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mapping {
    /// Table 4(a): both SC reads and SC writes become RMWs.
    ReadWrite,
    /// Table 4(b): only SC reads become RMWs.
    Read,
    /// Table 4(c): only SC writes become RMWs.
    Write,
}

impl Mapping {
    /// All three mappings.
    pub const ALL: [Mapping; 3] = [Mapping::ReadWrite, Mapping::Read, Mapping::Write];

    /// Does this mapping lower SC reads to RMWs?
    pub fn maps_reads(self) -> bool {
        matches!(self, Mapping::ReadWrite | Mapping::Read)
    }

    /// Does this mapping lower SC writes to RMWs?
    pub fn maps_writes(self) -> bool {
        matches!(self, Mapping::ReadWrite | Mapping::Write)
    }

    /// Per the paper (Appendix A), is this mapping sound for the given RMW
    /// atomicity? Everything works except write-mapping × type-3.
    pub fn sound_for(self, atomicity: Atomicity) -> bool {
        !(self == Mapping::Write && atomicity == Atomicity::Type3)
    }
}

impl core::fmt::Display for Mapping {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Mapping::ReadWrite => "read-write-mapping",
            Mapping::Read => "read-mapping",
            Mapping::Write => "write-mapping",
        })
    }
}

/// Maps TSO-level read outcomes back to source-level read outcomes.
///
/// `source_read_slots[i]` is the index, within the compiled program's read
/// vector (in `(thread, po)` order, RMW reads included), of the TSO read
/// that realizes the source program's `i`-th read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadProjection {
    source_read_slots: Vec<usize>,
}

impl ReadProjection {
    /// Projects a compiled-program read vector onto source reads.
    ///
    /// # Panics
    ///
    /// Panics if `tso_reads` is shorter than the projection expects.
    pub fn project(&self, tso_reads: &[Value]) -> Vec<Value> {
        self.source_read_slots
            .iter()
            .map(|&i| tso_reads[i])
            .collect()
    }

    /// Number of source-level reads.
    pub fn num_source_reads(&self) -> usize {
        self.source_read_slots.len()
    }
}

/// Compiles a C/C++11 program to TSO under `mapping`, with every emitted
/// RMW using `atomicity`.
pub fn compile(
    prog: &CcProgram,
    mapping: Mapping,
    atomicity: Atomicity,
) -> (Program, ReadProjection) {
    let mut out = Program::new();
    let mut source_read_slots = Vec::new();
    let mut tso_read_count = 0usize;

    for (_, instrs) in prog.iter() {
        let mut lowered = Vec::new();
        for &i in instrs {
            match i {
                CcInstr::Read(a, MemOrder::SeqCst) if mapping.maps_reads() => {
                    // lock xadd(0): the RMW's read is the source read.
                    source_read_slots.push(tso_read_count);
                    tso_read_count += 1;
                    lowered.push(Instr::Rmw {
                        addr: a,
                        kind: RmwKind::FetchAndAdd(0),
                        atomicity,
                    });
                }
                CcInstr::Read(a, _) => {
                    source_read_slots.push(tso_read_count);
                    tso_read_count += 1;
                    lowered.push(Instr::Read(a));
                }
                CcInstr::Write(a, v, MemOrder::SeqCst) if mapping.maps_writes() => {
                    // lock xchg: introduces a read event that is NOT a
                    // source read.
                    tso_read_count += 1;
                    lowered.push(Instr::Rmw {
                        addr: a,
                        kind: RmwKind::Exchange(v),
                        atomicity,
                    });
                }
                CcInstr::Write(a, v, _) => {
                    lowered.push(Instr::Write(a, v));
                }
            }
        }
        out.add_thread(lowered);
    }
    (out, ReadProjection { source_read_slots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CcProgramBuilder;
    use rmw_types::Addr;

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    fn sb() -> CcProgram {
        let mut b = CcProgramBuilder::new();
        b.thread().sc_write(X, 1).sc_read(Y);
        b.thread().sc_write(Y, 1).sc_read(X);
        b.build()
    }

    #[test]
    fn read_write_mapping_lowers_both() {
        let (p, proj) = compile(&sb(), Mapping::ReadWrite, Atomicity::Type2);
        // Each thread: RMW (xchg) + RMW (xadd) = 4 RMW instrs total.
        let rmws = p
            .iter()
            .flat_map(|(_, i)| i.iter())
            .filter(|i| matches!(i, Instr::Rmw { .. }))
            .count();
        assert_eq!(rmws, 4);
        // TSO reads: 4 RMW reads; source reads: 2 (slots 1 and 3).
        assert_eq!(proj.num_source_reads(), 2);
        assert_eq!(proj.project(&[9, 1, 9, 0]), vec![1, 0]);
    }

    #[test]
    fn read_mapping_lowers_reads_only() {
        let (p, proj) = compile(&sb(), Mapping::Read, Atomicity::Type3);
        let rmws = p
            .iter()
            .flat_map(|(_, i)| i.iter())
            .filter(|i| {
                matches!(
                    i,
                    Instr::Rmw {
                        kind: RmwKind::FetchAndAdd(0),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(rmws, 2);
        // writes stayed plain
        let writes = p
            .iter()
            .flat_map(|(_, i)| i.iter())
            .filter(|i| matches!(i, Instr::Write(..)))
            .count();
        assert_eq!(writes, 2);
        assert_eq!(proj.project(&[5, 6]), vec![5, 6]);
    }

    #[test]
    fn write_mapping_lowers_writes_only() {
        let (p, proj) = compile(&sb(), Mapping::Write, Atomicity::Type1);
        let xchgs = p
            .iter()
            .flat_map(|(_, i)| i.iter())
            .filter(|i| {
                matches!(
                    i,
                    Instr::Rmw {
                        kind: RmwKind::Exchange(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(xchgs, 2);
        // TSO read order per thread: RMW-read (xchg), plain read.
        assert_eq!(proj.project(&[0, 7, 0, 8]), vec![7, 8]);
    }

    #[test]
    fn relaxed_accesses_stay_plain_under_all_mappings() {
        let mut b = CcProgramBuilder::new();
        b.thread().relaxed_write(X, 1).relaxed_read(Y);
        let prog = b.build();
        for m in Mapping::ALL {
            let (p, _) = compile(&prog, m, Atomicity::Type1);
            assert!(p
                .iter()
                .flat_map(|(_, i)| i.iter())
                .all(|i| matches!(i, Instr::Read(_) | Instr::Write(..))));
        }
    }

    #[test]
    fn soundness_table_matches_paper() {
        for m in Mapping::ALL {
            for a in Atomicity::ALL {
                let expect = !(m == Mapping::Write && a == Atomicity::Type3);
                assert_eq!(m.sound_for(a), expect, "{m} × {a}");
            }
        }
    }

    #[test]
    fn mapping_display() {
        assert_eq!(Mapping::ReadWrite.to_string(), "read-write-mapping");
        assert_eq!(Mapping::Read.to_string(), "read-mapping");
        assert_eq!(Mapping::Write.to_string(), "write-mapping");
    }
}
