//! The C/C++11 program fragment: atomic loads and stores with a memory
//! order, in straight-line threads (control flow unfolded, as in the
//! axiomatic treatment).

use rmw_types::{Addr, ThreadId, Value};

/// The memory orders relevant to the paper's mappings. On TSO everything
/// except `SeqCst` is free (plain `mov`s suffice, Batty et al.), so the
/// fragment only distinguishes SC from everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOrder {
    /// `memory_order_seq_cst`.
    SeqCst,
    /// Any weaker order (relaxed / acquire / release): compiles to a plain
    /// access on TSO.
    Relaxed,
}

/// One instruction of the C/C++11 fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcInstr {
    /// An atomic load.
    Read(Addr, MemOrder),
    /// An atomic store of a constant.
    Write(Addr, Value, MemOrder),
}

impl CcInstr {
    /// The accessed address.
    pub fn addr(&self) -> Addr {
        match *self {
            CcInstr::Read(a, _) | CcInstr::Write(a, _, _) => a,
        }
    }

    /// The instruction's memory order.
    pub fn order(&self) -> MemOrder {
        match *self {
            CcInstr::Read(_, o) | CcInstr::Write(_, _, o) => o,
        }
    }

    /// True for loads.
    pub fn is_read(&self) -> bool {
        matches!(self, CcInstr::Read(..))
    }
}

/// A straight-line multi-threaded C/C++11 program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CcProgram {
    threads: Vec<Vec<CcInstr>>,
}

impl CcProgram {
    /// An empty program.
    pub fn new() -> Self {
        CcProgram::default()
    }

    /// Appends a thread, returning its id.
    pub fn add_thread(&mut self, instrs: Vec<CcInstr>) -> ThreadId {
        self.threads.push(instrs);
        ThreadId(self.threads.len() - 1)
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Instructions of one thread.
    pub fn thread(&self, tid: ThreadId) -> &[CcInstr] {
        &self.threads[tid.index()]
    }

    /// Iterates `(ThreadId, &[CcInstr])`.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, &[CcInstr])> {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| (ThreadId(i), t.as_slice()))
    }

    /// Number of source-level reads, in `(thread, po)` order.
    pub fn num_reads(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter(|i| i.is_read())
            .count()
    }

    /// True if every instruction is `SeqCst` — the fragment for which the
    /// model-based SC check is complete.
    pub fn is_all_sc(&self) -> bool {
        self.threads
            .iter()
            .flatten()
            .all(|i| i.order() == MemOrder::SeqCst)
    }
}

/// Builder for [`CcProgram`].
#[derive(Debug, Default)]
pub struct CcProgramBuilder {
    threads: Vec<Vec<CcInstr>>,
}

impl CcProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CcProgramBuilder::default()
    }

    /// Starts a new thread.
    pub fn thread(&mut self) -> CcThreadBuilder<'_> {
        self.threads.push(Vec::new());
        let idx = self.threads.len() - 1;
        CcThreadBuilder { b: self, idx }
    }

    /// Finalizes the program.
    pub fn build(self) -> CcProgram {
        CcProgram {
            threads: self.threads,
        }
    }
}

/// Appends instructions to one thread.
#[derive(Debug)]
pub struct CcThreadBuilder<'a> {
    b: &'a mut CcProgramBuilder,
    idx: usize,
}

impl CcThreadBuilder<'_> {
    /// `atomic_load(seq_cst)`.
    pub fn sc_read(&mut self, a: Addr) -> &mut Self {
        self.push(CcInstr::Read(a, MemOrder::SeqCst))
    }

    /// `atomic_store(v, seq_cst)`.
    pub fn sc_write(&mut self, a: Addr, v: Value) -> &mut Self {
        self.push(CcInstr::Write(a, v, MemOrder::SeqCst))
    }

    /// A weaker-than-SC load.
    pub fn relaxed_read(&mut self, a: Addr) -> &mut Self {
        self.push(CcInstr::Read(a, MemOrder::Relaxed))
    }

    /// A weaker-than-SC store.
    pub fn relaxed_write(&mut self, a: Addr, v: Value) -> &mut Self {
        self.push(CcInstr::Write(a, v, MemOrder::Relaxed))
    }

    fn push(&mut self, i: CcInstr) -> &mut Self {
        self.b.threads[self.idx].push(i);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let (x, y) = (Addr(0), Addr(1));
        let mut b = CcProgramBuilder::new();
        b.thread().sc_write(x, 1).sc_read(y);
        b.thread().relaxed_write(y, 1).relaxed_read(x);
        let p = b.build();
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.num_reads(), 2);
        assert!(!p.is_all_sc());
        assert_eq!(
            p.thread(ThreadId(0))[0],
            CcInstr::Write(x, 1, MemOrder::SeqCst)
        );
        assert_eq!(p.thread(ThreadId(0))[0].addr(), x);
        assert_eq!(p.thread(ThreadId(0))[1].order(), MemOrder::SeqCst);
        assert!(p.thread(ThreadId(0))[1].is_read());
    }

    #[test]
    fn all_sc_detection() {
        let mut b = CcProgramBuilder::new();
        b.thread().sc_write(Addr(0), 1).sc_read(Addr(1));
        assert!(b.build().is_all_sc());
    }
}
