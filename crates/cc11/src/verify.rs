//! Model-based verification of the compilation mappings (Appendix A).
//!
//! For an all-SC source program, correctness of a mapping means: every
//! behaviour the TSO model allows for the compiled program is an SC
//! behaviour of the source. [`verify_mapping`] decides this by *streaming*
//! the compiled program's valid TSO executions out of the pruned search
//! engine ([`tso_model::for_each_valid_execution`]) and projecting each
//! onto the source reads — stopping at the first non-SC behaviour, which
//! it returns as a [`CounterExample`]. Nothing on the TSO side is
//! materialized, which is what lets the soundness sweeps cover programs
//! whose candidate spaces the legacy enumerator could not hold in memory.

use crate::ast::CcProgram;
use crate::mapping::{compile, Mapping};
use crate::sc_ref::sc_outcomes;
use rmw_types::{Atomicity, Value};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use tso_model::for_each_valid_execution;

/// A TSO-allowed behaviour that is not sequentially consistent — evidence
/// that a mapping is unsound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// The mapping under test.
    pub mapping: Mapping,
    /// The RMW atomicity under test.
    pub atomicity: Atomicity,
    /// Source-level read values observed on TSO but impossible under SC.
    pub source_reads: Vec<Value>,
}

impl core::fmt::Display for CounterExample {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} with {} RMWs admits non-SC outcome {:?}",
            self.mapping, self.atomicity, self.source_reads
        )
    }
}

/// Verifies `mapping` with `atomicity` RMWs on one source program.
///
/// # Errors
///
/// Returns the first non-SC behaviour found, if any.
///
/// # Panics
///
/// Panics if the program is not all-SC (the SC reference is only complete
/// for that fragment).
pub fn verify_mapping(
    prog: &CcProgram,
    mapping: Mapping,
    atomicity: Atomicity,
) -> Result<(), CounterExample> {
    assert!(
        prog.is_all_sc(),
        "verify_mapping requires an all-SC source program"
    );
    let sc: BTreeSet<Vec<Value>> = sc_outcomes(prog);
    let (tso_prog, projection) = compile(prog, mapping, atomicity);
    let mut violation: Option<Vec<Value>> = None;
    for_each_valid_execution(&tso_prog, |exec| {
        let src = projection.project(&exec.read_values());
        if sc.contains(&src) {
            ControlFlow::Continue(())
        } else {
            violation = Some(src);
            ControlFlow::Break(())
        }
    });
    match violation {
        Some(source_reads) => Err(CounterExample {
            mapping,
            atomicity,
            source_reads,
        }),
        None => Ok(()),
    }
}

/// The verification corpus: small all-SC programs exercising the shapes the
/// proofs care about (W→R reordering, write serialization, independent
/// reads).
pub fn corpus() -> Vec<(&'static str, CcProgram)> {
    use crate::ast::CcProgramBuilder;
    use rmw_types::Addr;
    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    let mut tests = Vec::new();

    let mut b = CcProgramBuilder::new();
    b.thread().sc_write(X, 1).sc_read(Y);
    b.thread().sc_write(Y, 1).sc_read(X);
    tests.push(("SB", b.build()));

    let mut b = CcProgramBuilder::new();
    b.thread().sc_write(X, 1).sc_write(Y, 1);
    b.thread().sc_read(Y).sc_read(X);
    tests.push(("MP", b.build()));

    let mut b = CcProgramBuilder::new();
    b.thread().sc_read(X).sc_write(Y, 1);
    b.thread().sc_read(Y).sc_write(X, 1);
    tests.push(("LB", b.build()));

    let mut b = CcProgramBuilder::new();
    b.thread().sc_write(X, 1);
    b.thread().sc_write(X, 2).sc_read(X).sc_read(Y);
    tests.push(("coherence+dep", b.build()));

    let mut b = CcProgramBuilder::new();
    b.thread().sc_write(X, 1).sc_read(X).sc_read(Y);
    b.thread().sc_write(Y, 1).sc_read(Y).sc_read(X);
    tests.push(("SB+own-read", b.build()));

    tests
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Appendix A, executable: all mappings × atomicities are sound on the
    /// corpus **except** write-mapping × type-3.
    #[test]
    fn appendix_a_soundness_matrix() {
        for (name, prog) in corpus() {
            for mapping in Mapping::ALL {
                for atomicity in Atomicity::ALL {
                    let result = verify_mapping(&prog, mapping, atomicity);
                    if mapping.sound_for(atomicity) {
                        assert!(
                            result.is_ok(),
                            "{name}: {mapping} × {atomicity} should be sound, got {:?}",
                            result.err()
                        );
                    }
                }
            }
        }
    }

    /// The write-mapping × type-3 unsoundness is *witnessed* on SB — the
    /// Dekker counterexample of paper Fig. 3 manifests as a non-SC outcome.
    #[test]
    fn write_mapping_type3_counterexample_on_sb() {
        let (_, sb) = corpus().remove(0);
        let err = verify_mapping(&sb, Mapping::Write, Atomicity::Type3)
            .expect_err("write-mapping × type-3 must be unsound on SB");
        assert_eq!(err.source_reads, vec![0, 0], "the classic 0/0 violation");
        assert!(!err.to_string().is_empty());
    }

    /// Write-mapping is sound for type-1 and type-2 on the whole corpus
    /// (the paper's positive result for type-2).
    #[test]
    fn write_mapping_sound_for_type1_and_type2() {
        for (name, prog) in corpus() {
            for atomicity in [Atomicity::Type1, Atomicity::Type2] {
                assert!(
                    verify_mapping(&prog, Mapping::Write, atomicity).is_ok(),
                    "{name}: write-mapping × {atomicity}"
                );
            }
        }
    }

    /// Read-mapping is sound even for type-3 (the paper's §2.5 result).
    #[test]
    fn read_mapping_sound_for_type3() {
        for (name, prog) in corpus() {
            assert!(
                verify_mapping(&prog, Mapping::Read, Atomicity::Type3).is_ok(),
                "{name}: read-mapping × type-3"
            );
        }
    }

    #[test]
    #[should_panic(expected = "all-SC")]
    fn relaxed_program_rejected() {
        use crate::ast::CcProgramBuilder;
        use rmw_types::Addr;
        let mut b = CcProgramBuilder::new();
        b.thread().relaxed_read(Addr(0));
        let _ = verify_mapping(&b.build(), Mapping::Read, Atomicity::Type1);
    }
}
