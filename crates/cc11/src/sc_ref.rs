//! An exhaustive sequentially-consistent reference interpreter for the
//! C/C++11 fragment.
//!
//! For a program whose shared accesses are all `seq_cst`, the C/C++11
//! standard requires a single total order over those accesses consistent
//! with each thread's program order — i.e. the behaviours are exactly the
//! SC interleavings. [`sc_outcomes`] enumerates every interleaving (DFS
//! over scheduler choices) and collects the read-value vectors.

use crate::ast::{CcInstr, CcProgram};
use rmw_types::{Addr, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Every read-value vector observable under sequential consistency, with
/// reads in `(thread, po)` order.
pub fn sc_outcomes(prog: &CcProgram) -> BTreeSet<Vec<Value>> {
    let threads: Vec<&[CcInstr]> = prog.iter().map(|(_, t)| t).collect();
    let mut out = BTreeSet::new();
    let mut pc = vec![0usize; threads.len()];
    let mut mem: BTreeMap<Addr, Value> = BTreeMap::new();
    let mut reads: Vec<Vec<Value>> = vec![Vec::new(); threads.len()];
    dfs(&threads, &mut pc, &mut mem, &mut reads, &mut out);
    out
}

fn dfs(
    threads: &[&[CcInstr]],
    pc: &mut [usize],
    mem: &mut BTreeMap<Addr, Value>,
    reads: &mut [Vec<Value>],
    out: &mut BTreeSet<Vec<Value>>,
) {
    let mut progressed = false;
    for t in 0..threads.len() {
        if pc[t] >= threads[t].len() {
            continue;
        }
        progressed = true;
        let instr = threads[t][pc[t]];
        pc[t] += 1;
        match instr {
            CcInstr::Read(a, _) => {
                reads[t].push(*mem.get(&a).unwrap_or(&0));
                dfs(threads, pc, mem, reads, out);
                reads[t].pop();
            }
            CcInstr::Write(a, v, _) => {
                let old = mem.insert(a, v);
                dfs(threads, pc, mem, reads, out);
                match old {
                    Some(o) => {
                        mem.insert(a, o);
                    }
                    None => {
                        mem.remove(&a);
                    }
                }
            }
        }
        pc[t] -= 1;
    }
    if !progressed {
        out.insert(reads.iter().flat_map(|r| r.iter().copied()).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CcProgramBuilder;
    use rmw_types::Addr;

    const X: Addr = Addr(0);
    const Y: Addr = Addr(1);

    #[test]
    fn sb_under_sc_forbids_0_0() {
        let mut b = CcProgramBuilder::new();
        b.thread().sc_write(X, 1).sc_read(Y);
        b.thread().sc_write(Y, 1).sc_read(X);
        let outs = sc_outcomes(&b.build());
        assert!(!outs.contains(&vec![0, 0]), "SC forbids SB's 0/0");
        // but allows the other three
        assert!(outs.contains(&vec![0, 1]));
        assert!(outs.contains(&vec![1, 0]));
        assert!(outs.contains(&vec![1, 1]));
    }

    #[test]
    fn single_thread_is_deterministic() {
        let mut b = CcProgramBuilder::new();
        b.thread()
            .sc_write(X, 3)
            .sc_read(X)
            .sc_write(X, 4)
            .sc_read(X);
        let outs = sc_outcomes(&b.build());
        assert_eq!(outs, BTreeSet::from([vec![3, 4]]));
    }

    #[test]
    fn empty_program_has_one_empty_outcome() {
        let outs = sc_outcomes(&CcProgram::new());
        assert_eq!(outs, BTreeSet::from([vec![]]));
    }

    #[test]
    fn mp_under_sc() {
        let mut b = CcProgramBuilder::new();
        b.thread().sc_write(X, 1).sc_write(Y, 1);
        b.thread().sc_read(Y).sc_read(X);
        let outs = sc_outcomes(&b.build());
        assert!(!outs.contains(&vec![1, 0]), "flag-then-stale forbidden");
        assert!(outs.contains(&vec![0, 0]));
        assert!(outs.contains(&vec![1, 1]));
    }

    #[test]
    fn interleaving_count_is_exhaustive() {
        // Two single-instruction writer threads + a 2-read observer: the
        // observer can see (0,0), (v,0)... enumerate and sanity-check size.
        let mut b = CcProgramBuilder::new();
        b.thread().sc_write(X, 1);
        b.thread().sc_read(X).sc_read(X);
        let outs = sc_outcomes(&b.build());
        // Possible: (0,0), (0,1), (1,1) — never (1,0).
        assert_eq!(outs, BTreeSet::from([vec![0, 0], vec![0, 1], vec![1, 1]]));
    }
}
