//! C/C++11 concurrency fragment and the paper's compilation mappings
//! (Table 4, Appendix A).
//!
//! Batty et al. proved that C/C++11 is correctly implementable on x86-TSO
//! by compiling SC-atomic reads and/or writes to (type-1) RMWs. The paper
//! extends this to the weaker type-2/type-3 RMWs:
//!
//! * **read-write-mapping** (Table 4a): SC read → `lock xadd(0)`,
//!   SC write → `lock xchg` — correct for type-1/2/3;
//! * **read-mapping** (Table 4b): only SC reads become RMWs — correct for
//!   type-1/2/3;
//! * **write-mapping** (Table 4c): only SC writes become RMWs — correct for
//!   type-1/2, **incorrect for type-3** (Dekker counterexample, paper
//!   Fig. 3).
//!
//! Where the paper gives pencil proofs, this crate gives *model-based
//! verification*: the characteristic property of SC atomics is that in a
//! program whose shared accesses are all SC, every allowed behaviour is
//! sequentially consistent. [`verify::verify_mapping`] checks exactly that:
//! it compiles a source program under a mapping, enumerates the TSO-allowed
//! outcomes with the axiomatic model, projects away the reads that the
//! compilation introduced, and compares against an exhaustive SC reference
//! interpreter.
//!
//! ```
//! use cc11::{ast::CcProgramBuilder, mapping::Mapping, verify::verify_mapping};
//! use rmw_types::{Addr, Atomicity};
//!
//! // Store buffering with SC atomics: SC forbids r0 = r1 = 0.
//! let (x, y) = (Addr(0), Addr(1));
//! let mut b = CcProgramBuilder::new();
//! b.thread().sc_write(x, 1).sc_read(y);
//! b.thread().sc_write(y, 1).sc_read(x);
//! let prog = b.build();
//!
//! // The read-mapping with type-2 RMWs implements it correctly...
//! assert!(verify_mapping(&prog, Mapping::Read, Atomicity::Type2).is_ok());
//! // ...while the write-mapping with type-3 RMWs does not.
//! assert!(verify_mapping(&prog, Mapping::Write, Atomicity::Type3).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod mapping;
pub mod sc_ref;
pub mod verify;

pub use ast::{CcInstr, CcProgram, CcProgramBuilder, MemOrder};
pub use mapping::{compile, Mapping};
pub use verify::{verify_mapping, CounterExample};
