//! Shared channel-fed worker pool.
//!
//! Both parallel engines in the workspace — the differential litmus
//! harness (`crates/harness`) and the axiomatic model's root-split search
//! (`tso-model::par`) — distribute *indexed tasks* over a fixed set of
//! worker threads pulling from a shared queue: an idle worker steals the
//! next index the moment it frees up, so long-tail tasks never serialize
//! the batch. This crate is that one implementation, extracted so the two
//! engines cannot drift apart.
//!
//! Three properties the callers rely on:
//!
//! * **Stable worker ids.** Each worker is handed a dense id `0..workers`
//!   at spawn and reports it with every result, so per-task attribution
//!   (e.g. the harness JSON report's per-test `worker` field) does not
//!   depend on OS scheduling or spawn order.
//! * **Cooperative early exit.** A shared [`AtomicBool`] stop flag makes
//!   the pool drain its queue without executing the remaining tasks; a
//!   skipped task comes back as `None`. This is what gives the parallel
//!   `outcome_allowed` its early exit.
//! * **Oversubscription guard.** Worker threads are marked with a
//!   thread-local flag; [`effective_workers`] collapses a *nested* pool to
//!   one worker. `litmus_run --jobs N` therefore runs N harness workers
//!   whose per-test model searches stay sequential, instead of N × M
//!   threads fighting over the same cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Worker threads spawned by [`run_indexed`] since process start. The
/// inline single-worker path spawns none, so the delta across a call is a
/// direct observation of whether work left the calling thread — tests for
/// adaptive engines pin their "stayed sequential" claims on it.
static SPAWNED_THREADS: AtomicU64 = AtomicU64::new(0);

/// Cumulative count of pool worker threads ever spawned by this process
/// (see `SPAWNED_THREADS`).
pub fn spawned_threads() -> u64 {
    SPAWNED_THREADS.load(Ordering::Relaxed)
}

thread_local! {
    /// True on threads spawned as pool workers (see the oversubscription
    /// guard in the crate docs).
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is a pool worker — i.e. a nested
/// [`run_indexed`] from here would oversubscribe the machine.
pub fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

/// The worker count a pool should actually use: `requested`, clamped to 1
/// on pool-worker threads (the oversubscription guard) and to at least 1
/// everywhere.
pub fn effective_workers(requested: usize) -> usize {
    if in_pool_worker() {
        1
    } else {
        requested.max(1)
    }
}

/// Default worker count for callers with no explicit setting: the host's
/// available parallelism, passed through [`effective_workers`].
pub fn default_workers() -> usize {
    effective_workers(std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs `f(worker_id, task_index)` for every `task_index in 0..tasks` on
/// `workers` pool threads, returning the results **in task order**.
///
/// * Tasks are pulled from a shared queue, so workers load-balance
///   automatically; `worker_id` is the dense, stable id (`0..workers`) of
///   the thread that executed the task.
/// * When `stop` becomes true, pending tasks are skipped and come back as
///   `None` (tasks already executing run to completion — cooperative
///   cancellation inside `f` is the caller's business, typically by
///   checking the same flag).
/// * `workers` is clamped by [`effective_workers`] and to the task count;
///   a one-worker pool runs inline on the calling thread (no spawn, no
///   worker marking), so sequential fallbacks cost nothing.
pub fn run_indexed<T, F>(workers: usize, tasks: usize, stop: &AtomicBool, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let workers = effective_workers(workers).min(tasks.max(1));
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    if workers <= 1 {
        for (idx, slot) in slots.iter_mut().enumerate() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            *slot = Some(f(0, idx));
        }
        return slots;
    }

    let (task_tx, task_rx) = mpsc::channel::<usize>();
    for idx in 0..tasks {
        task_tx.send(idx).expect("queue accepts all indices");
    }
    drop(task_tx);
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let task_rx = Arc::clone(&task_rx);
            let res_tx = res_tx.clone();
            let f = &f;
            SPAWNED_THREADS.fetch_add(1, Ordering::Relaxed);
            scope.spawn(move || {
                IN_POOL_WORKER.with(|w| w.set(true));
                loop {
                    // Hold the lock only to pop the next index; the task
                    // itself runs with the queue free for the other workers.
                    let idx = match task_rx.lock().expect("task queue lock").recv() {
                        Ok(i) => i,
                        Err(_) => break, // queue drained
                    };
                    if stop.load(Ordering::Relaxed) {
                        continue; // drain without executing
                    }
                    if res_tx.send((idx, f(worker_id, idx))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        for (idx, result) in res_rx {
            slots[idx] = Some(result);
        }
    });
    slots
}

/// [`run_indexed`] without early exit: every task runs, every slot is
/// `Some`.
pub fn run_all<T, F>(workers: usize, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let never = AtomicBool::new(false);
    run_indexed(workers, tasks, &never, f)
        .into_iter()
        .map(|r| r.expect("no stop flag, every task ran"))
        .collect()
}

/// A task that panicked inside a crash-isolated pool run
/// ([`run_indexed_catching`]): which worker it died on and the rendered
/// panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Dense id of the worker the task panicked on (the worker itself
    /// survives and keeps pulling tasks).
    pub worker: usize,
    /// The panic payload, rendered to a string (`&str` and `String`
    /// payloads verbatim; anything else a placeholder).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task panicked on worker {}: {}",
            self.worker, self.message
        )
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Crash-isolated [`run_indexed`]: each task runs under
/// [`catch_unwind`], so a panicking task comes back as
/// `Some(Err(TaskPanic))` instead of tearing down the pool — the worker
/// that caught it is reused for the next task, and every other task's
/// result survives. `None` still means "drained by the stop flag without
/// running".
///
/// The closure must not hold state it expects to be consistent after a
/// panic (the pool asserts unwind safety on the caller's behalf —
/// callers fold per-task results, they do not share mutable state across
/// tasks). Panics still print through the process panic hook, so a
/// crashing task is loud in logs even though it no longer kills the run.
pub fn run_indexed_catching<T, F>(
    workers: usize,
    tasks: usize,
    stop: &AtomicBool,
    f: F,
) -> Vec<Option<Result<T, TaskPanic>>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    run_indexed(workers, tasks, stop, |worker, idx| {
        catch_unwind(AssertUnwindSafe(|| f(worker, idx))).map_err(|payload| TaskPanic {
            worker,
            message: panic_message(payload),
        })
    })
}

/// [`run_indexed_catching`] without early exit: every task runs and
/// yields either its result or its [`TaskPanic`].
pub fn run_all_catching<T, F>(workers: usize, tasks: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let never = AtomicBool::new(false);
    run_indexed_catching(workers, tasks, &never, f)
        .into_iter()
        .map(|r| r.expect("no stop flag, every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let out = run_all(4, 32, |_, idx| idx * 10);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_ids_are_dense_and_stable() {
        let ids = run_all(3, 64, |worker, _| worker);
        assert!(ids.iter().all(|&w| w < 3));
        // With 64 tasks over 3 workers at least one non-zero id must appear
        // (worker 0 cannot win every race for the queue lock 64 times in a
        // row while two peers spin on it — and even if it did, the inline
        // single-worker path is the only mode allowed to be all-zero).
        // Keep the assertion scheduling-proof: ids are just in range.
    }

    #[test]
    fn one_worker_runs_inline_without_marking() {
        assert!(!in_pool_worker());
        let out = run_all(1, 4, |worker, idx| {
            assert_eq!(worker, 0);
            assert!(!in_pool_worker(), "inline path must not mark the caller");
            idx
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(!in_pool_worker());
    }

    #[test]
    fn nested_pools_collapse_to_one_worker() {
        let saw_nested_parallel = AtomicUsize::new(0);
        run_all(4, 8, |_, _| {
            assert!(in_pool_worker());
            saw_nested_parallel
                .fetch_add(usize::from(effective_workers(16) != 1), Ordering::Relaxed);
            // A nested pool still computes — just inline.
            let inner = run_all(16, 3, |w, i| {
                assert_eq!(w, 0);
                i
            });
            assert_eq!(inner, vec![0, 1, 2]);
        });
        assert_eq!(
            saw_nested_parallel.load(Ordering::Relaxed),
            0,
            "effective_workers must clamp to 1 inside a pool worker"
        );
    }

    #[test]
    fn stop_flag_skips_pending_tasks() {
        let stop = AtomicBool::new(false);
        let executed = AtomicUsize::new(0);
        // Single worker, deterministic order: task 2 raises the flag, so
        // tasks 3.. are skipped (drained as None).
        let out = run_indexed(1, 10, &stop, |_, idx| {
            executed.fetch_add(1, Ordering::Relaxed);
            if idx == 2 {
                stop.store(true, Ordering::Relaxed);
            }
            idx
        });
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        assert_eq!(out[..3], [Some(0), Some(1), Some(2)]);
        assert!(out[3..].iter().all(Option::is_none));
    }

    #[test]
    fn stop_flag_drains_multi_worker_pools() {
        let stop = AtomicBool::new(true); // pre-set: nothing should execute
        let out: Vec<Option<usize>> = run_indexed(4, 100, &stop, |_, idx| idx);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn spawned_threads_moves_with_multi_worker_pools() {
        // The counter is process-wide and only ever grows; concurrent
        // tests can add to it but never subtract, so the delta across a
        // 3-worker run is at least 3. (The complementary zero-spawn
        // assertion lives in tso-model's single-test `adaptive_pool`
        // integration binary, where no concurrent pool can race it.)
        let before = spawned_threads();
        let _ = run_all(3, 8, |_, i| i);
        assert!(spawned_threads() >= before + 3);
    }

    #[test]
    fn zero_tasks_and_zero_workers_are_fine() {
        let out: Vec<usize> = run_all(0, 0, |_, i| i);
        assert!(out.is_empty());
        let out = run_all(0, 2, |_, i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn a_panicking_task_is_isolated_and_the_pool_survives() {
        // Task 3 panics; every other task must still produce its result,
        // on both the inline path and the threaded pool.
        for workers in [1, 4] {
            let out = run_all_catching(workers, 8, |_, idx| {
                assert!(idx != 3 || panic!("injected panic for task 3"));
                idx * 2
            });
            assert_eq!(out.len(), 8);
            for (idx, res) in out.iter().enumerate() {
                if idx == 3 {
                    let err = res.as_ref().expect_err("task 3 panicked");
                    assert_eq!(err.message, "injected panic for task 3");
                    assert!(err.worker < workers.max(1));
                } else {
                    assert_eq!(*res, Ok(idx * 2), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn workers_are_reused_after_catching_a_panic() {
        // One worker, first task panics: the same (only) worker must run
        // every later task, proving catch_unwind keeps it alive.
        let out = run_all_catching(1, 5, |worker, idx| {
            assert_eq!(worker, 0);
            if idx == 0 {
                panic!("first task dies");
            }
            idx
        });
        assert!(out[0].is_err());
        for (idx, res) in out.iter().enumerate().skip(1) {
            assert_eq!(*res, Ok(idx));
        }
    }

    #[test]
    fn string_and_str_panic_payloads_are_rendered() {
        let out = run_all_catching(1, 2, |_, idx| {
            if idx == 0 {
                panic!("{}", String::from("formatted payload"));
            }
            std::panic::panic_any(42u32);
        });
        assert_eq!(out[0].as_ref().unwrap_err().message, "formatted payload");
        assert_eq!(
            out[1].as_ref().unwrap_err().message,
            "non-string panic payload"
        );
    }

    #[test]
    fn catching_pools_still_honor_the_stop_flag() {
        let stop = AtomicBool::new(false);
        let out = run_indexed_catching(1, 10, &stop, |_, idx| {
            if idx == 1 {
                stop.store(true, Ordering::Relaxed);
            }
            idx
        });
        assert_eq!(out[0], Some(Ok(0)));
        assert_eq!(out[1], Some(Ok(1)));
        assert!(out[2..].iter().all(Option::is_none));
    }

    #[test]
    fn effective_workers_floors_at_one() {
        assert_eq!(effective_workers(0), 1);
        assert_eq!(effective_workers(1), 1);
        assert_eq!(effective_workers(8), 8);
        assert!(default_workers() >= 1);
    }
}
