//! Deterministic fault injection for the harness's persistence paths.
//!
//! Every write path that touches durable state — verdict-store appends,
//! compaction, campaign checkpoints, report output — passes through a
//! named **fault point**. With no fault mode installed (the default,
//! including every production run) a fault point is a single mutex-free
//! atomic load and the I/O proceeds untouched. When a mode is installed,
//! each arrival at a point consults the registry and may be answered
//! with an injected failure:
//!
//! * [`FaultAction::IoError`] — the operation fails with a generic
//!   injected I/O error, nothing written;
//! * [`FaultAction::NoSpace`] — as above, with an ENOSPC-shaped message
//!   (a full disk is the most common real-world trigger);
//! * [`FaultAction::ShortWrite`] — half the buffer is written, then the
//!   operation fails: a torn record, exactly what a crash mid-`write`
//!   leaves behind;
//! * [`FaultAction::Kill`] — the process exits with status 137
//!   (`kill -9`'s waitpid status), simulating a hard kill at the point;
//! * [`FaultAction::Panic`] — the calling thread panics, simulating a
//!   harness bug inside a worker.
//!
//! Two modes drive the decisions:
//!
//! * **Random** ([`install_random`], CLI `--faults SEED:RATE`): each
//!   arrival hashes `(seed, point, arrival#)` and fires with probability
//!   `rate`. The stream is a pure function of the seed and the arrival
//!   order, so a single-threaded path (checkpointing, compaction) is
//!   exactly reproducible, and any path is *statistically* reproducible.
//!   Random mode only injects I/O-shaped faults at I/O points and kills
//!   at kill points — it never panics (a random panic would change
//!   which tests execute and break the digest-equality contract the
//!   chaos suite checks).
//! * **Plan** ([`install_plan`]): an explicit list of
//!   `(point, arrival#, action)` triples for tests that need one
//!   surgical fault — including panics.
//!
//! The contract the chaos suite enforces on top of this module:
//! injected faults may make verdicts **missing** (a record not
//! persisted, a checkpoint not advanced, a test reported `crashed`) but
//! never **wrong** — whatever survives re-opens, re-resumes, and
//! re-merges to the same answers a fault-free run produces.
//!
//! The registry is process-wide (the store and checkpoint hooks it
//! guards are process-wide too); tests that install modes must
//! serialize on a lock, as `tests/chaos.rs` does.

use rmw_types::fasthash::FastHasher;
use std::collections::HashMap;
use std::hash::Hasher as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// What an injected fault does when it fires. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail with a generic injected I/O error; nothing is written.
    IoError,
    /// Fail with an ENOSPC-shaped error; nothing is written.
    NoSpace,
    /// Write half the buffer, then fail — a torn write.
    ShortWrite,
    /// Exit the process with status 137, as `kill -9` would.
    Kill,
    /// Panic the calling thread (plan mode only in practice).
    Panic,
}

/// One entry of a programmatic fault plan: fire `action` on the
/// `arrival`-th time (0-based, process-wide) `point` is reached.
#[derive(Debug, Clone)]
pub struct PlannedFault {
    /// Fault-point name, e.g. `"store.append.write"`.
    pub point: String,
    /// Which arrival at the point fires (0 = the first).
    pub arrival: u64,
    /// What happens when it fires.
    pub action: FaultAction,
}

/// What kind of faults are meaningful at a point. Random mode uses this
/// to keep kills at kill points and panics out of random streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PointClass {
    Io,
    Kill,
    Panic,
}

enum Mode {
    Random { seed: u64, rate_ppm: u64 },
    Plan(Vec<PlannedFault>),
}

struct Registry {
    mode: Mode,
    /// Arrivals per point so far (the `arrival#` both modes key on).
    arrivals: HashMap<String, u64>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static FIRED: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Installs random mode: each arrival at a point fires with probability
/// `rate_ppm` parts per million, decided by hashing
/// `(seed, point, arrival#)`. Replaces any installed mode.
pub fn install_random(seed: u64, rate_ppm: u64) {
    install(Mode::Random { seed, rate_ppm });
}

/// Installs an explicit fault plan. Replaces any installed mode.
pub fn install_plan(plan: Vec<PlannedFault>) {
    install(Mode::Plan(plan));
}

fn install(mode: Mode) {
    let mut reg = lock();
    *reg = Some(Registry {
        mode,
        arrivals: HashMap::new(),
    });
    FIRED.store(0, Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Uninstalls any fault mode; fault points become free again.
pub fn clear() {
    let mut reg = lock();
    *reg = None;
    ACTIVE.store(false, Ordering::Relaxed);
}

/// True while a fault mode is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Faults fired since the last [`install_random`]/[`install_plan`].
pub fn fired() -> u64 {
    FIRED.load(Ordering::Relaxed)
}

/// Parses a `--faults SEED:RATE` spec. `RATE` is a probability in
/// `[0, 1]` (e.g. `0.01`); returns `(seed, rate_ppm)`.
pub fn parse_spec(s: &str) -> Option<(u64, u64)> {
    let (seed, rate) = s.split_once(':')?;
    let seed: u64 = seed.trim().parse().ok()?;
    let rate: f64 = rate.trim().parse().ok()?;
    if !(0.0..=1.0).contains(&rate) {
        return None;
    }
    Some((seed, (rate * 1e6).round() as u64))
}

fn lock() -> std::sync::MutexGuard<'static, Option<Registry>> {
    // A panicking holder (an injected Panic raced with another point)
    // leaves nothing corrupt: the registry is a counter map.
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The decision at one arrival of `point`. `None` = no fault.
fn decide(point: &str, class: PointClass) -> Option<FaultAction> {
    if !active() {
        return None;
    }
    let mut guard = lock();
    let reg = guard.as_mut()?;
    let arrival = {
        let n = reg.arrivals.entry(point.to_owned()).or_insert(0);
        let a = *n;
        *n += 1;
        a
    };
    let action = match &reg.mode {
        Mode::Random { seed, rate_ppm } => {
            let mut h = FastHasher::default();
            h.write_u64(*seed);
            h.write(point.as_bytes());
            h.write_u64(arrival);
            let h = h.finish();
            if h % 1_000_000 >= *rate_ppm {
                None
            } else {
                match class {
                    PointClass::Io => Some(match (h / 1_000_000) % 3 {
                        0 => FaultAction::IoError,
                        1 => FaultAction::NoSpace,
                        _ => FaultAction::ShortWrite,
                    }),
                    PointClass::Kill => Some(FaultAction::Kill),
                    // Random panics would change which tests run and
                    // break digest equality; plans can still ask.
                    PointClass::Panic => None,
                }
            }
        }
        Mode::Plan(plan) => plan
            .iter()
            .find(|p| p.point == point && p.arrival == arrival)
            .map(|p| p.action),
    };
    if action.is_some() {
        FIRED.fetch_add(1, Ordering::Relaxed);
    }
    action
}

fn injected_err(point: &str, action: FaultAction) -> io::Error {
    match action {
        FaultAction::NoSpace => io::Error::other(format!(
            "injected fault at {point}: no space left on device"
        )),
        _ => io::Error::other(format!("injected I/O fault at {point}")),
    }
}

/// An I/O fault point with no buffer of its own (opens, renames,
/// syncs): returns `Err` when a fault fires, `Ok(())` otherwise.
pub fn io_point(point: &str) -> io::Result<()> {
    match decide(point, PointClass::Io) {
        None => Ok(()),
        Some(FaultAction::Kill) => die(point),
        Some(FaultAction::Panic) => panic!("injected panic at {point}"),
        Some(a) => Err(injected_err(point, a)),
    }
}

/// A buffered-write fault point: writes `buf` to `w` unless a fault
/// fires. [`FaultAction::ShortWrite`] writes the first half and then
/// fails — the torn-record shape a mid-write crash leaves; a planned
/// [`FaultAction::Kill`] also tears first, then exits, so subprocess
/// chaos tests exercise real torn tails.
pub fn write_point(w: &mut impl Write, buf: &[u8], point: &str) -> io::Result<()> {
    match decide(point, PointClass::Io) {
        None => w.write_all(buf),
        Some(FaultAction::ShortWrite) => {
            w.write_all(&buf[..buf.len() / 2])?;
            let _ = w.flush();
            Err(injected_err(point, FaultAction::ShortWrite))
        }
        Some(FaultAction::Kill) => {
            let _ = w.write_all(&buf[..buf.len() / 2]);
            let _ = w.flush();
            die(point)
        }
        Some(FaultAction::Panic) => panic!("injected panic at {point}"),
        Some(a) => Err(injected_err(point, a)),
    }
}

/// A kill point: a place where dying must be safe (the chaos campaign
/// kills here). In random mode only `Kill` can fire; plans can also
/// place one anywhere via [`io_point`]/[`write_point`].
pub fn kill_point(point: &str) {
    if decide(point, PointClass::Kill).is_some() {
        die(point);
    }
}

/// A panic point: fires only from an explicit plan (random mode never
/// panics; see the module docs).
pub fn panic_point(point: &str) {
    if let Some(FaultAction::Panic) = decide(point, PointClass::Panic) {
        panic!("injected panic at {point}");
    }
}

fn die(point: &str) -> ! {
    eprintln!("faults: injected kill at {point}");
    std::process::exit(137);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-wide; every test owns it via this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn inactive_points_are_free_and_succeed() {
        let _g = test_lock();
        clear();
        assert!(!active());
        assert!(io_point("x").is_ok());
        let mut out = Vec::new();
        write_point(&mut out, b"abcd", "y").unwrap();
        assert_eq!(out, b"abcd");
        kill_point("z");
        panic_point("w");
        assert_eq!(fired(), 0);
    }

    #[test]
    fn plans_fire_on_the_exact_arrival() {
        let _g = test_lock();
        install_plan(vec![PlannedFault {
            point: "p.io".into(),
            arrival: 1,
            action: FaultAction::NoSpace,
        }]);
        assert!(io_point("p.io").is_ok(), "arrival 0 passes");
        let err = io_point("p.io").unwrap_err();
        assert!(err.to_string().contains("no space"), "{err}");
        assert!(io_point("p.io").is_ok(), "arrival 2 passes again");
        assert_eq!(fired(), 1);
        clear();
    }

    #[test]
    fn short_writes_tear_the_buffer_in_half() {
        let _g = test_lock();
        install_plan(vec![PlannedFault {
            point: "p.w".into(),
            arrival: 0,
            action: FaultAction::ShortWrite,
        }]);
        let mut out = Vec::new();
        let err = write_point(&mut out, b"abcdefgh", "p.w").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(out, b"abcd", "exactly half the buffer landed");
        clear();
    }

    #[test]
    fn random_mode_is_deterministic_and_rate_zero_never_fires() {
        let _g = test_lock();
        install_random(7, 0);
        for _ in 0..100 {
            io_point("r").unwrap();
        }
        assert_eq!(fired(), 0, "rate 0 fires nothing");

        // Rate 1.0 always fires, and the kind stream replays exactly.
        let kinds = |seed| {
            install_random(seed, 1_000_000);
            let kinds: Vec<String> = (0..16)
                .map(|_| io_point("r").unwrap_err().to_string())
                .collect();
            assert_eq!(fired(), 16);
            kinds
        };
        let a = kinds(42);
        let b = kinds(42);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, kinds(43), "different seed, different stream");
        clear();
    }

    #[test]
    fn random_mode_never_panics_at_panic_points() {
        let _g = test_lock();
        install_random(1, 1_000_000);
        for _ in 0..50 {
            panic_point("p.panic");
        }
        clear();
    }

    #[test]
    fn specs_parse_probabilities() {
        assert_eq!(parse_spec("42:0.5"), Some((42, 500_000)));
        assert_eq!(parse_spec("0:1"), Some((0, 1_000_000)));
        assert_eq!(parse_spec("7:0"), Some((7, 0)));
        assert_eq!(parse_spec("7:2.0"), None, "rate > 1 rejected");
        assert_eq!(parse_spec("x:0.1"), None);
        assert_eq!(parse_spec("42"), None);
    }
}
