//! Parallel differential litmus harness.
//!
//! Every litmus test is run two ways and the results are compared:
//!
//! 1. **Model verdict** — [`Litmus::check`] on the streaming axiomatic
//!    search, against the test's expectation (with a witness execution
//!    attached to any failure);
//! 2. **Differential check** — for each of the three RMW atomicities, the
//!    program is rewritten to that atomicity
//!    ([`Program::with_atomicity`](tso_model::Program::with_atomicity)),
//!    lowered onto simulator traces ([`tso_sim::lower()`]), executed on the
//!    timing machine configured to match, and the simulator's outcome
//!    (read values *and* final memory) must be in the model's allowed set.
//!
//! The batch runner ([`run_batch`]) distributes tests over a pool of
//! worker threads pulling indices from a shared channel-fed queue — an
//! idle worker steals the next test the moment it frees up, so long-tail
//! tests don't serialize the batch. Results stream back over a second
//! channel and are reassembled in corpus order.
//!
//! The `litmus_run` binary wraps this in a CLI with `--filter`, `--jobs`,
//! `--smoke`, and `--format json|tap|summary`; see `README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use litmus::{classic, gen, paper, Expect, Litmus};
use rmw_types::{Atomicity, Value};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tso_model::allowed_outcomes;
use tso_sim::{lower_with_line_size, sim_addr, Machine, SimConfig};

/// Which simulated machine the differential side runs on.
///
/// The default is the short-latency test machine sized to the program's
/// thread count; `Paper` runs every test on the full 32-core Table 2
/// configuration (300-cycle memory, 8×4 mesh) — tractable for whole-corpus
/// runs since the simulator's event-driven engine (`BENCH_sim.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineKind {
    /// `SimConfig::small(threads)`: per-test sizing, short latencies.
    #[default]
    Small,
    /// `SimConfig::paper_table2()`: the paper's 32-core machine.
    Paper,
}

impl MachineKind {
    /// Name used in CLI flags and the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::Small => "small",
            MachineKind::Paper => "paper",
        }
    }

    /// Parses a `--machine` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(MachineKind::Small),
            "paper" => Some(MachineKind::Paper),
            _ => None,
        }
    }

    /// The simulator configuration for a `threads`-thread test program.
    ///
    /// # Panics
    ///
    /// Panics if the program needs more threads than the paper machine
    /// has cores.
    pub fn config(self, threads: usize) -> SimConfig {
        match self {
            MachineKind::Small => SimConfig::small(threads.max(1)),
            MachineKind::Paper => {
                let cfg = SimConfig::paper_table2();
                assert!(
                    threads <= cfg.num_cores(),
                    "{threads}-thread test exceeds the 32-core Table 2 machine"
                );
                cfg
            }
        }
    }
}

impl core::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

pub mod report;

pub use report::Report;

/// One atomicity's differential comparison for one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffOutcome {
    /// The machine-wide RMW atomicity the simulator ran with.
    pub atomicity: Atomicity,
    /// True iff the simulator completed without deadlock and its outcome
    /// (reads and final memory) is in the model's allowed set.
    pub agreed: bool,
    /// The simulator hit the deadlock detector.
    pub deadlocked: bool,
    /// The simulator's read values, in `(thread, po)` order.
    pub sim_reads: Vec<Value>,
}

/// The full result of running one litmus test through the harness.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Test name.
    pub name: String,
    /// The test's expectation.
    pub expect: Expect,
    /// Whether the model observed the target outcome.
    pub observed_allowed: bool,
    /// Model verdict matched the expectation.
    pub model_passed: bool,
    /// Human-readable failure report (with witness execution) when the
    /// model verdict failed.
    pub failure_detail: Option<String>,
    /// Differential comparison per atomicity (type-1, type-2, type-3).
    pub differential: Vec<DiffOutcome>,
    /// Wall-clock microseconds this test took (model + 3 sim runs).
    pub micros: u64,
}

impl TestOutcome {
    /// True iff the model verdict passed and every atomicity agreed.
    pub fn passed(&self) -> bool {
        self.model_passed && self.differential.iter().all(|d| d.agreed)
    }

    /// Short diagnosis for TAP/JSON failure lines.
    pub fn diagnosis(&self) -> String {
        if self.passed() {
            return String::new();
        }
        let mut parts = Vec::new();
        if !self.model_passed {
            parts.push(format!(
                "model: expected {}, observed allowed={}",
                self.expect, self.observed_allowed
            ));
        }
        for d in &self.differential {
            if !d.agreed {
                parts.push(format!(
                    "sim {} {}: reads {:?} not allowed by the model",
                    d.atomicity,
                    if d.deadlocked {
                        "deadlocked"
                    } else {
                        "disagreed"
                    },
                    d.sim_reads
                ));
            }
        }
        parts.join("; ")
    }
}

/// Runs one litmus test on the default small machine; see
/// [`differential_check_on`].
pub fn differential_check(l: &Litmus) -> TestOutcome {
    differential_check_on(l, MachineKind::Small)
}

/// Runs one litmus test: model verdict plus the three-atomicity
/// differential comparison against the simulator, on the chosen machine.
pub fn differential_check_on(l: &Litmus, machine: MachineKind) -> TestOutcome {
    let started = Instant::now();
    let check = l.check();
    let failure_detail = (!check.passed).then(|| check.report());

    let mut differential = Vec::with_capacity(Atomicity::ALL.len());
    for atomicity in Atomicity::ALL {
        let prog = l.program.with_atomicity(atomicity);
        let mut cfg = machine.config(prog.num_threads());
        cfg.rmw_atomicity = atomicity;
        let line_size = cfg.line_size;
        let result = Machine::new(cfg, lower_with_line_size(&prog, line_size)).run();
        let sim_reads: Vec<Value> = result.reads.iter().flatten().copied().collect();
        let agreed = !result.deadlocked && {
            let allowed = allowed_outcomes(&prog);
            allowed.iter().any(|o| {
                o.read_values() == sim_reads
                    && o.final_memory().iter().all(|(&a, &v)| {
                        result
                            .memory
                            .get(&sim_addr(a, line_size))
                            .copied()
                            .unwrap_or(0)
                            == v
                    })
            })
        };
        differential.push(DiffOutcome {
            atomicity,
            agreed,
            deadlocked: result.deadlocked,
            sim_reads,
        });
    }

    TestOutcome {
        name: l.name.clone(),
        expect: l.expect,
        observed_allowed: check.observed_allowed,
        model_passed: check.passed,
        failure_detail,
        differential,
        micros: started.elapsed().as_micros() as u64,
    }
}

/// The full corpus the harness runs: the hand-written classic and paper
/// tests followed by the generated families and `random_count` seeded
/// random tests.
pub fn full_corpus(seed: u64, random_count: usize) -> Vec<Litmus> {
    let mut tests: Vec<Litmus> = classic::all();
    tests.extend(paper::all());
    tests.extend(gen::generated_corpus(seed, random_count));
    tests
}

/// Maximum number of tests a `--smoke` run executes.
pub const SMOKE_CAP: usize = 250;

/// Whether a test is in the `--smoke` subset: small programs only, capped
/// at [`SMOKE_CAP`] tests by the caller. The *reported* corpus size always
/// refers to the full corpus, so CI can enforce the 500-test floor even on
/// smoke runs.
pub fn smoke_filter(l: &Litmus) -> bool {
    l.program.num_instrs() <= 6 && l.program.num_threads() <= 4
}

/// Runs `tests` on the default small machine; see [`run_batch_on`].
pub fn run_batch(tests: &[Litmus], jobs: usize) -> (Vec<TestOutcome>, Duration) {
    run_batch_on(tests, jobs, MachineKind::Small)
}

/// Runs `tests` on `jobs` worker threads (a shared channel-fed queue; idle
/// workers pull the next index, so stragglers never serialize the batch),
/// with the differential side on `machine`. Returns per-test outcomes in
/// input order plus the batch wall-clock.
pub fn run_batch_on(
    tests: &[Litmus],
    jobs: usize,
    machine: MachineKind,
) -> (Vec<TestOutcome>, Duration) {
    let jobs = jobs.max(1).min(tests.len().max(1));
    let started = Instant::now();
    let (job_tx, job_rx) = mpsc::channel::<usize>();
    for i in 0..tests.len() {
        job_tx.send(i).expect("queue accepts all indices");
    }
    drop(job_tx);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (res_tx, res_rx) = mpsc::channel::<(usize, TestOutcome)>();
    let mut slots: Vec<Option<TestOutcome>> = tests.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                // Take the lock only to pop the next index; the check runs
                // with the queue free for the other workers.
                let idx = match job_rx.lock().expect("job queue lock").recv() {
                    Ok(i) => i,
                    Err(_) => break, // queue drained
                };
                let outcome = differential_check_on(&tests[idx], machine);
                if res_tx.send((idx, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        for (idx, outcome) in res_rx {
            slots[idx] = Some(outcome);
        }
    });
    let outcomes = slots
        .into_iter()
        .map(|o| o.expect("every queued test reports back"))
        .collect();
    (outcomes, started.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_corpus_is_differentially_clean() {
        let tests = classic::all();
        let (outcomes, _) = run_batch(&tests, 2);
        assert_eq!(outcomes.len(), tests.len());
        for (t, o) in tests.iter().zip(&outcomes) {
            assert_eq!(t.name, o.name, "outcomes come back in corpus order");
            assert!(o.passed(), "{}: {}", o.name, o.diagnosis());
            assert_eq!(o.differential.len(), 3);
        }
    }

    #[test]
    fn paper_corpus_is_differentially_clean() {
        let (outcomes, _) = run_batch(&paper::all(), 4);
        for o in &outcomes {
            assert!(o.passed(), "{}: {}", o.name, o.diagnosis());
        }
    }

    #[test]
    fn paper_machine_corpus_is_differentially_clean() {
        // The full Table 2 machine (the event engine makes this cheap).
        let tests = classic::all();
        let (outcomes, _) = run_batch_on(&tests, 2, MachineKind::Paper);
        for o in &outcomes {
            assert!(o.passed(), "{}: {}", o.name, o.diagnosis());
        }
    }

    #[test]
    fn machine_kind_parses_and_sizes() {
        assert_eq!(MachineKind::parse("small"), Some(MachineKind::Small));
        assert_eq!(MachineKind::parse("paper"), Some(MachineKind::Paper));
        assert_eq!(MachineKind::parse("huge"), None);
        assert_eq!(MachineKind::Paper.config(4).num_cores(), 32);
        assert_eq!(MachineKind::Small.config(4).num_cores(), 4);
        assert_eq!(MachineKind::default(), MachineKind::Small);
    }

    #[test]
    fn jobs_zero_and_oversubscription_are_clamped() {
        let tests = vec![classic::sb(), classic::mp()];
        let (a, _) = run_batch(&tests, 0);
        let (b, _) = run_batch(&tests, 64);
        assert!(a.iter().all(TestOutcome::passed));
        assert!(b.iter().all(TestOutcome::passed));
    }

    #[test]
    fn a_wrong_expectation_is_reported_with_its_witness() {
        let mut broken = classic::sb();
        broken.expect = Expect::Forbidden;
        let o = differential_check(&broken);
        assert!(!o.passed());
        assert!(!o.model_passed);
        let detail = o.failure_detail.as_deref().expect("failure carries detail");
        assert!(detail.contains("witness execution"), "witness in: {detail}");
        assert!(o.diagnosis().contains("expected forbidden"));
        // The differential side is still clean — the simulator is not wrong
        // just because the expectation was.
        assert!(o.differential.iter().all(|d| d.agreed));
    }

    #[test]
    fn smoke_filter_keeps_the_small_shapes() {
        assert!(smoke_filter(&classic::sb()));
        assert!(!smoke_filter(&litmus::gen::sb_ring(6)));
    }
}
