//! Parallel differential litmus harness.
//!
//! Every litmus test is run two ways and the results are compared:
//!
//! 1. **Model verdict** — [`Litmus::check`] on the streaming axiomatic
//!    search, against the test's expectation (with a witness execution
//!    attached to any failure);
//! 2. **Differential check** — for each of the three RMW atomicities, the
//!    program is rewritten to that atomicity
//!    ([`Program::with_atomicity`](tso_model::Program::with_atomicity)),
//!    lowered onto simulator traces ([`tso_sim::lower()`]), executed on the
//!    timing machine configured to match, and the simulator's outcome
//!    (read values *and* final memory) must be in the model's allowed set.
//!
//! The batch runner ([`run_batch`]) distributes tests over the shared
//! [`exec_pool`] worker pool — tests are pulled from a channel-fed queue,
//! so an idle worker steals the next test the moment it frees up and
//! long-tail tests don't serialize the batch. Each outcome records the
//! **stable worker id** (`0..jobs`, assigned at spawn) that executed it,
//! so per-test timings in the JSON report attribute to real workers
//! rather than implicit spawn order. The pool's oversubscription guard
//! keeps the per-test *model* searches sequential inside harness workers:
//! `--jobs N` means N threads, not N × model-workers.
//!
//! Model queries go through `tso-model`'s memoized outcome-set cache
//! (canonical-fingerprint keyed): the verdict check and the three
//! per-atomicity differential sets collapse to one model invocation per
//! canonical program class, and the report carries the process-wide
//! counters ([`Report::model_cache`]).
//!
//! The `litmus_run` binary wraps this in a CLI with `--filter`, `--jobs`,
//! `--smoke`, and `--format json|tap|summary`; see `README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use litmus::{classic, gen, paper, Expect, Litmus};
use rmw_types::{Atomicity, Value};
use std::time::{Duration, Instant};
use tso_model::{allowed_outcomes_cached, SearchStats};
use tso_sim::{lower_with_line_size, sim_addr, Machine, SimConfig};

/// Which simulated machine the differential side runs on.
///
/// The default is the short-latency test machine sized to the program's
/// thread count; `Paper` runs every test on the full 32-core Table 2
/// configuration (300-cycle memory, 8×4 mesh) — tractable for whole-corpus
/// runs since the simulator's event-driven engine (`BENCH_sim.json`).
/// `Scaled128`/`Scaled256` keep every Table 2 latency and grow the mesh
/// ([`SimConfig::paper_scaled`]) — machines the paper never evaluated,
/// used to probe whether its conclusions survive scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineKind {
    /// `SimConfig::small(threads)`: per-test sizing, short latencies.
    #[default]
    Small,
    /// `SimConfig::paper_table2()`: the paper's 32-core machine.
    Paper,
    /// `SimConfig::paper_scaled(128)`: Table 2 latencies, 12×11 mesh.
    Scaled128,
    /// `SimConfig::paper_scaled(256)`: Table 2 latencies, 16×16 mesh.
    Scaled256,
}

impl MachineKind {
    /// Name used in CLI flags and the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::Small => "small",
            MachineKind::Paper => "paper",
            MachineKind::Scaled128 => "128",
            MachineKind::Scaled256 => "256",
        }
    }

    /// Parses a `--machine` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(MachineKind::Small),
            "paper" => Some(MachineKind::Paper),
            "128" => Some(MachineKind::Scaled128),
            "256" => Some(MachineKind::Scaled256),
            _ => None,
        }
    }

    /// The simulator configuration for a `threads`-thread test program.
    ///
    /// # Panics
    ///
    /// Panics if the program needs more threads than the machine has
    /// cores.
    pub fn config(self, threads: usize) -> SimConfig {
        let cfg = match self {
            MachineKind::Small => return SimConfig::small(threads.max(1)),
            MachineKind::Paper => SimConfig::paper_table2(),
            MachineKind::Scaled128 => SimConfig::paper_scaled(128),
            MachineKind::Scaled256 => SimConfig::paper_scaled(256),
        };
        assert!(
            threads <= cfg.num_cores(),
            "{threads}-thread test exceeds the {}-core {} machine",
            cfg.num_cores(),
            self.name()
        );
        cfg
    }
}

impl core::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

pub mod campaign;
pub mod faults;
pub mod report;
pub mod store;

mod jsonx;

pub use report::Report;

/// One atomicity's differential comparison for one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffOutcome {
    /// The machine-wide RMW atomicity the simulator ran with.
    pub atomicity: Atomicity,
    /// True iff the simulator completed without deadlock and its outcome
    /// (reads and final memory) is in the model's allowed set.
    pub agreed: bool,
    /// The simulator hit the deadlock detector.
    pub deadlocked: bool,
    /// The simulator's read values, in `(thread, po)` order.
    pub sim_reads: Vec<Value>,
}

/// The full result of running one litmus test through the harness.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Test name.
    pub name: String,
    /// The test's expectation.
    pub expect: Expect,
    /// Whether the model observed the target outcome.
    pub observed_allowed: bool,
    /// Model verdict matched the expectation.
    pub model_passed: bool,
    /// Human-readable failure report (with witness execution) when the
    /// model verdict failed.
    pub failure_detail: Option<String>,
    /// Differential comparison per atomicity (type-1, type-2, type-3).
    pub differential: Vec<DiffOutcome>,
    /// Wall-clock microseconds this test took (model + 3 sim runs).
    pub micros: u64,
    /// Stable id of the pool worker that executed the test (0 when run
    /// outside a batch).
    pub worker: usize,
    /// Model search stats summed over this test's model queries (the
    /// verdict check plus one outcome set per atomicity). Cache hits
    /// carry the stats of the search that originally proved the entry,
    /// so the numbers describe the *class weight*, not necessarily work
    /// done during this test.
    pub model_stats: SearchStats,
    /// Model queries this test issued (verdict + per-atomicity sets).
    pub model_queries: u32,
    /// How many of those were served from the memoized verdict cache.
    pub model_cache_hits: u32,
    /// How many verdict-cache misses were answered by replaying a prefix
    /// certificate from an atomicity sibling instead of searching.
    pub prefix_hits: u32,
    /// How many of this test's model queries ran a search that fanned
    /// out across pool workers (the adaptive engine chose to split).
    pub split_decisions: u32,
    /// True when a model query behind this test hit its search budget:
    /// the answer is a sound subset, so non-observation is *unknown*, not
    /// a verdict. Unknown checks are forced to pass (missing, never
    /// wrong) and surfaced in the report's `unknown` count.
    pub unknown: bool,
    /// True when the test panicked inside its worker: no verdict at all.
    /// The panic message is in `failure_detail`. Crashed tests fail the
    /// run but are excluded from `model_failures` (they proved nothing)
    /// and from campaign digests (they processed nothing).
    pub crashed: bool,
}

impl TestOutcome {
    /// The outcome of a test whose worker panicked: no verdicts, fails
    /// the run, carries the panic message as its failure detail.
    pub fn crashed(name: String, expect: Expect, worker: usize, message: String) -> TestOutcome {
        TestOutcome {
            name,
            expect,
            observed_allowed: false,
            model_passed: false,
            failure_detail: Some(message),
            differential: Vec::new(),
            micros: 0,
            worker,
            model_stats: SearchStats::default(),
            model_queries: 0,
            model_cache_hits: 0,
            prefix_hits: 0,
            split_decisions: 0,
            unknown: false,
            crashed: true,
        }
    }

    /// True iff the model verdict passed and every atomicity agreed.
    pub fn passed(&self) -> bool {
        !self.crashed && self.model_passed && self.differential.iter().all(|d| d.agreed)
    }

    /// Short diagnosis for TAP/JSON failure lines.
    pub fn diagnosis(&self) -> String {
        if self.passed() {
            return String::new();
        }
        if self.crashed {
            return format!(
                "crashed: {}",
                self.failure_detail.as_deref().unwrap_or("worker panicked")
            );
        }
        let mut parts = Vec::new();
        if !self.model_passed {
            parts.push(format!(
                "model: expected {}, observed allowed={}",
                self.expect, self.observed_allowed
            ));
        }
        for d in &self.differential {
            if !d.agreed {
                parts.push(format!(
                    "sim {} {}: reads {:?} not allowed by the model",
                    d.atomicity,
                    if d.deadlocked {
                        "deadlocked"
                    } else {
                        "disagreed"
                    },
                    d.sim_reads
                ));
            }
        }
        parts.join("; ")
    }
}

/// Runs one litmus test on the default small machine; see
/// [`differential_check_on`].
pub fn differential_check(l: &Litmus) -> TestOutcome {
    differential_check_on(l, MachineKind::Small)
}

/// Runs one litmus test: model verdict plus the three-atomicity
/// differential comparison against the simulator, on the chosen machine.
///
/// All model queries (the verdict and the per-atomicity outcome sets) go
/// through the memoized cache — an RMW-free test costs one model
/// invocation instead of four, and permutation-equivalent tests elsewhere
/// in the corpus cost none.
pub fn differential_check_on(l: &Litmus, machine: MachineKind) -> TestOutcome {
    let started = Instant::now();
    // Plan-mode chaos tests inject a panic here to simulate a harness bug
    // inside a worker; random mode never fires at panic points.
    faults::panic_point("harness.test");
    let check = l.check();
    let mut unknown = check.unknown;
    let failure_detail = (!check.passed).then(|| check.report());
    let mut model_stats = check.model_stats;
    let mut model_queries = 1u32;
    let mut model_cache_hits = u32::from(check.cache_hit);
    let mut prefix_hits = u32::from(check.prefix_hit);
    let mut split_decisions = u32::from(check.split);

    let mut differential = Vec::with_capacity(Atomicity::ALL.len());
    for atomicity in Atomicity::ALL {
        let prog = l.program.with_atomicity(atomicity);
        let mut cfg = machine.config(prog.num_threads());
        cfg.rmw_atomicity = atomicity;
        let line_size = cfg.line_size;
        let result = Machine::new(cfg, lower_with_line_size(&prog, line_size)).run();
        let sim_reads: Vec<Value> = result.reads.iter().flatten().copied().collect();
        let allowed = allowed_outcomes_cached(&prog);
        model_stats.absorb(&allowed.stats);
        model_queries += 1;
        model_cache_hits += u32::from(allowed.hit);
        prefix_hits += u32::from(allowed.prefix_hit);
        split_decisions += u32::from(allowed.split);
        let found = allowed.outcomes.iter().any(|o| {
            o.read_values() == sim_reads
                && o.final_memory().iter().all(|&(a, v)| {
                    result
                        .memory
                        .get(&sim_addr(a, line_size))
                        .copied()
                        .unwrap_or(0)
                        == v
                })
        });
        // A budget-truncated set is a sound subset: membership proves
        // agreement, but absence proves nothing — report unknown, not a
        // disagreement (deadlock is the simulator's own property and
        // stays a failure regardless).
        if allowed.unknown && !found {
            unknown = true;
        }
        let agreed = !result.deadlocked && (found || allowed.unknown);
        differential.push(DiffOutcome {
            atomicity,
            agreed,
            deadlocked: result.deadlocked,
            sim_reads,
        });
    }

    TestOutcome {
        name: l.name.clone(),
        expect: l.expect,
        observed_allowed: check.observed_allowed,
        model_passed: check.passed,
        failure_detail,
        differential,
        micros: started.elapsed().as_micros() as u64,
        worker: 0,
        model_stats,
        model_queries,
        model_cache_hits,
        prefix_hits,
        split_decisions,
        unknown,
        crashed: false,
    }
}

/// The full corpus the harness runs: the hand-written classic and paper
/// tests followed by the generated families and `random_count` seeded
/// random tests.
pub fn full_corpus(seed: u64, random_count: usize) -> Vec<Litmus> {
    let mut tests: Vec<Litmus> = classic::all();
    tests.extend(paper::all());
    tests.extend(gen::generated_corpus(seed, random_count));
    tests
}

/// Maximum number of tests a `--smoke` run executes.
pub const SMOKE_CAP: usize = 250;

/// Whether a test is in the `--smoke` subset: small programs only, capped
/// at [`SMOKE_CAP`] tests by the caller. The *reported* corpus size always
/// refers to the full corpus, so CI can enforce the 500-test floor even on
/// smoke runs.
pub fn smoke_filter(l: &Litmus) -> bool {
    l.program.num_instrs() <= 6 && l.program.num_threads() <= 4
}

/// Runs `tests` on the default small machine; see [`run_batch_on`].
pub fn run_batch(tests: &[Litmus], jobs: usize) -> (Vec<TestOutcome>, Duration) {
    run_batch_on(tests, jobs, MachineKind::Small)
}

/// Runs `tests` on `jobs` workers of the shared [`exec_pool`] (a
/// channel-fed queue; idle workers pull the next index, so stragglers
/// never serialize the batch), with the differential side on `machine`.
/// Returns per-test outcomes in input order — each stamped with the
/// stable id of the worker that executed it — plus the batch wall-clock.
pub fn run_batch_on(
    tests: &[Litmus],
    jobs: usize,
    machine: MachineKind,
) -> (Vec<TestOutcome>, Duration) {
    let jobs = jobs.max(1).min(tests.len().max(1));
    let started = Instant::now();
    // Crash isolation: a panicking test (a harness bug, an injected
    // fault) becomes a reported `crashed` outcome and its worker keeps
    // pulling tests — one bad test cannot take the batch down.
    let outcomes = exec_pool::run_all_catching(jobs, tests.len(), |worker, idx| {
        let mut outcome = differential_check_on(&tests[idx], machine);
        outcome.worker = worker;
        outcome
    })
    .into_iter()
    .enumerate()
    .map(|(idx, r)| match r {
        Ok(outcome) => outcome,
        Err(panic) => TestOutcome::crashed(
            tests[idx].name.clone(),
            tests[idx].expect,
            panic.worker,
            panic.message,
        ),
    })
    .collect();
    (outcomes, started.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_corpus_is_differentially_clean() {
        let tests = classic::all();
        let (outcomes, _) = run_batch(&tests, 2);
        assert_eq!(outcomes.len(), tests.len());
        for (t, o) in tests.iter().zip(&outcomes) {
            assert_eq!(t.name, o.name, "outcomes come back in corpus order");
            assert!(o.passed(), "{}: {}", o.name, o.diagnosis());
            assert_eq!(o.differential.len(), 3);
        }
    }

    #[test]
    fn paper_corpus_is_differentially_clean() {
        let (outcomes, _) = run_batch(&paper::all(), 4);
        for o in &outcomes {
            assert!(o.passed(), "{}: {}", o.name, o.diagnosis());
        }
    }

    #[test]
    fn paper_machine_corpus_is_differentially_clean() {
        // The full Table 2 machine (the event engine makes this cheap).
        let tests = classic::all();
        let (outcomes, _) = run_batch_on(&tests, 2, MachineKind::Paper);
        for o in &outcomes {
            assert!(o.passed(), "{}: {}", o.name, o.diagnosis());
        }
    }

    #[test]
    fn machine_kind_parses_and_sizes() {
        assert_eq!(MachineKind::parse("small"), Some(MachineKind::Small));
        assert_eq!(MachineKind::parse("paper"), Some(MachineKind::Paper));
        assert_eq!(MachineKind::parse("128"), Some(MachineKind::Scaled128));
        assert_eq!(MachineKind::parse("256"), Some(MachineKind::Scaled256));
        assert_eq!(MachineKind::parse("huge"), None);
        assert_eq!(MachineKind::Paper.config(4).num_cores(), 32);
        assert_eq!(MachineKind::Small.config(4).num_cores(), 4);
        assert_eq!(MachineKind::Scaled128.config(4).num_cores(), 128);
        assert_eq!(MachineKind::Scaled256.config(4).num_cores(), 256);
        // Round-trip: every kind parses back from its own name.
        for k in [
            MachineKind::Small,
            MachineKind::Paper,
            MachineKind::Scaled128,
            MachineKind::Scaled256,
        ] {
            assert_eq!(MachineKind::parse(k.name()), Some(k));
        }
        // Scaled machines keep paper latencies.
        let c = MachineKind::Scaled256.config(2);
        assert_eq!(c.coherence.memory_latency, 300);
        assert_eq!(MachineKind::default(), MachineKind::Small);
    }

    #[test]
    fn scaled_machine_corpus_is_differentially_clean() {
        // A couple of classics on the 128-core machine: the differential
        // contract must hold on the scaled mesh too.
        let tests = vec![classic::sb(), classic::mp()];
        let (outcomes, _) = run_batch_on(&tests, 2, MachineKind::Scaled128);
        for o in &outcomes {
            assert!(o.passed(), "{}: {}", o.name, o.diagnosis());
        }
    }

    #[test]
    fn jobs_zero_and_oversubscription_are_clamped() {
        let tests = vec![classic::sb(), classic::mp()];
        let (a, _) = run_batch(&tests, 0);
        let (b, _) = run_batch(&tests, 64);
        assert!(a.iter().all(TestOutcome::passed));
        assert!(b.iter().all(TestOutcome::passed));
    }

    #[test]
    fn a_wrong_expectation_is_reported_with_its_witness() {
        let mut broken = classic::sb();
        broken.expect = Expect::Forbidden;
        let o = differential_check(&broken);
        assert!(!o.passed());
        assert!(!o.model_passed);
        let detail = o.failure_detail.as_deref().expect("failure carries detail");
        assert!(detail.contains("witness execution"), "witness in: {detail}");
        assert!(o.diagnosis().contains("expected forbidden"));
        // The differential side is still clean — the simulator is not wrong
        // just because the expectation was.
        assert!(o.differential.iter().all(|d| d.agreed));
    }

    #[test]
    fn smoke_filter_keeps_the_small_shapes() {
        assert!(smoke_filter(&classic::sb()));
        assert!(!smoke_filter(&litmus::gen::sb_ring(6)));
    }

    #[test]
    fn outcomes_carry_stable_worker_ids_and_model_accounting() {
        let tests = classic::all();
        let jobs = 2;
        let (outcomes, _) = run_batch(&tests, jobs);
        for o in &outcomes {
            assert!(
                o.worker < jobs,
                "{}: worker id {} out of range",
                o.name,
                o.worker
            );
            assert_eq!(
                o.model_queries, 4,
                "{}: verdict + one set per atomicity",
                o.name
            );
            assert!(o.model_cache_hits <= o.model_queries);
            assert!(
                o.model_stats.nodes > 0,
                "{}: attributed model stats must be non-trivial",
                o.name
            );
        }
        // RMW-free tests collapse their atomicity rewrites onto one cache
        // entry, so a second batch over the same corpus is all hits.
        let (again, _) = run_batch(&tests, jobs);
        assert!(again.iter().all(|o| o.model_cache_hits == o.model_queries));
    }
}
