//! A minimal JSON reader for the harness's own artifacts.
//!
//! The workspace is hermetic (no serde), and the campaign driver needs to
//! read back two things it wrote itself: checkpoint files (`--resume`)
//! and per-shard campaign reports (`litmus_run merge`). This module
//! parses standard JSON into a small [`Value`] tree — enough for those
//! callers, with strict-enough errors that a hand-edited file fails
//! loudly instead of resuming from garbage.
//!
//! Numbers are kept as `f64` plus the raw text, so exact `u64` counters
//! (digests, indices) can be re-parsed losslessly via [`Value::as_u64`].

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept with its raw source text for lossless integers.
    Num(f64, String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order not preserved; keys sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n, _) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact `u64`, re-parsed from the source text (so
    /// 64-bit digests and counters survive, where `f64` would round).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean, when this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Value::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let code = parse_hex4(b, *pos + 1)?;
                                *pos += 4;
                                let code = match code {
                                    // High surrogate: JSON encodes non-BMP
                                    // characters as a \uD800–\uDBFF +
                                    // \uDC00–\uDFFF pair.
                                    0xD800..=0xDBFF => {
                                        if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                            return Err("lone high surrogate \\u escape".into());
                                        }
                                        let low = parse_hex4(b, *pos + 3)?;
                                        if !(0xDC00..=0xDFFF).contains(&low) {
                                            return Err(format!(
                                                "high surrogate followed by \\u{low:04X}, \
                                                 not a low surrogate"
                                            ));
                                        }
                                        *pos += 6;
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                    }
                                    0xDC00..=0xDFFF => {
                                        return Err("lone low surrogate \\u escape".into())
                                    }
                                    c => c,
                                };
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "bad \\u codepoint".to_string())?,
                                );
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Copy the full UTF-8 sequence starting at `c`.
                        let width = utf8_width(c);
                        let chunk = b
                            .get(*pos..*pos + width)
                            .ok_or("truncated UTF-8 sequence")?;
                        s.push_str(
                            std::str::from_utf8(chunk).map_err(|_| "bad UTF-8".to_string())?,
                        );
                        *pos += width;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
            let n: f64 = raw
                .parse()
                .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
            Ok(Value::Num(n, raw.to_string()))
        }
    }
}

/// Parses the four hex digits of a `\u` escape starting at byte `at`.
fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    if !hex.iter().all(u8::is_ascii_hexdigit) {
        return Err("bad \\u escape".into());
    }
    // Infallible after the digit check, but stay on the Result path.
    let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_our_reports_use() {
        let v = parse(
            r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}, "big": 18446744073709551615}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("big").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap()[1], Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{1: 2}").is_err());
    }

    #[test]
    fn decodes_surrogate_pairs_and_raw_non_bmp() {
        // JSON encodes non-BMP characters as UTF-16 surrogate pairs:
        // U+1F600 is \uD83D\uDE00.
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        // A pair embedded between other escapes and text.
        assert_eq!(
            parse("\"a\\n\\uD83D\\uDE00b\"").unwrap().as_str(),
            Some("a\n\u{1F600}b")
        );
        // BMP escapes still decode directly.
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("\u{e9}"));
        // Raw (unescaped) non-BMP UTF-8 passes through byte-for-byte.
        assert_eq!(parse("\"\u{1F600}\"").unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_lone_and_mismatched_surrogates() {
        for bad in [
            "\"\\uD83D\"",        // lone high surrogate at end of string
            "\"\\uD83Dx\"",       // high surrogate followed by plain text
            "\"\\uD83D\\n\"",     // high surrogate followed by another escape
            "\"\\uD83D\\u0041\"", // high surrogate + non-surrogate escape
            "\"\\uDE00\"",        // lone low surrogate
            "\"\\uD83D\\uD83D\"", // high + high
            "\"\\uD83\"",         // truncated hex
            "\"\\u+123\"",        // sign is not a hex digit
        ] {
            assert!(parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn roundtrips_report_strings_with_non_bmp_characters() {
        // `json_escape` in report.rs passes non-BMP characters through
        // raw; the reader must accept both that form and the surrogate
        // pair escaped form and produce the identical string.
        let name = "sb+\u{1F600}\u{10348}";
        let raw = format!("{{\"name\": \"{}\"}}", crate::report::json_escape(name));
        assert_eq!(
            parse(&raw).unwrap().get("name").unwrap().as_str(),
            Some(name)
        );
        let escaped = "{\"name\": \"sb+\\uD83D\\uDE00\\uD800\\uDF48\"}";
        assert_eq!(
            parse(escaped).unwrap().get("name").unwrap().as_str(),
            Some(name)
        );
    }

    #[test]
    fn roundtrips_our_own_report_output() {
        use crate::{run_batch, MachineKind, Report};
        let tests = vec![litmus::classic::sb()];
        let (outcomes, elapsed) = run_batch(&tests, 1);
        let report = Report {
            outcomes,
            corpus_total: 1,
            jobs: 1,
            machine: MachineKind::Small,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            baseline_jobs1_ms: None,
            model_cache: Some(tso_model::cache::counters()),
            prefix_cache: Some(tso_model::prefix::counters()),
            store: None,
        };
        let v = parse(&report.to_json()).unwrap();
        assert_eq!(
            v.get("experiment").unwrap().as_str(),
            Some("litmus_harness")
        );
        assert_eq!(v.get("selected").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("passed").unwrap().as_bool(), Some(true));
    }
}
