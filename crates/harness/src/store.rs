//! The persistent verdict store: an append-only record file that keeps
//! model verdicts (and prefix certificates) across `litmus_run`
//! invocations.
//!
//! The in-memory verdict cache (`tso_model::cache`) eliminates repeated
//! model searches *within* a process; this store eliminates them *across*
//! processes. It is the storage tier behind campaign mode: the first run
//! over a corpus pays every model search once and appends each result;
//! every later run — a resumed shard, a re-run, a different shard sharing
//! the file, tomorrow's regression sweep — answers those queries with a
//! file lookup instead of a search. Since format version 2 the same file
//! also persists **prefix certificates**
//! ([`tso_model::prefix`]): the recorded complete-leaf paths that let
//! atomicity siblings replay one pruned search instead of re-running it.
//!
//! # On-disk format (version 2)
//!
//! Everything is little-endian. The file is a fixed 8-byte header
//! followed by length-prefixed records (see `DESIGN.md` "verdict store"
//! for the normative byte-level specification):
//!
//! ```text
//! file    := magic record*
//! magic   := "RMWVST02"                      (8 bytes: format + version)
//! record  := len:u32 checksum:u64 payload    (len = 8 + payload bytes)
//! payload := kind:u32 body
//! kind 1 (verdict):
//! body    := fingerprint:u64
//!            key_words:u32  key:u64[key_words]
//!            stats:u64[6]                    (nodes pruned complete valid tasks workers)
//!            outcome_count:u32 outcome*
//! outcome := reads:u32 read_value:u64[reads]
//!            mem:u32  (addr:u64 value:u64)[mem]
//! kind 2 (certificate):
//! body    := fingerprint:u64
//!            key_words:u32  key:u64[key_words]
//!            nodes:u64 pruned:u64 complete:u64
//!            leaf_count:u32 leaf*
//! leaf    := ws:u32 event:u64[ws]  rf:u32 event:u64[rf]
//! ```
//!
//! A verdict's record key is the program's **full canonical
//! serialization** (`tso_model::Canonical::key`); a certificate's is the
//! **atomicity-masked** canonical key (`tso_model::canon::masked_key`
//! zeroes the per-RMW atomicity rank words) — both collision-proof by
//! construction, with the 64-bit `fingerprint` riding along for
//! diagnostics and shard routing. Outcome reads/memory and certificate
//! leaf paths are in the canonical program's coordinates, which is exactly
//! what the in-memory tiers store; coordinate translation back to each
//! caller's frame stays where it always was, in `tso_model::cache`.
//!
//! # Forward and backward compatibility
//!
//! * **Unknown record kinds are skipped, not treated as corruption.** A
//!   record whose checksum validates but whose `kind` this build does not
//!   know is counted in [`OpenStats::skipped_records`] and replay
//!   continues at the next record — a file written by a newer build loses
//!   only the records this build cannot read. Checksum failures still cut
//!   the replay (see below): the checksum guards record *boundaries*,
//!   the kind tags record *content*.
//! * **Version-1 files still open.** `"RMWVST01"` files (bare verdict
//!   payloads, no kind tag) replay fully; appends through a v1 handle keep
//!   writing v1 verdict records so older tools sharing the file stay
//!   functional, and certificate appends on a v1 file are dropped (v1 has
//!   no encoding for them). [`Store::compact`] always rewrites in the
//!   current format, upgrading the file.
//!
//! # Crash safety
//!
//! Appends are atomic at the record level: a record is serialized to one
//! buffer and written with a single `write_all`. A crash (or `kill -9`,
//! or a full disk) can leave at most a torn record at the *tail*.
//! [`Store::open`] replays the file and accepts the longest valid prefix:
//! a record is valid iff its length field fits in the remaining bytes and
//! the checksum (fasthash of the payload) matches. At the first invalid
//! record the file is truncated back to the end of the valid prefix and
//! the dropped byte count is reported in [`Store::recovered_bytes`]. A
//! torn tail therefore costs at most one record — which the next run
//! simply recomputes and re-appends.
//!
//! Later records win: appending the same key again shadows the earlier
//! record at load time. [`Store::compact`] rewrites the file with one
//! record per key (atomically, via a temp file + rename) — worth running
//! after long campaigns that recorded shadowed entries, and it doubles as
//! the fold when merging per-shard store files into one.
//!
//! One process per store file at a time: the store does no file locking,
//! so concurrent *shards* must write distinct files (the campaign driver
//! derives `PATH.i-of-n` names automatically) and fold them afterwards
//! with `litmus_run compact --merge`.
//!
//! # Example
//!
//! ```
//! use harness::store::{Store, StoredVerdict};
//!
//! let path = std::env::temp_dir().join(format!("doc-store-{}.bin", std::process::id()));
//! # let _ = std::fs::remove_file(&path);
//! // Open (creating) a store, append a verdict, and look it back up.
//! let mut store = Store::open(&path)?;
//! let key = vec![2, u64::MAX, 2, 1, 0, 1, 1];
//! let verdict = StoredVerdict {
//!     outcomes: vec![(vec![0], vec![(0, 1)]), (vec![1], vec![(0, 1)])],
//!     stats: [9, 4, 2, 2, 1, 1],
//! };
//! store.append(&key, 0xfee1, &verdict)?;
//! assert_eq!(store.lookup(&key), Some(&verdict));
//! assert_eq!(store.len(), 1);
//!
//! // Reopen: the record survives the process.
//! drop(store);
//! let reopened = Store::open(&path)?;
//! assert_eq!(reopened.lookup(&key), Some(&verdict));
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::faults;
use rmw_types::fasthash::{FastHashMap, FastHasher};
use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::hash::Hasher as _;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tso_model::prefix::{CertData, CertificateStore};
use tso_model::{Outcome, SearchStats, VerdictStore};

/// File magic: format name + on-disk version in one 8-byte prefix.
pub const MAGIC: &[u8; 8] = b"RMWVST02";

/// The previous format's magic. Version-1 files (verdict records only,
/// no kind tags) open read/write in their own format; see the module docs.
pub const MAGIC_V1: &[u8; 8] = b"RMWVST01";

/// Record kind tag for a verdict record (format version 2).
pub const KIND_VERDICT: u32 = 1;

/// Record kind tag for a prefix-certificate record (format version 2).
pub const KIND_CERT: u32 = 2;

/// Number of `u64` stats words in a record (`nodes`, `pruned`, `complete`,
/// `valid`, `tasks`, `workers` — the additive [`SearchStats`] counters).
pub const STATS_WORDS: usize = 6;

/// One allowed outcome in storable form: the read values in `(thread, po)`
/// order, and the final `(addr, value)` memory pairs, address-sorted.
pub type StoredOutcome = (Vec<u64>, Vec<(u64, u64)>);

/// One stored verdict: the allowed outcome set of a canonical program and
/// the (attributed) stats of the search that proved it.
///
/// Outcomes are `(read_values, final_memory)` pairs in the canonical
/// program's coordinates, exactly as `tso_model::cache` keeps them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredVerdict {
    /// The allowed outcomes, one [`StoredOutcome`] per model outcome.
    pub outcomes: Vec<StoredOutcome>,
    /// The additive [`SearchStats`] counters, in record order.
    pub stats: [u64; STATS_WORDS],
}

impl StoredVerdict {
    /// Converts a model cache entry into its storable form.
    pub fn from_model(outcomes: &BTreeSet<Outcome>, stats: &SearchStats) -> Self {
        StoredVerdict {
            outcomes: outcomes
                .iter()
                .map(|o| {
                    (
                        o.read_values(),
                        o.final_memory().iter().map(|&(a, v)| (a.0, v)).collect(),
                    )
                })
                .collect(),
            stats: [
                stats.nodes,
                stats.pruned,
                stats.complete,
                stats.valid,
                stats.tasks,
                stats.workers,
            ],
        }
    }

    /// Reconstructs the model cache entry form.
    pub fn to_model(&self) -> (BTreeSet<Outcome>, SearchStats) {
        let outcomes = self
            .outcomes
            .iter()
            .map(|(reads, mem)| {
                Outcome::new(
                    reads.clone(),
                    mem.iter().map(|&(a, v)| (rmw_types::Addr(a), v)).collect(),
                )
            })
            .collect();
        let [nodes, pruned, complete, valid, tasks, workers] = self.stats;
        let stats = SearchStats {
            nodes,
            pruned,
            complete,
            valid,
            tasks,
            workers,
            stopped_early: false,
            budget_exhausted: false,
        };
        (outcomes, stats)
    }
}

/// Statistics from opening a store file — how much survived recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Valid records replayed (verdicts and certificates, including
    /// shadowed duplicates).
    pub records: u64,
    /// Distinct verdict keys in the index after replay.
    pub keys: u64,
    /// Bytes dropped from a torn tail (0 on a clean file).
    pub recovered_bytes: u64,
    /// Checksummed records whose kind this build does not understand,
    /// skipped during replay (forward compatibility — see module docs).
    pub skipped_records: u64,
}

/// The append-only verdict store. See the module docs for the format and
/// crash-safety contract.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: File,
    /// On-disk format version of the open file (1 or 2); appends through
    /// this handle stay in the file's own format.
    version: u8,
    index: FastHashMap<Vec<u64>, StoredVerdict>,
    certs: FastHashMap<Vec<u64>, CertData>,
    open_stats: OpenStats,
    appended: u64,
    /// Byte offset of the last known-good record boundary. A failed
    /// append rolls the file back here, so one bad write (full disk,
    /// injected fault) can tear at most itself — never the records a
    /// later append would otherwise strand behind it.
    end_offset: u64,
}

/// `fsync`s the directory containing `path`, making a just-renamed file
/// durable against power loss (the rename itself lives in the directory,
/// not the file).
pub fn fsync_parent(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// One decoded record during replay.
enum Record {
    Verdict(Vec<u64>, StoredVerdict),
    Cert(Vec<u64>, CertData),
    /// Checksummed but not interpretable by this build (unknown kind, or a
    /// malformed body behind a valid checksum) — skipped, never truncated.
    Skipped,
}

impl Store {
    /// Opens (creating if absent) the store at `path`, replaying every
    /// valid record into the in-memory index and truncating any torn
    /// tail left by a crash mid-append. New files are created in the
    /// current format; existing version-1 files open in theirs.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Store> {
        faults::io_point("store.open")?;
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.flush()?;
            return Ok(Store {
                path,
                file,
                version: 2,
                index: FastHashMap::default(),
                certs: FastHashMap::default(),
                open_stats: OpenStats::default(),
                appended: 0,
                end_offset: MAGIC.len() as u64,
            });
        }
        let version = match bytes.get(..MAGIC.len()) {
            Some(m) if m == MAGIC => 2,
            Some(m) if m == MAGIC_V1 => 1,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: not a verdict store (bad magic)", path.display()),
                ))
            }
        };

        let mut index = FastHashMap::default();
        let mut certs = FastHashMap::default();
        let mut records = 0u64;
        let mut skipped_records = 0u64;
        let mut pos = MAGIC.len();
        while let Some((consumed, payload)) = parse_frame(&bytes[pos..]) {
            match parse_payload(payload, version) {
                Some(Record::Verdict(key, verdict)) => {
                    index.insert(key, verdict);
                    records += 1;
                }
                Some(Record::Cert(key, cert)) => {
                    certs.insert(key, cert);
                    records += 1;
                }
                Some(Record::Skipped) => skipped_records += 1,
                // v1 only: a checksummed record that fails to parse as a
                // verdict ends the replay, exactly as it always did.
                None => break,
            }
            pos += consumed;
        }
        let recovered_bytes = (bytes.len() - pos) as u64;
        if recovered_bytes > 0 {
            // Torn tail: truncate back to the valid prefix so the next
            // append starts on a record boundary.
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        let keys = index.len() as u64;
        Ok(Store {
            path,
            file,
            version,
            index,
            certs,
            open_stats: OpenStats {
                records,
                keys,
                recovered_bytes,
                skipped_records,
            },
            appended: 0,
            end_offset: pos as u64,
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The on-disk format version of the open file (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Looks up the verdict for a canonical-serialization key.
    pub fn lookup(&self, key: &[u64]) -> Option<&StoredVerdict> {
        self.index.get(key)
    }

    /// Looks up the prefix certificate for an atomicity-masked key.
    pub fn lookup_cert(&self, masked_key: &[u64]) -> Option<&CertData> {
        self.certs.get(masked_key)
    }

    /// Distinct verdict keys currently indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Distinct certificate keys currently indexed.
    pub fn cert_count(&self) -> usize {
        self.certs.len()
    }

    /// True when the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Replay/recovery statistics from [`Store::open`].
    pub fn open_stats(&self) -> OpenStats {
        self.open_stats
    }

    /// Bytes dropped from a torn tail when the store was opened.
    pub fn recovered_bytes(&self) -> u64 {
        self.open_stats.recovered_bytes
    }

    /// Records appended through this handle since it was opened.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends a verdict record and updates the index. The record is
    /// written with a single `write_all` and flushed, so a crash leaves
    /// at most a torn tail that the next [`Store::open`] truncates.
    pub fn append(
        &mut self,
        key: &[u64],
        fingerprint: u64,
        verdict: &StoredVerdict,
    ) -> io::Result<()> {
        let payload = encode_verdict_payload(key, fingerprint, verdict, self.version);
        self.append_record(&encode_frame(&payload), "store.append.write")?;
        self.index.insert(key.to_vec(), verdict.clone());
        Ok(())
    }

    /// Writes one framed record at the current end, rolling the file back
    /// to the last good boundary if the write fails partway (so a failed
    /// append never strands later records behind a torn frame).
    fn append_record(&mut self, record: &[u8], point: &str) -> io::Result<()> {
        let write = faults::write_point(&mut self.file, record, point).and_then(|()| {
            faults::io_point("store.append.flush")?;
            self.file.flush()
        });
        if let Err(e) = write {
            // Best-effort rollback; if it fails too, the torn tail is
            // truncated by the next open instead.
            let _ = self.file.set_len(self.end_offset);
            let _ = self.file.seek(SeekFrom::Start(self.end_offset));
            return Err(e);
        }
        self.end_offset += record.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Appends a prefix-certificate record keyed by the atomicity-masked
    /// canonical key. On a version-1 file this is a no-op (v1 has no
    /// certificate encoding); [`Store::compact`] upgrades such files.
    pub fn append_cert(
        &mut self,
        masked_key: &[u64],
        fingerprint: u64,
        cert: &CertData,
    ) -> io::Result<()> {
        if self.version < 2 {
            return Ok(());
        }
        let payload = encode_cert_payload(masked_key, fingerprint, cert);
        self.append_record(&encode_frame(&payload), "store.append_cert.write")?;
        self.certs.insert(masked_key.to_vec(), cert.clone());
        Ok(())
    }

    /// Rewrites the file with exactly one record per key (later appends
    /// already won at replay time), atomically via a temp file + rename,
    /// always in the current format — compaction upgrades version-1
    /// files. Returns `(records_before, records_after)`.
    pub fn compact(&mut self) -> io::Result<(u64, u64)> {
        let before = self.open_stats.records + self.appended;
        let tmp = self.path.with_extension("tmp");
        {
            faults::io_point("store.compact.create")?;
            let mut out = File::create(&tmp)?;
            let mut buf = Vec::with_capacity(MAGIC.len());
            buf.extend_from_slice(MAGIC);
            // Deterministic output order: sort by key so compacting the
            // same logical contents always produces identical bytes.
            let mut entries: Vec<(&Vec<u64>, &StoredVerdict)> = self.index.iter().collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
            for (key, verdict) in entries {
                let fingerprint = fingerprint_of(key);
                buf.extend_from_slice(&encode_frame(&encode_verdict_payload(
                    key,
                    fingerprint,
                    verdict,
                    2,
                )));
            }
            let mut cert_entries: Vec<(&Vec<u64>, &CertData)> = self.certs.iter().collect();
            cert_entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
            for (key, cert) in cert_entries {
                let fingerprint = fingerprint_of(key);
                buf.extend_from_slice(&encode_frame(&encode_cert_payload(key, fingerprint, cert)));
            }
            faults::write_point(&mut out, &buf, "store.compact.write")?;
            out.sync_all()?;
        }
        faults::io_point("store.compact.rename")?;
        std::fs::rename(&tmp, &self.path)?;
        // The rename lives in the directory entry: sync the parent so the
        // compacted file survives power loss, not just a process crash.
        fsync_parent(&self.path)?;
        // Reopen the handle on the rewritten file, positioned at its end.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.end_offset = self.file.seek(SeekFrom::End(0))?;
        self.version = 2;
        let after = (self.index.len() + self.certs.len()) as u64;
        self.open_stats.records = after;
        self.open_stats.skipped_records = 0;
        self.appended = 0;
        Ok((before, after))
    }

    /// Folds every verdict and certificate of `other` into this store
    /// (appending records for keys this store doesn't already have —
    /// existing entries win, matching "first prover wins" semantics
    /// across shard files). Returns the number of records appended.
    pub fn absorb(&mut self, other: &Store) -> io::Result<u64> {
        let mut added = 0;
        for (key, verdict) in &other.index {
            if !self.index.contains_key(key) {
                self.append(key, fingerprint_of(key), verdict)?;
                added += 1;
            }
        }
        for (key, cert) in &other.certs {
            if self.version >= 2 && !self.certs.contains_key(key) {
                self.append_cert(key, fingerprint_of(key), cert)?;
                added += 1;
            }
        }
        Ok(added)
    }
}

/// The canonical-serialization fingerprint, recomputed from a key (the
/// same fasthash `tso_model::canon` uses).
fn fingerprint_of(key: &[u64]) -> u64 {
    let mut hasher = FastHasher::default();
    for &w in key {
        hasher.write_u64(w);
    }
    hasher.finish()
}

/// Wraps a payload in the record framing: `len:u32 checksum:u64 payload`.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut checksum = FastHasher::default();
    checksum.write(payload);
    let mut record = Vec::with_capacity(12 + payload.len());
    record.extend_from_slice(&((payload.len() + 8) as u32).to_le_bytes());
    record.extend_from_slice(&checksum.finish().to_le_bytes());
    record.extend_from_slice(payload);
    record
}

fn encode_verdict_payload(
    key: &[u64],
    fingerprint: u64,
    verdict: &StoredVerdict,
    version: u8,
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(36 + key.len() * 8);
    if version >= 2 {
        payload.extend_from_slice(&KIND_VERDICT.to_le_bytes());
    }
    payload.extend_from_slice(&fingerprint.to_le_bytes());
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    for &w in key {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    for &s in &verdict.stats {
        payload.extend_from_slice(&s.to_le_bytes());
    }
    payload.extend_from_slice(&(verdict.outcomes.len() as u32).to_le_bytes());
    for (reads, mem) in &verdict.outcomes {
        payload.extend_from_slice(&(reads.len() as u32).to_le_bytes());
        for &r in reads {
            payload.extend_from_slice(&r.to_le_bytes());
        }
        payload.extend_from_slice(&(mem.len() as u32).to_le_bytes());
        for &(a, v) in mem {
            payload.extend_from_slice(&a.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    payload
}

fn encode_cert_payload(masked_key: &[u64], fingerprint: u64, cert: &CertData) -> Vec<u8> {
    let mut payload = Vec::with_capacity(48 + masked_key.len() * 8);
    payload.extend_from_slice(&KIND_CERT.to_le_bytes());
    payload.extend_from_slice(&fingerprint.to_le_bytes());
    payload.extend_from_slice(&(masked_key.len() as u32).to_le_bytes());
    for &w in masked_key {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload.extend_from_slice(&cert.nodes.to_le_bytes());
    payload.extend_from_slice(&cert.pruned.to_le_bytes());
    payload.extend_from_slice(&cert.complete.to_le_bytes());
    payload.extend_from_slice(&(cert.leaves.len() as u32).to_le_bytes());
    for (ws, rf) in &cert.leaves {
        payload.extend_from_slice(&(ws.len() as u32).to_le_bytes());
        for &e in ws {
            payload.extend_from_slice(&e.to_le_bytes());
        }
        payload.extend_from_slice(&(rf.len() as u32).to_le_bytes());
        for &e in rf {
            payload.extend_from_slice(&e.to_le_bytes());
        }
    }
    payload
}

/// Validates one record frame at the front of `bytes`: a complete length
/// field, a complete body, and a matching payload checksum. Returns the
/// bytes consumed and the payload — or `None` on a torn/corrupt frame,
/// which ends the replay (suffix loss, never silent corruption).
fn parse_frame(bytes: &[u8]) -> Option<(usize, &[u8])> {
    let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let body = bytes.get(4..4 + len)?;
    let stored_checksum = u64::from_le_bytes(body.get(..8)?.try_into().ok()?);
    let payload = &body[8..];
    let mut checksum = FastHasher::default();
    checksum.write(payload);
    if checksum.finish() != stored_checksum {
        return None;
    }
    Some((4 + len, payload))
}

/// Interprets a checksummed payload under the file's format version.
/// Version 2 never returns `None`: an unknown kind (or a malformed body
/// behind a valid checksum) is [`Record::Skipped`], because the checksum
/// already proved the record *boundary* and truncating would throw away a
/// valid suffix. Version 1 keeps its original strictness: a payload that
/// is not a verdict ends the replay (`None`).
fn parse_payload(payload: &[u8], version: u8) -> Option<Record> {
    if version < 2 {
        return parse_verdict_body(payload).map(|(k, v)| Record::Verdict(k, v));
    }
    let mut cur = Cursor { bytes: payload };
    let kind = cur.u32()?;
    Some(match kind {
        KIND_VERDICT => match parse_verdict_body(cur.bytes) {
            Some((k, v)) => Record::Verdict(k, v),
            None => Record::Skipped,
        },
        KIND_CERT => match parse_cert_body(cur.bytes) {
            Some((k, c)) => Record::Cert(k, c),
            None => Record::Skipped,
        },
        _ => Record::Skipped,
    })
}

/// Parses a verdict body (the payload minus any kind tag).
fn parse_verdict_body(bytes: &[u8]) -> Option<(Vec<u64>, StoredVerdict)> {
    let mut cur = Cursor { bytes };
    let _fingerprint = cur.u64()?;
    let key_words = cur.u32()? as usize;
    let mut key = Vec::with_capacity(key_words);
    for _ in 0..key_words {
        key.push(cur.u64()?);
    }
    let mut stats = [0u64; STATS_WORDS];
    for s in &mut stats {
        *s = cur.u64()?;
    }
    let outcome_count = cur.u32()? as usize;
    let mut outcomes = Vec::with_capacity(outcome_count);
    for _ in 0..outcome_count {
        let reads_len = cur.u32()? as usize;
        let mut reads = Vec::with_capacity(reads_len);
        for _ in 0..reads_len {
            reads.push(cur.u64()?);
        }
        let mem_len = cur.u32()? as usize;
        let mut mem = Vec::with_capacity(mem_len);
        for _ in 0..mem_len {
            let a = cur.u64()?;
            let v = cur.u64()?;
            mem.push((a, v));
        }
        outcomes.push((reads, mem));
    }
    if !cur.bytes.is_empty() {
        return None; // trailing garbage inside a checksummed record
    }
    Some((key, StoredVerdict { outcomes, stats }))
}

/// Parses a certificate body (the payload minus the kind tag).
fn parse_cert_body(bytes: &[u8]) -> Option<(Vec<u64>, CertData)> {
    let mut cur = Cursor { bytes };
    let _fingerprint = cur.u64()?;
    let key_words = cur.u32()? as usize;
    let mut key = Vec::with_capacity(key_words);
    for _ in 0..key_words {
        key.push(cur.u64()?);
    }
    let nodes = cur.u64()?;
    let pruned = cur.u64()?;
    let complete = cur.u64()?;
    let leaf_count = cur.u32()? as usize;
    let mut leaves = Vec::with_capacity(leaf_count);
    for _ in 0..leaf_count {
        let ws_len = cur.u32()? as usize;
        let mut ws = Vec::with_capacity(ws_len);
        for _ in 0..ws_len {
            ws.push(cur.u64()?);
        }
        let rf_len = cur.u32()? as usize;
        let mut rf = Vec::with_capacity(rf_len);
        for _ in 0..rf_len {
            rf.push(cur.u64()?);
        }
        leaves.push((ws, rf));
    }
    if !cur.bytes.is_empty() {
        return None;
    }
    Some((
        key,
        CertData {
            leaves,
            nodes,
            pruned,
            complete,
        },
    ))
}

struct Cursor<'a> {
    bytes: &'a [u8],
}

impl Cursor<'_> {
    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.bytes.get(..4)?.try_into().ok()?);
        self.bytes = &self.bytes[4..];
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.bytes.get(..8)?.try_into().ok()?);
        self.bytes = &self.bytes[8..];
        Some(v)
    }
}

/// A [`Store`] behind a mutex, implementing both of the model's
/// persistence hooks: the verdict cache's
/// [`VerdictStore`] and the certificate tier's
/// [`CertificateStore`] — this is what `litmus_run` installs with
/// `tso_model::cache::set_store` and `tso_model::prefix::set_store` so
/// every model query in the process reads and writes one shared file.
///
/// Write errors during a save are counted ([`SharedStore::save_errors`])
/// but otherwise swallowed: persistence is an optimization, and a full
/// disk must not fail a verification run.
#[derive(Debug)]
pub struct SharedStore {
    inner: Mutex<Store>,
    loads: AtomicU64,
    cert_loads: AtomicU64,
    save_errors: AtomicU64,
}

impl SharedStore {
    /// Wraps an opened store for concurrent use.
    pub fn new(store: Store) -> Self {
        SharedStore {
            inner: Mutex::new(store),
            loads: AtomicU64::new(0),
            cert_loads: AtomicU64::new(0),
            save_errors: AtomicU64::new(0),
        }
    }

    /// Opens (creating) the store at `path`; see [`Store::open`].
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Store::open(path).map(SharedStore::new)
    }

    /// Successful [`VerdictStore::load`] answers served so far.
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Successful [`CertificateStore::load_cert`] answers served so far.
    pub fn cert_loads(&self) -> u64 {
        self.cert_loads.load(Ordering::Relaxed)
    }

    /// Failed (swallowed) save attempts so far (verdicts + certificates).
    pub fn save_errors(&self) -> u64 {
        self.save_errors.load(Ordering::Relaxed)
    }

    /// Runs `f` on the underlying store (for counters and compaction).
    pub fn with<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        f(&mut self.inner.lock().expect("verdict store poisoned"))
    }

    /// Unwraps back into the plain [`Store`].
    pub fn into_inner(self) -> Store {
        self.inner.into_inner().expect("verdict store poisoned")
    }
}

impl VerdictStore for SharedStore {
    fn load(&self, key: &[u64]) -> Option<(BTreeSet<Outcome>, SearchStats)> {
        let inner = self.inner.lock().expect("verdict store poisoned");
        let found = inner.lookup(key).map(StoredVerdict::to_model);
        if found.is_some() {
            self.loads.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn save(
        &self,
        key: &[u64],
        fingerprint: u64,
        outcomes: &BTreeSet<Outcome>,
        stats: &SearchStats,
    ) {
        let verdict = StoredVerdict::from_model(outcomes, stats);
        let mut inner = self.inner.lock().expect("verdict store poisoned");
        if inner.append(key, fingerprint, &verdict).is_err() {
            self.save_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl CertificateStore for SharedStore {
    fn load_cert(&self, masked_key: &[u64]) -> Option<CertData> {
        let inner = self.inner.lock().expect("verdict store poisoned");
        let found = inner.lookup_cert(masked_key).cloned();
        if found.is_some() {
            self.cert_loads.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn save_cert(&self, masked_key: &[u64], fingerprint: u64, cert: &CertData) {
        let mut inner = self.inner.lock().expect("verdict store poisoned");
        if inner.append_cert(masked_key, fingerprint, cert).is_err() {
            self.save_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vstore-{}-{name}.bin", std::process::id()))
    }

    fn sample(tag: u64) -> (Vec<u64>, StoredVerdict) {
        (
            vec![2, u64::MAX, 2, 1, 0, 2, 1, tag],
            StoredVerdict {
                outcomes: vec![
                    (vec![0, tag], vec![(0, 1), (1, tag)]),
                    (vec![1, 0], vec![(0, 1)]),
                    (Vec::new(), Vec::new()),
                ],
                stats: [10 + tag, 4, 3, 3, 1, 1],
            },
        )
    }

    fn sample_cert(tag: u64) -> (Vec<u64>, CertData) {
        (
            vec![2, 0, 0, 7, tag],
            CertData {
                leaves: vec![(vec![3, 1, tag], vec![0, 2]), (vec![1, 3, tag], vec![2, 0])],
                nodes: 40 + tag,
                pruned: 11,
                complete: 2,
            },
        )
    }

    #[test]
    fn roundtrips_records_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = Store::open(&path).unwrap();
            assert!(s.is_empty());
            assert_eq!(s.version(), 2);
            for tag in 0..5 {
                let (k, v) = sample(tag);
                s.append(&k, tag, &v).unwrap();
            }
            assert_eq!(s.len(), 5);
            assert_eq!(s.appended(), 5);
        }
        let s = Store::open(&path).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.open_stats().records, 5);
        assert_eq!(s.open_stats().skipped_records, 0);
        assert_eq!(s.recovered_bytes(), 0);
        for tag in 0..5 {
            let (k, v) = sample(tag);
            assert_eq!(s.lookup(&k), Some(&v), "tag {tag}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn later_records_shadow_earlier_ones() {
        let path = tmp("shadow");
        let _ = std::fs::remove_file(&path);
        let (k, v1) = sample(1);
        let mut v2 = v1.clone();
        v2.stats[0] = 999;
        let mut s = Store::open(&path).unwrap();
        s.append(&k, 1, &v1).unwrap();
        s.append(&k, 1, &v2).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(&k), Some(&v2));
        drop(s);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.open_stats().records, 2, "both records replay");
        assert_eq!(s.len(), 1, "one key survives");
        assert_eq!(s.lookup(&k), Some(&v2), "the later record wins");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn model_conversion_roundtrips() {
        use tso_model::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(rmw_types::Addr(0), 1)
            .read(rmw_types::Addr(1));
        b.thread()
            .write(rmw_types::Addr(1), 1)
            .read(rmw_types::Addr(0));
        let p = b.build();
        let (outcomes, stats) = tso_model::allowed_outcomes_with_stats(&p);
        let stored = StoredVerdict::from_model(&outcomes, &stats);
        let (back, back_stats) = stored.to_model();
        assert_eq!(back, outcomes);
        assert_eq!(back_stats.nodes, stats.nodes);
        assert_eq!(back_stats.valid, stats.valid);
    }

    #[test]
    fn shared_store_counts_loads_and_survives_missing_keys() {
        let path = tmp("shared");
        let _ = std::fs::remove_file(&path);
        let shared = SharedStore::open(&path).unwrap();
        assert!(VerdictStore::load(&shared, &[1, 2, 3]).is_none());
        assert!(CertificateStore::load_cert(&shared, &[1, 2, 3]).is_none());
        assert_eq!(shared.loads(), 0, "misses are not loads");
        assert_eq!(shared.cert_loads(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_files_with_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"definitely not a store").unwrap();
        assert!(Store::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cert_records_roundtrip_and_survive_compaction() {
        let path = tmp("cert-roundtrip");
        let _ = std::fs::remove_file(&path);
        let (vk, v) = sample(3);
        let (ck, c) = sample_cert(8);
        {
            let mut s = Store::open(&path).unwrap();
            s.append(&vk, 3, &v).unwrap();
            s.append_cert(&ck, 8, &c).unwrap();
            assert_eq!(s.cert_count(), 1);
        }
        let mut s = Store::open(&path).unwrap();
        assert_eq!(s.open_stats().records, 2, "verdict + certificate");
        assert_eq!(s.lookup(&vk), Some(&v));
        assert_eq!(s.lookup_cert(&ck), Some(&c));
        let (before, after) = s.compact().unwrap();
        assert_eq!((before, after), (2, 2));
        drop(s);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.lookup(&vk), Some(&v), "verdicts survive compaction");
        assert_eq!(s.lookup_cert(&ck), Some(&c), "certs survive compaction");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_record_kinds_are_skipped_not_truncated() {
        let path = tmp("unknown-kind");
        let _ = std::fs::remove_file(&path);
        let (k1, v1) = sample(1);
        let (k2, v2) = sample(2);
        {
            let mut s = Store::open(&path).unwrap();
            s.append(&k1, 1, &v1).unwrap();
        }
        // Splice in a record from "the future": valid frame, unknown kind.
        let mut future = 99u32.to_le_bytes().to_vec();
        future.extend_from_slice(b"fields this build has never heard of");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_frame(&future));
        bytes.extend_from_slice(&encode_frame(&encode_verdict_payload(&k2, 2, &v2, 2)));
        std::fs::write(&path, &bytes).unwrap();

        let s = Store::open(&path).unwrap();
        assert_eq!(s.open_stats().skipped_records, 1, "unknown kind skipped");
        assert_eq!(s.recovered_bytes(), 0, "…but nothing was truncated");
        assert_eq!(s.len(), 2, "the record after the unknown one replays");
        assert_eq!(s.lookup(&k1), Some(&v1));
        assert_eq!(s.lookup(&k2), Some(&v2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_1_files_open_replay_and_append_in_their_own_format() {
        let path = tmp("v1-compat");
        let _ = std::fs::remove_file(&path);
        let (k1, v1) = sample(1);
        let (k2, v2) = sample(2);
        // Hand-build a v1 file: old magic, bare verdict payloads.
        let mut bytes = MAGIC_V1.to_vec();
        bytes.extend_from_slice(&encode_frame(&encode_verdict_payload(&k1, 1, &v1, 1)));
        std::fs::write(&path, &bytes).unwrap();

        let mut s = Store::open(&path).unwrap();
        assert_eq!(s.version(), 1, "old magic probes as version 1");
        assert_eq!(s.lookup(&k1), Some(&v1), "v1 records replay");
        s.append(&k2, 2, &v2).unwrap();
        // A certificate append on a v1 file is dropped, not an error.
        let (ck, c) = sample_cert(5);
        s.append_cert(&ck, 5, &c).unwrap();
        drop(s);

        let mut s = Store::open(&path).unwrap();
        assert_eq!(s.version(), 1, "appends kept the file v1");
        assert_eq!(s.len(), 2, "v1 append is readable as v1");
        assert_eq!(s.lookup(&k2), Some(&v2));
        assert_eq!(s.cert_count(), 0, "no cert encoding in v1");

        // Compaction upgrades to the current format.
        s.compact().unwrap();
        drop(s);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.version(), 2, "compaction rewrote with the new magic");
        assert_eq!(s.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
