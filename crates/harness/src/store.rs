//! The persistent verdict store: an append-only record file that keeps
//! model verdicts across `litmus_run` invocations.
//!
//! The in-memory verdict cache (`tso_model::cache`) eliminates repeated
//! model searches *within* a process; this store eliminates them *across*
//! processes. It is the storage tier behind campaign mode: the first run
//! over a corpus pays every model search once and appends each result;
//! every later run — a resumed shard, a re-run, a different shard sharing
//! the file, tomorrow's regression sweep — answers those queries with a
//! file lookup instead of a search.
//!
//! # On-disk format (version 1)
//!
//! Everything is little-endian. The file is a fixed 8-byte header
//! followed by length-prefixed records (see `DESIGN.md` "verdict store"
//! for the normative byte-level specification):
//!
//! ```text
//! file   := magic record*
//! magic  := "RMWVST01"                      (8 bytes: format + version)
//! record := len:u32 checksum:u64 payload    (len = 8 + payload bytes)
//! payload:= fingerprint:u64
//!           key_words:u32  key:u64[key_words]
//!           stats:u64[6]                    (nodes pruned complete valid tasks workers)
//!           outcome_count:u32 outcome*
//! outcome:= reads:u32 read_value:u64[reads]
//!           mem:u32  (addr:u64 value:u64)[mem]
//! ```
//!
//! The record key is the program's **full canonical serialization**
//! (`tso_model::Canonical::key`) — collision-proof by construction; the
//! 64-bit `fingerprint` rides along for diagnostics and shard routing.
//! Outcome reads/memory are in the canonical program's coordinates, which
//! is exactly what the in-memory cache stores; coordinate translation back
//! to each caller's frame stays where it always was, in `tso_model::cache`.
//!
//! # Crash safety
//!
//! Appends are atomic at the record level: a record is serialized to one
//! buffer and written with a single `write_all`. A crash (or `kill -9`,
//! or a full disk) can leave at most a torn record at the *tail*.
//! [`Store::open`] replays the file and accepts the longest valid prefix:
//! a record is valid iff its length field fits in the remaining bytes and
//! the checksum (fasthash of the payload) matches. At the first invalid
//! record the file is truncated back to the end of the valid prefix and
//! the dropped byte count is reported in [`Store::recovered_bytes`]. A
//! torn tail therefore costs at most one verdict — which the next run
//! simply recomputes and re-appends.
//!
//! Later records win: appending the same key again shadows the earlier
//! record at load time. [`Store::compact`] rewrites the file with one
//! record per key (atomically, via a temp file + rename) — worth running
//! after long campaigns that recorded shadowed entries, and it doubles as
//! the fold when merging per-shard store files into one.
//!
//! One process per store file at a time: the store does no file locking,
//! so concurrent *shards* must write distinct files (the campaign driver
//! derives `PATH.i-of-n` names automatically) and fold them afterwards
//! with `litmus_run compact --merge`.
//!
//! # Example
//!
//! ```
//! use harness::store::{Store, StoredVerdict};
//!
//! let path = std::env::temp_dir().join(format!("doc-store-{}.bin", std::process::id()));
//! # let _ = std::fs::remove_file(&path);
//! // Open (creating) a store, append a verdict, and look it back up.
//! let mut store = Store::open(&path)?;
//! let key = vec![2, u64::MAX, 2, 1, 0, 1, 1];
//! let verdict = StoredVerdict {
//!     outcomes: vec![(vec![0], vec![(0, 1)]), (vec![1], vec![(0, 1)])],
//!     stats: [9, 4, 2, 2, 1, 1],
//! };
//! store.append(&key, 0xfee1, &verdict)?;
//! assert_eq!(store.lookup(&key), Some(&verdict));
//! assert_eq!(store.len(), 1);
//!
//! // Reopen: the record survives the process.
//! drop(store);
//! let reopened = Store::open(&path)?;
//! assert_eq!(reopened.lookup(&key), Some(&verdict));
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use rmw_types::fasthash::{FastHashMap, FastHasher};
use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::hash::Hasher as _;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tso_model::{Outcome, SearchStats, VerdictStore};

/// File magic: format name + on-disk version in one 8-byte prefix.
pub const MAGIC: &[u8; 8] = b"RMWVST01";

/// Number of `u64` stats words in a record (`nodes`, `pruned`, `complete`,
/// `valid`, `tasks`, `workers` — the additive [`SearchStats`] counters).
pub const STATS_WORDS: usize = 6;

/// One allowed outcome in storable form: the read values in `(thread, po)`
/// order, and the final `(addr, value)` memory pairs, address-sorted.
pub type StoredOutcome = (Vec<u64>, Vec<(u64, u64)>);

/// One stored verdict: the allowed outcome set of a canonical program and
/// the (attributed) stats of the search that proved it.
///
/// Outcomes are `(read_values, final_memory)` pairs in the canonical
/// program's coordinates, exactly as `tso_model::cache` keeps them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredVerdict {
    /// The allowed outcomes, one [`StoredOutcome`] per model outcome.
    pub outcomes: Vec<StoredOutcome>,
    /// The additive [`SearchStats`] counters, in record order.
    pub stats: [u64; STATS_WORDS],
}

impl StoredVerdict {
    /// Converts a model cache entry into its storable form.
    pub fn from_model(outcomes: &BTreeSet<Outcome>, stats: &SearchStats) -> Self {
        StoredVerdict {
            outcomes: outcomes
                .iter()
                .map(|o| {
                    (
                        o.read_values(),
                        o.final_memory().iter().map(|&(a, v)| (a.0, v)).collect(),
                    )
                })
                .collect(),
            stats: [
                stats.nodes,
                stats.pruned,
                stats.complete,
                stats.valid,
                stats.tasks,
                stats.workers,
            ],
        }
    }

    /// Reconstructs the model cache entry form.
    pub fn to_model(&self) -> (BTreeSet<Outcome>, SearchStats) {
        let outcomes = self
            .outcomes
            .iter()
            .map(|(reads, mem)| {
                Outcome::new(
                    reads.clone(),
                    mem.iter().map(|&(a, v)| (rmw_types::Addr(a), v)).collect(),
                )
            })
            .collect();
        let [nodes, pruned, complete, valid, tasks, workers] = self.stats;
        let stats = SearchStats {
            nodes,
            pruned,
            complete,
            valid,
            tasks,
            workers,
            stopped_early: false,
        };
        (outcomes, stats)
    }
}

/// Statistics from opening a store file — how much survived recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Valid records replayed (including shadowed duplicates).
    pub records: u64,
    /// Distinct keys in the index after replay.
    pub keys: u64,
    /// Bytes dropped from a torn tail (0 on a clean file).
    pub recovered_bytes: u64,
}

/// The append-only verdict store. See the module docs for the format and
/// crash-safety contract.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: File,
    index: FastHashMap<Vec<u64>, StoredVerdict>,
    open_stats: OpenStats,
    appended: u64,
}

impl Store {
    /// Opens (creating if absent) the store at `path`, replaying every
    /// valid record into the in-memory index and truncating any torn
    /// tail left by a crash mid-append.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.flush()?;
            return Ok(Store {
                path,
                file,
                index: FastHashMap::default(),
                open_stats: OpenStats::default(),
                appended: 0,
            });
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a verdict store (bad magic)", path.display()),
            ));
        }

        let mut index = FastHashMap::default();
        let mut records = 0u64;
        let mut pos = MAGIC.len();
        while let Some((consumed, key, verdict)) = parse_record(&bytes[pos..]) {
            index.insert(key, verdict);
            records += 1;
            pos += consumed;
        }
        let recovered_bytes = (bytes.len() - pos) as u64;
        if recovered_bytes > 0 {
            // Torn tail: truncate back to the valid prefix so the next
            // append starts on a record boundary.
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        let keys = index.len() as u64;
        Ok(Store {
            path,
            file,
            index,
            open_stats: OpenStats {
                records,
                keys,
                recovered_bytes,
            },
            appended: 0,
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up the verdict for a canonical-serialization key.
    pub fn lookup(&self, key: &[u64]) -> Option<&StoredVerdict> {
        self.index.get(key)
    }

    /// Distinct keys currently indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Replay/recovery statistics from [`Store::open`].
    pub fn open_stats(&self) -> OpenStats {
        self.open_stats
    }

    /// Bytes dropped from a torn tail when the store was opened.
    pub fn recovered_bytes(&self) -> u64 {
        self.open_stats.recovered_bytes
    }

    /// Records appended through this handle since it was opened.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends a verdict record and updates the index. The record is
    /// written with a single `write_all` and flushed, so a crash leaves
    /// at most a torn tail that the next [`Store::open`] truncates.
    pub fn append(
        &mut self,
        key: &[u64],
        fingerprint: u64,
        verdict: &StoredVerdict,
    ) -> io::Result<()> {
        let record = encode_record(key, fingerprint, verdict);
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.index.insert(key.to_vec(), verdict.clone());
        self.appended += 1;
        Ok(())
    }

    /// Rewrites the file with exactly one record per key (later appends
    /// already won at replay time), atomically via a temp file + rename.
    /// Returns `(records_before, records_after)`.
    pub fn compact(&mut self) -> io::Result<(u64, u64)> {
        let before = self.open_stats.records + self.appended;
        let tmp = self.path.with_extension("tmp");
        {
            let mut out = File::create(&tmp)?;
            let mut buf = Vec::with_capacity(MAGIC.len());
            buf.extend_from_slice(MAGIC);
            // Deterministic output order: sort by key so compacting the
            // same logical contents always produces identical bytes.
            let mut entries: Vec<(&Vec<u64>, &StoredVerdict)> = self.index.iter().collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
            for (key, verdict) in entries {
                let fingerprint = fingerprint_of(key);
                buf.extend_from_slice(&encode_record(key, fingerprint, verdict));
            }
            out.write_all(&buf)?;
            out.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen the handle on the rewritten file, positioned at its end.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        let after = self.index.len() as u64;
        self.open_stats.records = after;
        self.appended = 0;
        Ok((before, after))
    }

    /// Folds every verdict of `other` into this store (appending records
    /// for keys this store doesn't already have — existing entries win,
    /// matching "first prover wins" semantics across shard files).
    pub fn absorb(&mut self, other: &Store) -> io::Result<u64> {
        let mut added = 0;
        for (key, verdict) in &other.index {
            if !self.index.contains_key(key) {
                self.append(key, fingerprint_of(key), verdict)?;
                added += 1;
            }
        }
        Ok(added)
    }
}

/// The canonical-serialization fingerprint, recomputed from a key (the
/// same fasthash `tso_model::canon` uses).
fn fingerprint_of(key: &[u64]) -> u64 {
    let mut hasher = FastHasher::default();
    for &w in key {
        hasher.write_u64(w);
    }
    hasher.finish()
}

fn encode_record(key: &[u64], fingerprint: u64, verdict: &StoredVerdict) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + key.len() * 8);
    payload.extend_from_slice(&fingerprint.to_le_bytes());
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    for &w in key {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    for &s in &verdict.stats {
        payload.extend_from_slice(&s.to_le_bytes());
    }
    payload.extend_from_slice(&(verdict.outcomes.len() as u32).to_le_bytes());
    for (reads, mem) in &verdict.outcomes {
        payload.extend_from_slice(&(reads.len() as u32).to_le_bytes());
        for &r in reads {
            payload.extend_from_slice(&r.to_le_bytes());
        }
        payload.extend_from_slice(&(mem.len() as u32).to_le_bytes());
        for &(a, v) in mem {
            payload.extend_from_slice(&a.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut checksum = FastHasher::default();
    checksum.write(&payload);
    let mut record = Vec::with_capacity(12 + payload.len());
    record.extend_from_slice(&((payload.len() + 8) as u32).to_le_bytes());
    record.extend_from_slice(&checksum.finish().to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Parses one record from the front of `bytes`. Returns the bytes
/// consumed, the key, and the verdict — or `None` if the prefix is not a
/// complete, checksummed record (torn tail).
fn parse_record(bytes: &[u8]) -> Option<(usize, Vec<u64>, StoredVerdict)> {
    let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let body = bytes.get(4..4 + len)?;
    let stored_checksum = u64::from_le_bytes(body.get(..8)?.try_into().ok()?);
    let payload = &body[8..];
    let mut checksum = FastHasher::default();
    checksum.write(payload);
    if checksum.finish() != stored_checksum {
        return None;
    }
    let mut cur = Cursor { bytes: payload };
    let _fingerprint = cur.u64()?;
    let key_words = cur.u32()? as usize;
    let mut key = Vec::with_capacity(key_words);
    for _ in 0..key_words {
        key.push(cur.u64()?);
    }
    let mut stats = [0u64; STATS_WORDS];
    for s in &mut stats {
        *s = cur.u64()?;
    }
    let outcome_count = cur.u32()? as usize;
    let mut outcomes = Vec::with_capacity(outcome_count);
    for _ in 0..outcome_count {
        let reads_len = cur.u32()? as usize;
        let mut reads = Vec::with_capacity(reads_len);
        for _ in 0..reads_len {
            reads.push(cur.u64()?);
        }
        let mem_len = cur.u32()? as usize;
        let mut mem = Vec::with_capacity(mem_len);
        for _ in 0..mem_len {
            let a = cur.u64()?;
            let v = cur.u64()?;
            mem.push((a, v));
        }
        outcomes.push((reads, mem));
    }
    if !cur.bytes.is_empty() {
        return None; // trailing garbage inside a checksummed record
    }
    Some((4 + len, key, StoredVerdict { outcomes, stats }))
}

struct Cursor<'a> {
    bytes: &'a [u8],
}

impl Cursor<'_> {
    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.bytes.get(..4)?.try_into().ok()?);
        self.bytes = &self.bytes[4..];
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.bytes.get(..8)?.try_into().ok()?);
        self.bytes = &self.bytes[8..];
        Some(v)
    }
}

/// A [`Store`] behind a mutex, implementing the model cache's
/// [`VerdictStore`] hook — this is what `litmus_run` installs with
/// `tso_model::cache::set_store` so every model query in the process
/// reads and writes one shared file.
///
/// Write errors during [`VerdictStore::save`] are counted
/// ([`SharedStore::save_errors`]) but otherwise swallowed: persistence is
/// an optimization, and a full disk must not fail a verification run.
#[derive(Debug)]
pub struct SharedStore {
    inner: Mutex<Store>,
    loads: AtomicU64,
    save_errors: AtomicU64,
}

impl SharedStore {
    /// Wraps an opened store for concurrent use.
    pub fn new(store: Store) -> Self {
        SharedStore {
            inner: Mutex::new(store),
            loads: AtomicU64::new(0),
            save_errors: AtomicU64::new(0),
        }
    }

    /// Opens (creating) the store at `path`; see [`Store::open`].
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Store::open(path).map(SharedStore::new)
    }

    /// Successful [`VerdictStore::load`] answers served so far.
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Failed (swallowed) [`VerdictStore::save`] attempts so far.
    pub fn save_errors(&self) -> u64 {
        self.save_errors.load(Ordering::Relaxed)
    }

    /// Runs `f` on the underlying store (for counters and compaction).
    pub fn with<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        f(&mut self.inner.lock().expect("verdict store poisoned"))
    }

    /// Unwraps back into the plain [`Store`].
    pub fn into_inner(self) -> Store {
        self.inner.into_inner().expect("verdict store poisoned")
    }
}

impl VerdictStore for SharedStore {
    fn load(&self, key: &[u64]) -> Option<(BTreeSet<Outcome>, SearchStats)> {
        let inner = self.inner.lock().expect("verdict store poisoned");
        let found = inner.lookup(key).map(StoredVerdict::to_model);
        if found.is_some() {
            self.loads.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn save(
        &self,
        key: &[u64],
        fingerprint: u64,
        outcomes: &BTreeSet<Outcome>,
        stats: &SearchStats,
    ) {
        let verdict = StoredVerdict::from_model(outcomes, stats);
        let mut inner = self.inner.lock().expect("verdict store poisoned");
        if inner.append(key, fingerprint, &verdict).is_err() {
            self.save_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vstore-{}-{name}.bin", std::process::id()))
    }

    fn sample(tag: u64) -> (Vec<u64>, StoredVerdict) {
        (
            vec![2, u64::MAX, 2, 1, 0, 2, 1, tag],
            StoredVerdict {
                outcomes: vec![
                    (vec![0, tag], vec![(0, 1), (1, tag)]),
                    (vec![1, 0], vec![(0, 1)]),
                    (Vec::new(), Vec::new()),
                ],
                stats: [10 + tag, 4, 3, 3, 1, 1],
            },
        )
    }

    #[test]
    fn roundtrips_records_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = Store::open(&path).unwrap();
            assert!(s.is_empty());
            for tag in 0..5 {
                let (k, v) = sample(tag);
                s.append(&k, tag, &v).unwrap();
            }
            assert_eq!(s.len(), 5);
            assert_eq!(s.appended(), 5);
        }
        let s = Store::open(&path).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.open_stats().records, 5);
        assert_eq!(s.recovered_bytes(), 0);
        for tag in 0..5 {
            let (k, v) = sample(tag);
            assert_eq!(s.lookup(&k), Some(&v), "tag {tag}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn later_records_shadow_earlier_ones() {
        let path = tmp("shadow");
        let _ = std::fs::remove_file(&path);
        let (k, v1) = sample(1);
        let mut v2 = v1.clone();
        v2.stats[0] = 999;
        let mut s = Store::open(&path).unwrap();
        s.append(&k, 1, &v1).unwrap();
        s.append(&k, 1, &v2).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(&k), Some(&v2));
        drop(s);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.open_stats().records, 2, "both records replay");
        assert_eq!(s.len(), 1, "one key survives");
        assert_eq!(s.lookup(&k), Some(&v2), "the later record wins");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn model_conversion_roundtrips() {
        use tso_model::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        b.thread()
            .write(rmw_types::Addr(0), 1)
            .read(rmw_types::Addr(1));
        b.thread()
            .write(rmw_types::Addr(1), 1)
            .read(rmw_types::Addr(0));
        let p = b.build();
        let (outcomes, stats) = tso_model::allowed_outcomes_with_stats(&p);
        let stored = StoredVerdict::from_model(&outcomes, &stats);
        let (back, back_stats) = stored.to_model();
        assert_eq!(back, outcomes);
        assert_eq!(back_stats.nodes, stats.nodes);
        assert_eq!(back_stats.valid, stats.valid);
    }

    #[test]
    fn shared_store_counts_loads_and_survives_missing_keys() {
        let path = tmp("shared");
        let _ = std::fs::remove_file(&path);
        let shared = SharedStore::open(&path).unwrap();
        assert!(VerdictStore::load(&shared, &[1, 2, 3]).is_none());
        assert_eq!(shared.loads(), 0, "misses are not loads");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_files_with_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"definitely not a store").unwrap();
        assert!(Store::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
