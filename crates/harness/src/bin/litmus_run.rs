//! `litmus_run` — the parallel differential litmus harness CLI.
//!
//! Runs the full 500+ test corpus (hand-written classic + paper tests,
//! generated families, seeded random programs) through the axiomatic model
//! and the timing simulator under all three RMW atomicities, and reports
//! any disagreement.
//!
//! ```console
//! $ cargo run --release -p harness --bin litmus_run -- [FLAGS]
//! ```
//!
//! Flags (corpus mode, the default):
//!
//! * `--filter SUBSTR` — run only tests whose name contains `SUBSTR`;
//! * `--jobs N` — worker threads (default: available parallelism);
//! * `--smoke` — small-program subset (capped), for CI; the reported
//!   `corpus_total` still counts the full corpus;
//! * `--machine small|paper|128|256` — differential side on the per-test
//!   small machine (default), the full 32-core Table 2 machine, or a
//!   Table-2-latency machine scaled to 128/256 cores;
//! * `--format summary|json|tap` — output format (default `summary`);
//! * `--out PATH` — also write the chosen format to `PATH`;
//! * `--seed N` / `--random N` — corpus generation knobs;
//! * `--store PATH` — persistent verdict store: model search results are
//!   loaded from / appended to `PATH`, so reruns skip proven searches;
//! * `--no-baseline` — skip the `--jobs 1` reference run that the speedup
//!   figure in the JSON report is computed from.
//!
//! Subcommands (see `README.md` for a campaign walkthrough):
//!
//! * `litmus_run campaign` — resumable sharded campaign over the
//!   deterministic `litmus::gen::campaign_draft` stream. Key flags:
//!   `--count N`, `--shard I/N`, `--seed N`, `--store PATH` (default
//!   `verdicts.store`; per-shard files `PATH.i-of-n` when sharded),
//!   `--no-store`, `--checkpoint PATH`, `--resume`, `--chunk N`,
//!   `--jobs N`, `--machine`, `--out PATH`, `--max-chunks N` (stop early
//!   after N chunks — simulates a kill, for testing resume).
//! * `litmus_run merge REPORT...` — fold per-shard campaign reports into
//!   one merged report (validates the shard set is exactly `0..n`).
//! * `litmus_run compact STORE...` — rewrite store files with one record
//!   per key; with `--merge OUT`, fold all inputs into `OUT` first.
//!
//! Exit status is nonzero if any test fails either check (or, for
//! `merge`, if the merged campaign failed).

use harness::campaign::{
    default_checkpoint_name, merge_reports, run_campaign, CampaignConfig, StoreCounters,
    DEFAULT_CHUNK,
};
use harness::store::{SharedStore, Store};
use harness::{faults, full_corpus, run_batch_on, smoke_filter, MachineKind, Report, SMOKE_CAP};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tso_model::SearchBudget;

struct Args {
    filter: Option<String>,
    jobs: usize,
    smoke: bool,
    format: String,
    out: Option<String>,
    seed: u64,
    random: usize,
    baseline: bool,
    machine: MachineKind,
    store: Option<PathBuf>,
    faults: Option<(u64, u64)>,
    budget_nodes: Option<u64>,
    budget_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: litmus_run [--filter SUBSTR] [--jobs N] [--smoke] [--machine small|paper|128|256]\n\
         \x20                [--format summary|json|tap] [--out PATH] [--seed N] [--random N]\n\
         \x20                [--store PATH] [--no-baseline] [--faults SEED:RATE]\n\
         \x20                [--budget-nodes N] [--budget-ms N]\n\
         \x20      litmus_run campaign [--count N] [--shard I/N] [--seed N] [--jobs N]\n\
         \x20                [--machine small|paper|128|256] [--chunk N] [--store PATH | --no-store]\n\
         \x20                [--checkpoint PATH] [--resume] [--out PATH] [--max-chunks N]\n\
         \x20                [--faults SEED:RATE]\n\
         \x20      litmus_run merge REPORT... [--out PATH]\n\
         \x20      litmus_run compact STORE... [--merge OUT]"
    );
    std::process::exit(2);
}

/// `it.next()` or die — shared by every subcommand's flag parser.
fn next_value(it: &mut impl Iterator<Item = String>, name: &str) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("{name} needs a value");
        usage()
    })
}

/// Parses a `--faults SEED:RATE` value or dies with usage.
fn parse_faults(spec: &str) -> (u64, u64) {
    faults::parse_spec(spec).unwrap_or_else(|| {
        eprintln!("--faults must be SEED:RATE with RATE a probability in [0, 1] (e.g. 42:0.01)");
        usage()
    })
}

/// Writes a rendered report to `--out`, degrading to a warning on
/// failure: the report is already on stdout, and a full disk must not
/// turn a passing run into a failing one.
fn write_out(path: &str, rendered: &str) {
    let write = std::fs::File::create(path).and_then(|mut f| {
        harness::faults::write_point(&mut f, rendered.as_bytes(), "report.out.write")
    });
    match write {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path} ({e}) — report remains on stdout"),
    }
}

fn parse_corpus_args(rest: Vec<String>) -> Args {
    let mut args = Args {
        filter: None,
        jobs: std::thread::available_parallelism().map_or(2, |n| n.get()),
        smoke: false,
        format: "summary".to_owned(),
        out: None,
        seed: litmus::gen::DEFAULT_SEED,
        random: litmus::gen::DEFAULT_RANDOM_COUNT,
        baseline: true,
        machine: MachineKind::Small,
        store: None,
        faults: None,
        budget_nodes: None,
        budget_ms: None,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--filter" => args.filter = Some(next_value(&mut it, "--filter")),
            "--jobs" => {
                args.jobs = next_value(&mut it, "--jobs")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--smoke" => args.smoke = true,
            "--format" => args.format = next_value(&mut it, "--format"),
            "--out" => args.out = Some(next_value(&mut it, "--out")),
            "--seed" => {
                args.seed = next_value(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--random" => {
                args.random = next_value(&mut it, "--random")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--no-baseline" => args.baseline = false,
            "--store" => args.store = Some(PathBuf::from(next_value(&mut it, "--store"))),
            "--faults" => {
                args.faults = Some(parse_faults(&next_value(&mut it, "--faults")));
            }
            "--budget-nodes" => {
                args.budget_nodes = Some(
                    next_value(&mut it, "--budget-nodes")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--budget-ms" => {
                args.budget_ms = Some(
                    next_value(&mut it, "--budget-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--machine" => {
                args.machine =
                    MachineKind::parse(&next_value(&mut it, "--machine")).unwrap_or_else(|| {
                        eprintln!("--machine must be small, paper, 128, or 256");
                        usage()
                    })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if !matches!(args.format.as_str(), "summary" | "json" | "tap") {
        eprintln!("unknown format {:?}", args.format);
        usage();
    }
    args
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("campaign") => {
            argv.remove(0);
            campaign_main(argv);
        }
        Some("merge") => {
            argv.remove(0);
            merge_main(argv);
        }
        Some("compact") => {
            argv.remove(0);
            compact_main(argv);
        }
        _ => corpus_main(argv),
    }
}

fn corpus_main(argv: Vec<String>) {
    let args = parse_corpus_args(argv);

    // Fault injection first, so even the store open is under test.
    if let Some((seed, rate_ppm)) = args.faults {
        eprintln!("litmus_run: fault injection active (seed {seed}, rate {rate_ppm} ppm)");
        faults::install_random(seed, rate_ppm);
    }
    // Search budgets: exhausted searches answer `unknown` (reported,
    // never cached) instead of running unboundedly.
    if args.budget_nodes.is_some() || args.budget_ms.is_some() {
        tso_model::set_budget(SearchBudget {
            max_nodes: args.budget_nodes,
            max_time: args.budget_ms.map(Duration::from_millis),
        });
    }

    // Install the persistent verdict store (if any) before corpus
    // generation: the generated families derive their verdicts through
    // the model cache, so a warm store already pays off there. A store
    // that fails to open degrades to a store-less run (reported via the
    // JSON `degraded` flag) — persistence is an optimization, not a
    // prerequisite for verification.
    let store = args
        .store
        .as_ref()
        .map(|path| match SharedStore::open(path) {
            Ok(shared) => {
                let shared = Arc::new(shared);
                tso_model::cache::set_store(shared.clone());
                tso_model::prefix::set_store(shared.clone());
                (Some(shared), path, None)
            }
            Err(e) => {
                eprintln!(
                    "cannot open store {} ({e}) — continuing without persistence",
                    path.display()
                );
                (None, path, Some(e.to_string()))
            }
        });

    let corpus = full_corpus(args.seed, args.random);
    let corpus_total = corpus.len();
    let mut selected: Vec<litmus::Litmus> = corpus
        .into_iter()
        .filter(|l| args.filter.as_deref().map_or(true, |f| l.name.contains(f)))
        .filter(|l| !args.smoke || smoke_filter(l))
        .collect();
    if args.smoke {
        selected.truncate(SMOKE_CAP);
    }
    eprintln!(
        "litmus_run: corpus {corpus_total} tests, running {} on {} jobs, {} machine{}",
        selected.len(),
        args.jobs,
        args.machine,
        if args.smoke { " (smoke)" } else { "" }
    );

    // An untimed warm-up pass first. When a baseline comparison is
    // coming, it covers the full selection: besides the one-time process
    // costs (page faults, allocator growth, lazy init) it fully
    // populates the memoized verdict cache, so the jobs-1 reference run
    // and the measured run see identical (hot-cache) model work and the
    // ratio is a clean worker-scaling figure rather than a cache-position
    // artifact. Without a baseline nobody compares timings, and the
    // simulator side is *not* memoized — so a capped slice keeps plain
    // correctness runs from paying the corpus twice.
    let measuring_baseline = args.baseline && args.jobs > 1;
    let warmup = if measuring_baseline {
        selected.len()
    } else {
        selected.len().min(32)
    };
    let _ = run_batch_on(&selected[..warmup], args.jobs.max(1), args.machine);
    let baseline_jobs1_ms = measuring_baseline.then(|| {
        let (_, elapsed) = run_batch_on(&selected, 1, args.machine);
        elapsed.as_secs_f64() * 1e3
    });
    let (outcomes, elapsed) = run_batch_on(&selected, args.jobs, args.machine);

    let store_counters = store.as_ref().map(|(shared, path, open_error)| {
        let path = path.display().to_string();
        match shared {
            Some(shared) => StoreCounters {
                path,
                open_error: open_error.clone(),
                loads: shared.loads(),
                cert_loads: shared.cert_loads(),
                save_errors: shared.save_errors(),
                appended: shared.with(|s| s.appended()),
                keys: shared.with(|s| s.len() as u64),
                certs: shared.with(|s| s.cert_count() as u64),
                recovered_bytes: shared.with(|s| s.recovered_bytes()),
                skipped_records: shared.with(|s| s.open_stats().skipped_records),
            },
            None => StoreCounters {
                path,
                open_error: open_error.clone(),
                loads: 0,
                cert_loads: 0,
                save_errors: 0,
                appended: 0,
                keys: 0,
                certs: 0,
                recovered_bytes: 0,
                skipped_records: 0,
            },
        }
    });
    let report = Report {
        outcomes,
        corpus_total,
        jobs: args.jobs,
        machine: args.machine,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        baseline_jobs1_ms,
        // Process-cumulative: covers corpus generation (the generated
        // families derive their verdicts through the same cache), the
        // warm-up, and the timed runs — queries vs. invocations is the
        // memoization + symmetry saving for the whole corpus run.
        model_cache: Some(tso_model::cache::counters()),
        prefix_cache: Some(tso_model::prefix::counters()),
        store: store_counters,
    };

    if let Some((Some(shared), path, _)) = &store {
        let _ = tso_model::cache::take_store();
        let _ = tso_model::prefix::take_store();
        eprintln!(
            "store {}: {} verdicts + {} certs loaded, {} records appended, \
             {} keys + {} certs on disk{}",
            path.display(),
            shared.loads(),
            shared.cert_loads(),
            shared.with(|s| s.appended()),
            shared.with(|s| s.len()),
            shared.with(|s| s.cert_count()),
            if shared.save_errors() > 0 {
                format!(" ({} save errors swallowed)", shared.save_errors())
            } else {
                String::new()
            },
        );
    }

    let rendered = match args.format.as_str() {
        "json" => report.to_json(),
        "tap" => report.to_tap(),
        _ => format!("{}\n", report.summary()),
    };
    print!("{rendered}");
    if args.format.as_str() != "summary" {
        eprintln!("{}", report.summary());
    }
    if let Some(path) = &args.out {
        write_out(path, &rendered);
    }

    if !report.passed() {
        for o in report.outcomes.iter().filter(|o| !o.passed()) {
            eprintln!("FAIL {}: {}", o.name, o.diagnosis());
            if let Some(d) = &o.failure_detail {
                eprintln!("{d}");
            }
        }
        std::process::exit(1);
    }
}

/// Parses `I/N` (e.g. `--shard 2/4`) into `(shard, shards)`.
fn parse_shard(s: &str) -> Option<(u32, u32)> {
    let (i, n) = s.split_once('/')?;
    let shard: u32 = i.parse().ok()?;
    let shards: u32 = n.parse().ok()?;
    (shards >= 1 && shard < shards).then_some((shard, shards))
}

fn campaign_main(argv: Vec<String>) {
    let mut cfg = CampaignConfig::new(litmus::gen::DEFAULT_SEED, 10_000);
    cfg.store_path = Some(PathBuf::from("verdicts.store"));
    cfg.chunk = DEFAULT_CHUNK;
    let mut out: Option<String> = None;
    let mut checkpoint_set = false;
    let mut fault_spec: Option<(u64, u64)> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => fault_spec = Some(parse_faults(&next_value(&mut it, "--faults"))),
            "--seed" => {
                cfg.seed = next_value(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--count" => {
                cfg.count = next_value(&mut it, "--count")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--shard" => {
                let (shard, shards) =
                    parse_shard(&next_value(&mut it, "--shard")).unwrap_or_else(|| {
                        eprintln!("--shard must be I/N with I < N (e.g. 0/4)");
                        usage()
                    });
                cfg.shard = shard;
                cfg.shards = shards;
            }
            "--jobs" => {
                cfg.jobs = next_value(&mut it, "--jobs")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--chunk" => {
                cfg.chunk = next_value(&mut it, "--chunk")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--store" => cfg.store_path = Some(PathBuf::from(next_value(&mut it, "--store"))),
            "--no-store" => cfg.store_path = None,
            "--checkpoint" => {
                cfg.checkpoint_path = PathBuf::from(next_value(&mut it, "--checkpoint"));
                checkpoint_set = true;
            }
            "--resume" => cfg.resume = true,
            "--out" => out = Some(next_value(&mut it, "--out")),
            "--max-chunks" => {
                cfg.max_chunks = Some(
                    next_value(&mut it, "--max-chunks")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--machine" => {
                cfg.machine =
                    MachineKind::parse(&next_value(&mut it, "--machine")).unwrap_or_else(|| {
                        eprintln!("--machine must be small, paper, 128, or 256");
                        usage()
                    })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown campaign flag {other}");
                usage();
            }
        }
    }
    if !checkpoint_set {
        cfg.checkpoint_path = PathBuf::from(default_checkpoint_name(cfg.shard, cfg.shards));
    }
    if let Some((seed, rate_ppm)) = fault_spec {
        eprintln!("litmus_run campaign: fault injection active (seed {seed}, rate {rate_ppm} ppm)");
        faults::install_random(seed, rate_ppm);
    }

    eprintln!(
        "litmus_run campaign: shard {}/{} of {} drafts (seed {}), chunk {}, {} jobs, {} machine{}{}",
        cfg.shard,
        cfg.shards,
        cfg.count,
        cfg.seed,
        cfg.chunk,
        cfg.jobs,
        cfg.machine,
        match &cfg.store_path {
            Some(p) => format!(", store {}", p.display()),
            None => ", no store".to_owned(),
        },
        if cfg.resume { " (resuming)" } else { "" },
    );

    let report = run_campaign(&cfg).unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        std::process::exit(2);
    });
    let rendered = report.to_json();
    print!("{rendered}");
    eprintln!(
        "campaign shard {}/{}: {} processed of {} scanned, {} model failures, \
         {} disagreements, digest {:016x}{}",
        cfg.shard,
        cfg.shards,
        report.state.processed,
        report.state.scanned,
        report.state.model_failures,
        report.state.disagreements,
        report.state.digest,
        if report.complete {
            String::new()
        } else {
            format!(
                " [STOPPED at index {} — rerun with --resume]",
                report.state.next_index
            )
        },
    );
    if let Some(path) = &out {
        write_out(path, &rendered);
    }
    if !report.passed() {
        for (name, diagnosis) in &report.state.failures {
            eprintln!("FAIL {name}: {diagnosis}");
        }
        std::process::exit(1);
    }
}

fn merge_main(argv: Vec<String>) {
    let mut paths: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(next_value(&mut it, "--out")),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown merge flag {flag}");
                usage();
            }
            path => paths.push(path.to_owned()),
        }
    }
    if paths.is_empty() {
        eprintln!("merge needs at least one shard report");
        usage();
    }
    let inputs: Vec<(String, String)> = paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("cannot read {p}: {e}");
                std::process::exit(2);
            });
            (p.clone(), text)
        })
        .collect();
    let merged = merge_reports(&inputs).unwrap_or_else(|e| {
        eprintln!("merge failed: {e}");
        std::process::exit(2);
    });
    print!("{merged}");
    if let Some(path) = &out {
        std::fs::write(path, &merged).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
    if merged.contains("\"passed\": false") {
        std::process::exit(1);
    }
}

fn compact_main(argv: Vec<String>) {
    let mut paths: Vec<String> = Vec::new();
    let mut merge_out: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--merge" => merge_out = Some(next_value(&mut it, "--merge")),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown compact flag {flag}");
                usage();
            }
            path => paths.push(path.to_owned()),
        }
    }
    if paths.is_empty() {
        eprintln!("compact needs at least one store file");
        usage();
    }
    let die = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    match merge_out {
        Some(out) => {
            // Fold every input into the output store, then compact it.
            let mut target =
                Store::open(&out).unwrap_or_else(|e| die(format!("cannot open {out}: {e}")));
            for p in &paths {
                let src = Store::open(p).unwrap_or_else(|e| die(format!("cannot open {p}: {e}")));
                let added = target
                    .absorb(&src)
                    .unwrap_or_else(|e| die(format!("cannot fold {p} into {out}: {e}")));
                eprintln!("{p}: {} keys, {added} new", src.len());
            }
            let (before, after) = target
                .compact()
                .unwrap_or_else(|e| die(format!("cannot compact {out}: {e}")));
            eprintln!(
                "{out}: merged {} files, {before} records -> {after}",
                paths.len()
            );
        }
        None => {
            for p in &paths {
                let mut store =
                    Store::open(p).unwrap_or_else(|e| die(format!("cannot open {p}: {e}")));
                let recovered = store.recovered_bytes();
                let (before, after) = store
                    .compact()
                    .unwrap_or_else(|e| die(format!("cannot compact {p}: {e}")));
                eprint!("{p}: {before} records -> {after}");
                if recovered > 0 {
                    eprint!(" ({recovered} torn bytes dropped)");
                }
                eprintln!();
            }
        }
    }
}
