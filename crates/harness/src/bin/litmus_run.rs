//! `litmus_run` — the parallel differential litmus harness CLI.
//!
//! Runs the full 500+ test corpus (hand-written classic + paper tests,
//! generated families, seeded random programs) through the axiomatic model
//! and the timing simulator under all three RMW atomicities, and reports
//! any disagreement.
//!
//! ```console
//! $ cargo run --release -p harness --bin litmus_run -- [FLAGS]
//! ```
//!
//! Flags:
//!
//! * `--filter SUBSTR` — run only tests whose name contains `SUBSTR`;
//! * `--jobs N` — worker threads (default: available parallelism);
//! * `--smoke` — small-program subset (capped), for CI; the reported
//!   `corpus_total` still counts the full corpus;
//! * `--machine small|paper` — differential side on the per-test small
//!   machine (default) or the full 32-core Table 2 machine;
//! * `--format summary|json|tap` — output format (default `summary`);
//! * `--out PATH` — also write the chosen format to `PATH`;
//! * `--seed N` / `--random N` — corpus generation knobs;
//! * `--no-baseline` — skip the `--jobs 1` reference run that the speedup
//!   figure in the JSON report is computed from.
//!
//! Exit status is nonzero if any test fails either check.

use harness::{full_corpus, run_batch_on, smoke_filter, MachineKind, Report, SMOKE_CAP};

struct Args {
    filter: Option<String>,
    jobs: usize,
    smoke: bool,
    format: String,
    out: Option<String>,
    seed: u64,
    random: usize,
    baseline: bool,
    machine: MachineKind,
}

fn usage() -> ! {
    eprintln!(
        "usage: litmus_run [--filter SUBSTR] [--jobs N] [--smoke] [--machine small|paper] \
         [--format summary|json|tap] [--out PATH] [--seed N] [--random N] [--no-baseline]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        filter: None,
        jobs: std::thread::available_parallelism().map_or(2, |n| n.get()),
        smoke: false,
        format: "summary".to_owned(),
        out: None,
        seed: litmus::gen::DEFAULT_SEED,
        random: litmus::gen::DEFAULT_RANDOM_COUNT,
        baseline: true,
        machine: MachineKind::Small,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--filter" => args.filter = Some(value("--filter")),
            "--jobs" => args.jobs = value("--jobs").parse().unwrap_or_else(|_| usage()),
            "--smoke" => args.smoke = true,
            "--format" => args.format = value("--format"),
            "--out" => args.out = Some(value("--out")),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--random" => args.random = value("--random").parse().unwrap_or_else(|_| usage()),
            "--no-baseline" => args.baseline = false,
            "--machine" => {
                args.machine = MachineKind::parse(&value("--machine")).unwrap_or_else(|| {
                    eprintln!("--machine must be small or paper");
                    usage()
                })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if !matches!(args.format.as_str(), "summary" | "json" | "tap") {
        eprintln!("unknown format {:?}", args.format);
        usage();
    }
    args
}

fn main() {
    let args = parse_args();

    let corpus = full_corpus(args.seed, args.random);
    let corpus_total = corpus.len();
    let mut selected: Vec<litmus::Litmus> = corpus
        .into_iter()
        .filter(|l| args.filter.as_deref().map_or(true, |f| l.name.contains(f)))
        .filter(|l| !args.smoke || smoke_filter(l))
        .collect();
    if args.smoke {
        selected.truncate(SMOKE_CAP);
    }
    eprintln!(
        "litmus_run: corpus {corpus_total} tests, running {} on {} jobs, {} machine{}",
        selected.len(),
        args.jobs,
        args.machine,
        if args.smoke { " (smoke)" } else { "" }
    );

    // An untimed warm-up pass first. When a baseline comparison is
    // coming, it covers the full selection: besides the one-time process
    // costs (page faults, allocator growth, lazy init) it fully
    // populates the memoized verdict cache, so the jobs-1 reference run
    // and the measured run see identical (hot-cache) model work and the
    // ratio is a clean worker-scaling figure rather than a cache-position
    // artifact. Without a baseline nobody compares timings, and the
    // simulator side is *not* memoized — so a capped slice keeps plain
    // correctness runs from paying the corpus twice.
    let measuring_baseline = args.baseline && args.jobs > 1;
    let warmup = if measuring_baseline {
        selected.len()
    } else {
        selected.len().min(32)
    };
    let _ = run_batch_on(&selected[..warmup], args.jobs.max(1), args.machine);
    let baseline_jobs1_ms = measuring_baseline.then(|| {
        let (_, elapsed) = run_batch_on(&selected, 1, args.machine);
        elapsed.as_secs_f64() * 1e3
    });
    let (outcomes, elapsed) = run_batch_on(&selected, args.jobs, args.machine);
    let report = Report {
        outcomes,
        corpus_total,
        jobs: args.jobs,
        machine: args.machine,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        baseline_jobs1_ms,
        // Process-cumulative: covers corpus generation (the generated
        // families derive their verdicts through the same cache), the
        // warm-up, and the timed runs — queries vs. invocations is the
        // memoization + symmetry saving for the whole corpus run.
        model_cache: Some(tso_model::cache::counters()),
    };

    let rendered = match args.format.as_str() {
        "json" => report.to_json(),
        "tap" => report.to_tap(),
        _ => format!("{}\n", report.summary()),
    };
    print!("{rendered}");
    if args.format.as_str() != "summary" {
        eprintln!("{}", report.summary());
    }
    if let Some(path) = &args.out {
        std::fs::write(path, &rendered).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if !report.passed() {
        for o in report.outcomes.iter().filter(|o| !o.passed()) {
            eprintln!("FAIL {}: {}", o.name, o.diagnosis());
            if let Some(d) = &o.failure_detail {
                eprintln!("{d}");
            }
        }
        std::process::exit(1);
    }
}
