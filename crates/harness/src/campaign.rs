//! Resumable sharded litmus campaigns.
//!
//! A campaign streams the deterministic random-access test sequence
//! `litmus::gen::campaign_draft(seed, 0..count)` through the differential
//! harness with **bounded memory**: drafts are generated chunk by chunk,
//! never materializing the whole corpus. Three properties make campaigns
//! scale past what one invocation (or one machine) can do in one sitting:
//!
//! * **Sharding** — shard `i` of `n` runs exactly the drafts whose
//!   canonical fingerprint satisfies `fingerprint % n == i`. The
//!   fingerprint depends only on the program (and drafting is cheap —
//!   no model query), so the partition is deterministic, disjoint, and
//!   complete: every draft lands in exactly one shard, and `n` machines
//!   can split a campaign with no coordination beyond the final
//!   [`merge_reports`].
//! * **Checkpoints** — after every chunk the driver atomically rewrites
//!   (temp file + rename) a small JSON checkpoint: the next draft index
//!   plus the running aggregates and result digest. `--resume` reloads
//!   it, validates that the campaign parameters match, and continues
//!   from the cut. A killed run loses at most one chunk of work — and
//!   with a verdict store attached, not even the model searches of that
//!   chunk.
//! * **The verdict store** — when configured, the campaign installs a
//!   [`crate::store::SharedStore`] as the model cache's
//!   persistence hook, so every model search result survives the
//!   process. Concurrent shards must not share a store file (the store
//!   does no locking), so the driver derives a per-shard file name
//!   (`PATH.i-of-n`) whenever `shards > 1`; fold the pieces afterwards
//!   with `litmus_run compact --merge`.
//!
//! Equivalence under resume: the draft stream is random-access, chunks
//! are processed in index order, and the worker pool returns outcomes in
//! input order, so the per-shard aggregates and the order-dependent
//! result [digest](CampaignState::digest) of a resumed run are identical
//! to an uninterrupted one. Only wall-clock and cache/store counters
//! differ — and those are excluded from the digest.

use crate::report::json_escape;
use crate::store::{fsync_parent, SharedStore};
use crate::{differential_check_on, faults, jsonx, MachineKind, TestOutcome};
use litmus::gen::campaign_draft;
use litmus::Expect;
use rmw_types::fasthash::FastHasher;
use std::collections::BTreeSet;
use std::hash::Hasher as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Failures recorded verbatim in checkpoints and reports; beyond this the
/// counters still count but the diagnoses are dropped (a campaign that
/// fails thousands of tests has a systemic bug, not thousands of
/// interesting diagnoses).
pub const MAX_RECORDED_FAILURES: usize = 1000;

/// Default number of draft indices scanned per chunk (and thus per
/// checkpoint). Memory use is bounded by the chunk, not the campaign.
pub const DEFAULT_CHUNK: u64 = 1024;

/// Everything that defines a campaign run. The tuple
/// `(seed, count, shard, shards, machine)` defines the *work*; the rest
/// is execution policy (parallelism, chunking, persistence paths).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed: drafts are `campaign_draft(seed, index)`.
    pub seed: u64,
    /// Total draft indices in the campaign, across all shards.
    pub count: u64,
    /// This shard's id, in `0..shards`.
    pub shard: u32,
    /// Total shards the campaign is split into.
    pub shards: u32,
    /// Worker threads for the run phase.
    pub jobs: usize,
    /// Simulated machine for the differential side.
    pub machine: MachineKind,
    /// Draft indices per chunk (checkpoint granularity, memory bound).
    pub chunk: u64,
    /// Verdict store file, or `None` to run without persistence. With
    /// `shards > 1` the actual file is `PATH.shard-of-shards`.
    pub store_path: Option<PathBuf>,
    /// Checkpoint file path.
    pub checkpoint_path: PathBuf,
    /// Resume from the checkpoint instead of starting at index 0.
    pub resume: bool,
    /// Test hook: stop (checkpointed) after this many chunks, simulating
    /// a kill. `None` runs to completion.
    pub max_chunks: Option<u64>,
}

impl CampaignConfig {
    /// A single-shard campaign with default policy: all parallelism,
    /// small machine, default chunk, no store, checkpoint beside the cwd.
    pub fn new(seed: u64, count: u64) -> Self {
        CampaignConfig {
            seed,
            count,
            shard: 0,
            shards: 1,
            jobs: std::thread::available_parallelism().map_or(2, |n| n.get()),
            machine: MachineKind::Small,
            chunk: DEFAULT_CHUNK,
            store_path: None,
            checkpoint_path: PathBuf::from(default_checkpoint_name(0, 1)),
            resume: false,
            max_chunks: None,
        }
    }
}

/// The default checkpoint file name for a shard.
pub fn default_checkpoint_name(shard: u32, shards: u32) -> String {
    format!("campaign-{shard}-of-{shards}.checkpoint.json")
}

/// The per-shard store file derived from the configured base path:
/// `PATH.i-of-n` when `shards > 1`, the path itself for a single shard.
pub fn shard_store_path(base: &Path, shard: u32, shards: u32) -> PathBuf {
    if shards <= 1 {
        base.to_path_buf()
    } else {
        let mut name = base.as_os_str().to_os_string();
        name.push(format!(".{shard}-of-{shards}"));
        PathBuf::from(name)
    }
}

/// The deterministic running state of a shard: exactly what a checkpoint
/// persists. Every field is a pure function of
/// `(seed, count, shard, shards, machine, next_index)` — nothing
/// wall-clock- or cache-dependent — which is what makes kill/resume
/// equivalence checkable by comparing states.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignState {
    /// Next draft index to scan (all indices below are done).
    pub next_index: u64,
    /// Draft indices scanned (in-shard or not).
    pub scanned: u64,
    /// In-shard tests executed.
    pub processed: u64,
    /// Tests whose model verdict contradicted the expectation.
    pub model_failures: u64,
    /// (test, atomicity) pairs where the simulator left the allowed set.
    pub disagreements: u64,
    /// Simulator deadlocks observed.
    pub deadlocks: u64,
    /// Order-dependent fasthash over every processed outcome (name,
    /// verdicts, per-atomicity agreement and read values). Shards XOR
    /// their digests at merge time.
    pub digest: u64,
    /// In-shard tests whose worker panicked: no verdict was produced, so
    /// they count here instead of `processed` and stay out of the digest
    /// (a crashed test contributes *nothing*, wrong contributes never).
    pub crashed: u64,
    /// Draft indices of crashed tests, persisted in the checkpoint so a
    /// resumed run skips known-crashers instead of dying on them again.
    pub quarantine: BTreeSet<u64>,
    /// Recorded failures, capped at [`MAX_RECORDED_FAILURES`].
    pub failures: Vec<(String, String)>,
}

impl CampaignState {
    fn fold(&mut self, o: &TestOutcome) {
        self.processed += 1;
        if !o.model_passed {
            self.model_failures += 1;
        }
        self.disagreements += o.differential.iter().filter(|d| !d.agreed).count() as u64;
        self.deadlocks += o.differential.iter().filter(|d| d.deadlocked).count() as u64;
        let mut h = FastHasher::default();
        h.write_u64(self.digest);
        h.write(o.name.as_bytes());
        h.write_u8(u8::from(o.expect == Expect::Allowed));
        h.write_u8(u8::from(o.observed_allowed));
        h.write_u8(u8::from(o.model_passed));
        for d in &o.differential {
            h.write_u8(u8::from(d.agreed));
            h.write_u8(u8::from(d.deadlocked));
            for &r in &d.sim_reads {
                h.write_u64(r);
            }
        }
        self.digest = h.finish();
        if !o.passed() && self.failures.len() < MAX_RECORDED_FAILURES {
            self.failures.push((o.name.clone(), o.diagnosis()));
        }
    }

    /// Records a test whose worker panicked: quarantined by draft index,
    /// counted, surfaced as a failure — but never folded into `processed`
    /// or the digest.
    fn fold_crash(&mut self, index: u64, name: &str, message: &str) {
        self.crashed += 1;
        self.quarantine.insert(index);
        if self.failures.len() < MAX_RECORDED_FAILURES {
            self.failures
                .push((name.to_owned(), format!("crashed: {message}")));
        }
    }
}

/// Verdict-store activity during a campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreCounters {
    /// The per-shard store file actually used.
    pub path: String,
    /// Why the store failed to open, when it did: the campaign degrades
    /// to store-less operation instead of failing (see
    /// [`StoreCounters::degraded`]).
    pub open_error: Option<String>,
    /// Model-cache misses answered from the store (searches avoided).
    pub loads: u64,
    /// Prefix certificates served from the store (sibling searches
    /// replayed instead of re-run, even cold).
    pub cert_loads: u64,
    /// Fresh records appended this run (verdicts + certificates).
    pub appended: u64,
    /// Distinct verdict keys in the store after the run.
    pub keys: u64,
    /// Distinct certificate keys in the store after the run.
    pub certs: u64,
    /// Bytes dropped from a torn tail when the store was opened.
    pub recovered_bytes: u64,
    /// Checksummed records with a kind this build does not understand,
    /// skipped during replay.
    pub skipped_records: u64,
    /// Swallowed write failures (persistence is best-effort).
    pub save_errors: u64,
}

impl StoreCounters {
    /// True when persistence ran degraded: the store failed to open (the
    /// run continued store-less) or some saves were swallowed. Results
    /// are still correct — only reuse is lost.
    pub fn degraded(&self) -> bool {
        self.open_error.is_some() || self.save_errors > 0
    }
}

/// The result of [`run_campaign`] for one shard.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The configuration the shard ran under.
    pub config: CampaignConfig,
    /// Final deterministic state (aggregates, digest, failures).
    pub state: CampaignState,
    /// True when every draft index was scanned (`max_chunks` can stop a
    /// run early; such a report is a checkpointed partial, not mergeable).
    pub complete: bool,
    /// Wall-clock of this invocation (a resumed run counts only itself).
    pub elapsed_ms: f64,
    /// Process-wide model cache counters at report time.
    pub model_cache: tso_model::CacheCounters,
    /// Process-wide prefix-certificate counters at report time.
    pub prefix_cache: tso_model::prefix::PrefixCounters,
    /// Store activity, when a store was configured.
    pub store: Option<StoreCounters>,
    /// Checkpoint writes that failed and were tolerated: the run
    /// continued, at the cost of resume granularity (a kill replays back
    /// to the last checkpoint that did land).
    pub checkpoint_errors: u64,
}

impl CampaignReport {
    /// True iff every processed test passed both checks and no test
    /// crashed (a crashed test proved nothing, which is still a failure
    /// of the run).
    pub fn passed(&self) -> bool {
        self.state.model_failures == 0 && self.state.disagreements == 0 && self.state.crashed == 0
    }

    /// True when any persistence seam ran degraded this invocation:
    /// store open failure, swallowed store saves, or tolerated
    /// checkpoint-write failures. Verdicts are unaffected.
    pub fn degraded(&self) -> bool {
        self.checkpoint_errors > 0 || self.store.as_ref().is_some_and(StoreCounters::degraded)
    }

    /// The shard report as JSON — the input format of `litmus_run merge`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"experiment\": \"litmus_campaign\",");
        let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
        let _ = writeln!(s, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(s, "  \"count\": {},", self.config.count);
        let _ = writeln!(s, "  \"shard\": {},", self.config.shard);
        let _ = writeln!(s, "  \"shards\": {},", self.config.shards);
        let _ = writeln!(s, "  \"machine\": \"{}\",", self.config.machine);
        let _ = writeln!(s, "  \"jobs\": {},", self.config.jobs);
        let _ = writeln!(s, "  \"chunk\": {},", self.config.chunk);
        let _ = writeln!(s, "  \"complete\": {},", self.complete);
        let _ = writeln!(s, "  \"next_index\": {},", self.state.next_index);
        let _ = writeln!(s, "  \"scanned\": {},", self.state.scanned);
        let _ = writeln!(s, "  \"processed\": {},", self.state.processed);
        let _ = writeln!(s, "  \"model_failures\": {},", self.state.model_failures);
        let _ = writeln!(
            s,
            "  \"differential_disagreements\": {},",
            self.state.disagreements
        );
        let _ = writeln!(s, "  \"deadlocks\": {},", self.state.deadlocks);
        let _ = writeln!(s, "  \"crashed\": {},", self.state.crashed);
        let _ = writeln!(
            s,
            "  \"quarantine\": [{}],",
            quarantine_csv(&self.state.quarantine)
        );
        let _ = writeln!(s, "  \"passed\": {},", self.passed());
        let _ = writeln!(s, "  \"degraded\": {},", self.degraded());
        let _ = writeln!(s, "  \"checkpoint_errors\": {},", self.checkpoint_errors);
        let _ = writeln!(s, "  \"faults_fired\": {},", faults::fired());
        let _ = writeln!(s, "  \"digest\": {},", self.state.digest);
        let _ = writeln!(s, "  \"elapsed_ms\": {:.3},", self.elapsed_ms);
        let c = &self.model_cache;
        let _ = writeln!(s, "  \"model_cache\": {{");
        let _ = writeln!(s, "    \"queries\": {},", c.queries);
        let _ = writeln!(s, "    \"invocations\": {},", c.invocations);
        let _ = writeln!(s, "    \"hits\": {},", c.hits());
        let _ = writeln!(s, "    \"store_hits\": {},", c.store_hits);
        let _ = writeln!(s, "    \"entries\": {}", c.entries);
        let _ = writeln!(s, "  }},");
        let p = &self.prefix_cache;
        let _ = writeln!(s, "  \"prefix_cache\": {{");
        let _ = writeln!(s, "    \"queries\": {},", p.queries);
        let _ = writeln!(s, "    \"hits\": {},", p.hits);
        let _ = writeln!(s, "    \"store_hits\": {},", p.store_hits);
        let _ = writeln!(s, "    \"stored\": {},", p.stored);
        let _ = writeln!(s, "    \"nodes_saved\": {},", p.nodes_saved);
        let _ = writeln!(s, "    \"replayed_leaves\": {},", p.replayed_leaves);
        let _ = writeln!(s, "    \"entries\": {}", p.entries);
        let _ = writeln!(s, "  }},");
        match &self.store {
            Some(st) => {
                let _ = writeln!(s, "  \"store\": {{");
                let _ = writeln!(s, "    \"path\": \"{}\",", json_escape(&st.path));
                let _ = writeln!(s, "    \"degraded\": {},", st.degraded());
                match &st.open_error {
                    Some(e) => {
                        let _ = writeln!(s, "    \"open_error\": \"{}\",", json_escape(e));
                    }
                    None => {
                        let _ = writeln!(s, "    \"open_error\": null,");
                    }
                }
                let _ = writeln!(s, "    \"loads\": {},", st.loads);
                let _ = writeln!(s, "    \"cert_loads\": {},", st.cert_loads);
                let _ = writeln!(s, "    \"appended\": {},", st.appended);
                let _ = writeln!(s, "    \"keys\": {},", st.keys);
                let _ = writeln!(s, "    \"certs\": {},", st.certs);
                let _ = writeln!(s, "    \"recovered_bytes\": {},", st.recovered_bytes);
                let _ = writeln!(s, "    \"skipped_records\": {},", st.skipped_records);
                let _ = writeln!(s, "    \"save_errors\": {}", st.save_errors);
                let _ = writeln!(s, "  }},");
            }
            None => {
                let _ = writeln!(s, "  \"store\": null,");
            }
        }
        let _ = write!(s, "{}", failures_json(&self.state.failures, "  "));
        let _ = writeln!(s, "}}");
        s
    }
}

fn quarantine_csv(quarantine: &BTreeSet<u64>) -> String {
    quarantine
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

fn failures_json(failures: &[(String, String)], indent: &str) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{indent}\"failures\": [");
    for (i, (name, diagnosis)) in failures.iter().enumerate() {
        let comma = if i + 1 < failures.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "{indent}  {{\"name\": \"{}\", \"diagnosis\": \"{}\"}}{comma}",
            json_escape(name),
            json_escape(diagnosis)
        );
    }
    let _ = writeln!(s, "{indent}]");
    s
}

fn checkpoint_json(cfg: &CampaignConfig, state: &CampaignState) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"litmus_campaign_checkpoint\",");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"count\": {},", cfg.count);
    let _ = writeln!(s, "  \"shard\": {},", cfg.shard);
    let _ = writeln!(s, "  \"shards\": {},", cfg.shards);
    let _ = writeln!(s, "  \"machine\": \"{}\",", cfg.machine);
    let _ = writeln!(s, "  \"next_index\": {},", state.next_index);
    let _ = writeln!(s, "  \"scanned\": {},", state.scanned);
    let _ = writeln!(s, "  \"processed\": {},", state.processed);
    let _ = writeln!(s, "  \"model_failures\": {},", state.model_failures);
    let _ = writeln!(s, "  \"disagreements\": {},", state.disagreements);
    let _ = writeln!(s, "  \"deadlocks\": {},", state.deadlocks);
    let _ = writeln!(s, "  \"crashed\": {},", state.crashed);
    let _ = writeln!(
        s,
        "  \"quarantine\": [{}],",
        quarantine_csv(&state.quarantine)
    );
    let _ = writeln!(s, "  \"digest\": {},", state.digest);
    let _ = write!(s, "{}", failures_json(&state.failures, "  "));
    let _ = writeln!(s, "}}");
    s
}

/// Atomically writes the checkpoint for `state` (temp file + rename, so a
/// crash mid-write leaves the previous checkpoint intact).
pub fn write_checkpoint(
    path: &Path,
    cfg: &CampaignConfig,
    state: &CampaignState,
) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        faults::io_point("campaign.checkpoint.create")?;
        let mut f = std::fs::File::create(&tmp)?;
        faults::write_point(
            &mut f,
            checkpoint_json(cfg, state).as_bytes(),
            "campaign.checkpoint.write",
        )?;
        f.sync_all()?;
    }
    faults::io_point("campaign.checkpoint.rename")?;
    std::fs::rename(&tmp, path)?;
    // The rename is a directory-entry update; sync the parent so the new
    // checkpoint (not just its bytes) survives power loss.
    fsync_parent(path)?;
    // The chaos campaign's random-mode kill lives *after* the commit:
    // every attempt that reaches it has durably banked its chunk, so a
    // kill/resume loop always makes progress and terminates.
    faults::kill_point("campaign.checkpoint.post_commit");
    Ok(())
}

fn invalid<T>(msg: String) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidData, msg))
}

fn field(v: &jsonx::Value, key: &str) -> io::Result<u64> {
    match v.get(key).and_then(jsonx::Value::as_u64) {
        Some(n) => Ok(n),
        None => invalid(format!("checkpoint missing numeric field {key:?}")),
    }
}

/// Loads a checkpoint and validates that it belongs to this campaign —
/// `seed`, `count`, `shard`, `shards`, and `machine` must all match, so a
/// stale file from a different campaign fails loudly instead of silently
/// resuming the wrong work.
pub fn load_checkpoint(path: &Path, cfg: &CampaignConfig) -> io::Result<CampaignState> {
    let text = std::fs::read_to_string(path)?;
    let v = jsonx::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    if v.get("experiment").and_then(jsonx::Value::as_str) != Some("litmus_campaign_checkpoint") {
        return invalid(format!("{}: not a campaign checkpoint", path.display()));
    }
    let expected: [(&str, u64); 4] = [
        ("seed", cfg.seed),
        ("count", cfg.count),
        ("shard", u64::from(cfg.shard)),
        ("shards", u64::from(cfg.shards)),
    ];
    for (key, want) in expected {
        let got = field(&v, key)?;
        if got != want {
            return invalid(format!(
                "{}: checkpoint {key} {got} does not match campaign {key} {want}",
                path.display()
            ));
        }
    }
    let machine = v
        .get("machine")
        .and_then(jsonx::Value::as_str)
        .unwrap_or("");
    if machine != cfg.machine.name() {
        return invalid(format!(
            "{}: checkpoint machine {machine:?} does not match campaign machine {:?}",
            path.display(),
            cfg.machine.name()
        ));
    }
    let mut failures = Vec::new();
    if let Some(arr) = v.get("failures").and_then(jsonx::Value::as_arr) {
        for f in arr {
            let name = f.get("name").and_then(jsonx::Value::as_str).unwrap_or("");
            let diagnosis = f
                .get("diagnosis")
                .and_then(jsonx::Value::as_str)
                .unwrap_or("");
            failures.push((name.to_owned(), diagnosis.to_owned()));
        }
    }
    // Crash-isolation fields are parsed leniently: checkpoints written
    // before they existed simply resume with nothing quarantined.
    let crashed = v.get("crashed").and_then(jsonx::Value::as_u64).unwrap_or(0);
    let mut quarantine = BTreeSet::new();
    if let Some(arr) = v.get("quarantine").and_then(jsonx::Value::as_arr) {
        for q in arr {
            if let Some(i) = q.as_u64() {
                quarantine.insert(i);
            }
        }
    }
    Ok(CampaignState {
        next_index: field(&v, "next_index")?,
        scanned: field(&v, "scanned")?,
        processed: field(&v, "processed")?,
        model_failures: field(&v, "model_failures")?,
        disagreements: field(&v, "disagreements")?,
        deadlocks: field(&v, "deadlocks")?,
        digest: field(&v, "digest")?,
        crashed,
        quarantine,
        failures,
    })
}

/// Runs one shard of a campaign to completion (or to `max_chunks`),
/// checkpointing after every chunk. See the module docs for the sharding,
/// resume, and persistence contracts.
///
/// When a store is configured it is installed as the process-wide model
/// persistence hook for the duration of the run and uninstalled before
/// returning (replacing any previously installed store).
pub fn run_campaign(cfg: &CampaignConfig) -> io::Result<CampaignReport> {
    if cfg.shards == 0 || cfg.shard >= cfg.shards {
        return invalid(format!(
            "shard {} out of range for {} shards",
            cfg.shard, cfg.shards
        ));
    }
    if cfg.chunk == 0 {
        return invalid("chunk size must be positive".to_owned());
    }

    // Graceful degradation: a store that fails to open costs persistence
    // (every search is paid again), never the campaign. The failure is
    // surfaced as `open_error` + the report's `degraded` flag.
    let store = match &cfg.store_path {
        Some(base) => {
            let path = shard_store_path(base, cfg.shard, cfg.shards);
            match SharedStore::open(&path) {
                Ok(shared) => {
                    let shared = Arc::new(shared);
                    tso_model::cache::set_store(shared.clone());
                    tso_model::prefix::set_store(shared.clone());
                    Some((Some(shared), path, None))
                }
                Err(e) => {
                    eprintln!(
                        "campaign: cannot open store {} ({e}) — continuing without persistence",
                        path.display()
                    );
                    Some((None, path, Some(e.to_string())))
                }
            }
        }
        None => None,
    };

    let mut state = if cfg.resume {
        load_checkpoint(&cfg.checkpoint_path, cfg)?
    } else {
        CampaignState::default()
    };

    let started = Instant::now();
    let mut chunks_done = 0u64;
    let mut checkpoint_errors = 0u64;
    while state.next_index < cfg.count {
        let end = (state.next_index + cfg.chunk).min(cfg.count);
        let drafts: Vec<(u64, litmus::gen::CampaignDraft)> = (state.next_index..end)
            .map(|i| (i, campaign_draft(cfg.seed, i)))
            .filter(|(_, d)| d.fingerprint() % u64::from(cfg.shards) == u64::from(cfg.shard))
            // Known-crashers from the checkpoint stay quarantined: a
            // resumed run skips them instead of dying on them again.
            .filter(|(i, _)| !state.quarantine.contains(i))
            .collect();
        state.scanned += end - state.next_index;
        let jobs = cfg.jobs.max(1).min(drafts.len().max(1));
        let results = exec_pool::run_all_catching(jobs, drafts.len(), |_, idx| {
            differential_check_on(&drafts[idx].1.clone().finish(), cfg.machine)
        });
        for (slot, result) in results.into_iter().enumerate() {
            match result {
                Ok(o) => state.fold(&o),
                Err(panic) => {
                    let (index, draft) = &drafts[slot];
                    state.fold_crash(*index, &draft.name, &panic.message);
                }
            }
        }
        state.next_index = end;
        // A failed checkpoint write is tolerated: the campaign keeps its
        // in-memory state and only resume granularity suffers (a kill
        // now replays back to the last checkpoint that landed).
        if let Err(e) = write_checkpoint(&cfg.checkpoint_path, cfg, &state) {
            checkpoint_errors += 1;
            eprintln!("campaign: checkpoint write failed ({e}) — continuing without it");
        }
        chunks_done += 1;
        if cfg.max_chunks.is_some_and(|max| chunks_done >= max) {
            break;
        }
    }

    let store_counters = store.map(|(shared, path, open_error)| {
        let path = path.display().to_string();
        match shared {
            Some(shared) => {
                let _ = tso_model::cache::take_store();
                let _ = tso_model::prefix::take_store();
                StoreCounters {
                    path,
                    open_error,
                    loads: shared.loads(),
                    cert_loads: shared.cert_loads(),
                    save_errors: shared.save_errors(),
                    appended: shared.with(|s| s.appended()),
                    keys: shared.with(|s| s.len() as u64),
                    certs: shared.with(|s| s.cert_count() as u64),
                    recovered_bytes: shared.with(|s| s.recovered_bytes()),
                    skipped_records: shared.with(|s| s.open_stats().skipped_records),
                }
            }
            // The store never opened: all-zero counters, open_error set.
            None => StoreCounters {
                path,
                open_error,
                loads: 0,
                cert_loads: 0,
                save_errors: 0,
                appended: 0,
                keys: 0,
                certs: 0,
                recovered_bytes: 0,
                skipped_records: 0,
            },
        }
    });

    Ok(CampaignReport {
        complete: state.next_index == cfg.count,
        config: cfg.clone(),
        state,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        model_cache: tso_model::cache::counters(),
        prefix_cache: tso_model::prefix::counters(),
        store: store_counters,
        checkpoint_errors,
    })
}

/// Folds per-shard campaign report JSONs (the output of
/// `litmus_run campaign --format json` / `--out`) into one merged report.
///
/// Validates that every input is a *complete* `litmus_campaign` report,
/// that they agree on `(seed, count, shards, machine)`, that the shard
/// ids form exactly `0..shards` with no duplicates, and that the shards'
/// `processed` counts sum to `count` (the partition really was disjoint
/// and complete). Counters are summed, failure lists concatenated in
/// shard order, and the per-shard digests XOR-folded into one
/// order-independent campaign digest.
pub fn merge_reports(inputs: &[(String, String)]) -> Result<String, String> {
    use std::fmt::Write as _;
    if inputs.is_empty() {
        return Err("merge needs at least one shard report".to_owned());
    }
    struct Shard {
        name: String,
        shard: u64,
        processed: u64,
        crashed: u64,
        scanned: u64,
        model_failures: u64,
        disagreements: u64,
        deadlocks: u64,
        digest: u64,
        elapsed_ms: f64,
        failures: Vec<(String, String)>,
    }
    let mut header: Option<(u64, u64, u64, String)> = None; // seed count shards machine
    let mut shards_seen: Vec<Shard> = Vec::new();
    for (name, text) in inputs {
        let v = jsonx::parse(text).map_err(|e| format!("{name}: {e}"))?;
        if v.get("experiment").and_then(jsonx::Value::as_str) != Some("litmus_campaign") {
            return Err(format!("{name}: not a campaign shard report"));
        }
        if v.get("complete").and_then(jsonx::Value::as_bool) != Some(true) {
            return Err(format!(
                "{name}: shard report is incomplete (resume it first)"
            ));
        }
        let num = |key: &str| {
            v.get(key)
                .and_then(jsonx::Value::as_u64)
                .ok_or_else(|| format!("{name}: missing numeric field {key:?}"))
        };
        let this = (
            num("seed")?,
            num("count")?,
            num("shards")?,
            v.get("machine")
                .and_then(jsonx::Value::as_str)
                .unwrap_or("")
                .to_owned(),
        );
        match &header {
            None => header = Some(this),
            Some(h) => {
                if *h != this {
                    return Err(format!(
                        "{name}: campaign parameters {this:?} do not match first shard {h:?}"
                    ));
                }
            }
        }
        let mut failures = Vec::new();
        if let Some(arr) = v.get("failures").and_then(jsonx::Value::as_arr) {
            for f in arr {
                failures.push((
                    f.get("name")
                        .and_then(jsonx::Value::as_str)
                        .unwrap_or("")
                        .to_owned(),
                    f.get("diagnosis")
                        .and_then(jsonx::Value::as_str)
                        .unwrap_or("")
                        .to_owned(),
                ));
            }
        }
        shards_seen.push(Shard {
            name: name.clone(),
            shard: num("shard")?,
            processed: num("processed")?,
            // Lenient: reports from before crash isolation have no field.
            crashed: v.get("crashed").and_then(jsonx::Value::as_u64).unwrap_or(0),
            scanned: num("scanned")?,
            model_failures: num("model_failures")?,
            disagreements: num("differential_disagreements")?,
            deadlocks: num("deadlocks")?,
            digest: num("digest")?,
            elapsed_ms: v
                .get("elapsed_ms")
                .and_then(jsonx::Value::as_f64)
                .unwrap_or(0.0),
            failures,
        });
    }
    let (seed, count, shards, machine) = header.expect("at least one input");
    if shards_seen.len() as u64 != shards {
        return Err(format!(
            "campaign has {shards} shards but {} reports were given",
            shards_seen.len()
        ));
    }
    shards_seen.sort_by_key(|s| s.shard);
    for (want, s) in shards_seen.iter().enumerate() {
        if s.shard != want as u64 {
            return Err(format!(
                "{}: expected shard {want} at this position, got shard {} \
                 (shard set must be exactly 0..{shards})",
                s.name, s.shard
            ));
        }
        if s.scanned != count {
            return Err(format!(
                "{}: shard scanned {} of {count} draft indices — incomplete",
                s.name, s.scanned
            ));
        }
    }
    let processed: u64 = shards_seen.iter().map(|s| s.processed).sum();
    let crashed: u64 = shards_seen.iter().map(|s| s.crashed).sum();
    // Crashed tests produced no verdict but still account for their
    // draft index — missing, never double-counted, never silently lost.
    if processed + crashed != count {
        return Err(format!(
            "shards processed {processed} tests (+{crashed} crashed) in total, campaign \
             has {count} — the shard partition was not disjoint and complete"
        ));
    }
    let model_failures: u64 = shards_seen.iter().map(|s| s.model_failures).sum();
    let disagreements: u64 = shards_seen.iter().map(|s| s.disagreements).sum();
    let deadlocks: u64 = shards_seen.iter().map(|s| s.deadlocks).sum();
    let digest = shards_seen.iter().fold(0u64, |d, s| d ^ s.digest);
    let cpu_ms: f64 = shards_seen.iter().map(|s| s.elapsed_ms).sum();
    let failures: Vec<(String, String)> =
        shards_seen.into_iter().flat_map(|s| s.failures).collect();

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"experiment\": \"litmus_campaign_merged\",");
    let _ = writeln!(out, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"count\": {count},");
    let _ = writeln!(out, "  \"shards\": {shards},");
    let _ = writeln!(out, "  \"machine\": \"{machine}\",");
    let _ = writeln!(out, "  \"processed\": {processed},");
    let _ = writeln!(out, "  \"crashed\": {crashed},");
    let _ = writeln!(out, "  \"model_failures\": {model_failures},");
    let _ = writeln!(out, "  \"differential_disagreements\": {disagreements},");
    let _ = writeln!(out, "  \"deadlocks\": {deadlocks},");
    let _ = writeln!(
        out,
        "  \"passed\": {},",
        model_failures == 0 && disagreements == 0 && crashed == 0
    );
    let _ = writeln!(out, "  \"digest\": {digest},");
    let _ = writeln!(out, "  \"shard_elapsed_ms_sum\": {cpu_ms:.3},");
    let _ = write!(out, "{}", failures_json(&failures, "  "));
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("campaign-{}-{name}", std::process::id()))
    }

    fn small_cfg(name: &str, shard: u32, shards: u32) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(99, 60);
        cfg.shard = shard;
        cfg.shards = shards;
        cfg.jobs = 2;
        cfg.chunk = 16;
        cfg.checkpoint_path = tmp(&format!("{name}-{shard}.json"));
        cfg
    }

    #[test]
    fn shards_partition_the_campaign_and_merge_reconstructs_it() {
        let solo = {
            let cfg = small_cfg("solo", 0, 1);
            run_campaign(&cfg).unwrap()
        };
        assert!(solo.complete);
        assert_eq!(solo.state.processed, 60);
        assert_eq!(solo.state.scanned, 60);

        let mut inputs = Vec::new();
        let mut processed_sum = 0;
        for shard in 0..3 {
            let cfg = small_cfg("split", shard, 3);
            let r = run_campaign(&cfg).unwrap();
            assert!(r.complete);
            processed_sum += r.state.processed;
            inputs.push((format!("shard{shard}"), r.to_json()));
        }
        assert_eq!(processed_sum, 60, "shards partition the draft space");
        let merged = merge_reports(&inputs).unwrap();
        let v = jsonx::parse(&merged).unwrap();
        assert_eq!(
            v.get("experiment").and_then(jsonx::Value::as_str),
            Some("litmus_campaign_merged")
        );
        assert_eq!(v.get("processed").and_then(jsonx::Value::as_u64), Some(60));
        assert_eq!(
            v.get("passed").and_then(jsonx::Value::as_bool),
            Some(solo.passed())
        );
        for shard in 0..3 {
            let _ = std::fs::remove_file(tmp(&format!("split-{shard}.json")));
        }
        let _ = std::fs::remove_file(tmp("solo-0.json"));
    }

    #[test]
    fn merge_rejects_missing_and_mismatched_shards() {
        let mut inputs = Vec::new();
        for shard in 0..2 {
            let cfg = small_cfg("reject", shard, 2);
            let r = run_campaign(&cfg).unwrap();
            inputs.push((format!("shard{shard}"), r.to_json()));
            let _ = std::fs::remove_file(tmp(&format!("reject-{shard}.json")));
        }
        // Dropping a shard is caught.
        assert!(merge_reports(&inputs[..1])
            .unwrap_err()
            .contains("2 shards"));
        // Duplicating a shard is caught.
        let dup = vec![inputs[0].clone(), inputs[0].clone()];
        assert!(merge_reports(&dup).unwrap_err().contains("shard"));
        // Garbage is caught.
        assert!(merge_reports(&[("x".into(), "{}".into())]).is_err());
    }

    #[test]
    fn checkpoints_validate_campaign_identity() {
        let cfg = small_cfg("identity", 0, 1);
        let state = CampaignState {
            next_index: 32,
            scanned: 32,
            processed: 32,
            digest: u64::MAX - 3,
            failures: vec![("t".into(), "model: bad".into())],
            ..CampaignState::default()
        };
        write_checkpoint(&cfg.checkpoint_path, &cfg, &state).unwrap();
        let loaded = load_checkpoint(&cfg.checkpoint_path, &cfg).unwrap();
        assert_eq!(loaded, state, "checkpoints roundtrip exactly");

        let mut other = cfg.clone();
        other.seed += 1;
        let err = load_checkpoint(&cfg.checkpoint_path, &other).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
        let mut other = cfg.clone();
        other.machine = MachineKind::Paper;
        assert!(load_checkpoint(&cfg.checkpoint_path, &other).is_err());
        std::fs::remove_file(&cfg.checkpoint_path).unwrap();
    }

    #[test]
    fn killed_and_resumed_runs_match_the_uninterrupted_one() {
        let uninterrupted = {
            let cfg = small_cfg("straight", 0, 1);
            let r = run_campaign(&cfg).unwrap();
            let _ = std::fs::remove_file(&cfg.checkpoint_path);
            r
        };

        // "Kill" after two chunks, then resume to completion.
        let mut cfg = small_cfg("resumed", 0, 1);
        cfg.max_chunks = Some(2);
        let partial = run_campaign(&cfg).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.state.next_index, 32, "2 chunks of 16");
        cfg.max_chunks = None;
        cfg.resume = true;
        let resumed = run_campaign(&cfg).unwrap();
        assert!(resumed.complete);
        assert_eq!(
            resumed.state, uninterrupted.state,
            "deterministic state (aggregates, digest, failures) must be \
             identical across a kill/resume cut"
        );
        std::fs::remove_file(&cfg.checkpoint_path).unwrap();
    }

    #[test]
    fn shard_store_paths_are_distinct_per_shard() {
        let base = PathBuf::from("verdicts.store");
        assert_eq!(shard_store_path(&base, 0, 1), base);
        let a = shard_store_path(&base, 0, 4);
        let b = shard_store_path(&base, 3, 4);
        assert_eq!(a, PathBuf::from("verdicts.store.0-of-4"));
        assert_eq!(b, PathBuf::from("verdicts.store.3-of-4"));
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = CampaignConfig::new(1, 10);
        cfg.shard = 2;
        cfg.shards = 2;
        assert!(run_campaign(&cfg).is_err(), "shard out of range");
        let mut cfg = CampaignConfig::new(1, 10);
        cfg.chunk = 0;
        assert!(run_campaign(&cfg).is_err(), "zero chunk");
    }
}
