//! Harness reports: aggregation plus JSON, TAP, and human summaries.

use crate::campaign::StoreCounters;
use crate::{faults, MachineKind, TestOutcome};
use std::fmt::Write as _;
use tso_model::prefix::PrefixCounters;
use tso_model::CacheCounters;

/// Aggregated result of one harness run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-test outcomes, in corpus order.
    pub outcomes: Vec<TestOutcome>,
    /// Size of the *full* corpus (before `--filter`/`--smoke` selection) —
    /// CI enforces the 500-test floor on this number.
    pub corpus_total: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Which simulated machine the differential side ran on.
    pub machine: MachineKind,
    /// Batch wall-clock in milliseconds at `jobs` workers.
    pub elapsed_ms: f64,
    /// Wall-clock of the same selection at one worker, when measured.
    pub baseline_jobs1_ms: Option<f64>,
    /// Process-wide model-cache counters at report time: how many
    /// outcome-set queries the run (and any warm-up) issued versus how
    /// many model searches actually ran — the memoization + symmetry
    /// savings, observable from the JSON alone.
    pub model_cache: Option<CacheCounters>,
    /// Process-wide prefix-certificate counters at report time: how many
    /// verdict-cache misses were answered by replaying an atomicity
    /// sibling's pruned search, and how many decision nodes that skipped.
    pub prefix_cache: Option<PrefixCounters>,
    /// Persistent verdict-store activity, when `--store` was given —
    /// including `open_error`/`save_errors`/`recovered_bytes`/
    /// `skipped_records`, so persistence degradation is visible from the
    /// top-level JSON alone.
    pub store: Option<StoreCounters>,
}

impl Report {
    /// Number of tests executed.
    pub fn selected(&self) -> usize {
        self.outcomes.len()
    }

    /// Tests whose model verdict contradicted the expectation. Crashed
    /// tests are excluded: they proved nothing either way (they fail the
    /// run through [`Report::crashed`] instead).
    pub fn model_failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.model_passed && !o.crashed)
            .count()
    }

    /// Tests whose worker panicked (reported, quarantine-able, fatal to
    /// the run's exit status but not a model failure).
    pub fn crashed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.crashed).count()
    }

    /// Tests with an inconclusive (budget-truncated) model answer. These
    /// pass — missing, never wrong — but the count keeps truncation
    /// visible.
    pub fn unknowns(&self) -> usize {
        self.outcomes.iter().filter(|o| o.unknown).count()
    }

    /// True when persistence ran degraded: the store failed to open or
    /// swallowed save errors.
    pub fn degraded(&self) -> bool {
        self.store.as_ref().is_some_and(StoreCounters::degraded)
    }

    /// (test, atomicity) pairs where the simulator left the model's
    /// allowed set.
    pub fn disagreements(&self) -> usize {
        self.outcomes
            .iter()
            .flat_map(|o| &o.differential)
            .filter(|d| !d.agreed)
            .count()
    }

    /// Simulator deadlocks observed.
    pub fn deadlocks(&self) -> usize {
        self.outcomes
            .iter()
            .flat_map(|o| &o.differential)
            .filter(|d| d.deadlocked)
            .count()
    }

    /// True iff every test passed both the model and differential checks.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(TestOutcome::passed)
    }

    /// Executed tests per second at `jobs` workers.
    pub fn tests_per_sec(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            0.0
        } else {
            self.selected() as f64 / (self.elapsed_ms / 1e3)
        }
    }

    /// Measured speedup of `jobs` workers over one worker, when a baseline
    /// was run.
    pub fn speedup_vs_jobs1(&self) -> Option<f64> {
        self.baseline_jobs1_ms
            .map(|b| b / self.elapsed_ms.max(1e-6))
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "litmus_run: {}/{} passed ({} model failures, {} sim disagreements, {} deadlocks) \
             in {:.1} ms on {} jobs ({:.0} tests/s)",
            self.outcomes.iter().filter(|o| o.passed()).count(),
            self.selected(),
            self.model_failures(),
            self.disagreements(),
            self.deadlocks(),
            self.elapsed_ms,
            self.jobs,
            self.tests_per_sec(),
        );
        if self.crashed() > 0 {
            let _ = write!(s, " [{} crashed]", self.crashed());
        }
        if self.unknowns() > 0 {
            let _ = write!(s, " [{} unknown: budget hit]", self.unknowns());
        }
        if self.degraded() {
            let _ = write!(s, " [store degraded]");
        }
        if self.machine != MachineKind::Small {
            let _ = write!(s, " [machine: {}]", self.machine);
        }
        if let Some(sp) = self.speedup_vs_jobs1() {
            let _ = write!(s, "; {sp:.2}x vs --jobs 1");
        }
        if let Some(c) = &self.model_cache {
            let _ = write!(
                s,
                "; model cache: {} searches for {} queries ({} hits)",
                c.invocations,
                c.queries,
                c.hits()
            );
        }
        s
    }

    /// Total model queries issued by the reported tests (verdict + three
    /// atomicity sets each).
    pub fn model_queries(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.model_queries))
            .sum()
    }

    /// How many of [`Report::model_queries`] the memoized verdict cache
    /// answered without a search.
    pub fn model_query_hits(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.model_cache_hits))
            .sum()
    }

    /// Verdict-cache misses across the reported tests that a prefix
    /// certificate replay answered instead of a fresh search.
    pub fn prefix_hits(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.prefix_hits)).sum()
    }

    /// Model searches across the reported tests where the adaptive engine
    /// chose to fan out across pool workers.
    pub fn split_decisions(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| u64::from(o.split_decisions))
            .sum()
    }

    /// The full report as JSON (hand-rolled — the build is hermetic, no
    /// serde). Failures carry their diagnosis; passing tests are counted,
    /// not listed.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"experiment\": \"litmus_harness\",");
        let _ = writeln!(s, "  \"paper\": \"conf_pldi_RajaramNSE13\",");
        let _ = writeln!(s, "  \"corpus_total\": {},", self.corpus_total);
        let _ = writeln!(s, "  \"selected\": {},", self.selected());
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"machine\": \"{}\",", self.machine);
        let _ = writeln!(s, "  \"elapsed_ms\": {:.3},", self.elapsed_ms);
        let _ = writeln!(s, "  \"tests_per_sec\": {:.1},", self.tests_per_sec());
        match (self.baseline_jobs1_ms, self.speedup_vs_jobs1()) {
            (Some(b), Some(sp)) => {
                let _ = writeln!(s, "  \"baseline_jobs1_ms\": {b:.3},");
                let _ = writeln!(s, "  \"speedup_vs_jobs1\": {sp:.3},");
            }
            _ => {
                let _ = writeln!(s, "  \"baseline_jobs1_ms\": null,");
                let _ = writeln!(s, "  \"speedup_vs_jobs1\": null,");
            }
        }
        let _ = writeln!(s, "  \"model_failures\": {},", self.model_failures());
        let _ = writeln!(
            s,
            "  \"differential_disagreements\": {},",
            self.disagreements()
        );
        let _ = writeln!(s, "  \"deadlocks\": {},", self.deadlocks());
        let _ = writeln!(s, "  \"crashed\": {},", self.crashed());
        let _ = writeln!(s, "  \"unknown\": {},", self.unknowns());
        let _ = writeln!(s, "  \"degraded\": {},", self.degraded());
        let _ = writeln!(s, "  \"faults_fired\": {},", faults::fired());
        let _ = writeln!(s, "  \"passed\": {},", self.passed());
        let _ = writeln!(s, "  \"model_queries\": {},", self.model_queries());
        let _ = writeln!(s, "  \"model_query_hits\": {},", self.model_query_hits());
        let _ = writeln!(s, "  \"prefix_hits\": {},", self.prefix_hits());
        let _ = writeln!(s, "  \"split_decisions\": {},", self.split_decisions());
        match &self.model_cache {
            Some(c) => {
                let _ = writeln!(s, "  \"model_cache\": {{");
                let _ = writeln!(s, "    \"queries\": {},", c.queries);
                let _ = writeln!(s, "    \"invocations\": {},", c.invocations);
                let _ = writeln!(s, "    \"hits\": {},", c.hits());
                let _ = writeln!(s, "    \"store_hits\": {},", c.store_hits);
                let _ = writeln!(s, "    \"entries\": {}", c.entries);
                let _ = writeln!(s, "  }},");
            }
            None => {
                let _ = writeln!(s, "  \"model_cache\": null,");
            }
        }
        match &self.prefix_cache {
            Some(p) => {
                let _ = writeln!(s, "  \"prefix_cache\": {{");
                let _ = writeln!(s, "    \"queries\": {},", p.queries);
                let _ = writeln!(s, "    \"hits\": {},", p.hits);
                let _ = writeln!(s, "    \"store_hits\": {},", p.store_hits);
                let _ = writeln!(s, "    \"stored\": {},", p.stored);
                let _ = writeln!(s, "    \"nodes_saved\": {},", p.nodes_saved);
                let _ = writeln!(s, "    \"replayed_leaves\": {},", p.replayed_leaves);
                let _ = writeln!(s, "    \"entries\": {}", p.entries);
                let _ = writeln!(s, "  }},");
            }
            None => {
                let _ = writeln!(s, "  \"prefix_cache\": null,");
            }
        }
        match &self.store {
            Some(st) => {
                let _ = writeln!(s, "  \"store\": {{");
                let _ = writeln!(s, "    \"path\": \"{}\",", json_escape(&st.path));
                let _ = writeln!(s, "    \"degraded\": {},", st.degraded());
                match &st.open_error {
                    Some(e) => {
                        let _ = writeln!(s, "    \"open_error\": \"{}\",", json_escape(e));
                    }
                    None => {
                        let _ = writeln!(s, "    \"open_error\": null,");
                    }
                }
                let _ = writeln!(s, "    \"loads\": {},", st.loads);
                let _ = writeln!(s, "    \"cert_loads\": {},", st.cert_loads);
                let _ = writeln!(s, "    \"appended\": {},", st.appended);
                let _ = writeln!(s, "    \"keys\": {},", st.keys);
                let _ = writeln!(s, "    \"certs\": {},", st.certs);
                let _ = writeln!(s, "    \"recovered_bytes\": {},", st.recovered_bytes);
                let _ = writeln!(s, "    \"skipped_records\": {},", st.skipped_records);
                let _ = writeln!(s, "    \"save_errors\": {}", st.save_errors);
                let _ = writeln!(s, "  }},");
            }
            None => {
                let _ = writeln!(s, "  \"store\": null,");
            }
        }
        let _ = writeln!(s, "  \"failures\": [");
        let failures: Vec<&TestOutcome> = self.outcomes.iter().filter(|o| !o.passed()).collect();
        for (i, o) in failures.iter().enumerate() {
            let comma = if i + 1 < failures.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"diagnosis\": \"{}\"}}{comma}",
                json_escape(&o.name),
                json_escape(&o.diagnosis())
            );
        }
        let _ = writeln!(s, "  ],");
        // Per-test perf attribution: wall-clock, the stable worker id that
        // ran the test, and the model-search weight behind its verdicts —
        // enough to spot a perf regression from `litmus_run` output alone.
        let _ = writeln!(s, "  \"tests\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 < self.outcomes.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"worker\": {}, \"micros\": {}, \
                 \"model_nodes\": {}, \"model_pruned\": {}, \"model_valid\": {}, \
                 \"model_tasks\": {}, \"model_workers\": {}, \
                 \"model_queries\": {}, \"model_cache_hits\": {}, \
                 \"prefix_hits\": {}, \"split_decisions\": {}}}{comma}",
                json_escape(&o.name),
                o.worker,
                o.micros,
                o.model_stats.nodes,
                o.model_stats.pruned,
                o.model_stats.valid,
                o.model_stats.tasks,
                o.model_stats.workers,
                o.model_queries,
                o.model_cache_hits,
                o.prefix_hits,
                o.split_decisions,
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// The run as TAP (Test Anything Protocol) version 13.
    pub fn to_tap(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "TAP version 13");
        let _ = writeln!(s, "1..{}", self.selected());
        for (i, o) in self.outcomes.iter().enumerate() {
            if o.passed() {
                let _ = writeln!(s, "ok {} - {}", i + 1, o.name);
            } else {
                let _ = writeln!(s, "not ok {} - {} # {}", i + 1, o.name, o.diagnosis());
            }
        }
        s
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_batch;
    use litmus::classic;

    fn small_report() -> Report {
        let tests = vec![classic::sb(), classic::mp()];
        let (outcomes, elapsed) = run_batch(&tests, 2);
        Report {
            outcomes,
            corpus_total: 2,
            jobs: 2,
            machine: MachineKind::Small,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            baseline_jobs1_ms: Some(10.0),
            model_cache: Some(tso_model::cache::counters()),
            prefix_cache: Some(tso_model::prefix::counters()),
            store: None,
        }
    }

    #[test]
    fn json_has_the_contracted_fields() {
        let r = small_report();
        let j = r.to_json();
        for key in [
            "\"experiment\": \"litmus_harness\"",
            "\"machine\": \"small\"",
            "\"corpus_total\": 2",
            "\"selected\": 2",
            "\"jobs\": 2",
            "\"speedup_vs_jobs1\"",
            "\"differential_disagreements\": 0",
            "\"passed\": true",
            "\"model_queries\":",
            "\"model_query_hits\":",
            "\"model_cache\": {",
            "\"invocations\":",
            "\"prefix_cache\": {",
            "\"nodes_saved\":",
            "\"prefix_hits\":",
            "\"split_decisions\":",
            "\"crashed\": 0",
            "\"unknown\": 0",
            "\"degraded\": false",
            "\"faults_fired\":",
            "\"store\": null",
            "\"failures\": [",
            "\"tests\": [",
            "\"worker\":",
            "\"model_nodes\":",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }

    #[test]
    fn per_test_entries_cover_every_outcome() {
        let r = small_report();
        let j = r.to_json();
        assert!(j.contains("\"name\": \"SB\""));
        assert!(j.contains("\"name\": \"MP\""));
        assert_eq!(r.model_queries(), 8, "2 tests x (verdict + 3 sets)");
        assert!(r.model_query_hits() <= r.model_queries());
    }

    #[test]
    fn tap_output_is_well_formed() {
        let r = small_report();
        let tap = r.to_tap();
        assert!(tap.starts_with("TAP version 13\n1..2\n"));
        assert!(tap.contains("ok 1 - SB"));
        assert!(tap.contains("ok 2 - MP"));
        assert!(!tap.contains("not ok"));
    }

    #[test]
    fn failures_show_up_in_json_and_tap() {
        let mut broken = classic::sb();
        broken.expect = litmus::Expect::Forbidden;
        let (outcomes, elapsed) = run_batch(&[broken], 1);
        let r = Report {
            outcomes,
            corpus_total: 1,
            jobs: 1,
            machine: MachineKind::Paper,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            baseline_jobs1_ms: None,
            model_cache: None,
            prefix_cache: None,
            store: None,
        };
        assert!(!r.passed());
        assert_eq!(r.model_failures(), 1);
        assert!(r.to_json().contains("\"passed\": false"));
        assert!(r
            .to_tap()
            .contains("not ok 1 - SB # model: expected forbidden"));
        assert!(r.to_json().contains("\"baseline_jobs1_ms\": null"));
        assert!(r.to_json().contains("\"machine\": \"paper\""));
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_mentions_speedup_when_measured() {
        let r = small_report();
        assert!(r.summary().contains("vs --jobs 1"));
        assert!(r.speedup_vs_jobs1().is_some());
    }
}
