//! Property test: campaign sharding by canonical fingerprint is a true
//! partition — for any `(seed, count, shards)`, every draft index lands
//! in exactly one shard (disjointness + completeness), and the
//! assignment is stable across repeated drafting (what lets shards run
//! on different machines with no coordination).
//!
//! Only drafting happens here — no model queries — so the cases stay
//! cheap even though each one regenerates its drafts three times.

use litmus::gen::campaign_draft;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shards_partition_the_draft_index_space(
        seed in 0u64..1_000_000,
        count in 1u64..40,
        shards in 1u64..5,
    ) {
        // Assignment of every index, computed once...
        let assigned: Vec<u64> = (0..count)
            .map(|i| campaign_draft(seed, i).fingerprint() % shards)
            .collect();
        // ...must match what each shard's independent filter selects.
        let mut covered = vec![0u32; count as usize];
        for shard in 0..shards {
            for i in 0..count {
                let d = campaign_draft(seed, i);
                if d.fingerprint() % shards == shard {
                    prop_assert_eq!(
                        assigned[i as usize], shard,
                        "index {} flapped between shards", i
                    );
                    covered[i as usize] += 1;
                }
            }
        }
        for (i, n) in covered.iter().enumerate() {
            prop_assert_eq!(*n, 1, "index {} claimed by {} shards", i, n);
        }
    }

    #[test]
    fn fingerprints_are_stable_across_redrafting(
        seed in 0u64..1_000_000,
        index in 0u64..100_000,
    ) {
        let a = campaign_draft(seed, index);
        let b = campaign_draft(seed, index);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.program, b.program);
        prop_assert_eq!(a.name, b.name);
    }
}
