//! Crash-recovery and compaction tests for the persistent verdict store:
//! torn tails are truncated, corrupt records cut the replay at the first
//! bad byte, compaction is deterministic, and absorb folds shard files
//! with first-prover-wins semantics.

use harness::store::{Store, StoredVerdict, MAGIC};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("store-recovery-{}-{name}.bin", std::process::id()))
}

fn verdict(tag: u64) -> (Vec<u64>, StoredVerdict) {
    (
        vec![3, tag, 2, 1, 0, 7, tag ^ 0xffff],
        StoredVerdict {
            outcomes: vec![
                (vec![0, tag], vec![(0, 1), (2, tag)]),
                (vec![tag, 0], vec![(0, 1)]),
            ],
            stats: [100 + tag, 40, 12, 8, 2, 4],
        },
    )
}

fn fill(path: &PathBuf, tags: std::ops::Range<u64>) {
    let mut s = Store::open(path).unwrap();
    for tag in tags {
        let (k, v) = verdict(tag);
        s.append(&k, tag, &v).unwrap();
    }
}

#[test]
fn a_torn_tail_is_truncated_and_the_prefix_survives() {
    let path = tmp("torn-tail");
    let _ = std::fs::remove_file(&path);
    fill(&path, 0..6);
    let full_len = std::fs::metadata(&path).unwrap().len();

    // Chop 5 bytes off the last record — the torn tail a crash mid-append
    // leaves behind.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(full_len - 5).unwrap();
    drop(f);

    let s = Store::open(&path).unwrap();
    assert_eq!(s.len(), 5, "the five complete records survive");
    assert!(s.recovered_bytes() > 0, "the torn bytes are reported");
    for tag in 0..5 {
        let (k, v) = verdict(tag);
        assert_eq!(s.lookup(&k), Some(&v), "tag {tag}");
    }
    let (k5, _) = verdict(5);
    assert_eq!(s.lookup(&k5), None, "the torn record is gone");
    // Recovery truncated the file back to a record boundary.
    assert!(std::fs::metadata(&path).unwrap().len() < full_len - 5);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn appends_after_recovery_land_on_a_clean_boundary() {
    let path = tmp("append-after");
    let _ = std::fs::remove_file(&path);
    fill(&path, 0..3);
    let full_len = std::fs::metadata(&path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(full_len - 1)
        .unwrap();

    {
        let mut s = Store::open(&path).unwrap();
        assert_eq!(s.len(), 2);
        let (k, v) = verdict(9);
        s.append(&k, 9, &v).unwrap();
    }
    let s = Store::open(&path).unwrap();
    assert_eq!(s.len(), 3, "recovered prefix + fresh append");
    assert_eq!(s.recovered_bytes(), 0, "second open is clean");
    let (k, v) = verdict(9);
    assert_eq!(s.lookup(&k), Some(&v));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn a_corrupt_middle_record_cuts_the_replay_there() {
    let path = tmp("corrupt-middle");
    let _ = std::fs::remove_file(&path);
    fill(&path, 0..4);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one payload byte a little past the first record: the checksum
    // of that record no longer matches, so replay keeps only the records
    // before it (suffix loss, never silent corruption).
    let offset = MAGIC.len() + 40;
    bytes[offset] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let s = Store::open(&path).unwrap();
    assert!(s.len() < 4, "replay stops at the corrupt record");
    assert!(s.recovered_bytes() > 0);
    for tag in 0..s.len() as u64 {
        let (k, v) = verdict(tag);
        assert_eq!(s.lookup(&k), Some(&v), "prefix record {tag} intact");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncating_inside_the_length_prefix_is_survivable() {
    let path = tmp("tiny-tail");
    let _ = std::fs::remove_file(&path);
    fill(&path, 0..2);
    let full_len = std::fs::metadata(&path).unwrap().len();
    // Leave just 2 bytes of the final record — not even a whole length
    // field. (Both records encode the same number of bytes, so one
    // record is half the post-magic file.)
    let one_record = (full_len - MAGIC.len() as u64) / 2;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(MAGIC.len() as u64 + one_record + 2)
        .unwrap();
    let s = Store::open(&path).unwrap();
    assert_eq!(s.len(), 1);
    assert_eq!(s.recovered_bytes(), 2);
    let (k1, _) = verdict(1);
    assert_eq!(s.lookup(&k1), None);
    let (k0, v0) = verdict(0);
    assert_eq!(s.lookup(&k0), Some(&v0));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compaction_drops_shadowed_records_and_is_deterministic() {
    let a = tmp("compact-a");
    let b = tmp("compact-b");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);

    // Same logical content, different append orders and different
    // shadowing history.
    {
        let mut s = Store::open(&a).unwrap();
        for tag in 0..5 {
            let (k, v) = verdict(tag);
            s.append(&k, tag, &v).unwrap();
        }
        let (k2, v2) = verdict(2);
        s.append(&k2, 2, &v2).unwrap(); // shadowing duplicate
        let (before, after) = s.compact().unwrap();
        assert_eq!((before, after), (6, 5));
    }
    {
        let mut s = Store::open(&b).unwrap();
        for tag in (0..5).rev() {
            let (k, v) = verdict(tag);
            s.append(&k, tag, &v).unwrap();
        }
        s.compact().unwrap();
    }
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "compaction output depends only on the key->verdict map"
    );
    // A compacted store replays with no duplicates.
    let s = Store::open(&a).unwrap();
    assert_eq!(s.open_stats().records, 5);
    assert_eq!(s.len(), 5);
    std::fs::remove_file(&a).unwrap();
    std::fs::remove_file(&b).unwrap();
}

#[test]
fn absorb_folds_shard_stores_with_existing_keys_winning() {
    let a = tmp("absorb-a");
    let b = tmp("absorb-b");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
    fill(&a, 0..3);
    // Shard b shares key 2 (with different stats — the clash case) and
    // brings keys 3 and 4.
    {
        let mut s = Store::open(&b).unwrap();
        let (k2, mut v2) = verdict(2);
        v2.stats[0] = 777_777;
        s.append(&k2, 2, &v2).unwrap();
        for tag in 3..5 {
            let (k, v) = verdict(tag);
            s.append(&k, tag, &v).unwrap();
        }
    }
    let mut target = Store::open(&a).unwrap();
    let src = Store::open(&b).unwrap();
    let added = target.absorb(&src).unwrap();
    assert_eq!(added, 2, "only the keys a did not already have");
    assert_eq!(target.len(), 5);
    let (k2, v2) = verdict(2);
    assert_eq!(
        target.lookup(&k2),
        Some(&v2),
        "the existing entry wins the clash"
    );
    std::fs::remove_file(&a).unwrap();
    std::fs::remove_file(&b).unwrap();
}
