//! Campaign × verdict-store integration: warm-store reruns issue zero
//! model searches, and kill/resume cuts with a store attached stay
//! equivalent to uninterrupted runs.
//!
//! Every test here installs a process-global verdict store and/or clears
//! the process-global model cache, so they all serialize on one mutex —
//! running any of them concurrently with another would corrupt the
//! counters the assertions read.

use harness::campaign::{run_campaign, CampaignConfig};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("campaign-store-{}-{name}", std::process::id()))
}

fn cfg(name: &str, count: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(1234, count);
    cfg.jobs = 2;
    cfg.chunk = 8;
    cfg.checkpoint_path = tmp(&format!("{name}.checkpoint.json"));
    cfg.store_path = Some(tmp(&format!("{name}.store")));
    cfg
}

fn cleanup(cfg: &CampaignConfig) {
    let _ = std::fs::remove_file(&cfg.checkpoint_path);
    if let Some(p) = &cfg.store_path {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn a_warm_store_rerun_issues_zero_model_searches() {
    let _guard = lock();
    let cfg = cfg("warm", 24);
    cleanup(&cfg);

    tso_model::cache::clear();
    let cold = run_campaign(&cfg).unwrap();
    let cold_store = cold.store.as_ref().expect("store configured");
    assert!(cold.complete);
    assert!(cold_store.appended > 0, "cold run persists fresh verdicts");
    assert!(
        cold.model_cache.invocations > 0,
        "cold run had to search at least once"
    );

    // Simulate a fresh process: the in-memory cache is emptied, the store
    // file is the only carry-over. Resume must start over, so drop the
    // checkpoint too.
    tso_model::cache::clear();
    let _ = std::fs::remove_file(&cfg.checkpoint_path);
    let warm = run_campaign(&cfg).unwrap();
    let warm_store = warm.store.as_ref().expect("store configured");
    assert_eq!(
        warm.model_cache.invocations, 0,
        "a warm store answers every miss without a model search"
    );
    assert_eq!(warm_store.appended, 0, "nothing new to persist");
    assert!(warm_store.loads > 0, "the answers came from the store");
    assert_eq!(
        warm.state, cold.state,
        "store-served verdicts reproduce the searched run exactly"
    );
    cleanup(&cfg);
}

#[test]
fn kill_and_resume_with_a_store_matches_the_uninterrupted_run() {
    let _guard = lock();
    let straight_cfg = {
        let mut c = cfg("straight", 40);
        c.store_path = None; // reference run: no persistence at all
        c
    };
    cleanup(&straight_cfg);
    tso_model::cache::clear();
    let straight = run_campaign(&straight_cfg).unwrap();
    cleanup(&straight_cfg);

    // Killed after one chunk, resumed to completion, with a store
    // carrying the model work across the cut.
    let mut resumed_cfg = cfg("resumed", 40);
    cleanup(&resumed_cfg);
    resumed_cfg.max_chunks = Some(1);
    tso_model::cache::clear();
    let partial = run_campaign(&resumed_cfg).unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.state.next_index, 8, "one chunk of 8");

    resumed_cfg.max_chunks = None;
    resumed_cfg.resume = true;
    tso_model::cache::clear(); // the "new process" after the kill
    let resumed = run_campaign(&resumed_cfg).unwrap();
    assert!(resumed.complete);
    assert_eq!(
        resumed.state, straight.state,
        "aggregates, digest, and failures survive the kill/resume cut"
    );
    cleanup(&resumed_cfg);
}

#[test]
fn sharded_stores_fold_into_one_equivalent_store() {
    let _guard = lock();
    use harness::store::Store;
    let base = tmp("fold.store");
    let merged_path = tmp("fold-merged.store");
    let _ = std::fs::remove_file(&merged_path);

    let mut shard_paths = Vec::new();
    for shard in 0..2u32 {
        let mut c = CampaignConfig::new(77, 30);
        c.jobs = 2;
        c.chunk = 10;
        c.shard = shard;
        c.shards = 2;
        c.checkpoint_path = tmp(&format!("fold-{shard}.checkpoint.json"));
        c.store_path = Some(base.clone());
        let real = harness::campaign::shard_store_path(&base, shard, 2);
        let _ = std::fs::remove_file(&real);
        tso_model::cache::clear();
        let r = run_campaign(&c).unwrap();
        assert!(r.complete);
        assert_eq!(r.store.as_ref().unwrap().path, real.display().to_string());
        shard_paths.push(real);
        let _ = std::fs::remove_file(&c.checkpoint_path);
    }

    // Fold both shard stores into one (what `litmus_run compact --merge`
    // does). Shard stores may *overlap*: drafts partition by fingerprint,
    // but the per-atomicity rewrites each test also queries can land in
    // the same canonical class from different shards — so the fold is a
    // union, bounded by the sum and at least as big as each input.
    let mut target = Store::open(&merged_path).unwrap();
    let mut sizes = Vec::new();
    for p in &shard_paths {
        let src = Store::open(p).unwrap();
        sizes.push(src.len());
        let added = target.absorb(&src).unwrap();
        // `absorb` folds verdicts *and* prefix certificates.
        assert!(added <= (src.len() + src.cert_count()) as u64);
    }
    assert!(target.len() >= *sizes.iter().max().unwrap());
    assert!(target.len() <= sizes.iter().sum::<usize>());
    // Folding the same shard again adds nothing (existing keys win).
    let again = target
        .absorb(&Store::open(&shard_paths[0]).unwrap())
        .unwrap();
    assert_eq!(again, 0, "absorb is idempotent");
    target.compact().unwrap();
    for p in shard_paths {
        let _ = std::fs::remove_file(p);
    }
    std::fs::remove_file(&merged_path).unwrap();
}
