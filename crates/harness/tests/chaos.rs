//! Chaos suite: deterministic fault injection against the harness's
//! robustness seams. The invariant under test everywhere is the store's
//! contract writ large — **verdicts can go missing, never wrong**:
//!
//! * a worker panic costs exactly the panicking test (`crashed`), never
//!   the batch, the pool, or another test's verdict;
//! * a campaign quarantines crashers in its checkpoint and a resume
//!   skips them instead of dying on them again;
//! * injected store I/O errors are swallowed and counted, and the run's
//!   aggregates stay bit-identical to a fault-free reference;
//! * a store that cannot open degrades the run to store-less, flagged;
//! * a kill/resume loop under random faults (subprocess) converges to
//!   the exact digest of an uninterrupted clean run.
//!
//! Every test manipulates process-global state (the fault registry, the
//! model cache, the installed verdict store), so they all serialize on
//! one mutex.

use harness::campaign::{run_campaign, write_checkpoint, CampaignConfig, CampaignState};
use harness::faults::{self, FaultAction, PlannedFault};
use harness::run_batch;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chaos-{}-{name}", std::process::id()))
}

fn cfg(name: &str, count: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(4242, count);
    cfg.jobs = 1; // deterministic fault-point arrival order
    cfg.chunk = 4;
    cfg.checkpoint_path = tmp(&format!("{name}.checkpoint.json"));
    cfg.store_path = None;
    cfg
}

fn cleanup(cfg: &CampaignConfig) {
    let _ = std::fs::remove_file(&cfg.checkpoint_path);
    if let Some(p) = &cfg.store_path {
        let _ = std::fs::remove_file(p);
    }
}

fn plan(entries: &[(&str, u64, FaultAction)]) -> Vec<PlannedFault> {
    entries
        .iter()
        .map(|&(point, arrival, action)| PlannedFault {
            point: point.to_owned(),
            arrival,
            action,
        })
        .collect()
}

#[test]
fn a_planned_panic_crashes_one_test_and_spares_the_batch() {
    let _guard = lock();
    let tests = vec![
        litmus::classic::sb(),
        litmus::classic::mp(),
        litmus::classic::lb(),
    ];
    faults::install_plan(plan(&[("harness.test", 1, FaultAction::Panic)]));
    let (outcomes, _) = run_batch(&tests, 1);
    faults::clear();

    assert_eq!(outcomes.len(), 3, "every test produced an outcome");
    assert!(outcomes[0].passed(), "the test before the panic is fine");
    assert!(outcomes[1].crashed, "the planned panic became `crashed`");
    assert!(
        !outcomes[1].passed(),
        "a crashed test never counts as a pass"
    );
    assert!(
        outcomes[1].diagnosis().starts_with("crashed:"),
        "diagnosis names the crash: {}",
        outcomes[1].diagnosis()
    );
    assert!(
        outcomes[2].passed(),
        "the worker was reused after the panic: the next test still ran"
    );
}

#[test]
fn a_campaign_records_crashers_in_state_and_checkpoint() {
    let _guard = lock();
    let cfg = cfg("crash-record", 8);
    cleanup(&cfg);

    tso_model::cache::clear();
    faults::install_plan(plan(&[("harness.test", 2, FaultAction::Panic)]));
    let report = run_campaign(&cfg).unwrap();
    faults::clear();

    assert!(report.complete, "a panic never aborts the campaign");
    assert_eq!(report.state.crashed, 1);
    assert_eq!(
        report.state.processed + report.state.crashed,
        8,
        "every draft is accounted for: processed or crashed, never lost"
    );
    assert_eq!(
        report.state.quarantine.iter().copied().collect::<Vec<_>>(),
        vec![2],
        "the third draft (arrival 2) is the quarantined one"
    );
    assert_eq!(report.state.disagreements, 0);
    assert!(
        report
            .state
            .failures
            .iter()
            .any(|(_, d)| d.starts_with("crashed:")),
        "the crash is surfaced as a failure"
    );
    assert!(!report.passed(), "a crashed test fails the run");

    let checkpoint = std::fs::read_to_string(&cfg.checkpoint_path).unwrap();
    assert!(
        checkpoint.contains("\"quarantine\": [2]"),
        "quarantine persists in the checkpoint: {checkpoint}"
    );
    assert!(checkpoint.contains("\"crashed\": 1"));
    cleanup(&cfg);
}

#[test]
fn a_resumed_campaign_skips_quarantined_drafts() {
    let _guard = lock();
    let mut cfg = cfg("quarantine-skip", 8);
    cleanup(&cfg);

    // A checkpoint at index 0 with draft 2 quarantined: the shape left
    // behind when a crasher was recorded but its chunk has to replay.
    let state = CampaignState {
        crashed: 1,
        quarantine: [2].into_iter().collect(),
        ..Default::default()
    };
    write_checkpoint(&cfg.checkpoint_path, &cfg, &state).unwrap();

    cfg.resume = true;
    tso_model::cache::clear();
    let report = run_campaign(&cfg).unwrap();

    assert!(report.complete);
    assert_eq!(
        report.state.processed, 7,
        "the quarantined draft was skipped, not re-run"
    );
    assert_eq!(report.state.crashed, 1, "the crash count carries over");
    assert_eq!(report.state.scanned, 8, "skipping still scans the index");
    assert_eq!(report.state.disagreements, 0);
    cleanup(&cfg);
}

#[test]
fn injected_store_errors_are_counted_and_never_change_verdicts() {
    let _guard = lock();

    // Fault-free reference: same campaign, no store at all.
    let reference_cfg = cfg("store-chaos-ref", 16);
    cleanup(&reference_cfg);
    tso_model::cache::clear();
    let reference = run_campaign(&reference_cfg).unwrap();
    assert!(reference.passed());
    cleanup(&reference_cfg);

    // Faulted run: the first three verdict appends fail three different
    // ways. Persistence loses records; the run must not notice.
    let mut chaos_cfg = cfg("store-chaos", 16);
    chaos_cfg.store_path = Some(tmp("store-chaos.store"));
    cleanup(&chaos_cfg);
    tso_model::cache::clear();
    faults::install_plan(plan(&[
        ("store.append.write", 0, FaultAction::IoError),
        ("store.append.write", 1, FaultAction::NoSpace),
        ("store.append.write", 2, FaultAction::ShortWrite),
    ]));
    let chaos = run_campaign(&chaos_cfg).unwrap();
    faults::clear();

    assert_eq!(
        chaos.state, reference.state,
        "store faults never leak into verdicts, digest, or aggregates"
    );
    let counters = chaos.store.as_ref().expect("store configured");
    assert!(
        counters.save_errors >= 3,
        "the injected append failures were counted: {}",
        counters.save_errors
    );
    assert!(counters.degraded(), "save errors flag the run as degraded");
    assert!(faults::fired() >= 3, "the planned faults actually fired");

    // The survivors are clean: the torn short-write was rolled back, so
    // the file reopens without recovery and a warm rerun using it still
    // reproduces the reference run exactly.
    let store_file = chaos_cfg.store_path.clone().unwrap();
    let reopened = harness::store::Store::open(&store_file).unwrap();
    assert_eq!(
        reopened.recovered_bytes(),
        0,
        "failed appends roll back to a record boundary"
    );
    drop(reopened);

    tso_model::cache::clear();
    let _ = std::fs::remove_file(&chaos_cfg.checkpoint_path);
    let warm = run_campaign(&chaos_cfg).unwrap();
    assert_eq!(
        warm.state, reference.state,
        "a store that lost records still resumes to the fault-free answers"
    );
    assert_eq!(warm.store.as_ref().unwrap().save_errors, 0);
    cleanup(&chaos_cfg);
}

#[test]
fn an_unopenable_store_degrades_the_run_instead_of_failing_it() {
    let _guard = lock();
    let mut cfg = cfg("degraded", 8);
    cfg.store_path = Some(tmp("no-such-dir").join("verdicts.store"));
    cleanup(&cfg);

    tso_model::cache::clear();
    let report = run_campaign(&cfg).unwrap();

    assert!(report.complete, "the campaign ran store-less to completion");
    assert!(report.passed(), "verdicts are unaffected");
    let counters = report.store.as_ref().expect("the failure is reported");
    assert!(
        counters.open_error.is_some(),
        "the open error is carried in the report"
    );
    assert!(counters.degraded());
    assert!(report.degraded());
    assert_eq!(counters.appended, 0);
    cleanup(&cfg);
}

/// The end-to-end chaos loop, in subprocesses so real kills are safe:
/// a campaign under random faults (checkpoint I/O errors and post-commit
/// kills) is resumed until it completes, and its final digest must equal
/// an uninterrupted clean run's. Kills land only after a checkpoint
/// commit, so every attempt durably banks progress and the loop
/// terminates.
#[test]
fn kill_resume_under_random_faults_converges_to_the_clean_digest() {
    let _guard = lock();
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_litmus_run");
    let common = [
        "campaign",
        "--count",
        "30",
        "--chunk",
        "5",
        "--seed",
        "42",
        "--jobs",
        "2",
        "--no-store",
    ];

    fn digest_of(stdout: &str) -> u64 {
        stdout
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"digest\": "))
            .and_then(|v| v.trim_end_matches(',').parse().ok())
            .expect("campaign report has a digest")
    }

    // Clean control: no faults, straight through.
    let control_ckpt = tmp("control.checkpoint.json");
    let _ = std::fs::remove_file(&control_ckpt);
    let control = Command::new(bin)
        .args(common)
        .args(["--checkpoint", control_ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(control.status.success(), "clean control run passes");
    let control_stdout = String::from_utf8_lossy(&control.stdout).into_owned();
    assert!(
        control_stdout.contains("\"degraded\": false"),
        "a clean run is not degraded"
    );
    assert!(control_stdout.contains("\"crashed\": 0"));
    let control_digest = digest_of(&control_stdout);
    let _ = std::fs::remove_file(&control_ckpt);

    // Chaos loop: resume until the faulted campaign completes.
    let chaos_ckpt = tmp("chaos.checkpoint.json");
    let _ = std::fs::remove_file(&chaos_ckpt);
    let mut kills = 0;
    let mut final_stdout = None;
    for attempt in 0..40 {
        let mut cmd = Command::new(bin);
        cmd.args(common)
            .args(["--checkpoint", chaos_ckpt.to_str().unwrap()])
            .args(["--faults", "3:0.4"]);
        if attempt > 0 {
            cmd.arg("--resume");
        }
        let out = cmd.output().unwrap();
        match out.status.code() {
            Some(0) => {
                final_stdout = Some(String::from_utf8_lossy(&out.stdout).into_owned());
                break;
            }
            Some(137) => kills += 1,
            code => panic!(
                "faulted campaign may be killed, never wrong: exit {code:?}\n{}",
                String::from_utf8_lossy(&out.stderr)
            ),
        }
    }
    let final_stdout = final_stdout.expect("the kill/resume loop converges");
    assert!(kills >= 1, "the fault seed exercised at least one kill");
    assert_eq!(
        digest_of(&final_stdout),
        control_digest,
        "kill/resume under faults reproduces the clean digest exactly"
    );
    assert!(final_stdout.contains("\"crashed\": 0"));
    let _ = std::fs::remove_file(&chaos_ckpt);
}
