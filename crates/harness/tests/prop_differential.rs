//! Property-based differential tests:
//!
//! 1. for random well-formed programs, the deterministic simulator outcome
//!    under each of the three atomicities is in the axiomatic model's
//!    allowed set (reads *and* final memory);
//! 2. the litmus text format's `parse ∘ print` is the identity on
//!    generated tests.
//!
//! Programs are drawn through `litmus::gen`'s seeded generator (the same
//! one the corpus uses), so proptest only has to supply seeds.

use litmus::{fmt, gen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmw_types::{Addr, Atomicity, RmwKind, Value};
use tso_model::allowed_outcomes;
use tso_sim::{lower_with_line_size, sim_addr, Machine, SimConfig};

/// Asserts that the deterministic sim outcome for `program` under each
/// atomicity is in the model's allowed set (reads *and* final memory).
fn assert_sim_is_model_allowed(program: &tso_model::Program) {
    for atomicity in Atomicity::ALL {
        let p = program.with_atomicity(atomicity);
        let mut cfg = SimConfig::small(p.num_threads().max(1));
        cfg.rmw_atomicity = atomicity;
        let line_size = cfg.line_size;
        let result = Machine::new(cfg, lower_with_line_size(&p, line_size)).run();
        assert!(!result.deadlocked, "{atomicity}: deadlock");
        let sim_reads: Vec<Value> = result.reads.iter().flatten().copied().collect();
        let allowed = allowed_outcomes(&p);
        assert!(
            allowed.iter().any(|o| {
                o.read_values() == sim_reads
                    && o.final_memory().iter().all(|&(a, v)| {
                        result
                            .memory
                            .get(&sim_addr(a, line_size))
                            .copied()
                            .unwrap_or(0)
                            == v
                    })
            }),
            "{atomicity}: sim outcome {sim_reads:?} (memory {:?}) not in model set {:?}",
            result.memory,
            allowed.iter().map(|o| o.read_values()).collect::<Vec<_>>()
        );
    }
}

/// Regression (found by a 50k-draft campaign sweep): a store whose
/// coherence transaction has been **accepted** is already globally
/// visible — its write-buffer slot only lingers for latency bookkeeping.
/// Forwarding a later read from that slot can resurrect a value another
/// core has since overwritten, producing an execution TSO forbids. In
/// this shape T0's `W 2←1` commits, T2's `W 2←2` is serialized after it
/// (the RMW's read of address 4 proves the order), and T0's `R 2` must
/// then see 2, never the stale forwarded 1.
#[test]
fn accepted_stores_do_not_forward_stale_values() {
    let mut b = tso_model::ProgramBuilder::new();
    b.thread()
        .write(Addr(2), 1)
        .rmw(Addr(4), RmwKind::TestAndSet, Atomicity::Type2)
        .read(Addr(2))
        .fence();
    b.thread().write(Addr(1), 3).write(Addr(3), 2);
    b.thread()
        .write(Addr(3), 4)
        .write(Addr(3), 1)
        .write(Addr(2), 2)
        .write(Addr(4), 2)
        .read(Addr(2));
    assert_sim_is_model_allowed(&b.build());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every deterministic simulator run is a model-allowed TSO behaviour,
    /// under all three RMW atomicities.
    #[test]
    fn sim_outcome_is_model_allowed(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = gen::random_program(&mut rng);
        for atomicity in Atomicity::ALL {
            let p = program.with_atomicity(atomicity);
            let mut cfg = SimConfig::small(p.num_threads().max(1));
            cfg.rmw_atomicity = atomicity;
            let line_size = cfg.line_size;
            let result = Machine::new(cfg, lower_with_line_size(&p, line_size)).run();
            prop_assert!(!result.deadlocked, "{atomicity}: deadlock on seed {seed}");
            let sim_reads: Vec<Value> = result.reads.iter().flatten().copied().collect();
            let allowed = allowed_outcomes(&p);
            prop_assert!(
                allowed.iter().any(|o| {
                    o.read_values() == sim_reads
                        && o.final_memory().iter().all(|&(a, v)| {
                            result.memory.get(&sim_addr(a, line_size)).copied().unwrap_or(0) == v
                        })
                }),
                "{atomicity}, seed {seed}: sim outcome {sim_reads:?} not in model set {:?}",
                allowed.iter().map(|o| o.read_values()).collect::<Vec<_>>()
            );
        }
    }

    /// `parse(print(t)) == t` and the reprint is byte-identical, for
    /// generated litmus tests (random programs, targets, verdicts).
    #[test]
    fn fmt_parse_print_is_identity_on_generated_tests(
        seed in 0u64..1_000_000,
        index in 0usize..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = gen::random_litmus(&mut rng, index);
        let printed = fmt::print(&t);
        let reparsed = fmt::parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &t, "structural round trip, seed {}", seed);
        prop_assert_eq!(fmt::print(&reparsed), printed, "byte round trip, seed {}", seed);
    }

    /// The generated-family corpus entries also survive the text format —
    /// including names with spaces and every atomicity spelling.
    #[test]
    fn fmt_round_trips_the_family_corpus(n in 2usize..6) {
        for t in [
            gen::sb_ring(n),
            gen::mp_chain(n),
            gen::lb_ring(n),
            gen::two_two_w_ring(n),
            gen::dekker_rounds(2, 1, Atomicity::Type2, gen::DekkerFlavor::WriteReplacement),
        ] {
            let printed = fmt::print(&t);
            prop_assert_eq!(&fmt::parse(&printed).expect("parses"), &t);
        }
    }
}
