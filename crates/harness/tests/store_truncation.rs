//! Exhaustive truncation robustness for the persistent verdict store.
//!
//! The store's crash contract is "missing, never wrong": whatever prefix
//! of the file a crash leaves behind, `Store::open` must either refuse
//! the file (unreadable magic) or come back with a subset of the original
//! records — every surviving verdict and certificate byte-identical to
//! what was written, never a silently corrupted value. These tests cut
//! real v1 and v2 files at **every** byte offset and check exactly that,
//! then let proptest flip arbitrary bytes to probe mid-file corruption.

use harness::store::{Store, StoredVerdict, MAGIC, MAGIC_V1};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use tso_model::prefix::CertData;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("store-trunc-{}-{name}.bin", std::process::id()))
}

fn verdict(tag: u64) -> (Vec<u64>, StoredVerdict) {
    (
        vec![4, tag, 1, 0, 9, tag.wrapping_mul(31)],
        StoredVerdict {
            outcomes: vec![
                (vec![tag, 0], vec![(0, tag), (1, 1)]),
                (vec![0, tag], vec![(1, tag)]),
            ],
            stats: [50 + tag, 20, 6, 4, 1, 2],
        },
    )
}

fn cert(tag: u64) -> (Vec<u64>, CertData) {
    (
        vec![7, 0, tag, 3],
        CertData {
            leaves: vec![(vec![2, tag], vec![1, 0]), (vec![tag, 2], vec![0, 1])],
            nodes: 30 + tag,
            pruned: 9,
            complete: 2,
        },
    )
}

/// Builds a small v2 file (three verdicts, one certificate) and returns
/// its bytes plus the expected contents.
fn build_v2(
    path: &PathBuf,
) -> (
    Vec<u8>,
    BTreeMap<Vec<u64>, StoredVerdict>,
    Vec<u64>,
    CertData,
) {
    let _ = std::fs::remove_file(path);
    let mut expected = BTreeMap::new();
    {
        let mut s = Store::open(path).unwrap();
        for tag in 0..3 {
            let (k, v) = verdict(tag);
            s.append(&k, tag, &v).unwrap();
            expected.insert(k, v);
        }
        let (ck, c) = cert(5);
        s.append_cert(&ck, 5, &c).unwrap();
    }
    let bytes = std::fs::read(path).unwrap();
    let (ck, c) = cert(5);
    (bytes, expected, ck, c)
}

/// Builds a small v1 file (three verdicts, no certificate encoding) by
/// seeding the old magic and appending through the public API, which
/// keeps the file in its original format.
fn build_v1(path: &PathBuf) -> (Vec<u8>, BTreeMap<Vec<u64>, StoredVerdict>) {
    let _ = std::fs::remove_file(path);
    std::fs::write(path, MAGIC_V1).unwrap();
    let mut expected = BTreeMap::new();
    {
        let mut s = Store::open(path).unwrap();
        assert_eq!(s.version(), 1);
        for tag in 0..3 {
            let (k, v) = verdict(tag);
            s.append(&k, tag, &v).unwrap();
            expected.insert(k, v);
        }
    }
    let bytes = std::fs::read(path).unwrap();
    (bytes, expected)
}

/// The shared per-truncation check: a file cut at `cut` either opens as a
/// fresh/older store whose surviving entries all match the originals, or
/// is rejected outright — never a wrong verdict.
fn check_cut(
    path: &PathBuf,
    bytes: &[u8],
    cut: usize,
    expected: &BTreeMap<Vec<u64>, StoredVerdict>,
    cert_expected: Option<(&[u64], &CertData)>,
) {
    let _ = std::fs::remove_file(path);
    std::fs::write(path, &bytes[..cut]).unwrap();
    match Store::open(path) {
        Err(e) => {
            // Only a cut *inside* the magic may be rejected.
            assert!(
                (1..MAGIC.len()).contains(&cut),
                "cut {cut}: unexpected open failure {e}"
            );
        }
        Ok(s) => {
            if cut == 0 {
                // An empty file is (re)initialized as a fresh store.
                assert_eq!(s.len(), 0);
                assert_eq!(s.version(), 2);
                return;
            }
            let mut survivors = 0;
            for (k, v) in expected {
                match s.lookup(k) {
                    None => {}
                    Some(got) => {
                        assert_eq!(got, v, "cut {cut}: surviving verdict must be exact");
                        survivors += 1;
                    }
                }
            }
            if let Some((ck, c)) = cert_expected {
                if let Some(got) = s.lookup_cert(ck) {
                    assert_eq!(got, c, "cut {cut}: surviving certificate must be exact");
                }
            }
            // A full-length cut loses nothing.
            if cut == bytes.len() {
                assert_eq!(survivors, expected.len(), "uncut file keeps every record");
                assert_eq!(s.recovered_bytes(), 0);
            }
            // Whatever was dropped is accounted for: the replayed prefix
            // plus the reported torn bytes must cover the whole cut.
            assert!(
                s.recovered_bytes() <= (cut - MAGIC.len()) as u64,
                "cut {cut}: recovered_bytes cannot exceed the body"
            );
            drop(s);
            // Recovery truncates to a record boundary: a second open is
            // clean (no torn bytes) and sees the same survivors.
            let s2 = Store::open(path).unwrap();
            assert_eq!(s2.recovered_bytes(), 0, "cut {cut}: reopen is clean");
            assert_eq!(s2.len(), survivors, "cut {cut}: reopen sees the survivors");
        }
    }
}

#[test]
fn every_truncation_of_a_v2_file_is_missing_never_wrong() {
    let path = tmp("v2-exhaustive");
    let (bytes, expected, ck, c) = build_v2(&path);
    for cut in 0..=bytes.len() {
        check_cut(&path, &bytes, cut, &expected, Some((&ck, &c)));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_truncation_of_a_v1_file_is_missing_never_wrong() {
    let path = tmp("v1-exhaustive");
    let (bytes, expected) = build_v1(&path);
    for cut in 0..=bytes.len() {
        check_cut(&path, &bytes, cut, &expected, None);
    }
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any byte anywhere in a v2 file must never produce a
    /// *wrong* verdict for a known key: the checksummed framing either
    /// drops the damaged record (and possibly the suffix behind it) or
    /// the magic check rejects the file.
    #[test]
    fn byte_flips_never_corrupt_a_surviving_verdict(offset in 0usize..4096, flip in 1u8..=255) {
        let path = tmp(&format!("v2-flip-{offset}-{flip}"));
        let (mut bytes, expected, ck, c) = build_v2(&path);
        let offset = offset % bytes.len();
        bytes[offset] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        match Store::open(&path) {
            Err(_) => prop_assert!(offset < MAGIC.len(), "only magic damage may reject"),
            Ok(s) => {
                for (k, v) in &expected {
                    if let Some(got) = s.lookup(k) {
                        prop_assert_eq!(got, v, "surviving verdict must be exact");
                    }
                }
                if let Some(got) = s.lookup_cert(&ck) {
                    prop_assert_eq!(got, &c, "surviving certificate must be exact");
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
