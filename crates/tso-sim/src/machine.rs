//! The machine: cores + shared memory system, stepped cycle by cycle.

use crate::config::SimConfig;
use crate::core::{Core, Shared};
use crate::stats::SimStats;
use crate::trace::Trace;
use coherence::CoherenceSystem;
use interconnect::{Cycle, Mesh};
use rmw_types::Value;
use std::collections::{HashMap, HashSet};

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Machine-level aggregate statistics.
    pub stats: SimStats,
    /// Per-core statistics (index = core id).
    pub per_core: Vec<SimStats>,
    /// Values observed by each core's reads (and RMW reads), in program
    /// order — used for cross-validation against the axiomatic model.
    pub reads: Vec<Vec<Value>>,
    /// Final memory contents.
    pub memory: HashMap<rmw_types::Addr, Value>,
    /// True if the machine stopped because no core made progress for the
    /// configured threshold (e.g. the Fig. 10 write-deadlock with the
    /// Bloom filter disabled).
    pub deadlocked: bool,
}

/// The simulated CMP.
#[derive(Debug)]
pub struct Machine {
    config: SimConfig,
    cores: Vec<Core>,
    shared: Shared,
    now: Cycle,
}

impl Machine {
    /// Builds a machine executing one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or there are more traces than cores.
    pub fn new(config: SimConfig, traces: Vec<Trace>) -> Self {
        config.validate().expect("invalid simulator configuration");
        assert!(
            traces.len() <= config.num_cores(),
            "{} traces for {} cores",
            traces.len(),
            config.num_cores()
        );
        let mesh = Mesh::new(config.mesh());
        let bcast_ack_latency = (0..config.num_cores())
            .map(|c| mesh.broadcast_ack_latency(c))
            .collect();
        let mut all = traces;
        all.resize(config.num_cores(), Trace::default());
        let cores = all
            .into_iter()
            .enumerate()
            .map(|(id, t)| Core::new(id, t, &config))
            .collect();
        Machine {
            cores,
            shared: Shared {
                coherence: CoherenceSystem::new(config.coherence),
                memory: HashMap::new(),
                unique_rmw_lines: HashSet::new(),
                pending_broadcasts: Vec::new(),
                reset_requested: false,
                last_progress: 0,
                bcast_ack_latency,
            },
            config,
            now: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs to completion (or deadlock detection) and returns the result.
    pub fn run(mut self) -> SimResult {
        let mut bloom_resets = 0u64;
        loop {
            if self.cores.iter().all(Core::done) {
                return self.finish(false, bloom_resets);
            }
            if self.now.saturating_sub(self.shared.last_progress) > self.config.deadlock_threshold {
                return self.finish(true, bloom_resets);
            }

            for i in 0..self.cores.len() {
                self.cores[i].tick(self.now, &mut self.shared, &self.config);
            }

            // Apply RMW-address broadcasts to every filter (the sender
            // already inserted locally and is stalling for the ack
            // round-trip, so applying now preserves the paper's c1-before-c2
            // ordering).
            if !self.shared.pending_broadcasts.is_empty() {
                let lines: Vec<_> = self.shared.pending_broadcasts.drain(..).collect();
                for core in &mut self.cores {
                    for line in &lines {
                        core.bloom.insert(line.0);
                    }
                }
            }

            // Coordinated filter reset: clear everything, then re-insert the
            // addresses of lines still locked by in-flight RMWs (they must
            // remain visible for the deadlock-safety property).
            if self.shared.reset_requested {
                self.shared.reset_requested = false;
                bloom_resets += 1;
                let live: Vec<u64> = self
                    .shared
                    .unique_rmw_lines
                    .iter()
                    .filter(|l| self.shared.coherence.lock_of(**l).is_some())
                    .map(|l| l.0)
                    .collect();
                for core in &mut self.cores {
                    core.bloom.reset();
                    for &l in &live {
                        core.bloom.insert(l);
                    }
                }
            }

            self.now += 1;
        }
    }

    fn finish(self, deadlocked: bool, bloom_resets: u64) -> SimResult {
        let mut agg = SimStats::default();
        let mut per_core = Vec::with_capacity(self.cores.len());
        let mut reads = Vec::with_capacity(self.cores.len());
        for core in &self.cores {
            let mut s = core.stats;
            s.cycles = self.now;
            agg.merge_core(&s);
            per_core.push(s);
            reads.push(core.reads.clone());
        }
        agg.cycles = self.now;
        agg.unique_rmw_addrs = self.shared.unique_rmw_lines.len() as u64;
        agg.bloom_resets = bloom_resets;
        SimResult {
            stats: agg,
            per_core,
            reads,
            memory: self.shared.memory,
            deadlocked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;
    use rmw_types::{Addr, Atomicity};

    fn addr(i: u64) -> Addr {
        Addr(i * 64) // one address per cache line
    }

    #[test]
    fn empty_machine_terminates_immediately() {
        let r = Machine::new(SimConfig::small(2), vec![]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.ops, 0);
        assert_eq!(r.stats.cycles, 0);
    }

    #[test]
    fn single_core_read_write() {
        let t = Trace::new(vec![
            Op::write(addr(0), 7),
            Op::read(addr(0)), // forwarded from WB
            Op::read(addr(1)), // cold miss
        ]);
        let r = Machine::new(SimConfig::small(1), vec![t]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.reads[0], vec![7, 0]);
        assert_eq!(r.memory.get(&addr(0)), Some(&7));
        assert_eq!(r.stats.mem_ops, 3);
    }

    #[test]
    fn rmw_applies_its_operation() {
        for a in Atomicity::ALL {
            let mut cfg = SimConfig::small(1);
            cfg.rmw_atomicity = a;
            let t = Trace::new(vec![
                Op::write(addr(0), 10),
                Op::Fence,
                Op::rmw(addr(0)), // FAA(1): reads 10, writes 11
                Op::read(addr(0)),
            ]);
            let r = Machine::new(cfg, vec![t]).run();
            assert!(!r.deadlocked, "{a}");
            assert_eq!(r.reads[0], vec![10, 11], "{a}");
            assert_eq!(r.memory.get(&addr(0)), Some(&11), "{a}");
            assert_eq!(r.stats.rmw_count, 1);
            assert_eq!(r.stats.unique_rmw_addrs, 1);
        }
    }

    #[test]
    fn two_cores_contended_rmw_serialize() {
        for a in Atomicity::ALL {
            let mut cfg = SimConfig::small(2);
            cfg.rmw_atomicity = a;
            let t0 = Trace::new(vec![Op::rmw(addr(0)); 5]);
            let t1 = Trace::new(vec![Op::rmw(addr(0)); 5]);
            let r = Machine::new(cfg, vec![t0, t1]).run();
            assert!(!r.deadlocked, "{a}");
            // FAA(1) × 10 serialized: final value 10, and the multiset of
            // observed values is exactly {0..9}.
            assert_eq!(r.memory.get(&addr(0)), Some(&10), "{a}");
            let mut seen: Vec<u64> = r.reads.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>(), "{a}: atomicity violated");
        }
    }

    #[test]
    fn type1_drains_every_rmw() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type1;
        let t = Trace::new(vec![
            Op::write(addr(1), 1),
            Op::write(addr(2), 2),
            Op::rmw(addr(0)),
        ]);
        let r = Machine::new(cfg, vec![t]).run();
        assert_eq!(r.stats.rmw_drains, 1);
        assert!(
            r.stats.rmw_cost.write_buffer_cycles > 0,
            "drain on critical path"
        );
    }

    #[test]
    fn type2_avoids_the_drain() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t = Trace::new(vec![
            Op::write(addr(1), 1),
            Op::write(addr(2), 2),
            Op::rmw(addr(0)),
        ]);
        let r = Machine::new(cfg, vec![t]).run();
        assert_eq!(r.stats.rmw_drains, 0, "no conflicting writes → no drain");
        assert_eq!(r.stats.rmw_cost.write_buffer_cycles, 0);
        assert_eq!(r.stats.rmw_broadcasts, 1, "new address broadcast once");
    }

    #[test]
    fn type2_conflicting_pending_write_reverts_to_drain() {
        // Core 1 has a pending write to a line core 0 RMWs (so it is in the
        // addr-list); core 1's own RMW must revert to a drain.
        let mut cfg = SimConfig::small(2);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t0 = Trace::new(vec![Op::rmw(addr(0))]);
        let t1 = Trace::new(vec![
            Op::Compute(400),      // let core 0's broadcast land
            Op::write(addr(0), 9), // pending write to an RMW line
            Op::rmw(addr(1)),      // checks WB: conflict → drain
        ]);
        let r = Machine::new(cfg, vec![t0, t1]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.rmw_drains, 1);
        assert!(r.stats.rmw_cost.write_buffer_cycles > 0);
    }

    #[test]
    fn own_pending_wa_does_not_force_a_drain() {
        // A pending write to a line this core itself holds locked (its own
        // earlier Wa) cannot deadlock it — no reverted drain.
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t = Trace::new(vec![
            Op::rmw(addr(0)), // Wa(0) pending, line 0 locked by us
            Op::rmw(addr(1)), // back-to-back: must not drain
        ]);
        let r = Machine::new(cfg, vec![t]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.rmw_drains, 0);
        assert_eq!(r.stats.rmw_count, 2);
    }

    #[test]
    fn back_to_back_rmws_to_same_line_keep_it_locked() {
        let mut cfg = SimConfig::small(2);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t0 = Trace::new(vec![Op::rmw(addr(0)), Op::rmw(addr(0)), Op::rmw(addr(0))]);
        let t1 = Trace::new(vec![Op::rmw(addr(0)), Op::rmw(addr(0))]);
        let r = Machine::new(cfg, vec![t0, t1]).run();
        assert!(!r.deadlocked);
        // FAA(1) × 5 fully serialized.
        assert_eq!(r.memory.get(&addr(0)), Some(&5));
        let mut seen: Vec<u64> = r.reads.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_rmw_to_same_address_broadcasts_once() {
        let mut cfg = SimConfig::small(2);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t0 = Trace::new(vec![Op::rmw(addr(0)); 10]);
        let t1 = Trace::new(vec![Op::rmw(addr(0)); 10]);
        let r = Machine::new(cfg, vec![t0, t1]).run();
        // Both cores may broadcast before seeing each other's insert, but
        // after that the address is known everywhere.
        assert!(r.stats.rmw_broadcasts <= 2);
        assert_eq!(r.stats.unique_rmw_addrs, 1);
        assert_eq!(r.stats.rmw_count, 20);
    }

    #[test]
    fn fig10_deadlocks_without_bloom_and_not_with_it() {
        // Paper Fig. 10: W(x); RMW(y) || W(y); RMW(x) with type-2 RMWs.
        let mk = |bloom: bool| {
            let mut cfg = SimConfig::small(2);
            cfg.rmw_atomicity = Atomicity::Type2;
            cfg.bloom_enabled = bloom;
            cfg.deadlock_threshold = 20_000;
            let t0 = Trace::new(vec![Op::write(addr(0), 1), Op::rmw(addr(1))]);
            let t1 = Trace::new(vec![Op::write(addr(1), 1), Op::rmw(addr(0))]);
            Machine::new(cfg, vec![t0, t1]).run()
        };
        let unsafe_run = mk(false);
        assert!(
            unsafe_run.deadlocked,
            "without the filter the cross-locked RMWs must write-deadlock"
        );
        let safe_run = mk(true);
        assert!(
            !safe_run.deadlocked,
            "the addr-list check prevents the deadlock"
        );
        assert!(
            safe_run.stats.rmw_drains >= 1,
            "at least one RMW reverted to a drain"
        );
    }

    #[test]
    fn type3_uses_directory_lock_on_shared_lines() {
        let mut cfg = SimConfig::small(3);
        cfg.rmw_atomicity = Atomicity::Type3;
        // Cores 1 and 2 read the line first so it is widely shared; then
        // core 0 RMWs it.
        let t0 = Trace::new(vec![Op::Compute(500), Op::rmw(addr(0))]);
        let t1 = Trace::new(vec![Op::read(addr(0))]);
        let t2 = Trace::new(vec![Op::read(addr(0))]);
        let r = Machine::new(cfg, vec![t0, t1, t2]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.rmw_count, 1);
        assert_eq!(r.memory.get(&addr(0)), Some(&1));
    }

    #[test]
    fn type3_cheaper_than_type2_on_shared_lines() {
        // The §3.3 claim: an RMW to a shared line needs no invalidations on
        // the critical path under type-3.
        let run = |a: Atomicity| {
            let mut cfg = SimConfig::small(4);
            cfg.rmw_atomicity = a;
            let t0 = Trace::new(vec![Op::Compute(2000), Op::rmw(addr(0))]);
            let readers = Trace::new(vec![Op::read(addr(0))]);
            let r = Machine::new(cfg, vec![t0, readers.clone(), readers.clone(), readers]).run();
            assert!(!r.deadlocked);
            r.stats.rmw_cost.ra_wa_cycles
        };
        let t2 = run(Atomicity::Type2);
        let t3 = run(Atomicity::Type3);
        assert!(
            t3 < t2,
            "type-3 Ra/Wa ({t3}) should beat type-2 ({t2}) on shared lines"
        );
    }

    #[test]
    fn fences_drain_and_are_counted() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t = Trace::new(vec![Op::write(addr(0), 1), Op::Fence, Op::read(addr(1))]);
        let r = Machine::new(cfg, vec![t]).run();
        assert!(r.stats.fence_cycles > 0);
        assert_eq!(r.reads[0], vec![0]);
    }

    #[test]
    fn fence_after_rmw_restores_type1_like_cost() {
        // §1 hypothesis: adding mfence after each RMW barely changes type-1
        // cost (the RMW already drained), but erases type-2's advantage.
        let run = |a: Atomicity, fence: bool| {
            let mut cfg = SimConfig::small(1);
            cfg.rmw_atomicity = a;
            cfg.fence_after_rmw = fence;
            let mut ops = Vec::new();
            for i in 0..20 {
                ops.push(Op::write(addr(10 + i), 1));
                ops.push(Op::rmw(addr(0)));
                ops.push(Op::read(addr(40 + i)));
            }
            let r = Machine::new(cfg, vec![Trace::new(ops)]).run();
            assert!(!r.deadlocked);
            r.stats.cycles
        };
        let t1_plain = run(Atomicity::Type1, false);
        let t1_fenced = run(Atomicity::Type1, true);
        let t2_plain = run(Atomicity::Type2, false);
        let t2_fenced = run(Atomicity::Type2, true);
        let t1_delta = t1_fenced as f64 / t1_plain as f64;
        assert!(
            t1_delta < 1.15,
            "fence after type-1 RMW should be nearly free, got ×{t1_delta:.2}"
        );
        assert!(t2_plain < t1_plain, "type-2 beats type-1");
        assert!(t2_fenced > t2_plain, "fencing erodes type-2's advantage");
    }

    #[test]
    fn bloom_reset_threshold_fires() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        cfg.bloom_reset_threshold = Some(4);
        let ops: Vec<Op> = (0..10).map(|i| Op::rmw(addr(i))).collect();
        let r = Machine::new(cfg, vec![Trace::new(ops)]).run();
        assert!(!r.deadlocked);
        assert!(r.stats.bloom_resets >= 1);
        assert_eq!(r.stats.rmw_count, 10);
    }

    #[test]
    fn write_buffer_capacity_is_respected() {
        let mut cfg = SimConfig::small(1);
        cfg.write_buffer_entries = 2;
        let ops: Vec<Op> = (0..20).map(|i| Op::write(addr(i % 4), i)).collect();
        let r = Machine::new(cfg, vec![Trace::new(ops)]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.ops, 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut cfg = SimConfig::small(4);
            cfg.rmw_atomicity = Atomicity::Type2;
            let traces: Vec<Trace> = (0..4)
                .map(|c| {
                    Trace::new(
                        (0..50)
                            .map(|i| match (c + i) % 3 {
                                0 => Op::rmw(addr(i % 5)),
                                1 => Op::write(addr(i % 7), i),
                                _ => Op::read(addr(i % 7)),
                            })
                            .collect(),
                    )
                })
                .collect();
            Machine::new(cfg, traces).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.reads, b.reads);
    }
}
