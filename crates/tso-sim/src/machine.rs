//! The machine: cores + shared memory system, advanced in lockstep (every
//! core, every cycle), by the cycle-skipping event scheduler, or by the
//! adaptive hybrid engine that switches between those two stepping styles
//! on armed-event density.
//!
//! All three engines run the same per-cycle semantics (`Core::tick` in
//! core-id order, then network delivery bookkeeping and coordinated
//! filter resets) and are cycle-identical in every observable; see
//! [`crate::sched`] for the exactness contract and
//! `tests/engine_equiv.rs` for the suite that enforces it.

use crate::config::{SimConfig, StepMode};
use crate::core::{Core, FutexTable, NetMsg, Shared};
use crate::sched::{Due, EventKind, Scheduler};
use crate::stats::{EngineStats, NetTraffic, SimStats};
use crate::trace::Trace;
use coherence::CoherenceSystem;
use interconnect::{Cycle, Mesh, Network, TrafficClass};
use rmw_types::fasthash::{FastHashMap, FastHashSet};
use rmw_types::Value;

/// Hybrid-engine policy window: visited cycles between armed-density
/// evaluations. Mode switches happen only at window boundaries, which
/// bounds switch thrash to one per window.
const HYBRID_WINDOW: u64 = 64;
/// Enter dense stepping when more than half the live cores are due per
/// simulated cycle over a window (`sum_due * DENSE_ENTER_DEN >
/// live * span * DENSE_ENTER_NUM`).
const DENSE_ENTER_NUM: u64 = 1;
const DENSE_ENTER_DEN: u64 = 2;
/// Leave dense stepping when density falls below a quarter — the gap
/// between the two thresholds is the hysteresis.
const DENSE_EXIT_NUM: u64 = 1;
const DENSE_EXIT_DEN: u64 = 4;

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Machine-level aggregate statistics.
    pub stats: SimStats,
    /// Per-core statistics (index = core id).
    pub per_core: Vec<SimStats>,
    /// Values observed by each core's reads (and RMW reads), in program
    /// order — used for cross-validation against the axiomatic model.
    pub reads: Vec<Vec<Value>>,
    /// Final memory contents.
    pub memory: FastHashMap<rmw_types::Addr, Value>,
    /// Interconnect traffic of the §3.2 RMW-address broadcast scheme
    /// (messages and link traversals, broadcasts + acks).
    pub net: NetTraffic,
    /// Host-side engine diagnostics (visited cycles, ticks, armed
    /// events); differs between step modes by design.
    pub engine: EngineStats,
    /// True if the machine stopped because no core made progress for the
    /// configured threshold (e.g. the Fig. 10 write-deadlock with the
    /// Bloom filter disabled).
    pub deadlocked: bool,
    /// True if the machine halted at the [`SimConfig::max_cycles`] ceiling
    /// with cores still running (spin livelocks count as watchdog
    /// progress, so only this bound stops them). Both engines truncate at
    /// exactly the same cycle.
    pub truncated: bool,
}

/// The simulated CMP.
#[derive(Debug)]
pub struct Machine {
    config: SimConfig,
    cores: Vec<Core>,
    shared: Shared,
    now: Cycle,
    /// Which cores are currently blocked on a foreign line lock (event
    /// engine only; mirrors `Core::blocked_on_foreign_lock`).
    blocked: Vec<bool>,
    /// Ascending ids of the `true` entries in `blocked`.
    blocked_ids: Vec<usize>,
    /// Delivery cycle the engine last armed a `NetDelivery` wakeup for
    /// (event engine; avoids re-arming the same in-flight message every
    /// visited cycle).
    armed_delivery: Option<Cycle>,
    /// Cores not yet done (event engine; a core never un-finishes).
    live: Vec<bool>,
    /// Count of `true` entries in `live`.
    num_live: usize,
    /// Engine work counters for `SimResult::engine`.
    engine: EngineStats,
}

impl Machine {
    /// Builds a machine executing one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or there are more traces than cores.
    pub fn new(config: SimConfig, traces: Vec<Trace>) -> Self {
        config.validate().expect("invalid simulator configuration");
        assert!(
            traces.len() <= config.num_cores(),
            "{} traces for {} cores",
            traces.len(),
            config.num_cores()
        );
        let net = Network::new(Mesh::new(config.mesh()));
        let bcast_ack_latency = vec![None; config.num_cores()];
        let mut all = traces;
        all.resize(config.num_cores(), Trace::default());
        let cores: Vec<Core> = all
            .into_iter()
            .enumerate()
            .map(|(id, t)| Core::new(id, t, &config))
            .collect();
        let blocked = vec![false; cores.len()];
        let live: Vec<bool> = cores.iter().map(|c| !c.done()).collect();
        let num_live = live.iter().filter(|&&l| l).count();
        let futex = FutexTable::new(cores.len());
        Machine {
            cores,
            shared: Shared {
                coherence: CoherenceSystem::new(config.coherence),
                memory: FastHashMap::default(),
                unique_rmw_lines: FastHashSet::default(),
                net,
                sched: Scheduler::new(config.step_mode != StepMode::Lockstep),
                reset_requested: false,
                lock_released: false,
                last_progress: 0,
                bcast_ack_latency,
                futex,
            },
            config,
            now: 0,
            blocked,
            blocked_ids: Vec::new(),
            armed_delivery: None,
            live,
            num_live,
            engine: EngineStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs to completion (or deadlock detection) and returns the result.
    pub fn run(self) -> SimResult {
        match self.config.step_mode {
            StepMode::Lockstep => self.run_lockstep(),
            StepMode::EventDriven => self.run_event_driven(),
            StepMode::Hybrid => self.run_hybrid(),
        }
    }

    /// The reference engine: every core ticks every cycle.
    fn run_lockstep(mut self) -> SimResult {
        let mut bloom_resets = 0u64;
        loop {
            if self.cores.iter().all(Core::done) {
                return self.finish(false, false, bloom_resets);
            }
            if self.now >= self.config.max_cycles {
                return self.finish(false, true, bloom_resets);
            }
            if self.now.saturating_sub(self.shared.last_progress) > self.config.deadlock_threshold {
                return self.finish(true, false, bloom_resets);
            }
            self.deliver_due_messages();
            for i in 0..self.cores.len() {
                let acted = self.cores[i].tick(self.now, &mut self.shared, &self.config);
                self.engine.ticks += 1;
                self.engine.acting_ticks += u64::from(acted);
            }
            self.apply_filter_reset(&mut bloom_resets);
            self.engine.visited_cycles += 1;
            self.now += 1;
        }
    }

    /// The cycle-skipping engine: visit only armed cycles, and at each one
    /// tick only the due cores (plus lock-blocked cores once a release
    /// wakeup applies), in core-id order — see `crate::sched` for why this
    /// is cycle-identical to lockstep.
    fn run_event_driven(mut self) -> SimResult {
        let mut bloom_resets = 0u64;
        if self.num_live == 0 {
            return self.finish(false, false, bloom_resets); // nothing to run
        }
        // Every live core is due at cycle 0, exactly like lockstep's first
        // tick; afterwards the due set comes from the armed events.
        let mut due: Vec<usize> = (0..self.cores.len()).filter(|&i| self.live[i]).collect();
        let mut flags = Due::default();
        let mut blocked_snap: Vec<usize> = Vec::new();
        loop {
            let changed = self.event_cycle(&due, &mut blocked_snap, flags, &mut bloom_resets);
            if changed && self.num_live == 0 {
                // Lockstep notices completion at the top of the next
                // cycle; report the identical cycle count.
                self.now += 1;
                return self.finish(false, false, bloom_resets);
            }
            if self.shared.lock_released && !self.blocked_ids.is_empty() {
                // The event-time replacement for lockstep's per-cycle lock
                // re-polling: a release means blocked cores must re-probe
                // next cycle (earlier-id ones missed it this cycle).
                self.shared.sched.wake_blocked(self.now, self.now + 1);
            }
            let next_delivery = self.shared.net.next_delivery();
            if next_delivery != self.armed_delivery {
                if let Some(at) = next_delivery {
                    // Clamped like every arm: a message whose nominal
                    // arrival is this very cycle is picked up next cycle,
                    // exactly as lockstep's start-of-cycle delivery would.
                    self.shared.sched.wake_machine(
                        self.now,
                        at.max(self.now + 1),
                        EventKind::NetDelivery,
                    );
                }
                self.armed_delivery = next_delivery;
            }
            // The watchdog in event time: the lockstep engine declares
            // deadlock at the first cycle more than `deadlock_threshold`
            // past the last progress. No armed event before that cycle
            // means no progress can occur before it either (skipped ticks
            // are no-ops), so if the next armed event lies at or beyond
            // the firing cycle — or nothing is armed at all — the machine
            // is wedged and stops at exactly the cycle lockstep would.
            let fire = self
                .shared
                .last_progress
                .saturating_add(self.config.deadlock_threshold)
                .saturating_add(1);
            // The hard ceiling composes the same way: lockstep checks
            // `done → truncate → watchdog` at the top of each cycle, so at
            // the stop cycle itself nothing executes — any armed event at
            // or beyond `stop` is never visited, and a tie between the
            // ceiling and the watchdog resolves as truncation.
            let stop = fire.min(self.config.max_cycles);
            match self.shared.sched.next_after(self.now) {
                Some(at) if at < stop => {
                    debug_assert!(at > self.now, "scheduler moved time backwards");
                    self.now = at;
                }
                _ => {
                    let truncated = self.config.max_cycles <= fire;
                    self.now = stop;
                    return self.finish(!truncated, truncated, bloom_resets);
                }
            }
            due.clear();
            flags = self.shared.sched.drain_due(self.now, &mut due);
        }
    }

    /// The adaptive engine: the event loop generalized over two stepping
    /// phases. **Sparse** cycles are exactly [`Machine::run_event_driven`]
    /// cycles (jump to the next armed event, tick only due cores);
    /// **dense** cycles are exactly lockstep cycles (advance by one, tick
    /// every live core — provably identical because ticks at cycles a
    /// core never armed are no-ops, the same argument that makes the
    /// event engine exact). A sliding window over the visited cycles
    /// tracks armed-event density and switches phase at window
    /// boundaries. Every switch is a cycle-exact handoff: `now`,
    /// `last_progress`, the watchdog/`max_cycles` stop computation, and
    /// the pending wheel/overflow contents are shared loop state that a
    /// phase change never touches — the wheel keeps arming (and keeps
    /// its single-cycle bucket invariant: dense phases drain every
    /// visited cycle too), so a sparse phase can resume at any boundary.
    fn run_hybrid(mut self) -> SimResult {
        let mut bloom_resets = 0u64;
        if self.num_live == 0 {
            return self.finish(false, false, bloom_resets);
        }
        // Every live core is due at cycle 0, exactly like lockstep's first
        // tick; afterwards the due set comes from the armed events.
        let mut due: Vec<usize> = (0..self.cores.len()).filter(|&i| self.live[i]).collect();
        let mut flags = Due::default();
        let mut blocked_snap: Vec<usize> = Vec::new();
        let mut dense = false;
        let mut due_count = due.len() as u64;
        // Density window accumulators: due-core count and simulated span.
        let (mut win_due, mut win_visited, mut win_start) = (0u64, 0u64, 0u64);
        loop {
            win_due += due_count;
            win_visited += 1;
            let changed = if dense {
                self.engine.dense_cycles += 1;
                // Mid-window dense cycles tick every live core next cycle
                // too, so arms landing exactly next cycle are redundant —
                // drop them at the source (the dominant dense-phase cost).
                // The window's *last* cycle keeps arming: the next cycle
                // may execute in the sparse phase.
                self.shared
                    .sched
                    .set_skip_core_arms_at(if win_visited < HYBRID_WINDOW {
                        self.now + 1
                    } else {
                        0
                    });
                let (changed, acted) = self.dense_cycle(&mut bloom_resets);
                self.shared.sched.set_skip_core_arms_at(0);
                // With next-cycle arms suppressed, drained events no
                // longer measure density; acting ticks do.
                due_count = acted;
                changed
            } else {
                self.engine.sparse_cycles += 1;
                self.event_cycle(&due, &mut blocked_snap, flags, &mut bloom_resets)
            };
            if changed && self.num_live == 0 {
                // Lockstep notices completion at the top of the next
                // cycle; report the identical cycle count.
                self.now += 1;
                return self.finish(false, false, bloom_resets);
            }
            if self.shared.lock_released && !self.blocked_ids.is_empty() {
                // Dense cycles tick blocked cores anyway (lockstep's
                // per-cycle re-poll), but the arm must still happen: the
                // next cycle may execute in the sparse phase.
                self.shared.sched.wake_blocked(self.now, self.now + 1);
            }
            let next_delivery = self.shared.net.next_delivery();
            if next_delivery != self.armed_delivery {
                if let Some(at) = next_delivery {
                    self.shared.sched.wake_machine(
                        self.now,
                        at.max(self.now + 1),
                        EventKind::NetDelivery,
                    );
                }
                self.armed_delivery = next_delivery;
            }
            // Stop computation shared with the event engine (see there for
            // the watchdog/truncation argument); phase only decides the
            // *candidate* next cycle, never the stop cycle.
            let fire = self
                .shared
                .last_progress
                .saturating_add(self.config.deadlock_threshold)
                .saturating_add(1);
            let stop = fire.min(self.config.max_cycles);
            if win_visited >= HYBRID_WINDOW {
                let span = (self.now + 1).saturating_sub(win_start).max(1);
                let live = self.num_live as u64;
                let was = dense;
                if dense {
                    dense = win_due * DENSE_EXIT_DEN >= live * span * DENSE_EXIT_NUM;
                } else {
                    dense = win_due * DENSE_ENTER_DEN > live * span * DENSE_ENTER_NUM;
                }
                self.engine.mode_switches += u64::from(was != dense);
                (win_due, win_visited, win_start) = (0, 0, self.now + 1);
            }
            let next = if dense {
                // Dense: visit the very next cycle, lockstep-style. Cycles
                // with nothing due are visited as no-ops (ticks there
                // cannot act), so exactness is unaffected.
                Some(self.now + 1).filter(|&at| at < stop)
            } else {
                self.shared
                    .sched
                    .next_after(self.now)
                    .filter(|&at| at < stop)
            };
            match next {
                Some(at) => {
                    debug_assert!(at > self.now, "scheduler moved time backwards");
                    self.now = at;
                }
                _ => {
                    let truncated = self.config.max_cycles <= fire;
                    self.now = stop;
                    return self.finish(!truncated, truncated, bloom_resets);
                }
            }
            due.clear();
            if dense {
                // The due list is not needed for ticking (every live core
                // ticks); drain anyway to keep the wheel's single-cycle
                // bucket invariant. The count is not the density signal
                // here — suppressed arms never land — so the acting-tick
                // count from `dense_cycle` stands in (set above).
                (flags, _) = self.shared.sched.drain_due_counted(self.now);
            } else {
                flags = self.shared.sched.drain_due(self.now, &mut due);
                due_count = due.len() as u64;
            }
        }
    }

    /// One simulated cycle at `self.now` in the hybrid engine's dense
    /// phase: lockstep semantics — deliver due network messages, then
    /// tick every live core in id order — while maintaining the
    /// blocked/live bookkeeping the sparse phase depends on. Ticking
    /// cores without a due event is exact for the same reason skipping
    /// them is: such ticks cannot act (see `crate::sched`). Returns
    /// whether anything changed plus the acting-tick count (the dense
    /// phase's density signal).
    fn dense_cycle(&mut self, bloom_resets: &mut u64) -> (bool, u64) {
        self.engine.visited_cycles += 1;
        self.shared.lock_released = false;
        let mut changed = self.deliver_due_messages();
        let mut acted = 0u64;
        for i in 0..self.cores.len() {
            if self.live[i] {
                let a = self.tick_core(i);
                acted += u64::from(a);
                changed |= a;
            }
        }
        (changed | self.apply_filter_reset(bloom_resets), acted)
    }

    /// One simulated cycle at `self.now` under the event engine. `due`
    /// holds the cores with armed wakeups (ascending, deduplicated);
    /// network messages are delivered when a machine event is due, and
    /// lock-blocked cores are additionally ticked when a blocked-wakeup is
    /// due or once a lock was released earlier this cycle. Returns `true`
    /// iff anything changed.
    fn event_cycle(
        &mut self,
        due: &[usize],
        blocked_snap: &mut Vec<usize>,
        flags: Due,
        bloom_resets: &mut u64,
    ) -> bool {
        self.engine.visited_cycles += 1;
        self.shared.lock_released = false;
        // Deliveries only happen at cycles with an armed machine event:
        // `next_delivery` is the earliest in-flight arrival and is always
        // armed, so no message can be due before its wakeup fires.
        let mut changed = flags.machine && self.deliver_due_messages();
        let wake_blocked = flags.wake_blocked;

        if self.blocked_ids.is_empty() && !wake_blocked {
            // Fast path: no lock contention anywhere — only due cores can
            // possibly act. (A core blocking or a lock releasing *during*
            // this pass needs no extra ticks this cycle: a blocking core
            // just ticked, and with no cores blocked at cycle start a
            // release has no one to wake until the armed wakeup.)
            for &i in due {
                changed |= self.tick_core(i);
            }
        } else {
            // Contended path: merge the due list with a snapshot of the
            // blocked cores (ascending id order, exactly lockstep's), and
            // tick blocked ones once a wakeup applies — from cycle start
            // (`wake_blocked`) or from a release by an earlier-id core
            // this cycle (`lock_released`).
            blocked_snap.clear();
            blocked_snap.extend_from_slice(&self.blocked_ids);
            let (mut di, mut bi) = (0, 0);
            loop {
                let (i, is_due) = match (due.get(di), blocked_snap.get(bi)) {
                    (None, None) => break,
                    (Some(&d), None) => {
                        di += 1;
                        (d, true)
                    }
                    (None, Some(&b)) => {
                        bi += 1;
                        (b, false)
                    }
                    (Some(&d), Some(&b)) => {
                        if d <= b {
                            di += 1;
                            if d == b {
                                bi += 1;
                            }
                            (d, true)
                        } else {
                            bi += 1;
                            (b, false)
                        }
                    }
                };
                if is_due || wake_blocked || self.shared.lock_released {
                    changed |= self.tick_core(i);
                }
            }
        }

        changed | self.apply_filter_reset(bloom_resets)
    }

    /// Ticks one core and maintains its blocked/live bookkeeping (the core
    /// arms its own follow-up wakeups as needed).
    fn tick_core(&mut self, i: usize) -> bool {
        let acted = self.cores[i].tick(self.now, &mut self.shared, &self.config);
        self.engine.ticks += 1;
        self.engine.acting_ticks += u64::from(acted);
        let blocked = self.cores[i].blocked_on_foreign_lock();
        if blocked != self.blocked[i] {
            self.blocked[i] = blocked;
            if blocked {
                let pos = self.blocked_ids.partition_point(|&b| b < i);
                self.blocked_ids.insert(pos, i);
            } else {
                self.blocked_ids.retain(|&b| b != i);
            }
        }
        if acted && self.live[i] && self.cores[i].done() {
            self.live[i] = false;
            self.num_live -= 1;
        }
        acted
    }

    /// Delivers interconnect messages due at `self.now`. RMW-address
    /// broadcasts land in each receiver's filter at their mesh delivery
    /// time, and each receiving core acks back to the broadcaster (the
    /// sender's stall uses the precomputed worst-case round trip, which
    /// the last ack's delivery time equals). Mesh nodes beyond
    /// `num_cores` (non-square scaled-down meshes) have no core:
    /// deliveries there are dropped after paying their hops.
    fn deliver_due_messages(&mut self) -> bool {
        let mut changed = false;
        for (dst, msg) in self.shared.net.deliver_ready(self.now) {
            let NetMsg::RmwBcast { line, src } = msg;
            if let Some(core) = self.cores.get_mut(dst) {
                core.bloom.insert(line.0);
                // The ack returns to the broadcaster; its arrival is the
                // precomputed round trip the sender is already stalling
                // on, so only its traffic is recorded.
                self.shared
                    .net
                    .account(dst, src, TrafficClass::RmwBroadcast);
                changed = true;
            }
        }
        changed
    }

    /// Coordinated filter reset: clear everything, then re-insert the
    /// addresses of lines still locked by in-flight RMWs (they must
    /// remain visible for the deadlock-safety property).
    fn apply_filter_reset(&mut self, bloom_resets: &mut u64) -> bool {
        if !self.shared.reset_requested {
            return false;
        }
        self.shared.reset_requested = false;
        *bloom_resets += 1;
        let live: Vec<u64> = self
            .shared
            .unique_rmw_lines
            .iter()
            .filter(|l| self.shared.coherence.lock_of(**l).is_some())
            .map(|l| l.0)
            .collect();
        for core in &mut self.cores {
            core.bloom.reset();
            for &l in &live {
                core.bloom.insert(l);
            }
        }
        true
    }

    fn finish(self, deadlocked: bool, truncated: bool, bloom_resets: u64) -> SimResult {
        let mut agg = SimStats::default();
        let mut per_core = Vec::with_capacity(self.cores.len());
        let mut reads = Vec::with_capacity(self.cores.len());
        for core in &self.cores {
            let mut s = core.stats;
            s.cycles = self.now;
            agg.merge_core(&s);
            per_core.push(s);
            reads.push(core.reads.clone());
        }
        agg.cycles = self.now;
        agg.unique_rmw_addrs = self.shared.unique_rmw_lines.len() as u64;
        agg.bloom_resets = bloom_resets;
        let mut engine = self.engine;
        engine.events_armed = self.shared.sched.armed();
        let net = NetTraffic {
            messages: self.shared.net.total_sent(),
            hops: self.shared.net.total_hop_traffic(),
            broadcast_messages: self.shared.net.sent(TrafficClass::RmwBroadcast),
            broadcast_hops: self.shared.net.hop_traffic(TrafficClass::RmwBroadcast),
        };
        SimResult {
            stats: agg,
            per_core,
            reads,
            memory: self.shared.memory,
            net,
            engine,
            deadlocked,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Cond, Op, Src};
    use rmw_types::{Addr, Atomicity};

    fn addr(i: u64) -> Addr {
        Addr(i * 64) // one address per cache line
    }

    #[test]
    fn empty_machine_terminates_immediately() {
        let r = Machine::new(SimConfig::small(2), vec![]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.ops, 0);
        assert_eq!(r.stats.cycles, 0);
    }

    #[test]
    fn single_core_read_write() {
        let t = Trace::new(vec![
            Op::write(addr(0), 7),
            Op::read(addr(0)), // forwarded from WB
            Op::read(addr(1)), // cold miss
        ]);
        let r = Machine::new(SimConfig::small(1), vec![t]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.reads[0], vec![7, 0]);
        assert_eq!(r.memory.get(&addr(0)), Some(&7));
        assert_eq!(r.stats.mem_ops, 3);
    }

    #[test]
    fn rmw_applies_its_operation() {
        for a in Atomicity::ALL {
            let mut cfg = SimConfig::small(1);
            cfg.rmw_atomicity = a;
            let t = Trace::new(vec![
                Op::write(addr(0), 10),
                Op::Fence,
                Op::rmw(addr(0)), // FAA(1): reads 10, writes 11
                Op::read(addr(0)),
            ]);
            let r = Machine::new(cfg, vec![t]).run();
            assert!(!r.deadlocked, "{a}");
            assert_eq!(r.reads[0], vec![10, 11], "{a}");
            assert_eq!(r.memory.get(&addr(0)), Some(&11), "{a}");
            assert_eq!(r.stats.rmw_count, 1);
            assert_eq!(r.stats.unique_rmw_addrs, 1);
        }
    }

    #[test]
    fn two_cores_contended_rmw_serialize() {
        for a in Atomicity::ALL {
            let mut cfg = SimConfig::small(2);
            cfg.rmw_atomicity = a;
            let t0 = Trace::new(vec![Op::rmw(addr(0)); 5]);
            let t1 = Trace::new(vec![Op::rmw(addr(0)); 5]);
            let r = Machine::new(cfg, vec![t0, t1]).run();
            assert!(!r.deadlocked, "{a}");
            // FAA(1) × 10 serialized: final value 10, and the multiset of
            // observed values is exactly {0..9}.
            assert_eq!(r.memory.get(&addr(0)), Some(&10), "{a}");
            let mut seen: Vec<u64> = r.reads.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>(), "{a}: atomicity violated");
        }
    }

    #[test]
    fn type1_drains_every_rmw() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type1;
        let t = Trace::new(vec![
            Op::write(addr(1), 1),
            Op::write(addr(2), 2),
            Op::rmw(addr(0)),
        ]);
        let r = Machine::new(cfg, vec![t]).run();
        assert_eq!(r.stats.rmw_drains, 1);
        assert!(
            r.stats.rmw_cost.write_buffer_cycles > 0,
            "drain on critical path"
        );
    }

    #[test]
    fn type2_avoids_the_drain() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t = Trace::new(vec![
            Op::write(addr(1), 1),
            Op::write(addr(2), 2),
            Op::rmw(addr(0)),
        ]);
        let r = Machine::new(cfg, vec![t]).run();
        assert_eq!(r.stats.rmw_drains, 0, "no conflicting writes → no drain");
        assert_eq!(r.stats.rmw_cost.write_buffer_cycles, 0);
        assert_eq!(r.stats.rmw_broadcasts, 1, "new address broadcast once");
    }

    #[test]
    fn type2_conflicting_pending_write_reverts_to_drain() {
        // Core 1 has a pending write to a line core 0 RMWs (so it is in the
        // addr-list); core 1's own RMW must revert to a drain.
        let mut cfg = SimConfig::small(2);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t0 = Trace::new(vec![Op::rmw(addr(0))]);
        let t1 = Trace::new(vec![
            Op::Compute(400),      // let core 0's broadcast land
            Op::write(addr(0), 9), // pending write to an RMW line
            Op::rmw(addr(1)),      // checks WB: conflict → drain
        ]);
        let r = Machine::new(cfg, vec![t0, t1]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.rmw_drains, 1);
        assert!(r.stats.rmw_cost.write_buffer_cycles > 0);
    }

    #[test]
    fn own_pending_wa_does_not_force_a_drain() {
        // A pending write to a line this core itself holds locked (its own
        // earlier Wa) cannot deadlock it — no reverted drain.
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t = Trace::new(vec![
            Op::rmw(addr(0)), // Wa(0) pending, line 0 locked by us
            Op::rmw(addr(1)), // back-to-back: must not drain
        ]);
        let r = Machine::new(cfg, vec![t]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.rmw_drains, 0);
        assert_eq!(r.stats.rmw_count, 2);
    }

    #[test]
    fn back_to_back_rmws_to_same_line_keep_it_locked() {
        let mut cfg = SimConfig::small(2);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t0 = Trace::new(vec![Op::rmw(addr(0)), Op::rmw(addr(0)), Op::rmw(addr(0))]);
        let t1 = Trace::new(vec![Op::rmw(addr(0)), Op::rmw(addr(0))]);
        let r = Machine::new(cfg, vec![t0, t1]).run();
        assert!(!r.deadlocked);
        // FAA(1) × 5 fully serialized.
        assert_eq!(r.memory.get(&addr(0)), Some(&5));
        let mut seen: Vec<u64> = r.reads.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_rmw_to_same_address_broadcasts_once() {
        let mut cfg = SimConfig::small(2);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t0 = Trace::new(vec![Op::rmw(addr(0)); 10]);
        let t1 = Trace::new(vec![Op::rmw(addr(0)); 10]);
        let r = Machine::new(cfg, vec![t0, t1]).run();
        // Both cores may broadcast before seeing each other's insert, but
        // after that the address is known everywhere.
        assert!(r.stats.rmw_broadcasts <= 2);
        assert_eq!(r.stats.unique_rmw_addrs, 1);
        assert_eq!(r.stats.rmw_count, 20);
    }

    #[test]
    fn broadcasts_travel_the_interconnect_with_acks() {
        let mut cfg = SimConfig::small(4);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t0 = Trace::new(vec![Op::rmw(addr(0))]);
        let r = Machine::new(cfg, vec![t0]).run();
        assert_eq!(r.stats.rmw_broadcasts, 1);
        // One broadcast to the 3 other nodes, one ack back from each core.
        assert_eq!(r.net.broadcast_messages, 6);
        assert_eq!(r.net.messages, r.net.broadcast_messages);
        assert!(r.net.broadcast_hops > 0, "hop accounting exercised");
    }

    #[test]
    fn fig10_deadlocks_without_bloom_and_not_with_it() {
        // Paper Fig. 10: W(x); RMW(y) || W(y); RMW(x) with type-2 RMWs.
        let mk = |bloom: bool| {
            let mut cfg = SimConfig::small(2);
            cfg.rmw_atomicity = Atomicity::Type2;
            cfg.bloom_enabled = bloom;
            cfg.deadlock_threshold = 20_000;
            let t0 = Trace::new(vec![Op::write(addr(0), 1), Op::rmw(addr(1))]);
            let t1 = Trace::new(vec![Op::write(addr(1), 1), Op::rmw(addr(0))]);
            Machine::new(cfg, vec![t0, t1]).run()
        };
        let unsafe_run = mk(false);
        assert!(
            unsafe_run.deadlocked,
            "without the filter the cross-locked RMWs must write-deadlock"
        );
        let safe_run = mk(true);
        assert!(
            !safe_run.deadlocked,
            "the addr-list check prevents the deadlock"
        );
        assert!(
            safe_run.stats.rmw_drains >= 1,
            "at least one RMW reverted to a drain"
        );
    }

    #[test]
    fn type3_uses_directory_lock_on_shared_lines() {
        let mut cfg = SimConfig::small(3);
        cfg.rmw_atomicity = Atomicity::Type3;
        // Cores 1 and 2 read the line first so it is widely shared; then
        // core 0 RMWs it.
        let t0 = Trace::new(vec![Op::Compute(500), Op::rmw(addr(0))]);
        let t1 = Trace::new(vec![Op::read(addr(0))]);
        let t2 = Trace::new(vec![Op::read(addr(0))]);
        let r = Machine::new(cfg, vec![t0, t1, t2]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.rmw_count, 1);
        assert_eq!(r.memory.get(&addr(0)), Some(&1));
    }

    #[test]
    fn type3_cheaper_than_type2_on_shared_lines() {
        // The §3.3 claim: an RMW to a shared line needs no invalidations on
        // the critical path under type-3.
        let run = |a: Atomicity| {
            let mut cfg = SimConfig::small(4);
            cfg.rmw_atomicity = a;
            let t0 = Trace::new(vec![Op::Compute(2000), Op::rmw(addr(0))]);
            let readers = Trace::new(vec![Op::read(addr(0))]);
            let r = Machine::new(cfg, vec![t0, readers.clone(), readers.clone(), readers]).run();
            assert!(!r.deadlocked);
            r.stats.rmw_cost.ra_wa_cycles
        };
        let t2 = run(Atomicity::Type2);
        let t3 = run(Atomicity::Type3);
        assert!(
            t3 < t2,
            "type-3 Ra/Wa ({t3}) should beat type-2 ({t2}) on shared lines"
        );
    }

    #[test]
    fn fences_drain_and_are_counted() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        let t = Trace::new(vec![Op::write(addr(0), 1), Op::Fence, Op::read(addr(1))]);
        let r = Machine::new(cfg, vec![t]).run();
        assert!(r.stats.fence_cycles > 0);
        assert_eq!(r.reads[0], vec![0]);
    }

    #[test]
    fn fence_after_rmw_restores_type1_like_cost() {
        // §1 hypothesis: adding mfence after each RMW barely changes type-1
        // cost (the RMW already drained), but erases type-2's advantage.
        let run = |a: Atomicity, fence: bool| {
            let mut cfg = SimConfig::small(1);
            cfg.rmw_atomicity = a;
            cfg.fence_after_rmw = fence;
            let mut ops = Vec::new();
            for i in 0..20 {
                ops.push(Op::write(addr(10 + i), 1));
                ops.push(Op::rmw(addr(0)));
                ops.push(Op::read(addr(40 + i)));
            }
            let r = Machine::new(cfg, vec![Trace::new(ops)]).run();
            assert!(!r.deadlocked);
            r.stats.cycles
        };
        let t1_plain = run(Atomicity::Type1, false);
        let t1_fenced = run(Atomicity::Type1, true);
        let t2_plain = run(Atomicity::Type2, false);
        let t2_fenced = run(Atomicity::Type2, true);
        let t1_delta = t1_fenced as f64 / t1_plain as f64;
        assert!(
            t1_delta < 1.15,
            "fence after type-1 RMW should be nearly free, got ×{t1_delta:.2}"
        );
        assert!(t2_plain < t1_plain, "type-2 beats type-1");
        assert!(t2_fenced > t2_plain, "fencing erodes type-2's advantage");
    }

    #[test]
    fn bloom_reset_threshold_fires() {
        let mut cfg = SimConfig::small(1);
        cfg.rmw_atomicity = Atomicity::Type2;
        cfg.bloom_reset_threshold = Some(4);
        let ops: Vec<Op> = (0..10).map(|i| Op::rmw(addr(i))).collect();
        let r = Machine::new(cfg, vec![Trace::new(ops)]).run();
        assert!(!r.deadlocked);
        assert!(r.stats.bloom_resets >= 1);
        assert_eq!(r.stats.rmw_count, 10);
    }

    #[test]
    fn write_buffer_capacity_is_respected() {
        let mut cfg = SimConfig::small(1);
        cfg.write_buffer_entries = 2;
        let ops: Vec<Op> = (0..20).map(|i| Op::write(addr(i % 4), i)).collect();
        let r = Machine::new(cfg, vec![Trace::new(ops)]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.ops, 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut cfg = SimConfig::small(4);
            cfg.rmw_atomicity = Atomicity::Type2;
            let traces: Vec<Trace> = (0..4)
                .map(|c| {
                    Trace::new(
                        (0..50)
                            .map(|i| match (c + i) % 3 {
                                0 => Op::rmw(addr(i % 5)),
                                1 => Op::write(addr(i % 7), i),
                                _ => Op::read(addr(i % 7)),
                            })
                            .collect(),
                    )
                })
                .collect();
            Machine::new(cfg, traces).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.reads, b.reads);
    }

    #[test]
    fn lockstep_mode_produces_identical_results() {
        // A quick inline cross-check (the full suite lives in
        // tests/engine_equiv.rs): both engines, same run, same everything.
        let mk = |mode: StepMode| {
            let mut cfg = SimConfig::small(3);
            cfg.rmw_atomicity = Atomicity::Type2;
            cfg.step_mode = mode;
            let traces: Vec<Trace> = (0..3)
                .map(|c| {
                    Trace::new(
                        (0..30)
                            .map(|i| match (c + i) % 4 {
                                0 => Op::rmw(addr(i % 3)),
                                1 => Op::write(addr(i % 5), i),
                                2 => Op::Fence,
                                _ => Op::read(addr(i % 5)),
                            })
                            .collect(),
                    )
                })
                .collect();
            Machine::new(cfg, traces).run()
        };
        let ev = mk(StepMode::EventDriven);
        let ls = mk(StepMode::Lockstep);
        assert_eq!(ev.stats, ls.stats);
        assert_eq!(ev.per_core, ls.per_core);
        assert_eq!(ev.reads, ls.reads);
        assert_eq!(ev.memory, ls.memory);
        assert_eq!(ev.net, ls.net);
        assert_eq!(ev.deadlocked, ls.deadlocked);
        assert_eq!(ev.truncated, ls.truncated);
    }

    #[test]
    fn hybrid_mode_is_cycle_identical_and_goes_dense_under_load() {
        // Nonstop register spins keep every core acting every cycle, so the
        // hybrid's density window must flip it into dense stepping; the
        // result must still equal both reference engines bit-for-bit.
        let spin = |n: u64| {
            Trace::new(vec![
                Op::MovImm(0, n),
                Op::AddImm(0, u64::MAX), // wrapping -1
                Op::Branch {
                    cond: Cond::Ne,
                    lhs: 0,
                    rhs: Src::Imm(0),
                    target: 1,
                },
                Op::WriteFrom(addr(3), 0),
            ])
        };
        let mk = |mode: StepMode| {
            let mut cfg = SimConfig::small(2);
            cfg.step_mode = mode;
            Machine::new(cfg, vec![spin(400), spin(300)]).run()
        };
        let hy = mk(StepMode::Hybrid);
        let ls = mk(StepMode::Lockstep);
        let ev = mk(StepMode::EventDriven);
        for r in [&ls, &ev] {
            assert_eq!(hy.stats, r.stats);
            assert_eq!(hy.per_core, r.per_core);
            assert_eq!(hy.reads, r.reads);
            assert_eq!(hy.memory, r.memory);
            assert_eq!(hy.net, r.net);
            assert_eq!(hy.deadlocked, r.deadlocked);
            assert_eq!(hy.truncated, r.truncated);
        }
        assert!(
            hy.engine.mode_switches >= 1 && hy.engine.dense_cycles > 0,
            "a saturated machine must trigger dense stepping: {:?}",
            hy.engine
        );
        assert_eq!(
            hy.engine.visited_cycles,
            hy.engine.dense_cycles + hy.engine.sparse_cycles
        );
        assert_eq!(ls.engine.mode_switches, 0);
        assert_eq!(ev.engine.mode_switches, 0);
    }

    #[test]
    fn futex_wait_wake_round_trip() {
        for mode in [StepMode::EventDriven, StepMode::Lockstep, StepMode::Hybrid] {
            let mut cfg = SimConfig::small(2);
            cfg.step_mode = mode;
            let t0 = Trace::new(vec![Op::FutexWait(addr(0), Src::Imm(0)), Op::read(addr(1))]);
            let t1 = Trace::new(vec![
                Op::Compute(300),
                Op::write(addr(1), 7),
                Op::FutexWake(addr(0), 1),
            ]);
            let r = Machine::new(cfg, vec![t0, t1]).run();
            assert!(!r.deadlocked && !r.truncated, "{mode:?}");
            assert_eq!(r.stats.futex_waits, 1, "{mode:?}");
            assert_eq!(r.stats.futex_wakes, 1, "{mode:?}");
            assert_eq!(r.stats.futex_wakeups, 1, "{mode:?}");
            assert!(r.stats.blocked_cycles > 0, "{mode:?}");
            // The wake drained the waker's buffer first, so the sleeper's
            // post-resume read observes the store that preceded the wake.
            assert_eq!(r.reads[0], vec![7], "{mode:?}");
        }
    }

    #[test]
    fn futex_wrong_expected_returns_immediately() {
        let t = Trace::new(vec![Op::FutexWait(addr(0), Src::Imm(5)), Op::read(addr(0))]);
        let r = Machine::new(SimConfig::small(1), vec![t]).run();
        assert!(!r.deadlocked);
        assert_eq!(r.stats.futex_waits, 0);
        assert_eq!(r.stats.futex_immediate, 1);
        assert_eq!(r.stats.futex_wakeups, 0);
    }

    #[test]
    fn max_cycles_truncates_identically_in_both_engines() {
        // An infinite spin loop: taken branches are watchdog progress, so
        // only the hard ceiling stops the run.
        let mk = |mode: StepMode| {
            let mut cfg = SimConfig::small(1);
            cfg.step_mode = mode;
            cfg.max_cycles = 5_000;
            let t = Trace::new(vec![
                Op::ReadTo(0, addr(0)),
                Op::Branch {
                    cond: Cond::Eq,
                    lhs: 0,
                    rhs: Src::Imm(0),
                    target: 0,
                },
            ]);
            Machine::new(cfg, vec![t]).run()
        };
        let ev = mk(StepMode::EventDriven);
        let ls = mk(StepMode::Lockstep);
        let hy = mk(StepMode::Hybrid);
        assert!(ev.truncated && ls.truncated && hy.truncated);
        assert!(!ev.deadlocked && !ls.deadlocked && !hy.deadlocked);
        assert_eq!(ev.stats.cycles, 5_000);
        assert_eq!(ev.stats, ls.stats);
        assert_eq!(ev.per_core, ls.per_core);
        assert_eq!(hy.stats, ls.stats);
        assert_eq!(hy.per_core, ls.per_core);
        assert!(ev.stats.spin_retries > 0, "back-edges counted as retries");
    }

    #[test]
    fn register_ops_and_control_flow() {
        // r0 = 3; loop { r0 -= 1 } while r0 != 0; store r0+10 to memory.
        let t = Trace::new(vec![
            Op::MovImm(0, 3),
            Op::AddImm(0, u64::MAX), // wrapping -1
            Op::Branch {
                cond: Cond::Ne,
                lhs: 0,
                rhs: Src::Imm(0),
                target: 1,
            },
            Op::AddImm(0, 10),
            Op::WriteFrom(addr(2), 0),
        ]);
        for mode in [StepMode::EventDriven, StepMode::Lockstep, StepMode::Hybrid] {
            let mut cfg = SimConfig::small(1);
            cfg.step_mode = mode;
            let r = Machine::new(cfg, vec![t.clone()]).run();
            assert!(!r.deadlocked && !r.truncated, "{mode:?}");
            assert_eq!(r.memory.get(&addr(2)), Some(&10), "{mode:?}");
            assert_eq!(r.stats.spin_retries, 2, "{mode:?}");
            assert!(r.reads[0].is_empty(), "register reads are not recorded");
        }
    }
}
