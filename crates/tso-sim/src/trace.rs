//! Per-core instruction traces consumed by the simulator.
//!
//! A [`Trace`] is a sequence of [`Op`]s. The statistical generators in the
//! `workloads` crate emit straight-line traces; the synchronization-kernel
//! zoo additionally uses the small control-flow subset — a per-core
//! register file ([`NUM_REGS`] registers), conditional [`Op::Branch`] /
//! [`Op::Jump`], and the futex-style [`Op::FutexWait`] / [`Op::FutexWake`]
//! blocking primitives — so real lock/channel algorithms can be expressed
//! directly. Tests construct traces by hand.
//!
//! Register-targeted accesses (`ReadTo`/`RmwTo`) deliberately do **not**
//! append to the recorded read stream: spin-loop probes would otherwise
//! drown the payload reads that invariant checkers and the axiomatic
//! cross-validation identify positionally.

use rmw_types::{Addr, RmwKind, Value};

/// Number of architectural registers per core (zero-initialized).
pub const NUM_REGS: usize = 4;

/// A register index (`0..NUM_REGS`).
pub type Reg = u8;

/// A branch/futex operand: immediate or register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A constant.
    Imm(Value),
    /// A register's current value.
    Reg(Reg),
}

/// Branch condition (unsigned comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two values.
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Ge => lhs >= rhs,
        }
    }
}

/// One dynamic operation of a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A load whose value is appended to the recorded read stream.
    Read(Addr),
    /// A store of a constant.
    Write(Addr, Value),
    /// A read-modify-write (atomicity comes from the machine config); the
    /// observed old value is appended to the recorded read stream.
    Rmw(Addr, RmwKind),
    /// A full memory fence (`mfence`): stalls until the write buffer is
    /// empty.
    Fence,
    /// `n` cycles of non-memory work.
    Compute(u32),
    /// A load into a register (not recorded — spin-loop probes).
    ReadTo(Reg, Addr),
    /// A store of a register's value (resolved at issue).
    WriteFrom(Addr, Reg),
    /// An RMW whose observed old value lands in a register instead of the
    /// recorded read stream — the acquire/release probes of the zoo
    /// kernels.
    RmwTo(Reg, Addr, RmwKind),
    /// Load an immediate into a register (1 cycle).
    MovImm(Reg, Value),
    /// Wrapping add of an immediate to a register (1 cycle).
    AddImm(Reg, Value),
    /// Conditional branch: if `cond(regs[lhs], rhs)` the next op is
    /// `ops[target]`, else fall through (1 cycle either way).
    Branch {
        /// The comparison.
        cond: Cond,
        /// Left operand register.
        lhs: Reg,
        /// Right operand.
        rhs: Src,
        /// Branch-taken destination (op index).
        target: u32,
    },
    /// Unconditional branch to `ops[target]` (1 cycle).
    Jump(u32),
    /// Futex wait: drain the write buffer (kernel-entry serialization),
    /// then atomically check `memory[addr] == expected` — sleep on the
    /// per-address FIFO queue if equal, otherwise return immediately
    /// (EAGAIN). A sleeping core resumes `futex_latency` cycles after a
    /// matching [`Op::FutexWake`] dequeues it.
    FutexWait(Addr, Src),
    /// Futex wake: drain the write buffer, then dequeue and wake up to `n`
    /// waiters sleeping on `addr` (`u32::MAX` = all).
    FutexWake(Addr, u32),
}

impl Op {
    /// Convenience constructor for a load.
    pub fn read(addr: Addr) -> Self {
        Op::Read(addr)
    }

    /// Convenience constructor for a store.
    pub fn write(addr: Addr, value: Value) -> Self {
        Op::Write(addr, value)
    }

    /// Convenience constructor for a fetch-and-add(1) RMW.
    pub fn rmw(addr: Addr) -> Self {
        Op::Rmw(addr, RmwKind::FetchAndAdd(1))
    }

    /// The address accessed, if this op names one (memory operations and
    /// the futex primitives).
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Op::Read(a)
            | Op::Write(a, _)
            | Op::Rmw(a, _)
            | Op::ReadTo(_, a)
            | Op::WriteFrom(a, _)
            | Op::RmwTo(_, a, _)
            | Op::FutexWait(a, _)
            | Op::FutexWake(a, _) => Some(a),
            Op::Fence
            | Op::Compute(_)
            | Op::MovImm(..)
            | Op::AddImm(..)
            | Op::Branch { .. }
            | Op::Jump(_) => None,
        }
    }

    /// True for reads, writes and RMWs (recorded or register-targeted).
    /// Futex calls are kernel traps, not memory operations.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Op::Read(_)
                | Op::Write(..)
                | Op::Rmw(..)
                | Op::ReadTo(..)
                | Op::WriteFrom(..)
                | Op::RmwTo(..)
        )
    }
}

/// A core's instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// Wraps an op sequence.
    pub fn new(ops: Vec<Op>) -> Self {
        Trace { ops }
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of memory operations (reads + writes + RMWs).
    pub fn mem_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_mem()).count()
    }

    /// Number of RMWs (recorded or register-targeted).
    pub fn rmws(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Rmw(..) | Op::RmwTo(..)))
            .count()
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

impl Extend<Op> for Trace {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        assert_eq!(Op::read(Addr(1)).addr(), Some(Addr(1)));
        assert_eq!(Op::write(Addr(2), 9).addr(), Some(Addr(2)));
        assert_eq!(Op::rmw(Addr(3)).addr(), Some(Addr(3)));
        assert_eq!(Op::Fence.addr(), None);
        assert_eq!(Op::Compute(5).addr(), None);
        assert!(Op::read(Addr(0)).is_mem());
        assert!(!Op::Fence.is_mem());
    }

    #[test]
    fn trace_counters() {
        let t: Trace = vec![
            Op::read(Addr(0)),
            Op::write(Addr(1), 1),
            Op::rmw(Addr(2)),
            Op::Fence,
            Op::Compute(10),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 5);
        assert_eq!(t.mem_ops(), 3);
        assert_eq!(t.rmws(), 1);
        assert!(!t.is_empty());
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn zoo_op_accessors() {
        assert_eq!(Op::ReadTo(0, Addr(8)).addr(), Some(Addr(8)));
        assert_eq!(Op::WriteFrom(Addr(8), 1).addr(), Some(Addr(8)));
        assert_eq!(Op::FutexWait(Addr(64), Src::Imm(0)).addr(), Some(Addr(64)));
        assert_eq!(Op::FutexWake(Addr(64), 1).addr(), Some(Addr(64)));
        assert_eq!(Op::MovImm(0, 3).addr(), None);
        assert_eq!(Op::Jump(2).addr(), None);
        assert!(Op::RmwTo(0, Addr(0), RmwKind::TestAndSet).is_mem());
        assert!(!Op::FutexWait(Addr(0), Src::Imm(0)).is_mem());
        assert!(!Op::Branch {
            cond: Cond::Eq,
            lhs: 0,
            rhs: Src::Imm(0),
            target: 0
        }
        .is_mem());
        let t = Trace::new(vec![
            Op::rmw(Addr(0)),
            Op::RmwTo(0, Addr(0), RmwKind::TestAndSet),
        ]);
        assert_eq!(t.rmws(), 2);
        assert_eq!(t.mem_ops(), 2);
    }

    #[test]
    fn cond_eval_is_unsigned() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(3, 4));
        assert!(!Cond::Lt.eval(u64::MAX, 0), "comparison is unsigned");
        assert!(Cond::Ge.eval(u64::MAX, 0));
        assert!(Cond::Ge.eval(4, 4));
    }

    #[test]
    fn trace_extend() {
        let mut t = Trace::new(vec![Op::Fence]);
        t.extend([Op::read(Addr(0))]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[1], Op::read(Addr(0)));
    }
}
