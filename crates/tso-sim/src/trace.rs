//! Per-core instruction traces consumed by the simulator.
//!
//! A [`Trace`] is a straight-line sequence of [`Op`]s. The `workloads`
//! crate generates traces whose statistical profile matches the paper's
//! Table 3 benchmarks; tests construct them by hand.

use rmw_types::{Addr, RmwKind, Value};

/// One dynamic operation of a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A load.
    Read(Addr),
    /// A store of a constant.
    Write(Addr, Value),
    /// A read-modify-write (atomicity comes from the machine config).
    Rmw(Addr, RmwKind),
    /// A full memory fence (`mfence`): stalls until the write buffer is
    /// empty.
    Fence,
    /// `n` cycles of non-memory work.
    Compute(u32),
}

impl Op {
    /// Convenience constructor for a load.
    pub fn read(addr: Addr) -> Self {
        Op::Read(addr)
    }

    /// Convenience constructor for a store.
    pub fn write(addr: Addr, value: Value) -> Self {
        Op::Write(addr, value)
    }

    /// Convenience constructor for a fetch-and-add(1) RMW.
    pub fn rmw(addr: Addr) -> Self {
        Op::Rmw(addr, RmwKind::FetchAndAdd(1))
    }

    /// The address accessed, if this is a memory operation.
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Op::Read(a) | Op::Write(a, _) | Op::Rmw(a, _) => Some(a),
            Op::Fence | Op::Compute(_) => None,
        }
    }

    /// True for reads, writes and RMWs.
    pub fn is_mem(&self) -> bool {
        self.addr().is_some()
    }
}

/// A core's instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// Wraps an op sequence.
    pub fn new(ops: Vec<Op>) -> Self {
        Trace { ops }
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of memory operations (reads + writes + RMWs).
    pub fn mem_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_mem()).count()
    }

    /// Number of RMWs.
    pub fn rmws(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Rmw(..))).count()
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

impl Extend<Op> for Trace {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        assert_eq!(Op::read(Addr(1)).addr(), Some(Addr(1)));
        assert_eq!(Op::write(Addr(2), 9).addr(), Some(Addr(2)));
        assert_eq!(Op::rmw(Addr(3)).addr(), Some(Addr(3)));
        assert_eq!(Op::Fence.addr(), None);
        assert_eq!(Op::Compute(5).addr(), None);
        assert!(Op::read(Addr(0)).is_mem());
        assert!(!Op::Fence.is_mem());
    }

    #[test]
    fn trace_counters() {
        let t: Trace = vec![
            Op::read(Addr(0)),
            Op::write(Addr(1), 1),
            Op::rmw(Addr(2)),
            Op::Fence,
            Op::Compute(10),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 5);
        assert_eq!(t.mem_ops(), 3);
        assert_eq!(t.rmws(), 1);
        assert!(!t.is_empty());
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn trace_extend() {
        let mut t = Trace::new(vec![Op::Fence]);
        t.extend([Op::read(Addr(0))]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[1], Op::read(Addr(0)));
    }
}
