//! The cycle-skipping event scheduler behind [`StepMode::EventDriven`].
//!
//! The lockstep engine advances time by ticking every core every cycle; at
//! paper scale (300-cycle memory, 32 cores) almost all of those ticks are
//! idle stall-waiting. The event-driven engine instead keeps an event
//! queue keyed by `(cycle, target)`: whenever a core computes a completion
//! time — instruction-ready (`busy_until`), a write-buffer request arrival
//! or transaction completion, a broadcast-ack deadline, an RMW `Finish`
//! time — it arms a wakeup for *itself* at that cycle; machine-level
//! deliveries (broadcast messages in flight) arm a machine-target wakeup.
//! `Machine::run` jumps `now` straight to the earliest armed cycle and
//! ticks **only the due cores**, in core-id order.
//!
//! # Queue structure
//!
//! The queue is a **calendar wheel** (bucket per cycle modulo the wheel
//! size, with a bitmap for next-event scans) backed by a
//! binary-heap overflow for arms beyond the wheel horizon. Every latency
//! the Table 2 machine can produce (300-cycle memory + mesh traversals)
//! fits the horizon, so in practice arming and draining are O(1).
//! Each bucket is a per-core **bitmap** rather than an event list:
//! arming is a single OR (duplicates are absorbed for free), and a drain
//! merges the bucket's words straight into the due-core bitmap — the
//! queue costs a fraction of a core tick even on kernels that arm
//! millions of `now + 1` wakeups. Two invariants keep the wheel exact:
//! every arm is strictly in the future, and the machine visits *every*
//! armed cycle, so a bucket is fully drained at its cycle and never
//! holds entries from two different cycles.
//!
//! # Exactness contract
//!
//! The engine remains **cycle-identical** to lockstep (asserted by
//! `tests/engine_equiv.rs`) because skipped work is provably a no-op:
//!
//! 1. a core's tick can only *act* (mutate state or statistics) at a cycle
//!    it armed for itself — every future deadline is armed when computed,
//!    and a tick that acted arms `now + 1` for the same core whenever its
//!    end-of-tick state demands a next-cycle action (phase-machine
//!    advances, request sends and re-sends, fences over an empty buffer);
//! 2. the one cross-core wait — a read or RMW acquisition blocked on a
//!    *foreign* line lock — re-probes exactly when lockstep's per-cycle
//!    re-poll could first succeed: a lock **release** is the only event
//!    that can unblock it, so blocked cores are ticked whenever an
//!    earlier-id core released a lock in the same cycle, and a
//!    blocked-wakeup ([`Scheduler::wake_blocked`]) is armed for the cycle
//!    after any release;
//! 3. due cores tick in core-id order, so intra-cycle orderings (who sees
//!    an unlock first) are preserved bit-for-bit.
//!
//! [`Scheduler::next_after`] never returns a cycle at or before `now`
//! (time is monotone) nor skips past an armed wakeup — both
//! property-tested in `tests/engine_equiv.rs`.
//!
//! [`StepMode::EventDriven`]: crate::StepMode::EventDriven

use interconnect::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What a scheduled wakeup is waiting for. Purely diagnostic — ordering is
/// by `(cycle, target)` — but counted in [`Scheduler::armed_by_kind`] so
/// tests and benches can see where event pressure comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A core's `busy_until` expires (instruction issue/retire).
    CoreReady,
    /// A write-buffer coherence request arrives at the home directory.
    WbRequestArrival,
    /// An accepted write-buffer transaction completes (slot frees, locks
    /// may release).
    WbCompletion,
    /// The broadcast-ack collection deadline of a §3.2 RMW-address
    /// broadcast.
    BroadcastAcks,
    /// An RMW's read half completes (`RmwPhase::Finish`).
    RmwFinish,
    /// An interconnect message (RMW broadcast or ack) is delivered.
    NetDelivery,
    /// Conservative `now + 1` self-wakeup after a tick that acted:
    /// phase-machine advances and request (re-)sends ride on this.
    Advance,
    /// Wakeup of every lock-blocked core the cycle after a lock release
    /// (the event-time replacement for lockstep's per-cycle lock
    /// re-polling).
    LockRelease,
    /// A futex-sleeping core's resume time (`futex_latency` cycles after
    /// an `Op::FutexWake` dequeued it). Armed by the *waker*; the sleeper
    /// itself arms nothing while asleep.
    FutexWake,
}

impl EventKind {
    /// All kinds, indexable for the per-kind counters.
    pub const ALL: [EventKind; 9] = [
        EventKind::CoreReady,
        EventKind::WbRequestArrival,
        EventKind::WbCompletion,
        EventKind::BroadcastAcks,
        EventKind::RmwFinish,
        EventKind::NetDelivery,
        EventKind::Advance,
        EventKind::LockRelease,
        EventKind::FutexWake,
    ];

    fn index(self) -> usize {
        self as usize
    }
}

/// Wheel size in cycles. Must be a power of two, and comfortably larger
/// than any single latency the machine composes (memory 300 + mesh round
/// trips); longer waits (huge `Compute` bubbles, exotic configs) spill to
/// the overflow heap.
const WHEEL_SIZE: usize = 512;
const WHEEL_MASK: u64 = WHEEL_SIZE as u64 - 1;
const BITMAP_WORDS: usize = WHEEL_SIZE / 64;

/// Heap targets: core ids, then the two machine-level sentinels. The
/// sentinel encodings sort *after* every real core id, so due cores come
/// first at a given cycle.
const TARGET_BLOCKED: u32 = u32::MAX - 1;
const TARGET_MACHINE: u32 = u32::MAX;

/// Sets per-bucket flag bit `idx`, returning whether it was newly set.
fn set_bucket_flag(flags: &mut [u64; BITMAP_WORDS], idx: usize) -> bool {
    let (word, bit) = (idx / 64, 1u64 << (idx % 64));
    let newly = flags[word] & bit == 0;
    flags[word] |= bit;
    newly
}

/// What [`Scheduler::drain_due`] found armed at the drained cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Due {
    /// A blocked-wakeup was armed: every lock-blocked core must re-probe
    /// this cycle.
    pub wake_blocked: bool,
    /// A machine-level event (network delivery) was armed.
    pub machine: bool,
}

/// Calendar-wheel event queue keyed by `(cycle, target)`.
///
/// Each bucket is a **core bitmap** (one bit per core id, word-major
/// across buckets) plus two per-bucket sentinel flags, so arming is one
/// OR and draining a bucket is a handful of word reads merged straight
/// into the due-core bitmap. Nothing is allocated per event — the dense
/// kernels arm millions of near-future wakeups and the queue must stay
/// a fraction of a tick's cost, not a multiple of it.
///
/// Arming is idempotent and conservative: duplicate events are permitted
/// (the bitmap absorbs them), missing events are not — see the module
/// docs for the exactness contract. A scheduler constructed disabled
/// ([`Scheduler::new(false)`](Scheduler::new)) ignores all arms; the
/// lockstep engine uses one so `Core` can arm unconditionally without
/// filling a queue nobody drains.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Occupancy bit per bucket.
    bitmap: [u64; BITMAP_WORDS],
    /// Per-bucket core bitmaps, word-major: core `id`'s bit for bucket
    /// `b` is bit `id % 64` of `wheel_bits[(id / 64) * WHEEL_SIZE + b]`.
    /// Word-major keeps growth (a wider machine's first arm) a plain
    /// append with no re-layout.
    wheel_bits: Vec<u64>,
    /// Core-bitmap words per bucket (`wheel_bits.len() / WHEEL_SIZE`).
    core_words: usize,
    /// Bit per bucket: a blocked-wakeup sentinel is armed there.
    blocked_bits: [u64; BITMAP_WORDS],
    /// Bit per bucket: a machine-level (delivery) arm is armed there.
    machine_bits: [u64; BITMAP_WORDS],
    /// The cycle each occupied bucket holds, for the single-cycle
    /// invariant check (debug builds only — release recomputes the cycle
    /// from the bucket index, which the invariant makes unambiguous).
    #[cfg(debug_assertions)]
    bucket_cycle: Box<[Cycle; WHEEL_SIZE]>,
    /// Arms at or beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Due-core bitmap (one bit per core id), reused across drains. Set
    /// bits are collected in ascending id order and cleared on the way
    /// out, so a drain is sort-free and duplicate-free by construction.
    due_bits: Vec<u64>,
    /// When nonzero, core/blocked arms targeting exactly this cycle are
    /// dropped (see [`Scheduler::set_skip_core_arms_at`]). Machine-level
    /// arms always land.
    skip_core_arms_at: Cycle,
    enabled: bool,
    pending: usize,
    armed: u64,
    armed_by_kind: [u64; EventKind::ALL.len()],
}

impl Scheduler {
    /// Creates an empty scheduler. When `enabled` is false every arm is a
    /// no-op.
    pub fn new(enabled: bool) -> Self {
        Scheduler {
            bitmap: [0; BITMAP_WORDS],
            wheel_bits: Vec::new(),
            core_words: 0,
            blocked_bits: [0; BITMAP_WORDS],
            machine_bits: [0; BITMAP_WORDS],
            #[cfg(debug_assertions)]
            bucket_cycle: Box::new([0; WHEEL_SIZE]),
            overflow: BinaryHeap::new(),
            due_bits: Vec::new(),
            skip_core_arms_at: 0,
            enabled,
            pending: 0,
            armed: 0,
            armed_by_kind: [0; EventKind::ALL.len()],
        }
    }

    /// Whether this scheduler records events.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Drops core- and blocked-targeted arms landing at exactly `at`
    /// (`0` disables — cycle 0 can never be armed, as arms are strictly
    /// future). The hybrid engine's dense phase ticks **every** live core
    /// each cycle, so an arm for the very next dense cycle is redundant;
    /// dropping it at the source removes the wheel/drain churn that
    /// otherwise dominates dense stepping. Machine-level (delivery) arms
    /// still land: the engine caches which delivery cycle it armed, and
    /// that cache must stay truthful across phase switches.
    ///
    /// Exactness: the caller must guarantee the skipped cycle is ticked
    /// densely (all live cores + unconditional delivery + blocked
    /// re-probe), which subsumes every dropped wakeup.
    pub fn set_skip_core_arms_at(&mut self, at: Cycle) {
        self.skip_core_arms_at = at;
    }

    /// Arms `(at, target)`. `at` must be strictly in the future relative
    /// to the cycle the caller is executing — `Machine` visits every armed
    /// cycle, which keeps each bucket single-cycled.
    fn push(&mut self, now_hint: Cycle, at: Cycle, target: u32, kind: EventKind) {
        if !self.enabled {
            return;
        }
        debug_assert!(at > now_hint, "arm must be in the future");
        if at == self.skip_core_arms_at && target != TARGET_MACHINE {
            return;
        }
        if at - now_hint >= WHEEL_SIZE as u64 {
            self.overflow.push(Reverse((at, target)));
            self.pending += 1;
        } else {
            let idx = (at & WHEEL_MASK) as usize;
            #[cfg(debug_assertions)]
            {
                let occupied = self.bitmap[idx / 64] & (1 << (idx % 64)) != 0;
                debug_assert!(
                    !occupied || self.bucket_cycle[idx] == at,
                    "bucket holds a single cycle"
                );
                self.bucket_cycle[idx] = at;
            }
            let newly = match target {
                TARGET_MACHINE => set_bucket_flag(&mut self.machine_bits, idx),
                TARGET_BLOCKED => set_bucket_flag(&mut self.blocked_bits, idx),
                id => {
                    let w = id as usize / 64;
                    if w >= self.core_words {
                        self.core_words = w + 1;
                        self.wheel_bits.resize(self.core_words * WHEEL_SIZE, 0);
                    }
                    let cell = &mut self.wheel_bits[w * WHEEL_SIZE + idx];
                    let bit = 1u64 << (id % 64);
                    let newly = *cell & bit == 0;
                    *cell |= bit;
                    newly
                }
            };
            self.pending += usize::from(newly);
            self.bitmap[idx / 64] |= 1 << (idx % 64);
        }
        self.armed += 1;
        self.armed_by_kind[kind.index()] += 1;
    }

    /// Arms a wakeup for `core` at `at` (call from the tick executing at
    /// `now`; `at` must be `> now`).
    ///
    /// # Panics
    ///
    /// Panics if `core` collides with the sentinel target encodings
    /// (≥ `u32::MAX - 1` cores — far beyond any simulated machine).
    pub fn wake_core(&mut self, now: Cycle, at: Cycle, core: usize, kind: EventKind) {
        let id = u32::try_from(core).expect("core id fits the queue encoding");
        assert!(id < TARGET_BLOCKED, "core id collides with queue sentinels");
        self.push(now, at, id, kind);
    }

    /// Arms a machine-level wakeup (network delivery) at `at`.
    pub fn wake_machine(&mut self, now: Cycle, at: Cycle, kind: EventKind) {
        self.push(now, at, TARGET_MACHINE, kind);
    }

    /// Arms a wakeup of every lock-blocked core at `at`.
    pub fn wake_blocked(&mut self, now: Cycle, at: Cycle) {
        self.push(now, at, TARGET_BLOCKED, EventKind::LockRelease);
    }

    /// Pops every event armed at exactly `now`, appending due core ids to
    /// `due_cores` in ascending order without duplicates. Returns the
    /// machine-level flags.
    ///
    /// The drain is **batched**: a bucket holding many same-cycle events
    /// is emptied in one pass behind a single bitmap probe, and due core
    /// ids are accumulated as bits in the reusable due bitmap — ascending
    /// order and dedup fall out of the bit extraction, with no per-drain
    /// sort. The same bitmap canonicalizes ordering across the
    /// wheel/overflow boundary: a core due at `now` ticks at the same
    /// position whether its arm sat in a wheel bucket or spilled to the
    /// overflow heap, so results are horizon-choice-independent.
    pub fn drain_due(&mut self, now: Cycle, due_cores: &mut Vec<usize>) -> Due {
        let due = self.drain_raw(now);
        for w in 0..self.due_bits.len() {
            let mut word = self.due_bits[w];
            if word == 0 {
                continue;
            }
            self.due_bits[w] = 0;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                due_cores.push(w * 64 + bit);
            }
        }
        due
    }

    /// Like [`Scheduler::drain_due`], but only *counts* the distinct due
    /// cores instead of materializing their id list. The hybrid engine's
    /// dense phase ticks every live core regardless and needs the count
    /// only as its armed-density signal.
    pub fn drain_due_counted(&mut self, now: Cycle) -> (Due, u64) {
        let due = self.drain_raw(now);
        let mut count = 0u64;
        for w in &mut self.due_bits {
            count += u64::from(w.count_ones());
            *w = 0;
        }
        (due, count)
    }

    /// Empties the bucket and overflow entries due at `now` into the
    /// due-core bitmap, returning the machine-level flags.
    fn drain_raw(&mut self, now: Cycle) -> Due {
        let mut due = Due::default();
        let idx = (now & WHEEL_MASK) as usize;
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if self.bitmap[word] & bit != 0 {
            self.bitmap[word] &= !bit;
            #[cfg(debug_assertions)]
            debug_assert_eq!(self.bucket_cycle[idx], now, "bucket holds a single cycle");
            if self.due_bits.len() < self.core_words {
                self.due_bits.resize(self.core_words, 0);
            }
            for cw in 0..self.core_words {
                let cell = &mut self.wheel_bits[cw * WHEEL_SIZE + idx];
                if *cell != 0 {
                    self.pending -= cell.count_ones() as usize;
                    self.due_bits[cw] |= *cell;
                    *cell = 0;
                }
            }
            if self.blocked_bits[word] & bit != 0 {
                self.blocked_bits[word] &= !bit;
                self.pending -= 1;
                due.wake_blocked = true;
            }
            if self.machine_bits[word] & bit != 0 {
                self.machine_bits[word] &= !bit;
                self.pending -= 1;
                due.machine = true;
            }
        }
        while let Some(&Reverse((at, target))) = self.overflow.peek() {
            if at > now {
                break;
            }
            self.overflow.pop();
            self.pending -= 1;
            if at < now {
                continue; // stale (already serviced at its cycle)
            }
            match target {
                TARGET_MACHINE => due.machine = true,
                TARGET_BLOCKED => due.wake_blocked = true,
                id => self.mark_due(id),
            }
        }
        due
    }

    /// Sets `id`'s bit in the reusable due-core bitmap (overflow drains;
    /// wheel drains merge whole words instead).
    fn mark_due(&mut self, id: u32) {
        let w = id as usize / 64;
        if w >= self.due_bits.len() {
            self.due_bits.resize(w + 1, 0);
        }
        self.due_bits[w] |= 1 << (id % 64);
    }

    /// The earliest armed cycle strictly after `now`. Returns `None` when
    /// nothing is armed — for the machine that means no tick can ever
    /// change state again (completion or wedge).
    pub fn next_after(&mut self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        // Circular bitmap scan over the wheel, starting at now + 1. All
        // wheel entries lie in (now, now + WHEEL_SIZE), so the first
        // occupied bucket in circular order is the earliest wheel cycle.
        let start = ((now + 1) & WHEEL_MASK) as usize;
        'scan: for step in 0..BITMAP_WORDS + 1 {
            let word_idx = (start / 64 + step) % BITMAP_WORDS;
            let mut word = self.bitmap[word_idx];
            if step == 0 {
                word &= !0u64 << (start % 64);
            }
            if step == BITMAP_WORDS {
                word &= !(!0u64 << (start % 64));
            }
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                let idx = word_idx * 64 + bit;
                // All wheel entries lie in (now, now + WHEEL_SIZE), so the
                // bucket index determines the cycle unambiguously.
                let mut at = (now & !WHEEL_MASK) + idx as u64;
                if at <= now {
                    at += WHEEL_SIZE as u64;
                }
                #[cfg(debug_assertions)]
                debug_assert_eq!(self.bucket_cycle[idx], at, "bucket holds a single cycle");
                best = Some(at);
                break 'scan;
            }
        }
        while let Some(&Reverse((at, _))) = self.overflow.peek() {
            if at > now {
                best = Some(best.map_or(at, |b| b.min(at)));
                break;
            }
            self.overflow.pop();
            self.pending -= 1;
        }
        best
    }

    /// Events currently armed and not yet drained.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total events armed so far.
    pub fn armed(&self) -> u64 {
        self.armed
    }

    /// Events armed so far for one kind.
    pub fn armed_by_kind(&self, kind: EventKind) -> u64 {
        self.armed_by_kind[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scheduler_ignores_arms() {
        let mut s = Scheduler::new(false);
        s.wake_core(0, 5, 0, EventKind::CoreReady);
        s.wake_machine(0, 6, EventKind::NetDelivery);
        s.wake_blocked(0, 7);
        assert!(!s.enabled());
        assert_eq!(s.pending(), 0);
        assert_eq!(s.armed(), 0);
        assert_eq!(s.next_after(0), None);
    }

    #[test]
    fn drains_due_cores_in_id_order_without_duplicates() {
        let mut s = Scheduler::new(true);
        s.wake_core(0, 10, 3, EventKind::WbCompletion);
        s.wake_core(0, 10, 1, EventKind::CoreReady);
        s.wake_core(0, 10, 3, EventKind::Advance);
        s.wake_core(0, 20, 0, EventKind::CoreReady);
        s.wake_machine(0, 10, EventKind::NetDelivery);
        assert_eq!(s.next_after(0), Some(10));
        let mut due = Vec::new();
        let flags = s.drain_due(10, &mut due);
        assert_eq!(due, vec![1, 3]);
        assert!(flags.machine);
        assert!(!flags.wake_blocked);
        assert_eq!(s.next_after(10), Some(20));
        assert_eq!(s.armed(), 5);
        assert_eq!(s.armed_by_kind(EventKind::CoreReady), 2);
        due.clear();
        let flags = s.drain_due(20, &mut due);
        assert_eq!(due, vec![0]);
        assert!(!flags.machine);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.next_after(20), None);
    }

    #[test]
    fn far_future_arms_spill_to_the_overflow() {
        let mut s = Scheduler::new(true);
        let far = 3 + 10 * WHEEL_SIZE as u64;
        s.wake_core(3, far, 2, EventKind::CoreReady);
        s.wake_blocked(3, 4);
        assert_eq!(s.next_after(3), Some(4));
        let mut due = Vec::new();
        let flags = s.drain_due(4, &mut due);
        assert!(flags.wake_blocked);
        assert!(due.is_empty());
        assert_eq!(s.next_after(4), Some(far));
        due.clear();
        let _ = s.drain_due(far, &mut due);
        assert_eq!(due, vec![2]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn batched_drain_empties_a_dense_bucket_in_id_order() {
        let mut s = Scheduler::new(true);
        // Arm every core of a large machine at one cycle, in a scrambled
        // order with duplicates — the dense-kernel worst case the batched
        // drain exists for.
        for i in 0..256usize {
            let id = (i * 97 + 13) % 256;
            s.wake_core(0, 7, id, EventKind::CoreReady);
            s.wake_core(0, 7, id, EventKind::Advance);
        }
        let mut due = Vec::new();
        s.drain_due(7, &mut due);
        assert_eq!(due, (0..256).collect::<Vec<_>>());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn counted_drain_matches_the_list_drain() {
        let mk = || {
            let mut s = Scheduler::new(true);
            s.wake_core(0, 9, 4, EventKind::CoreReady);
            s.wake_core(0, 9, 1, EventKind::Advance);
            s.wake_core(0, 9, 4, EventKind::WbCompletion);
            s.wake_machine(0, 9, EventKind::NetDelivery);
            s.wake_core(0, 600, 2, EventKind::CoreReady); // overflow, later
            s
        };
        let mut listed = mk();
        let mut counted = mk();
        let mut due = Vec::new();
        let fa = listed.drain_due(9, &mut due);
        let (fb, n) = counted.drain_due_counted(9);
        assert_eq!(due, vec![1, 4]);
        assert_eq!(n, due.len() as u64);
        assert_eq!(fa, fb);
        assert_eq!(listed.pending(), counted.pending());
        // The counted drain leaves the bitmap clean for the next cycle.
        due.clear();
        counted.drain_due(600, &mut due);
        assert_eq!(due, vec![2]);
    }

    #[test]
    fn wheel_and_overflow_arms_drain_in_the_same_order() {
        // The same set of (cycle, core) arms must tick in the same order
        // whether each arm sat in a wheel bucket or spilled to the
        // overflow heap — the drain order is a function of the armed set,
        // not of the horizon the arm happened to land on.
        let at = 600u64;
        let cores = [9usize, 2, 7, 2, 0, 31, 7];
        let mut wheel = Scheduler::new(true);
        let mut spilled = Scheduler::new(true);
        for &c in &cores {
            // now_hint 200: at - 200 < WHEEL_SIZE, lands in a bucket.
            wheel.wake_core(200, at, c, EventKind::CoreReady);
            // now_hint 0: at - 0 >= WHEEL_SIZE, spills to the heap.
            spilled.wake_core(0, at, c, EventKind::CoreReady);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let fa = wheel.drain_due(at, &mut a);
        let fb = spilled.drain_due(at, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 2, 7, 9, 31]);
        assert_eq!(fa, fb);
        assert_eq!(wheel.pending(), 0);
        assert_eq!(spilled.pending(), 0);
    }

    #[test]
    fn wheel_wraps_cleanly_across_many_horizons() {
        let mut s = Scheduler::new(true);
        let mut now = 0u64;
        for round in 0..2_000u64 {
            let at = now + 1 + (round % 400);
            s.wake_core(now, at, (round % 5) as usize, EventKind::Advance);
            let next = s.next_after(now).expect("armed");
            assert_eq!(next, at);
            let mut due = Vec::new();
            s.drain_due(next, &mut due);
            assert_eq!(due, vec![(round % 5) as usize]);
            now = next;
        }
        assert_eq!(s.pending(), 0);
    }
}
